//! Durability and move-safety (§3.3): the history must survive
//! backup/restore byte-for-byte, corrupted streams must fail cleanly,
//! and a moved database must keep predicting exactly as before the move.

use prorp_forecast::ProbabilisticPredictor;
use prorp_sim::{SimConfig, SimPolicy, Simulation};
use prorp_storage::{backup_history, restore_history, HistoryTable};
use prorp_telemetry::TelemetryKind;
use prorp_types::{EventKind, PolicyConfig, Seconds, Timestamp};
use prorp_workload::{RegionName, RegionProfile};

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn daily_history(days: i64) -> HistoryTable {
    let mut h = HistoryTable::new();
    for d in 0..days {
        h.insert_history(Timestamp(d * DAY + 9 * HOUR), EventKind::Start);
        h.insert_history(Timestamp(d * DAY + 10 * HOUR), EventKind::End);
    }
    h
}

#[test]
fn predictions_survive_a_move() {
    let history = daily_history(28);
    let predictor = ProbabilisticPredictor::new(PolicyConfig::default()).unwrap();
    let now = Timestamp(28 * DAY);
    let before = predictor.predict_at(&history, now);

    // Ship the history to "another node" and predict there.
    let stream = backup_history(&history).expect("backup");
    let restored = restore_history(&stream).expect("restore");
    let after = predictor.predict_at(&restored, now);

    assert_eq!(before, after, "the move must not change the prediction");
    assert!(before.is_some(), "the pattern must be detected at all");
    // Logical contents identical; index depth may differ (the restore
    // path bulk-loads bottom-up) so compare the logical stats only.
    assert_eq!(history.events(), restored.events());
    assert_eq!(history.stats().tuples, restored.stats().tuples);
    assert_eq!(
        history.stats().logical_bytes,
        restored.stats().logical_bytes
    );
}

#[test]
fn corrupt_streams_fail_without_partial_state() {
    let history = daily_history(10);
    let mut stream = backup_history(&history).expect("backup");
    // Flip one bit in the page body.
    let n = stream.len();
    stream[n / 2] ^= 0x40;
    let err = restore_history(&stream).expect_err("corruption must be detected");
    assert_eq!(err.category(), "storage");
}

#[test]
fn backup_is_deterministic() {
    let a = backup_history(&daily_history(15)).unwrap();
    let b = backup_history(&daily_history(15)).unwrap();
    assert_eq!(a, b, "same history, same bytes");
}

#[test]
fn simulated_moves_do_not_degrade_the_proactive_policy() {
    let traces = RegionProfile::for_region(RegionName::Eu1).generate_fleet(
        40,
        Timestamp(0),
        Timestamp(32 * DAY),
        77,
    );
    let base = SimConfig::builder(
        SimPolicy::Proactive(PolicyConfig::default()),
        Timestamp(0),
        Timestamp(32 * DAY),
        Timestamp(28 * DAY),
    )
    .build()
    .unwrap();
    // Without moves.
    let still = Simulation::new(base.clone(), traces.clone())
        .unwrap()
        .run()
        .unwrap();
    // With aggressive load balancing (history shipped on every move).
    let mut moving = base;
    moving.nodes = 3;
    moving.node_capacity = 25;
    moving.rebalance_period = Some(Seconds::hours(2));
    moving.rebalance_threshold = 1;
    let moved = Simulation::new(moving, traces).unwrap().run().unwrap();

    let move_count = moved
        .telemetry
        .events()
        .iter()
        .filter(|e| e.kind == TelemetryKind::Move)
        .count();
    assert!(
        move_count > 0,
        "load balancing must actually move databases"
    );
    // §3.3's requirement: proactive capability is uninterrupted — QoS on
    // the moving cluster stays within noise of the still cluster.
    assert!(
        (moved.kpi.qos_pct() - still.kpi.qos_pct()).abs() < 5.0,
        "moves changed QoS too much: {:.1}% vs {:.1}%",
        moved.kpi.qos_pct(),
        still.kpi.qos_pct()
    );
}
