//! End-to-end fleet invariants across the whole stack: workload
//! generation → policy engines → simulator → telemetry.

use prorp_sim::{SimConfig, SimPolicy, SimReport, Simulation};
use prorp_telemetry::TelemetryKind;
use prorp_types::{PolicyConfig, Timestamp};
use prorp_workload::{RegionName, RegionProfile, Trace};

const DAY: i64 = 86_400;

fn fleet(n: usize, days: i64, seed: u64) -> Vec<Trace> {
    RegionProfile::for_region(RegionName::Eu1).generate_fleet(
        n,
        Timestamp(0),
        Timestamp(days * DAY),
        seed,
    )
}

fn run(policy: SimPolicy, traces: &[Trace], days: i64) -> SimReport {
    let config = SimConfig::builder(
        policy,
        Timestamp(0),
        Timestamp(days * DAY),
        Timestamp((days - 4) * DAY),
    )
    .build()
    .expect("valid config");
    Simulation::new(config, traces.to_vec())
        .expect("valid config")
        .run()
        .expect("simulation completes")
}

#[test]
fn qos_ordering_holds_across_policies() {
    let traces = fleet(50, 32, 7);
    let reactive = run(SimPolicy::Reactive, &traces, 32);
    let proactive = run(SimPolicy::Proactive(PolicyConfig::default()), &traces, 32);
    let optimal = run(SimPolicy::Optimal, &traces, 32);
    assert!(
        proactive.kpi.qos_pct() > reactive.kpi.qos_pct(),
        "proactive {:.1}% must beat reactive {:.1}%",
        proactive.kpi.qos_pct(),
        reactive.kpi.qos_pct()
    );
    assert_eq!(optimal.kpi.qos_pct(), 100.0, "the oracle never misses");
    assert!(optimal.kpi.idle_pct() < 0.5, "the oracle wastes nothing");
    assert!(optimal.kpi.idle_pct() <= proactive.kpi.idle_pct());
}

#[test]
fn time_accounting_is_exhaustive() {
    // Every second of fleet time lands in exactly one segment kind, so
    // the fractions must sum to 1.
    let traces = fleet(30, 32, 3);
    for policy in [
        SimPolicy::Reactive,
        SimPolicy::Proactive(PolicyConfig::default()),
        SimPolicy::Optimal,
    ] {
        let report = run(policy, &traces, 32);
        let total = report.kpi.active_frac
            + report.kpi.saved_frac
            + report.kpi.unavailable_frac
            + report.kpi.idle_logical_frac
            + report.kpi.idle_proactive_correct_frac
            + report.kpi.idle_proactive_wrong_frac;
        assert!(
            (total - 1.0).abs() < 1e-9,
            "{}: fractions sum to {total}",
            report.policy_label
        );
    }
}

#[test]
fn telemetry_agrees_with_kpi_counters() {
    let traces = fleet(30, 32, 11);
    let report = run(SimPolicy::Proactive(PolicyConfig::default()), &traces, 32);
    let window = report.telemetry.range(report.measure_from, report.end);
    let logins_avail = window
        .iter()
        .filter(|e| e.kind == TelemetryKind::Login { available: true })
        .count() as u64;
    let logins_unavail = window
        .iter()
        .filter(|e| e.kind == TelemetryKind::Login { available: false })
        .count() as u64;
    assert_eq!(report.kpi.logins_available, logins_avail);
    assert_eq!(report.kpi.logins_unavailable, logins_unavail);
    let pauses = window
        .iter()
        .filter(|e| e.kind == TelemetryKind::PhysicalPause)
        .count() as u64;
    assert_eq!(report.kpi.physical_pauses, pauses);
}

#[test]
fn proactive_workflow_rate_exceeds_reactive() {
    // §9.3: "the number of proactive resumes and physical pauses per
    // time interval is doubled by the proactive policy" — at minimum the
    // proactive policy must pause at least as often (it skips logical
    // pauses and goes straight to physical pause).
    let traces = fleet(60, 32, 13);
    let reactive = run(SimPolicy::Reactive, &traces, 32);
    let proactive = run(SimPolicy::Proactive(PolicyConfig::default()), &traces, 32);
    assert!(
        proactive.kpi.physical_pauses as f64 >= 1.2 * reactive.kpi.physical_pauses as f64,
        "proactive {} pauses vs reactive {}",
        proactive.kpi.physical_pauses,
        reactive.kpi.physical_pauses
    );
    assert!(proactive.kpi.proactive_resumes > 0);
    assert_eq!(reactive.kpi.proactive_resumes, 0);
}

#[test]
fn runs_are_reproducible() {
    let traces = fleet(25, 30, 21);
    let a = run(SimPolicy::Proactive(PolicyConfig::default()), &traces, 30);
    let b = run(SimPolicy::Proactive(PolicyConfig::default()), &traces, 30);
    assert_eq!(a.kpi, b.kpi);
    assert_eq!(a.telemetry.len(), b.telemetry.len());
    assert_eq!(a.resume_batches, b.resume_batches);
    assert_eq!(a.counters.len(), b.counters.len());
    for (x, y) in a.counters.iter().zip(&b.counters) {
        assert_eq!(x.logins_available, y.logins_available);
        assert_eq!(x.physical_pauses, y.physical_pauses);
    }
}

#[test]
fn history_sizes_stay_in_the_figure_10_regime() {
    let traces = fleet(80, 32, 5);
    let report = run(SimPolicy::Proactive(PolicyConfig::default()), &traces, 32);
    let max_tuples = report
        .history_stats
        .iter()
        .map(|s| s.tuples)
        .max()
        .unwrap_or(0);
    let mean_bytes: f64 = report
        .history_stats
        .iter()
        .map(|s| s.logical_bytes as f64)
        .sum::<f64>()
        / report.history_stats.len() as f64;
    // Paper: average within 7 KB, worst case within 74 KB (≈ 4 700
    // tuples).  Our synthetic month must stay inside the same regime.
    assert!(max_tuples < 4_700, "max {max_tuples} tuples");
    assert!(mean_bytes < 7.0 * 1024.0, "mean {mean_bytes} bytes");
}

#[test]
fn one_day_measurement_windows_work() {
    // Figure 7 measures single days; the KPI plumbing must support it.
    let traces = fleet(20, 30, 9);
    let config = SimConfig::builder(
        SimPolicy::Proactive(PolicyConfig::default()),
        Timestamp(0),
        Timestamp(29 * DAY),
        Timestamp(28 * DAY),
    )
    .node_capacity(30)
    .build()
    .expect("valid config");
    let report = Simulation::new(config, traces)
        .expect("valid config")
        .run()
        .expect("runs");
    let total = report.kpi.active_frac
        + report.kpi.saved_frac
        + report.kpi.unavailable_frac
        + report.kpi.idle_logical_frac
        + report.kpi.idle_proactive_correct_frac
        + report.kpi.idle_proactive_wrong_frac;
    assert!((total - 1.0).abs() < 1e-9);
}
