//! Differential tests: the SQL-driven stored procedures of
//! `prorp-sqlmini` (the executable specification transliterated from the
//! paper's listings) must agree exactly with the native fast paths in
//! `prorp-storage` / `prorp-forecast` that the policy engines run.

use proptest::prelude::*;
use prorp_forecast::ProbabilisticPredictor;
use prorp_sqlmini::{HistoryDb, PredictArgs};
use prorp_storage::HistoryTable;
use prorp_types::{EventKind, PolicyConfig, Seconds, Timestamp};

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

/// Build both representations from the same event list.
fn build_both(events: &[(i64, i64)]) -> (HistoryDb, HistoryTable) {
    let mut sql = HistoryDb::new();
    let mut native = HistoryTable::new();
    for &(ts, kind) in events {
        let sql_inserted = sql.insert_history(ts, kind).expect("sql insert");
        let native_inserted =
            native.insert_history(Timestamp(ts), EventKind::from_i32(kind as i32).unwrap());
        assert_eq!(sql_inserted, native_inserted, "insert guard at ts={ts}");
    }
    (sql, native)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2: the IF NOT EXISTS guard and final contents agree.
    #[test]
    fn insert_history_agrees(
        events in prop::collection::vec((0i64..40 * DAY, 0i64..2), 1..120)
    ) {
        let (mut sql, native) = build_both(&events);
        prop_assert_eq!(sql.count().unwrap() as usize, native.len());
    }

    /// Algorithm 3: old flag, deleted count, and survivors agree.
    #[test]
    fn delete_old_history_agrees(
        events in prop::collection::vec((0i64..60 * DAY, 0i64..2), 1..120),
        h_days in 1i64..40,
        now in 0i64..70 * DAY,
    ) {
        let (mut sql, mut native) = build_both(&events);
        let (sql_old, sql_deleted) = sql.delete_old_history(h_days, now).unwrap();
        let outcome = native.delete_old_history(Seconds::days(h_days), Timestamp(now));
        prop_assert_eq!(sql_old, outcome.old);
        prop_assert_eq!(sql_deleted, outcome.deleted);
        prop_assert_eq!(sql.count().unwrap() as usize, native.len());
    }

    /// Algorithm 4: prediction start, end, and confidence agree for the
    /// daily seasonality the SQL listing implements.
    #[test]
    fn predict_next_activity_agrees(
        // Sessions clustered around a daily hour with noise, so both
        // predictable and unpredictable histories are generated.
        base_hour in 0i64..24,
        jitter in prop::collection::vec(-2 * HOUR..2 * HOUR, 10),
        skip_mask in 0u16..1024,
        c in 0.05f64..0.9,
        w_hours in 1i64..8,
    ) {
        let mut events = Vec::new();
        for (d, j) in jitter.iter().enumerate() {
            if skip_mask & (1 << d) != 0 {
                continue;
            }
            let login = d as i64 * DAY + base_hour * HOUR + j;
            events.push((login, 1));
            events.push((login + 30 * 60, 0));
        }
        let (mut sql, native) = build_both(&events);
        let now = 10 * DAY;
        let sql_pred = sql
            .predict_next_activity(PredictArgs {
                h_days: 10,
                p_hours: 24,
                c,
                w_secs: w_hours * HOUR,
                s_secs: 5 * 60,
                now,
            })
            .unwrap();
        let config = PolicyConfig {
            history_len: Seconds::days(10),
            horizon: Seconds::days(1),
            confidence: c,
            window: Seconds::hours(w_hours),
            slide: Seconds::minutes(5),
            ..PolicyConfig::default()
        };
        let native_pred = ProbabilisticPredictor::new(config)
            .unwrap()
            .predict_at(&native, Timestamp(now));
        match (sql_pred, native_pred) {
            (None, None) => {}
            (Some((s, e, conf)), Some(p)) => {
                prop_assert_eq!(Timestamp(s), p.start);
                prop_assert_eq!(Timestamp(e), p.end);
                prop_assert!((conf - p.confidence).abs() < 1e-12);
            }
            (sql_pred, native_pred) => {
                prop_assert!(
                    false,
                    "disagreement: sql={sql_pred:?}, native={native_pred:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 5: the SQL `sys.databases` selection agrees with the
    /// native `MetadataStore`'s indexed scan under random fleet states.
    #[test]
    fn metadata_selection_agrees(
        rows in prop::collection::vec(
            (0u64..40, 0u8..3, prop::option::of(1i64..100_000)),
            1..60,
        ),
        now in 0i64..50_000,
        prewarm in 1i64..1_000,
        width in 1i64..1_000,
    ) {
        use prorp_sqlmini::MetadataDb;
        use prorp_storage::{DbMeta, MetadataStore};
        use prorp_types::{DatabaseId, DbState};

        let mut sql = MetadataDb::new();
        let mut native = MetadataStore::new();
        for (id, state, pred) in &rows {
            let state = match state {
                0 => DbState::Resumed,
                1 => DbState::LogicallyPaused,
                _ => DbState::PhysicallyPaused,
            };
            sql.upsert(*id, state, *pred).unwrap();
            native.upsert(
                DatabaseId(*id),
                DbMeta {
                    state,
                    pred_start: pred.map(Timestamp),
                },
            );
        }
        let sql_picked = sql.databases_to_resume(now, prewarm, width).unwrap();
        let native_picked: Vec<u64> = native
            .databases_to_resume_iter(Timestamp(now), Seconds(prewarm), Seconds(width))
            .map(|d| d.raw())
            .collect();
        // The native index orders by (pred_start, id); SQL orders by
        // pred_start with clustered-key ties — compare as sets plus size.
        let mut a = sql_picked.clone();
        let mut b = native_picked.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}

/// A deterministic spot check that both layers predict the same strict
/// daily pattern (guards against proptest shrinkage hiding regressions).
#[test]
fn strict_daily_pattern_spot_check() {
    let events: Vec<(i64, i64)> = (0..7)
        .flat_map(|d| [(d * DAY + 9 * HOUR, 1), (d * DAY + 10 * HOUR, 0)])
        .collect();
    let (mut sql, native) = build_both(&events);
    let now = 7 * DAY;
    let sql_pred = sql
        .predict_next_activity(PredictArgs {
            h_days: 7,
            p_hours: 24,
            c: 0.5,
            w_secs: 2 * HOUR,
            s_secs: 300,
            now,
        })
        .unwrap()
        .expect("pattern must be detected");
    let config = PolicyConfig {
        history_len: Seconds::days(7),
        confidence: 0.5,
        window: Seconds::hours(2),
        ..PolicyConfig::default()
    };
    let native_pred = ProbabilisticPredictor::new(config)
        .unwrap()
        .predict_at(&native, Timestamp(now))
        .expect("pattern must be detected");
    assert_eq!(Timestamp(sql_pred.0), native_pred.start);
    assert_eq!(Timestamp(sql_pred.1), native_pred.end);
    assert_eq!(sql_pred.2, 1.0);
    assert_eq!(native_pred.confidence, 1.0);
}
