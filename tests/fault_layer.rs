//! End-to-end behaviour of the fault-injected control plane: staged
//! resume workflows with retry/backoff and incident escalation, and the
//! predictor circuit breaker degrading the proactive fleet to reactive.

use prorp_sim::{SimConfig, SimPolicy, SimReport, Simulation};
use prorp_telemetry::IncidentKind;
use prorp_types::{BreakerConfig, PolicyConfig, RetryPolicy, Seconds, Timestamp, WorkflowStage};
use prorp_workload::{RegionName, RegionProfile, Trace};

const DAY: i64 = 86_400;

fn fleet(size: usize, seed: u64) -> Vec<Trace> {
    RegionProfile::for_region(RegionName::Eu1).generate_fleet(
        size,
        Timestamp(0),
        Timestamp(35 * DAY),
        seed,
    )
}

fn builder(policy: SimPolicy) -> prorp_sim::SimConfigBuilder {
    SimConfig::builder(
        policy,
        Timestamp(0),
        Timestamp(35 * DAY),
        Timestamp(30 * DAY),
    )
}

fn run(cfg: SimConfig, traces: Vec<Trace>) -> SimReport {
    Simulation::new(cfg, traces).unwrap().run().unwrap()
}

#[test]
fn tripped_breaker_fleet_bit_matches_the_reactive_fleet() {
    // Every prediction fails and the first failure opens a breaker that
    // never cools down inside the horizon: every proactive engine is
    // pinned to reactive behaviour, so the whole fleet's KPIs must be
    // bit-identical to a reactive run on the same traces — except the
    // forecast-failure count, which records the probes themselves.
    let traces = fleet(40, 11);
    let degraded = run(
        builder(SimPolicy::Proactive(PolicyConfig::default()))
            .forecast_fail_every(1)
            .breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown: Seconds::days(365),
            })
            .build()
            .unwrap(),
        traces.clone(),
    );
    let reactive = run(builder(SimPolicy::Reactive).build().unwrap(), traces);

    let mut kpi = degraded.kpi;
    assert!(kpi.forecast_failures > 0, "fault injection must bite");
    kpi.forecast_failures = reactive.kpi.forecast_failures;
    assert_eq!(kpi, reactive.kpi, "open breaker ⇒ reactive fleet");
    assert_eq!(degraded.kpi.proactive_resumes, 0);
    assert_eq!(
        degraded.workflow.stage_completions,
        reactive.workflow.stage_completions
    );
    assert_eq!(
        degraded.workflow.workflow_latency,
        reactive.workflow.workflow_latency
    );
    assert!(degraded.workflow.breaker_opens > 0, "breakers tripped");
    assert!(degraded.workflow.breaker_fallbacks > 0, "probes suppressed");
    assert_eq!(reactive.workflow.breaker_opens, 0);
}

#[test]
fn retry_exhaustion_escalates_incidents_end_to_end() {
    // Certain stage failure with a 2-attempt budget: every reactive
    // resume retries once, gives up, and escalates an incident that the
    // mitigation path force-completes.
    let traces = fleet(24, 5);
    let report = run(
        builder(SimPolicy::Reactive)
            .seed(3)
            .stage_failure_probabilities(1.0)
            .retry(RetryPolicy {
                max_attempts: 2,
                base_backoff: Seconds(15),
                max_backoff: Seconds::minutes(1),
            })
            .diagnostics_period(Seconds::minutes(5))
            .build()
            .unwrap(),
        traces,
    );
    assert!(report.giveups > 0, "certain failure must exhaust budgets");
    assert_eq!(report.workflow.giveups, report.giveups);
    assert!(report.workflow.retries >= report.giveups, "one retry each");
    // Every give-up is an incident, every incident is logged, and every
    // logged incident is a retry exhaustion on the first stage (the
    // workflow never gets past it).
    assert_eq!(report.incidents as usize, report.incident_log.len());
    assert!(report.incident_log.entries().iter().all(|e| e.kind
        == IncidentKind::RetryExhausted {
            stage: WorkflowStage::AllocateNode
        }));
    // No workflow ever completed all four stages.
    assert_eq!(report.workflow.stage_completions, [0, 0, 0, 0]);
    assert_eq!(report.workflow.workflow_latency.count(), 0);
}

#[test]
fn partial_stage_faults_degrade_qos_but_complete_workflows() {
    // A flaky warm-cache stage with a generous retry budget: workflows
    // complete (slower), QoS degrades relative to the fault-free run,
    // and the per-stage histograms show the stretched stage.
    let traces = fleet(32, 9);
    let clean = run(
        builder(SimPolicy::Reactive).build().unwrap(),
        traces.clone(),
    );
    let flaky = run(
        builder(SimPolicy::Reactive)
            .seed(21)
            .stage_failure_probability(WorkflowStage::WarmCache, 0.6)
            .retry(RetryPolicy {
                max_attempts: 6,
                base_backoff: Seconds(30),
                max_backoff: Seconds::minutes(5),
            })
            .build()
            .unwrap(),
        traces,
    );
    assert!(flaky.workflow.retries > 0);
    assert!(
        flaky.workflow.workflow_latency.count() > 0,
        "workflows still complete"
    );
    assert!(
        flaky.workflow.workflow_latency.mean_secs() > clean.workflow.workflow_latency.mean_secs(),
        "retries stretch the end-to-end resume latency"
    );
    let warm = WorkflowStage::WarmCache.index();
    let alloc = WorkflowStage::AllocateNode.index();
    assert!(
        flaky.workflow.stage_latency[warm].mean_secs()
            > flaky.workflow.stage_latency[alloc].mean_secs(),
        "the flaky stage dominates the per-stage histograms"
    );
    assert!(
        flaky.kpi.unavailable_frac >= clean.kpi.unavailable_frac,
        "customers wait out the retries"
    );
}
