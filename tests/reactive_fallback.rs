//! §3.2 "Default to Reactive Database-Scoped Decisions": when the
//! forecast component is down, the proactive engine must behave exactly
//! like the reactive baseline — same availability outcomes, same pause
//! cadence — and recover once the component comes back.  The predictor
//! circuit breaker hardens the same fallback: after repeated failures
//! the engine stops calling the predictor entirely (still bit-matching
//! reactive) and re-probes only after a cool-down.

use prorp_core::{
    DatabasePolicy, EngineAction, EngineEvent, ProactiveEngine, ReactiveEngine, TimerToken,
};
use prorp_forecast::{FailEvery, NeverPredictor, Predictor, ProbabilisticPredictor};
use prorp_storage::HistoryRead;
use prorp_types::{
    BreakerConfig, DbState, PolicyConfig, Prediction, ProrpError, Seconds, Timestamp,
};

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

/// Drive an engine through a session list, delivering its own timers,
/// and record `(login_ts, was_available)` plus the physical pause count.
fn drive(engine: &mut dyn DatabasePolicy, sessions: &[(i64, i64)]) -> (Vec<(i64, bool)>, u64) {
    let mut pending: Option<(Timestamp, TimerToken)> = None;
    let mut logins = Vec::new();
    for &(start, end) in sessions {
        // Deliver timers due before this session.
        while let Some((at, tok)) = pending {
            if at.as_secs() <= start {
                let acts = engine.on_event(at, EngineEvent::Timer(tok));
                pending = acts.iter().find_map(|a| match a {
                    EngineAction::ScheduleTimer(at, tok) => Some((*at, *tok)),
                    _ => None,
                });
            } else {
                break;
            }
        }
        let available = engine.state() != DbState::PhysicallyPaused;
        logins.push((start, available));
        engine.on_event(Timestamp(start), EngineEvent::ActivityStart);
        let acts = engine.on_event(Timestamp(end), EngineEvent::ActivityEnd);
        pending = acts.iter().find_map(|a| match a {
            EngineAction::ScheduleTimer(at, tok) => Some((*at, *tok)),
            _ => None,
        });
    }
    (logins, engine.counters().physical_pauses)
}

fn config() -> PolicyConfig {
    PolicyConfig::default()
}

/// A mixed schedule: daily mornings plus a few irregular sessions.
fn sessions() -> Vec<(i64, i64)> {
    let mut out = Vec::new();
    for d in 0..35 {
        out.push((d * DAY + 9 * HOUR, d * DAY + 11 * HOUR));
        if d % 5 == 2 {
            out.push((d * DAY + 20 * HOUR, d * DAY + 20 * HOUR + 900));
        }
    }
    out
}

#[test]
fn dead_forecast_equals_reactive_policy() {
    // Predictor that always fails.
    let mut proactive_dead =
        ProactiveEngine::new(config(), FailEvery::new(NeverPredictor, 1)).unwrap();
    let mut reactive = ReactiveEngine::new(Seconds::hours(7), Seconds::days(28)).unwrap();

    let (avail_dead, pauses_dead) = drive(&mut proactive_dead, &sessions());
    let (avail_reactive, pauses_reactive) = drive(&mut reactive, &sessions());

    assert_eq!(
        avail_dead, avail_reactive,
        "a dead forecast must reproduce the reactive availability outcomes"
    );
    assert_eq!(pauses_dead, pauses_reactive);
    assert!(
        proactive_dead.counters().forecast_failures > 0,
        "the failures must actually have been exercised"
    );
}

#[test]
fn healthy_forecast_beats_the_fallback() {
    let mut proactive =
        ProactiveEngine::new(config(), ProbabilisticPredictor::new(config()).unwrap()).unwrap();
    let mut reactive = ReactiveEngine::new(Seconds::hours(7), Seconds::days(28)).unwrap();
    // NOTE: no control plane here, so the proactive engine cannot be
    // pre-warmed; but it still pauses more precisely.  The interesting
    // comparison is that it never does *worse* than reactive on
    // availability for logins that reactive also serves.
    let (avail_pro, _) = drive(&mut proactive, &sessions());
    let (avail_re, _) = drive(&mut reactive, &sessions());
    let pro_avail = avail_pro.iter().filter(|(_, a)| *a).count();
    let re_avail = avail_re.iter().filter(|(_, a)| *a).count();
    // Without Algorithm 5 pre-warms the proactive engine pauses *more*
    // aggressively, so it may serve fewer logins from a warm state; the
    // engines must nonetheless process identical event streams without
    // error and count identical login totals.
    assert_eq!(avail_pro.len(), avail_re.len());
    assert!(pro_avail <= avail_pro.len() && re_avail <= avail_re.len());
    assert_eq!(proactive.counters().forecast_failures, 0);
}

/// Fails the first `n` predictions, then delegates to the inner
/// predictor — models a forecast component outage that ends.
struct FailFirst<P> {
    inner: P,
    remaining: u32,
}

impl<P: Predictor> Predictor for FailFirst<P> {
    fn predict(
        &mut self,
        history: &dyn HistoryRead,
        now: Timestamp,
    ) -> Result<Option<Prediction>, ProrpError> {
        if self.remaining > 0 {
            self.remaining -= 1;
            return Err(ProrpError::Forecast("component outage".into()));
        }
        self.inner.predict(history, now)
    }

    fn name(&self) -> &'static str {
        "fail-first"
    }
}

#[test]
fn open_breaker_bit_matches_the_reactive_baseline() {
    // Threshold 1 and an effectively infinite cool-down: the very first
    // forecast failure opens the breaker for the whole run.
    let breaker = BreakerConfig {
        failure_threshold: 1,
        cooldown: Seconds::days(365),
    };
    let mut degraded = ProactiveEngine::with_breaker(
        config(),
        FailEvery::new(ProbabilisticPredictor::new(config()).unwrap(), 1),
        breaker,
    )
    .unwrap();
    let mut reactive = ReactiveEngine::new(Seconds::hours(7), Seconds::days(28)).unwrap();

    let (avail_degraded, pauses_degraded) = drive(&mut degraded, &sessions());
    let (avail_reactive, pauses_reactive) = drive(&mut reactive, &sessions());

    assert_eq!(
        avail_degraded, avail_reactive,
        "an open breaker must reproduce reactive availability bit-for-bit"
    );
    assert_eq!(pauses_degraded, pauses_reactive);
    let c = degraded.counters();
    assert_eq!(c.predictions, 1, "only the opening probe ran");
    assert_eq!(c.forecast_failures, 1);
    assert_eq!(c.breaker_opens, 1);
    assert!(
        c.breaker_fallbacks > 0,
        "every later re-prediction short-circuited"
    );
    assert!(degraded.breaker_open(Timestamp(35 * DAY)));
}

#[test]
fn breaker_reprobes_after_cooldown_and_recovers() {
    // Five failures trip the threshold-2 breaker twice; after the
    // outage ends, the next half-open probe succeeds and the engine
    // returns to proactive behaviour.
    let breaker = BreakerConfig {
        failure_threshold: 2,
        cooldown: Seconds::hours(12),
    };
    let predictor = FailFirst {
        inner: ProbabilisticPredictor::new(config()).unwrap(),
        remaining: 5,
    };
    let mut engine = ProactiveEngine::with_breaker(config(), predictor, breaker).unwrap();
    let (logins, _) = drive(&mut engine, &sessions());
    assert_eq!(logins.len(), sessions().len());
    let c = engine.counters();
    assert_eq!(c.forecast_failures, 5, "the outage was fully consumed");
    assert!(c.breaker_opens >= 1, "the breaker must have tripped");
    assert!(
        c.breaker_fallbacks > 0,
        "open windows must have suppressed predictor calls"
    );
    assert!(
        c.predictions > c.forecast_failures,
        "post-outage probes must have succeeded"
    );
    assert!(
        !engine.breaker_open(Timestamp(35 * DAY)),
        "a successful probe closes the breaker"
    );
    assert!(
        engine.current_prediction().is_some() || !engine.forecast_unavailable(),
        "the engine is predicting again"
    );
}

#[test]
fn intermittent_failures_recover() {
    // Fail every third prediction: the engine must interleave reactive
    // fallbacks with proactive decisions and never get stuck.
    let predictor = FailEvery::new(ProbabilisticPredictor::new(config()).unwrap(), 3);
    let mut engine = ProactiveEngine::new(config(), predictor).unwrap();
    let (logins, pauses) = drive(&mut engine, &sessions());
    assert_eq!(logins.len(), sessions().len());
    assert!(pauses > 0);
    let c = engine.counters();
    assert!(c.forecast_failures > 0);
    assert!(
        c.predictions > c.forecast_failures,
        "some predictions must have succeeded"
    );
    // After the run the engine is in a coherent state.
    assert!(matches!(
        engine.state(),
        DbState::Resumed | DbState::LogicallyPaused | DbState::PhysicallyPaused
    ));
}
