//! Property-based fuzzing of the Algorithm 1 engine: arbitrary (but
//! time-ordered) event sequences — including stale timers, duplicate
//! logins, and mistimed pre-warms — must never panic, must keep the
//! lifecycle coherent, and must emit only well-formed actions.

use proptest::prelude::*;
use prorp_core::{
    DatabasePolicy, EngineAction, EngineEvent, ProactiveEngine, ReactiveEngine, TimerToken,
};
use prorp_forecast::{FailEvery, ProbabilisticPredictor};
use prorp_types::{DbState, PolicyConfig, Seconds, Timestamp};

#[derive(Clone, Debug)]
enum FuzzStep {
    /// Advance time and toggle activity (start if idle, end if active).
    ToggleActivity { advance_secs: i64 },
    /// Deliver the most recently scheduled timer (may be stale by now).
    DeliverPendingTimer { advance_secs: i64 },
    /// Deliver a forged timer token (never scheduled).
    DeliverBogusTimer { advance_secs: i64, token: u64 },
    /// Deliver a proactive resume regardless of state.
    ProactiveResume { advance_secs: i64 },
    /// Deliver a duplicate of the last activity edge.
    RepeatLastEdge { advance_secs: i64 },
}

fn step_strategy() -> impl Strategy<Value = FuzzStep> {
    let advance = 0i64..200_000;
    prop_oneof![
        4 => advance.clone().prop_map(|advance_secs| FuzzStep::ToggleActivity { advance_secs }),
        2 => advance.clone().prop_map(|advance_secs| FuzzStep::DeliverPendingTimer { advance_secs }),
        1 => (advance.clone(), 0u64..100)
            .prop_map(|(advance_secs, token)| FuzzStep::DeliverBogusTimer { advance_secs, token }),
        2 => advance.clone().prop_map(|advance_secs| FuzzStep::ProactiveResume { advance_secs }),
        1 => advance.prop_map(|advance_secs| FuzzStep::RepeatLastEdge { advance_secs }),
    ]
}

/// Drive an engine through the fuzz script, checking invariants after
/// every event.
fn drive(engine: &mut dyn DatabasePolicy, steps: &[FuzzStep]) -> Result<(), TestCaseError> {
    let mut now = Timestamp(0);
    let mut active = false;
    let mut pending_timer: Option<(Timestamp, TimerToken)> = None;
    let mut last_edge_was_start = false;
    let mut max_token_seen = 0u64;

    let check_actions = |now: Timestamp,
                         actions: &[EngineAction],
                         max_token_seen: &mut u64|
     -> Result<Option<(Timestamp, TimerToken)>, TestCaseError> {
        let mut scheduled = None;
        for a in actions {
            match a {
                EngineAction::ScheduleTimer(at, token) => {
                    prop_assert!(*at >= now, "timer {at:?} scheduled in the past of {now:?}");
                    prop_assert!(
                        token.0 > *max_token_seen,
                        "timer tokens must be fresh and increasing"
                    );
                    *max_token_seen = token.0;
                    prop_assert!(scheduled.is_none(), "at most one timer per event");
                    scheduled = Some((*at, *token));
                }
                EngineAction::Allocate
                | EngineAction::Reclaim
                | EngineAction::SetPredictedStart(_) => {}
            }
        }
        Ok(scheduled)
    };

    for step in steps {
        let (advance, event) = match *step {
            FuzzStep::ToggleActivity { advance_secs } => {
                let ev = if active {
                    EngineEvent::ActivityEnd
                } else {
                    EngineEvent::ActivityStart
                };
                (advance_secs, ev)
            }
            FuzzStep::DeliverPendingTimer { advance_secs } => match pending_timer {
                Some((_, token)) => (advance_secs, EngineEvent::Timer(token)),
                None => continue,
            },
            FuzzStep::DeliverBogusTimer {
                advance_secs,
                token,
            } => (advance_secs, EngineEvent::Timer(TimerToken(token))),
            FuzzStep::ProactiveResume { advance_secs } => {
                (advance_secs, EngineEvent::ProactiveResume)
            }
            FuzzStep::RepeatLastEdge { advance_secs } => {
                let ev = if last_edge_was_start {
                    EngineEvent::ActivityStart
                } else {
                    EngineEvent::ActivityEnd
                };
                (advance_secs, ev)
            }
        };
        now += Seconds(advance);
        let before = engine.counters();
        let actions = engine.on_event(now, event);
        if let Some(t) = check_actions(now, &actions, &mut max_token_seen)? {
            pending_timer = Some(t);
        }

        // Track ground truth.
        match event {
            EngineEvent::ActivityStart => {
                if !active {
                    active = true;
                    last_edge_was_start = true;
                    prop_assert_eq!(engine.state(), DbState::Resumed);
                }
            }
            EngineEvent::ActivityEnd => {
                if active {
                    active = false;
                    last_edge_was_start = false;
                    prop_assert_ne!(
                        engine.state(),
                        DbState::Resumed,
                        "idle database must not stay resumed"
                    );
                }
            }
            EngineEvent::Timer(_) | EngineEvent::ProactiveResume => {}
        }

        // Counters are monotone.
        let after = engine.counters();
        prop_assert!(after.logins_available >= before.logins_available);
        prop_assert!(after.logins_unavailable >= before.logins_unavailable);
        prop_assert!(after.physical_pauses >= before.physical_pauses);
        prop_assert!(after.predictions >= before.predictions);

        // While active, the engine must report Resumed.
        if active {
            prop_assert_eq!(engine.state(), DbState::Resumed);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn proactive_engine_survives_arbitrary_event_orderings(
        steps in prop::collection::vec(step_strategy(), 1..200)
    ) {
        let config = PolicyConfig {
            history_len: Seconds::days(5),
            ..PolicyConfig::default()
        };
        let mut engine = ProactiveEngine::new(
            config,
            ProbabilisticPredictor::new(config).unwrap(),
        )
        .unwrap();
        drive(&mut engine, &steps)?;
    }

    #[test]
    fn proactive_engine_with_flaky_forecast_survives(
        steps in prop::collection::vec(step_strategy(), 1..200),
        fail_period in 1u64..5,
    ) {
        let config = PolicyConfig {
            history_len: Seconds::days(5),
            ..PolicyConfig::default()
        };
        let predictor = FailEvery::new(ProbabilisticPredictor::new(config).unwrap(), fail_period);
        let mut engine = ProactiveEngine::new(config, predictor).unwrap();
        drive(&mut engine, &steps)?;
    }

    #[test]
    fn reactive_engine_survives_arbitrary_event_orderings(
        steps in prop::collection::vec(step_strategy(), 1..200)
    ) {
        let mut engine =
            ReactiveEngine::new(Seconds::hours(7), Seconds::days(28)).unwrap();
        drive(&mut engine, &steps)?;
    }
}
