//! Property-based fuzzing of the Algorithm 1 engine: arbitrary (but
//! time-ordered) event sequences — including stale timers, duplicate
//! logins, and mistimed pre-warms — must never panic, must keep the
//! lifecycle coherent, and must emit only well-formed actions.
//!
//! The second half fuzzes the §7 control-plane machinery in isolation:
//! the predictor circuit breaker against an independent spec-level model
//! of its open → half-open → close protocol, and the staged resume
//! workflow's retry path against the [`prorp_types::RetryPolicy`]
//! backoff contract under generated fault schedules.

use proptest::prelude::*;
use prorp_core::{
    CircuitBreaker, DatabasePolicy, EngineAction, EngineEvent, ProactiveEngine, ReactiveEngine,
    ResumeWorkflow, StageOutcome, TimerToken,
};
use prorp_forecast::{FailEvery, ProbabilisticPredictor};
use prorp_types::{
    BreakerConfig, DatabaseId, DbState, FaultConfig, PolicyConfig, RetryPolicy, Seconds, Timestamp,
    WorkflowStage,
};

#[derive(Clone, Debug)]
enum FuzzStep {
    /// Advance time and toggle activity (start if idle, end if active).
    ToggleActivity { advance_secs: i64 },
    /// Deliver the most recently scheduled timer (may be stale by now).
    DeliverPendingTimer { advance_secs: i64 },
    /// Deliver a forged timer token (never scheduled).
    DeliverBogusTimer { advance_secs: i64, token: u64 },
    /// Deliver a proactive resume regardless of state.
    ProactiveResume { advance_secs: i64 },
    /// Deliver an operator forced pause regardless of state.
    ForcedPause { advance_secs: i64 },
    /// Deliver a duplicate of the last activity edge.
    RepeatLastEdge { advance_secs: i64 },
}

fn step_strategy() -> impl Strategy<Value = FuzzStep> {
    let advance = 0i64..200_000;
    prop_oneof![
        4 => advance.clone().prop_map(|advance_secs| FuzzStep::ToggleActivity { advance_secs }),
        2 => advance.clone().prop_map(|advance_secs| FuzzStep::DeliverPendingTimer { advance_secs }),
        1 => (advance.clone(), 0u64..100)
            .prop_map(|(advance_secs, token)| FuzzStep::DeliverBogusTimer { advance_secs, token }),
        2 => advance.clone().prop_map(|advance_secs| FuzzStep::ProactiveResume { advance_secs }),
        1 => advance.clone().prop_map(|advance_secs| FuzzStep::ForcedPause { advance_secs }),
        1 => advance.prop_map(|advance_secs| FuzzStep::RepeatLastEdge { advance_secs }),
    ]
}

/// Drive an engine through the fuzz script, checking invariants after
/// every event.
fn drive(engine: &mut dyn DatabasePolicy, steps: &[FuzzStep]) -> Result<(), TestCaseError> {
    let mut now = Timestamp(0);
    let mut active = false;
    let mut pending_timer: Option<(Timestamp, TimerToken)> = None;
    let mut last_edge_was_start = false;
    let mut max_token_seen = 0u64;

    let check_actions = |now: Timestamp,
                         actions: &[EngineAction],
                         max_token_seen: &mut u64|
     -> Result<Option<(Timestamp, TimerToken)>, TestCaseError> {
        let mut scheduled = None;
        for a in actions {
            match a {
                EngineAction::ScheduleTimer(at, token) => {
                    prop_assert!(*at >= now, "timer {at:?} scheduled in the past of {now:?}");
                    prop_assert!(
                        token.0 > *max_token_seen,
                        "timer tokens must be fresh and increasing"
                    );
                    *max_token_seen = token.0;
                    prop_assert!(scheduled.is_none(), "at most one timer per event");
                    scheduled = Some((*at, *token));
                }
                EngineAction::Allocate
                | EngineAction::Reclaim
                | EngineAction::SetPredictedStart(_) => {}
            }
        }
        Ok(scheduled)
    };

    for step in steps {
        let (advance, event) = match *step {
            FuzzStep::ToggleActivity { advance_secs } => {
                let ev = if active {
                    EngineEvent::ActivityEnd
                } else {
                    EngineEvent::ActivityStart
                };
                (advance_secs, ev)
            }
            FuzzStep::DeliverPendingTimer { advance_secs } => match pending_timer {
                Some((_, token)) => (advance_secs, EngineEvent::Timer(token)),
                None => continue,
            },
            FuzzStep::DeliverBogusTimer {
                advance_secs,
                token,
            } => (advance_secs, EngineEvent::Timer(TimerToken(token))),
            FuzzStep::ProactiveResume { advance_secs } => {
                (advance_secs, EngineEvent::ProactiveResume)
            }
            FuzzStep::ForcedPause { advance_secs } => (advance_secs, EngineEvent::ForcedPause),
            FuzzStep::RepeatLastEdge { advance_secs } => {
                let ev = if last_edge_was_start {
                    EngineEvent::ActivityStart
                } else {
                    EngineEvent::ActivityEnd
                };
                (advance_secs, ev)
            }
        };
        now += Seconds(advance);
        let before = engine.counters();
        let actions = engine.on_event(now, event);
        if let Some(t) = check_actions(now, &actions, &mut max_token_seen)? {
            pending_timer = Some(t);
        }

        // Track ground truth.
        match event {
            EngineEvent::ActivityStart => {
                if !active {
                    active = true;
                    last_edge_was_start = true;
                    prop_assert_eq!(engine.state(), DbState::Resumed);
                }
            }
            EngineEvent::ActivityEnd => {
                if active {
                    active = false;
                    last_edge_was_start = false;
                    prop_assert_ne!(
                        engine.state(),
                        DbState::Resumed,
                        "idle database must not stay resumed"
                    );
                }
            }
            EngineEvent::Timer(_) | EngineEvent::ProactiveResume => {}
            EngineEvent::ForcedPause => {
                if !active {
                    prop_assert_eq!(
                        engine.state(),
                        DbState::PhysicallyPaused,
                        "forced pause on an idle database must reclaim it"
                    );
                } else {
                    prop_assert_eq!(
                        engine.state(),
                        DbState::Resumed,
                        "forced pause must be refused while serving"
                    );
                }
            }
        }

        // Counters are monotone.
        let after = engine.counters();
        prop_assert!(after.logins_available >= before.logins_available);
        prop_assert!(after.logins_unavailable >= before.logins_unavailable);
        prop_assert!(after.physical_pauses >= before.physical_pauses);
        prop_assert!(after.predictions >= before.predictions);

        // While active, the engine must report Resumed.
        if active {
            prop_assert_eq!(engine.state(), DbState::Resumed);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn proactive_engine_survives_arbitrary_event_orderings(
        steps in prop::collection::vec(step_strategy(), 1..200)
    ) {
        let config = PolicyConfig {
            history_len: Seconds::days(5),
            ..PolicyConfig::default()
        };
        let mut engine = ProactiveEngine::new(
            config,
            ProbabilisticPredictor::new(config).unwrap(),
        )
        .unwrap();
        drive(&mut engine, &steps)?;
    }

    #[test]
    fn proactive_engine_with_flaky_forecast_survives(
        steps in prop::collection::vec(step_strategy(), 1..200),
        fail_period in 1u64..5,
    ) {
        let config = PolicyConfig {
            history_len: Seconds::days(5),
            ..PolicyConfig::default()
        };
        let predictor = FailEvery::new(ProbabilisticPredictor::new(config).unwrap(), fail_period);
        let mut engine = ProactiveEngine::new(config, predictor).unwrap();
        drive(&mut engine, &steps)?;
    }

    #[test]
    fn reactive_engine_survives_arbitrary_event_orderings(
        steps in prop::collection::vec(step_strategy(), 1..200)
    ) {
        let mut engine =
            ReactiveEngine::new(Seconds::hours(7), Seconds::days(28)).unwrap();
        drive(&mut engine, &steps)?;
    }
}

/// Spec-level mirror of the breaker protocol, written from the §3.2
/// description rather than the implementation: closed while the failure
/// run is short, open for one cool-down once it reaches the threshold,
/// half-open exactly at the cool-down boundary, closed again on a
/// successful probe, re-opened for a fresh cool-down on a failed one.
#[derive(Clone, Copy, Debug)]
enum BreakerMode {
    Closed { run: u32 },
    Open { until: i64 },
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Drive a breaker through its own protocol (predictions attempted
    /// only when `allows` says so) with generated outcome schedules and
    /// check `allows` / `is_open` / `opens` against the model at every
    /// step — covering open → half-open → close and open → half-open →
    /// re-open transitions whenever the schedule produces them.
    #[test]
    fn breaker_follows_the_open_halfopen_close_protocol(
        threshold in 0u32..4,
        cooldown in 10i64..2_000,
        schedule in prop::collection::vec((0i64..5_000, any::<bool>()), 1..150),
    ) {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            cooldown: Seconds(cooldown),
        });
        let mut mode = BreakerMode::Closed { run: 0 };
        let mut model_opens = 0u64;
        let mut now = 0i64;
        for (advance, fail) in schedule {
            now += advance;
            let expect_allows = match mode {
                BreakerMode::Closed { .. } => true,
                BreakerMode::Open { until } => now >= until,
            };
            prop_assert_eq!(breaker.allows(Timestamp(now)), expect_allows);
            prop_assert_eq!(breaker.is_open(Timestamp(now)), !expect_allows);
            if !expect_allows {
                // The engine never invokes the predictor while open, so
                // neither does the fuzz driver.
                continue;
            }
            if fail {
                let opened = breaker.record_failure(Timestamp(now));
                match mode {
                    BreakerMode::Open { .. } => {
                        // A failed half-open probe re-opens immediately.
                        mode = BreakerMode::Open { until: now + cooldown };
                        model_opens += 1;
                        prop_assert!(opened, "failed probe must re-open");
                    }
                    BreakerMode::Closed { run } if threshold > 0 && run + 1 >= threshold => {
                        mode = BreakerMode::Open { until: now + cooldown };
                        model_opens += 1;
                        prop_assert!(opened, "threshold reached must open");
                    }
                    BreakerMode::Closed { run } => {
                        mode = BreakerMode::Closed {
                            run: if threshold == 0 { 0 } else { run + 1 },
                        };
                        prop_assert!(!opened);
                    }
                }
            } else {
                breaker.record_success();
                mode = BreakerMode::Closed { run: 0 };
            }
            prop_assert_eq!(breaker.opens(), model_opens);
        }
    }

    /// Drive a staged resume workflow to termination under a generated
    /// fault schedule and check the retry contract at every transition:
    /// stages advance strictly in order with attempts reset, attempt
    /// counts never exceed the budget, every retry lands after the
    /// stage's execution latency and within the capped backoff window,
    /// exhaustion reports exactly the budget — and the entire outcome
    /// sequence replays bit-identically from the same seed.
    #[test]
    fn workflow_retry_path_honours_the_fault_schedule(
        seed in any::<u64>(),
        db in 0u64..1_000,
        started in 0i64..100_000,
        move_penalty in 0i64..300,
        latencies in prop::collection::vec(1i64..120, 4),
        fail_pct in prop::collection::vec(0u32..101, 4),
        max_attempts in 1u32..6,
        base_backoff in 1i64..60,
        backoff_mult in 1i64..8,
    ) {
        let mut faults = FaultConfig::default();
        for (i, slot) in faults.stages.iter_mut().enumerate() {
            slot.latency = Seconds(latencies[i]);
            slot.failure_probability = f64::from(fail_pct[i]) / 100.0;
        }
        faults.retry = RetryPolicy {
            max_attempts,
            base_backoff: Seconds(base_backoff),
            max_backoff: Seconds(base_backoff * backoff_mult),
        };

        let run = |faults: &FaultConfig| -> Result<Vec<StageOutcome>, TestCaseError> {
            let mut wf = ResumeWorkflow::new(DatabaseId(db), Timestamp(started), Seconds(move_penalty));
            let mut now = wf.first_ready_at(faults);
            prop_assert_eq!(
                now,
                Timestamp(started) + Seconds(latencies[0]) + Seconds(move_penalty),
                "first stage carries the move penalty"
            );
            let mut outcomes = Vec::new();
            let mut executions = 0u32;
            loop {
                executions += 1;
                prop_assert!(
                    executions <= 4 * max_attempts,
                    "workflow must terminate within the attempt budget"
                );
                let stage = wf.stage();
                let attempt = wf.attempt();
                let outcome = wf.on_stage_executed(now, seed, faults);
                outcomes.push(outcome);
                match outcome {
                    StageOutcome::Completed { stage: done, next_ready_at, .. } => {
                        prop_assert_eq!(done, stage);
                        match next_ready_at {
                            Some(t) => {
                                prop_assert_eq!(wf.stage().index(), done.index() + 1);
                                prop_assert_eq!(wf.attempt(), 1, "attempts reset per stage");
                                prop_assert_eq!(
                                    t,
                                    now + Seconds(latencies[wf.stage().index()]),
                                    "next stage executes after its latency"
                                );
                                now = t;
                            }
                            None => {
                                prop_assert_eq!(done, WorkflowStage::MarkResumed);
                                return Ok(outcomes);
                            }
                        }
                    }
                    StageOutcome::Retry { stage: failed, attempt: next, ready_at } => {
                        prop_assert_eq!(failed, stage);
                        prop_assert_eq!(next, attempt + 1);
                        prop_assert!(next <= max_attempts, "retry beyond the budget");
                        // ready_at = now + equal-jitter backoff + stage
                        // latency (move penalty folded into the first
                        // stage), where the backoff never exceeds the cap.
                        let penalty = if stage == WorkflowStage::AllocateNode {
                            move_penalty
                        } else {
                            0
                        };
                        let latency = Seconds(latencies[stage.index()] + penalty);
                        prop_assert!(
                            ready_at >= now + latency,
                            "retry cannot finish before the stage executes"
                        );
                        prop_assert!(
                            ready_at <= now + latency + Seconds(base_backoff * backoff_mult).max(Seconds(1)),
                            "backoff exceeded its cap"
                        );
                        now = ready_at;
                    }
                    StageOutcome::Exhausted { stage: dead, attempts } => {
                        prop_assert_eq!(dead, stage);
                        prop_assert_eq!(
                            attempts, max_attempts,
                            "exhaustion must spend the whole budget"
                        );
                        return Ok(outcomes);
                    }
                }
            }
        };

        let first = run(&faults)?;
        let second = run(&faults)?;
        prop_assert_eq!(first, second, "fault draws must be deterministic");
    }

    /// Metamorphic identity: with every failure probability at zero the
    /// workflow completes in exactly four executions, never retries, and
    /// finishes at `started + move_penalty + Σ stage latencies`.
    #[test]
    fn fault_free_workflow_completes_on_schedule(
        seed in any::<u64>(),
        db in 0u64..1_000,
        started in 0i64..100_000,
        move_penalty in 0i64..300,
        latencies in prop::collection::vec(1i64..120, 4),
    ) {
        let mut faults = FaultConfig::default();
        for (i, slot) in faults.stages.iter_mut().enumerate() {
            slot.latency = Seconds(latencies[i]);
            slot.failure_probability = 0.0;
        }
        let mut wf = ResumeWorkflow::new(DatabaseId(db), Timestamp(started), Seconds(move_penalty));
        let mut now = wf.first_ready_at(&faults);
        let mut completions = 0;
        loop {
            match wf.on_stage_executed(now, seed, &faults) {
                StageOutcome::Completed { next_ready_at: Some(t), .. } => {
                    completions += 1;
                    now = t;
                }
                StageOutcome::Completed { next_ready_at: None, .. } => {
                    completions += 1;
                    break;
                }
                other => prop_assert!(false, "fault-free run produced {other:?}"),
            }
        }
        prop_assert_eq!(completions, 4);
        prop_assert_eq!(wf.total_retries(), 0);
        let total: i64 = latencies.iter().sum();
        prop_assert_eq!(now, Timestamp(started) + Seconds(move_penalty) + Seconds(total));
    }
}

/// Deterministic spot check pinning one full breaker cycle — open on the
/// second failure, half-open probe that fails and re-opens, then a
/// successful probe that closes — so a strategy change can never silently
/// stop covering the three-state walk.
#[test]
fn breaker_full_cycle_spot_check() {
    let mut b = CircuitBreaker::new(BreakerConfig {
        failure_threshold: 2,
        cooldown: Seconds(100),
    });
    assert!(!b.record_failure(Timestamp(0)));
    assert!(b.record_failure(Timestamp(10)), "second failure opens");
    assert!(b.is_open(Timestamp(109)));
    assert!(b.allows(Timestamp(110)), "half-open at the cool-down");
    assert!(b.record_failure(Timestamp(110)), "failed probe re-opens");
    assert!(b.is_open(Timestamp(209)));
    assert!(b.allows(Timestamp(210)));
    b.record_success();
    assert!(!b.is_open(Timestamp(211)));
    assert_eq!(b.opens(), 2);
}
