//! Sharded-simulation determinism: the merged report of an N-shard run
//! must be bit-identical (KPIs, batch series, counts, workflow stats,
//! incident log) to the single-threaded run on the same seed, and the
//! id-hash partitioning must cover every database exactly once.

use prorp_core::EngineCounters;
use prorp_obs::{snapshots_jsonl, trace_jsonl};
use prorp_sim::{
    partition_fleet, ObsConfig, SimConfig, SimPolicy, SimReport, Simulation, TelemetryMode,
};
use prorp_types::{BreakerConfig, PolicyConfig, RetryPolicy, Seconds, Timestamp};
use prorp_workload::{LazyFleet, RegionName, RegionProfile, Trace};
use std::collections::HashSet;

const DAY: i64 = 86_400;

fn fleet(size: usize) -> Vec<Trace> {
    RegionProfile::for_region(RegionName::Eu1).generate_fleet(
        size,
        Timestamp(0),
        Timestamp(35 * DAY),
        21,
    )
}

/// Engine counters with the wall-clock prediction-overhead fields zeroed:
/// those measure real elapsed nanoseconds and differ between any two runs
/// (sharded or not); every logical counter must still match exactly.
fn logical(counters: &[EngineCounters]) -> Vec<EngineCounters> {
    counters
        .iter()
        .map(|c| EngineCounters {
            prediction_ns_sum: 0,
            prediction_ns_max: 0,
            ..*c
        })
        .collect()
}

fn run_with_shards(policy: SimPolicy, traces: Vec<Trace>, shards: usize) -> SimReport {
    let cfg = SimConfig::builder(
        policy,
        Timestamp(0),
        Timestamp(35 * DAY),
        Timestamp(30 * DAY),
    )
    .shards(shards)
    .build()
    .unwrap();
    Simulation::new(cfg, traces).unwrap().run().unwrap()
}

#[test]
fn same_seed_yields_identical_kpis_for_1_2_and_8_shards() {
    let traces = fleet(48);
    let baseline = run_with_shards(
        SimPolicy::Proactive(PolicyConfig::default()),
        traces.clone(),
        1,
    );
    assert_eq!(baseline.shard_counters.len(), 1);
    for shards in [2usize, 8] {
        let sharded = run_with_shards(
            SimPolicy::Proactive(PolicyConfig::default()),
            traces.clone(),
            shards,
        );
        // KpiReport is Copy + PartialEq over raw counts and f64
        // fractions: equality here means bit-identical KPIs.
        assert_eq!(sharded.kpi, baseline.kpi, "{shards} shards");
        assert_eq!(sharded.resume_batches, baseline.resume_batches);
        assert_eq!(sharded.telemetry.len(), baseline.telemetry.len());
        assert_eq!(sharded.telemetry.counts(), baseline.telemetry.counts());
        assert_eq!(
            logical(&sharded.counters),
            logical(&baseline.counters),
            "input-trace order"
        );
        assert_eq!(sharded.history_stats, baseline.history_stats);
        assert_eq!(sharded.workflow, baseline.workflow);
        assert_eq!(
            sharded.incident_log.entries(),
            baseline.incident_log.entries()
        );
        assert_eq!(sharded.spill_moves, baseline.spill_moves);
        assert_eq!(sharded.oversubscriptions, baseline.oversubscriptions);
        assert_eq!(sharded.maintenance, baseline.maintenance);
        assert_eq!(sharded.shard_counters.len(), shards);
        let worked: usize = sharded.shard_counters.iter().map(|c| c.databases).sum();
        assert_eq!(worked, traces.len());
    }
}

#[test]
fn sharding_is_deterministic_under_fault_injection() {
    // The stateless per-(seed, db, timestamp) fault draw must make stuck
    // workflows independent of the shard layout.
    let traces = fleet(32);
    let mut reports = Vec::new();
    for shards in [1usize, 4] {
        let cfg = SimConfig::builder(
            SimPolicy::Reactive,
            Timestamp(0),
            Timestamp(35 * DAY),
            Timestamp(30 * DAY),
        )
        .shards(shards)
        .stuck_probability(0.5)
        .seed(7)
        .diagnostics_period(Seconds::minutes(10))
        .build()
        .unwrap();
        reports.push(Simulation::new(cfg, traces.clone()).unwrap().run().unwrap());
    }
    assert_eq!(reports[0].kpi, reports[1].kpi);
    assert_eq!(reports[0].mitigations, reports[1].mitigations);
    assert_eq!(reports[0].incidents, reports[1].incidents);
    assert!(reports[0].mitigations > 0, "fault injection must bite");
}

#[test]
fn stage_faults_and_incident_logs_are_shard_invariant() {
    // Nonzero stage-failure probability: retries, backoff jitter, retry
    // exhaustion, and incident escalation must all come out of stateless
    // per-key draws, so KPIs, workflow stats (per-stage histograms,
    // retry/giveup counters), and the canonical incident log are
    // bit-identical at 1, 2, and 8 shards.
    let traces = fleet(48);
    let build = |shards: usize| {
        SimConfig::builder(
            SimPolicy::Reactive,
            Timestamp(0),
            Timestamp(35 * DAY),
            Timestamp(30 * DAY),
        )
        .shards(shards)
        .seed(13)
        .stage_failure_probabilities(0.35)
        .retry(RetryPolicy {
            max_attempts: 2,
            base_backoff: Seconds(20),
            max_backoff: Seconds::minutes(2),
        })
        .diagnostics_period(Seconds::minutes(10))
        .build()
        .unwrap()
    };
    let baseline = Simulation::new(build(1), traces.clone())
        .unwrap()
        .run()
        .unwrap();
    assert!(baseline.workflow.retries > 0, "faults must force retries");
    assert!(baseline.giveups > 0, "some budgets must exhaust");
    assert_eq!(
        baseline.incidents as usize,
        baseline.incident_log.len(),
        "every escalation is logged"
    );
    for shards in [2usize, 8] {
        let sharded = Simulation::new(build(shards), traces.clone())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(sharded.kpi, baseline.kpi, "{shards} shards");
        assert_eq!(sharded.workflow, baseline.workflow, "{shards} shards");
        assert_eq!(sharded.giveups, baseline.giveups);
        assert_eq!(sharded.mitigations, baseline.mitigations);
        assert_eq!(sharded.incidents, baseline.incidents);
        assert_eq!(
            sharded.incident_log.entries(),
            baseline.incident_log.entries(),
            "{shards} shards: canonical incident order"
        );
    }
}

#[test]
fn observability_streams_are_byte_identical_across_shard_layouts() {
    // The observability layer promises the same determinism contract as
    // the KPI surface: the JSONL trace and the deterministic snapshot
    // series must come out byte-for-byte identical at 1, 2, and 8
    // shards.  The fault plan mirrors what the testkit generates —
    // flaky stages with a retry budget, forecast faults tripping the
    // circuit breaker, and stuck workflows swept by diagnostics — so
    // every span kind shows up in the compared trace.
    let traces = fleet(32);
    let run = |shards: usize| {
        let cfg = SimConfig::builder(
            SimPolicy::Proactive(PolicyConfig::default()),
            Timestamp(0),
            Timestamp(35 * DAY),
            Timestamp(30 * DAY),
        )
        .shards(shards)
        .seed(23)
        .stage_failure_probabilities(0.3)
        .retry(RetryPolicy {
            max_attempts: 2,
            base_backoff: Seconds(20),
            max_backoff: Seconds::minutes(2),
        })
        .breaker(BreakerConfig {
            failure_threshold: 2,
            cooldown: Seconds::minutes(45),
        })
        .forecast_fail_every(3)
        .stuck_probability(0.05)
        .diagnostics_period(Seconds::minutes(10))
        .observe(ObsConfig::with_snapshots(Seconds::days(7)))
        .build()
        .unwrap();
        let report = Simulation::new(cfg, traces.clone()).unwrap().run().unwrap();
        let obs = report.obs.expect("observability was enabled");
        (trace_jsonl(&obs.trace), snapshots_jsonl(&obs.snapshots))
    };
    let (trace_1, snaps_1) = run(1);
    assert!(
        trace_1.lines().count() > 1_000,
        "the fault plan must produce a rich trace, got {} records",
        trace_1.lines().count()
    );
    assert_eq!(
        snaps_1.lines().count(),
        5,
        "7-day period over 35 days: four mid-run snapshots plus the final one"
    );
    for shards in [2usize, 8] {
        let (trace_n, snaps_n) = run(shards);
        assert_eq!(trace_n, trace_1, "{shards}-shard trace bytes");
        assert_eq!(snaps_n, snaps_1, "{shards}-shard snapshot bytes");
    }
}

#[test]
fn partitioning_covers_every_database_exactly_once() {
    let traces = fleet(200);
    for shards in [1usize, 2, 3, 8, 16] {
        let parts = partition_fleet(&traces, shards);
        assert_eq!(parts.len(), shards);
        let mut seen = HashSet::new();
        for (s, part) in parts.iter().enumerate() {
            for &i in part {
                assert_eq!(traces[i].db.shard_of(shards), s, "stable assignment");
                assert!(seen.insert(i), "trace {i} assigned twice ({shards} shards)");
            }
        }
        assert_eq!(seen.len(), traces.len(), "{shards} shards must cover all");
    }
}

#[test]
fn partitioning_edge_cases_are_well_formed() {
    // Empty fleet: every shard exists and owns nothing.
    let parts = partition_fleet(&[], 4);
    assert_eq!(parts.len(), 4);
    assert!(parts.iter().all(Vec::is_empty));

    // Single database: exactly one shard owns exactly that trace, at any
    // shard count.
    let one = fleet(1);
    for shards in [1usize, 2, 16] {
        let parts = partition_fleet(&one, shards);
        assert_eq!(parts.len(), shards);
        let owned: Vec<usize> = parts.iter().flatten().copied().collect();
        assert_eq!(owned, vec![0], "{shards} shards");
        assert_eq!(parts[one[0].db.shard_of(shards)], vec![0]);
    }

    // More shards than databases: all traces covered once, the rest of
    // the shards empty.
    let five = fleet(5);
    let parts = partition_fleet(&five, 16);
    let total: usize = parts.iter().map(Vec::len).sum();
    assert_eq!(total, 5);
    assert!(parts.iter().filter(|p| p.is_empty()).count() >= 11);
}

#[test]
fn streamed_run_matches_materialised_run_bit_for_bit() {
    // A LazyFleet re-derives each database's RNG sub-stream on demand,
    // and run_streamed has each shard generate only its own partition —
    // the merged report must still equal the Vec<Trace> path exactly.
    let profile = RegionProfile::for_region(RegionName::Eu1);
    let lazy = LazyFleet::new(profile, 48, Timestamp(0), Timestamp(35 * DAY), 21);
    let traces = fleet(48);
    for shards in [1usize, 4] {
        let build = || {
            SimConfig::builder(
                SimPolicy::Proactive(PolicyConfig::default()),
                Timestamp(0),
                Timestamp(35 * DAY),
                Timestamp(30 * DAY),
            )
            .shards(shards)
            .build()
            .unwrap()
        };
        let materialised = Simulation::new(build(), traces.clone())
            .unwrap()
            .run()
            .unwrap();
        let streamed = Simulation::run_streamed(build(), &lazy).unwrap();
        assert_eq!(streamed.kpi, materialised.kpi, "{shards} shards");
        assert_eq!(streamed.resume_batches, materialised.resume_batches);
        assert_eq!(
            streamed.telemetry.events(),
            materialised.telemetry.events(),
            "{shards} shards: merged telemetry logs"
        );
        assert_eq!(
            logical(&streamed.counters),
            logical(&materialised.counters),
            "{shards} shards: input-trace order"
        );
        assert_eq!(streamed.history_stats, materialised.history_stats);
        assert_eq!(streamed.workflow, materialised.workflow);
    }
}

#[test]
fn summary_telemetry_mode_preserves_kpis_and_label_counts() {
    // Summary mode skips materialising the merged per-event log; KPIs
    // and the per-label summary must be identical to Full mode.
    let traces = fleet(48);
    let build = |mode: TelemetryMode| {
        SimConfig::builder(
            SimPolicy::Proactive(PolicyConfig::default()),
            Timestamp(0),
            Timestamp(35 * DAY),
            Timestamp(30 * DAY),
        )
        .shards(2)
        .telemetry_mode(mode)
        .build()
        .unwrap()
    };
    let full = Simulation::new(build(TelemetryMode::Full), traces.clone())
        .unwrap()
        .run()
        .unwrap();
    let summary = Simulation::new(build(TelemetryMode::Summary), traces)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(summary.kpi, full.kpi);
    assert_eq!(summary.resume_batches, full.resume_batches);
    assert!(summary.telemetry.is_empty(), "Summary keeps no event log");
    assert!(!full.telemetry.is_empty());
    // Both modes fold the same per-label counts out of the stream.
    assert_eq!(summary.telemetry_summary, full.telemetry_summary);
    assert_eq!(full.telemetry_summary.total(), full.telemetry.len() as u64);
    for (label, count) in full.telemetry.counts() {
        assert_eq!(
            summary.telemetry_summary.count(label),
            count as u64,
            "label {label}"
        );
    }
}

#[test]
fn empty_shards_do_not_skew_merged_kpis() {
    // More shards than databases: several shards own zero databases.
    // Their (empty) outcomes must contribute nothing — the merged KPI
    // fractions come from summed segment totals, not per-shard ratios.
    let traces = fleet(5);
    let baseline = run_with_shards(
        SimPolicy::Proactive(PolicyConfig::default()),
        traces.clone(),
        1,
    );
    let sharded = run_with_shards(SimPolicy::Proactive(PolicyConfig::default()), traces, 16);
    assert_eq!(sharded.shard_counters.len(), 16);
    assert!(
        sharded.shard_counters.iter().any(|c| c.databases == 0),
        "test needs at least one empty shard"
    );
    assert_eq!(sharded.kpi, baseline.kpi);
    assert_eq!(sharded.kpi.qos_pct(), baseline.kpi.qos_pct());
    assert_eq!(sharded.resume_batches, baseline.resume_batches);
}
