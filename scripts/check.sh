#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before it ships.
#
#   ./scripts/check.sh
#
# Runs, in order: the feature-matrix builds (no default features, the
# default release build, and all features so `strict-invariants` and the
# observability layer compile together), the full test suite, the golden
# snapshot checks (bit-stable simulator output; re-record intentional
# changes with scripts/bless.sh), the `prorp-trace` CLI against the
# golden trace, the control-plane server replay gate (live ≡ DES over
# HTTP), the machine-readable fleet-composition export, clippy
# (warnings are errors), rustdoc (warnings are errors), and the
# formatting check.  Fails fast on the first broken step.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

# Feature matrix: every combination a downstream crate can select.
run cargo build --workspace --no-default-features
run cargo build --release
run cargo build --workspace --all-features

run cargo test -q
run env BLESS=0 cargo test -q -p testkit --test golden_kpis
run env BLESS=0 cargo test -q -p testkit --test obs_conformance

# The incremental prediction index must stay bit-identical to the naive
# Algorithm 4 scan (single-table interleavings, whole-fleet reports, and
# shard invariance with the index enabled).
run cargo test -q -p testkit --test prediction_index

# The LSM backend must stay observationally identical to the B+Tree
# behind the HistoryStore seam (op interleavings, fleet differentials,
# shard invariance, span traces, and time-travel reproduction).
run cargo test -q -p testkit --test storage_conformance

# The trace-query CLI must keep parsing the pinned trace format.
run cargo run --release -q -p prorp-obs --bin prorp-trace -- \
    tests/goldens/trace_small.jsonl summary
run cargo run --release -q -p prorp-obs --bin prorp-trace -- \
    tests/goldens/trace_small.jsonl qos-misses 5
run cargo run --release -q -p prorp-obs --bin prorp-trace -- \
    tests/goldens/trace_small.jsonl time-travel 7 200000
run cargo run --release -q -p prorp-obs --bin prorp-trace -- \
    tests/goldens/trace_decisions_small.jsonl why 2 209053

# Control-plane service mode: boot the virtual-clock server, replay the
# golden event stream through the real HTTP API, and let the binary
# assert the live report is bit-identical to the DES over the same
# stream.  The canonical decision rendering is then diffed against the
# checked-in golden (re-record intentional drift with scripts/bless.sh).
echo "==> prorp-server golden (live ≡ DES over HTTP)"
cargo run --release -q -p prorp-server --bin prorp-server -- \
    golden --trace tests/goldens/event_stream_small.jsonl \
    --end 259200 --policy proactive --shards 2 --step 21600 \
    > target/server_replay.txt
run diff -u tests/goldens/server_replay.txt target/server_replay.txt

# Machine-readable fleet composition for downstream tooling.
run cargo run --release -q -p prorp-bench --bin fleet_report -- \
    --json results/BENCH_fleet.json

# Prediction-index A/B in smoke mode: asserts naive ≡ incremental on
# every timed case and records the speedups (timings vary run to run;
# scripts/bless.sh re-records the full-scale numbers).
run cargo run --release -q -p prorp-bench --bin predict_bench -- \
    --smoke --json results/BENCH_predict.json

# Scale sweep in smoke mode: asserts streamed ≡ materialised, KPI
# shard-invariance, and the observability overhead gate (rollup-only
# obs must leave KPIs bit-identical and cost < 2% wall time) on a tiny
# fleet (the committed full-scale numbers in results/BENCH_scale.json
# come from scripts/bless.sh).  The smoke JSON is a scratch artefact —
# only the assertions matter here.
run cargo run --release -q -p prorp-bench --bin scale_bench -- \
    --smoke --json target/scale_smoke.json

# Observability throughput in smoke mode: asserts sketch merge ≡ pooled
# observation and the 8-way SLO rollup shard split ≡ single-series
# ingest (the committed full-scale numbers in results/BENCH_obs.json
# come from scripts/bless.sh).
run cargo run --release -q -p prorp-bench --bin obs_bench -- \
    --smoke --json target/obs_smoke.json

# Storage-backend A/B in smoke mode, under BOTH LSM compaction modes:
# asserts btree ≡ lsm fleet KPIs, checksummed window-scan agreement,
# flat range-tombstone trim cost, and — in background mode — a
# stall-free event-loop path (the committed full-scale numbers in
# results/BENCH_storage.json come from scripts/bless.sh).
run cargo run --release -q -p prorp-bench --bin storage_bench -- \
    --smoke --compaction deterministic --json target/storage_smoke.json
run cargo run --release -q -p prorp-bench --bin storage_bench -- \
    --smoke --compaction background --json target/storage_smoke_bg.json

# Hand-rolled multi-thread stress of the compaction scheduler: pinned
# snapshots stay exact while a real worker compacts underneath them,
# and many stores share one scheduler without cross-talk.
run cargo test -q -p prorp-storage --features shuttle-compaction \
    --test shuttle_compaction

run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
run cargo fmt --check

echo "==> all checks passed"
