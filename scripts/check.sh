#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before it ships.
#
#   ./scripts/check.sh
#
# Runs, in order: release build, the full test suite, the golden KPI
# snapshot check (bit-stable simulator output; re-record intentional
# changes with scripts/bless.sh), clippy (warnings are errors), rustdoc
# (warnings are errors), and the formatting check.  Fails fast on the
# first broken step.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q
run env BLESS=0 cargo test -q -p testkit --test golden_kpis
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
run cargo fmt --check

echo "==> all checks passed"
