#!/usr/bin/env bash
# Pre-PR gate: everything a change must pass before it ships.
#
#   ./scripts/check.sh
#
# Runs, in order: release build, the full test suite, clippy (warnings
# are errors), rustdoc (warnings are errors), and the formatting check.
# Fails fast on the first broken step.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q
run cargo clippy --workspace --all-targets -- -D warnings
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
run cargo fmt --check

echo "==> all checks passed"
