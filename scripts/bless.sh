#!/usr/bin/env bash
# Re-record the golden KPI snapshots in tests/goldens/ after an
# *intentional* change to simulator semantics.
#
#   ./scripts/bless.sh
#
# Runs the testkit golden suite with BLESS=1 so every matrix case
# rewrites its snapshot, then prints the resulting diff for review.
# Treat that diff like any other code change: every drifted number
# needs an explanation in the PR.

set -euo pipefail
cd "$(dirname "$0")/.."

BLESS=1 cargo test -q -p testkit --test golden_kpis
BLESS=1 cargo test -q -p testkit --test obs_conformance

# Re-record the control-plane replay golden.  The `golden` subcommand
# itself asserts live ≡ DES before printing anything, so a blessed file
# is always an agreed-upon rendering, never a one-sided snapshot.
cargo run --release -q -p prorp-server --bin prorp-server -- \
    golden --trace tests/goldens/event_stream_small.jsonl \
    --end 259200 --policy proactive --shards 2 --step 21600 \
    > tests/goldens/server_replay.txt

# Re-record the full-scale prediction-index A/B numbers alongside the
# goldens (timings are machine-dependent; the committed file documents a
# representative run, the smoke run in check.sh guards the equivalence).
cargo run --release -q -p prorp-bench --bin predict_bench -- \
    --json results/BENCH_predict.json

# Re-record the million-database scale sweep (10k/100k/1m × 1/4/16
# shards; several minutes of wall time at the top end).  As above:
# timings and RSS are machine-dependent snapshots, the shard-invariance
# and streamed-vs-materialised assertions are the guarantees.
cargo run --release -q -p prorp-bench --bin scale_bench -- \
    --json results/BENCH_scale.json

# Re-record the observability throughput numbers (sketch insert/merge
# rates, SLO rollup events/sec at 1M databases).  The merge ≡ pooled
# and shard-split ≡ single-series gates inside the binary are the
# guarantees; the rates are a representative snapshot.
cargo run --release -q -p prorp-bench --bin obs_bench -- \
    --json results/BENCH_obs.json

# Re-record the storage-backend A/B (write amplification + window-scan
# latency for btree and lsm).  The equality gate and checksum
# assertions inside the binary are the guarantees; the timings are a
# representative snapshot.
cargo run --release -q -p prorp-bench --bin storage_bench -- \
    --json results/BENCH_storage.json

echo "==> goldens re-blessed; review the drift:"
git --no-pager diff --stat -- tests/goldens/ results/
