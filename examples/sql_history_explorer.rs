//! The SQL face of ProRP: drive the paper's stored procedures
//! (Algorithms 2–4) and ad-hoc queries through the `prorp-sqlmini`
//! engine, exactly as §5 describes the history store being used.
//!
//! ```text
//! cargo run --release -p prorp-bench --example sql_history_explorer
//! ```

use prorp_sqlmini::{HistoryDb, Params, PredictArgs};

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn main() {
    let mut db = HistoryDb::new();

    // Five weeks of a daily 09:00-10:30 pattern, tracked through
    // sys.InsertHistory (Algorithm 2).
    for d in 0..35 {
        let login = d * DAY + 9 * HOUR;
        assert!(db.insert_history(login, 1).expect("insert"));
        assert!(db.insert_history(login + 90 * 60, 0).expect("insert"));
    }
    // The IF NOT EXISTS guard silently swallows duplicate timestamps.
    assert!(!db.insert_history(9 * HOUR, 1).expect("insert"));
    println!(
        "history after 35 days: {} tuples (duplicates suppressed by Algorithm 2)",
        db.count().expect("count")
    );

    // Algorithm 3: trim to the 28-day retention window, keeping the
    // oldest tuple so the lifespan stays known.
    let now = 35 * DAY;
    let (old, deleted) = db.delete_old_history(28, now).expect("delete");
    println!("DeleteOldHistory(h = 28 d): old = {old}, deleted = {deleted} tuples");

    // Ad-hoc SQL over the same table — the §5 customer view.
    let rs = db
        .database_mut()
        .run(
            "SELECT MIN(time_snapshot), MAX(time_snapshot), COUNT(*)
             FROM sys.pause_resume_history WHERE event_type = 1",
            &Params::new(),
        )
        .expect("query")
        .result
        .expect("rows");
    println!(
        "logins: first = {:?}, last = {:?}, count = {:?}",
        rs.rows[0][0], rs.rows[0][1], rs.rows[0][2]
    );

    let rs = db
        .database_mut()
        .run(
            "SELECT time_snapshot, event_type FROM sys.pause_resume_history
             ORDER BY time_snapshot DESC LIMIT 4",
            &Params::new(),
        )
        .expect("query")
        .result
        .expect("rows");
    println!("most recent events (ORDER BY ... DESC LIMIT 4):");
    for row in &rs.rows {
        let ts = row[0].expect("not null");
        let kind = if row[1] == Some(1) { "start" } else { "end" };
        println!(
            "  day {:>2} {:02}:{:02}  {kind}",
            ts / DAY,
            (ts % DAY) / HOUR,
            (ts % HOUR) / 60
        );
    }

    // EXPLAIN shows the clustered-index range plan behind the queries.
    let plan = db
        .database_mut()
        .explain(
            "SELECT MIN(time_snapshot) FROM sys.pause_resume_history
             WHERE event_type = 1 AND time_snapshot >= 600000 AND time_snapshot <= 900000",
            &Params::new(),
        )
        .expect("explain");
    println!("EXPLAIN:\n{plan}");

    // Algorithm 4 through SQL: predict tomorrow's activity.
    let pred = db
        .predict_next_activity(PredictArgs {
            h_days: 28,
            p_hours: 24,
            c: 0.1,
            w_secs: 7 * HOUR,
            s_secs: 5 * 60,
            now,
        })
        .expect("prediction procedure");
    match pred {
        Some((start, end, conf)) => println!(
            "PredictNextActivity: activity expected day {} {:02}:{:02} .. {:02}:{:02} (confidence {conf:.2})",
            start / DAY,
            (start % DAY) / HOUR,
            (start % HOUR) / 60,
            (end % DAY) / HOUR,
            (end % HOUR) / 60,
        ),
        None => println!("PredictNextActivity: no activity expected within the horizon"),
    }
    println!();
    println!("The proactive policy would physically pause this database now and");
    println!("pre-warm it 5 minutes before the predicted start (Algorithm 5).");
}
