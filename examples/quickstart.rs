//! Quickstart: one serverless database, three policies, one picture.
//!
//! Reproduces the intuition of Figure 2: the same daily workload run
//! under the reactive, proactive, and optimal policies, rendered as an
//! hour-by-hour timeline plus the §8 KPIs.
//!
//! ```text
//! cargo run --release -p prorp-bench --example quickstart
//! ```

use prorp_sim::{SimConfig, SimPolicy, Simulation};
use prorp_telemetry::{SegmentKind, TelemetryKind};
use prorp_types::{DatabaseId, PolicyConfig, Seconds, Session, Timestamp};
use prorp_workload::Trace;

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn main() {
    // A database used 09:00–17:00 every day for 35 days.
    let sessions: Vec<Session> = (0..35)
        .map(|d| {
            Session::new(
                Timestamp(d * DAY + 9 * HOUR),
                Timestamp(d * DAY + 17 * HOUR),
            )
            .expect("well-formed session")
        })
        .collect();
    let trace = Trace::new(DatabaseId(0), "daily", sessions).expect("ordered sessions");

    println!("ProRP quickstart: a 09:00-17:00 daily database, 35 days,");
    println!("policies compared on the final 7 days (28-day warm-up).\n");

    for policy in [
        SimPolicy::Reactive,
        SimPolicy::Proactive(PolicyConfig::default()),
        SimPolicy::Optimal,
    ] {
        let label = policy.label();
        let config = SimConfig::builder(
            policy,
            Timestamp(0),
            Timestamp(35 * DAY),
            Timestamp(28 * DAY),
        )
        .build()
        .expect("valid config");
        let report = Simulation::new(config, vec![trace.clone()])
            .expect("valid config")
            .run()
            .expect("simulation completes");

        // Timeline of day 30, one character per 30 minutes:
        //   # active   = logically-paused idle   + pre-warmed   . saved
        //   ! customer waiting on a reactive resume
        let day = 30;
        let mut line = String::new();
        for slot in 0..48 {
            let t = Timestamp(day * DAY + slot * 1_800 + 900);
            line.push(classify_instant(&report, t));
        }
        println!("{label:<10} day {day}  |{line}|");
        println!(
            "{:<10} QoS {:5.1}%  idle {:5.2}%  saved {:5.1}%  proactive resumes {}",
            "",
            report.kpi.qos_pct(),
            report.kpi.idle_pct(),
            100.0 * report.kpi.saved_frac,
            report.kpi.proactive_resumes
        );
        println!();
    }
    println!("legend: '#' active, '=' idle-but-allocated, '+' pre-warmed, '.' paused, '!' waiting");
    println!("        (each character is 30 minutes of day 30; midnight at the left)");
}

/// Rough instant classification for the ASCII art: derived from the
/// telemetry events nearest to `t`.
fn classify_instant(report: &prorp_sim::SimReport, t: Timestamp) -> char {
    // Replay the day's telemetry to find the database's condition at t.
    let mut state = '.';
    let mut since = Timestamp(0);
    for e in report.telemetry.events() {
        if e.ts > t {
            break;
        }
        since = e.ts;
        state = match e.kind {
            TelemetryKind::Login { available: true } => '#',
            TelemetryKind::Login { available: false } => '!',
            TelemetryKind::LogicalPause => '=',
            TelemetryKind::PhysicalPause => '.',
            TelemetryKind::ProactiveResume => '+',
            TelemetryKind::ForecastFailure
            | TelemetryKind::Move
            | TelemetryKind::Maintenance { .. } => state,
        };
    }
    // A '!' resolves into '#' once the resume workflow (~60 s) completes;
    // keep '!' visible only in the slot containing the login itself.
    if state == '!' && (t - since) > Seconds(1_800) {
        state = '#';
    }
    let _ = SegmentKind::Active;
    state
}
