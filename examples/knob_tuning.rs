//! The §8 training pipeline end-to-end: grid-search the Table 1 knobs on
//! a training interval, select the best-utility configuration, validate
//! on a held-out test interval.
//!
//! ```text
//! cargo run --release -p prorp-bench --example knob_tuning
//! ```

use prorp_bench::ExperimentScale;
use prorp_sim::SimPolicy;
use prorp_training::{rank_knobs, ParameterGrid, TrainingPipeline};
use prorp_types::{PolicyConfig, Seconds};
use prorp_workload::RegionName;

fn main() {
    let scale = ExperimentScale::from_env();
    // Training measures days [warmup, warmup+2), testing days [.., end).
    let mut sim_template = scale.sim_config(SimPolicy::Proactive(PolicyConfig::default()));
    sim_template.end = scale.end();
    let test_from = scale.measure_from() + Seconds::days(2);
    let traces = scale.fleet_for(RegionName::Eu1);

    // A compact grid: windows x confidences (the two knobs Figures 8-9
    // show to matter most).
    let grid = ParameterGrid {
        base: PolicyConfig::default(),
        windows: vec![Seconds::hours(2), Seconds::hours(4), Seconds::hours(7)],
        confidences: vec![0.1, 0.3, 0.5],
        history_lens: vec![Seconds::days(28)],
        seasonalities: vec![prorp_types::Seasonality::Daily],
    };
    let pipeline = TrainingPipeline {
        sim_template,
        test_from,
        idle_weight: 0.5,
        workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
    };

    println!(
        "Training pipeline: {} candidate configurations on {} databases\n",
        grid.len(),
        scale.fleet
    );
    let outcome = pipeline.run(&grid, &traces).expect("pipeline completes");

    println!(
        "{:<10} {:<12} {:>8} {:>8} {:>9}",
        "window", "confidence", "QoS %", "idle %", "utility"
    );
    for row in &outcome.evaluated {
        let marker = if row.config == outcome.best {
            " <= selected"
        } else {
            ""
        };
        println!(
            "{:<10} {:<12.1} {:>8.1} {:>8.2} {:>9.2}{marker}",
            format!("{} h", row.config.window.as_secs() / 3600),
            row.config.confidence,
            row.kpi.qos_pct(),
            row.kpi.idle_pct(),
            row.kpi.utility(pipeline.idle_weight)
        );
    }
    println!();
    println!(
        "Selected: w = {} h, c = {:.1}",
        outcome.best.window.as_secs() / 3600,
        outcome.best.confidence
    );
    println!(
        "Train interval: QoS {:.1}%, idle {:.2}%",
        outcome.train_kpi.qos_pct(),
        outcome.train_kpi.idle_pct()
    );
    println!(
        "Test interval : QoS {:.1}%, idle {:.2}%  (held-out validation)",
        outcome.test_kpi.qos_pct(),
        outcome.test_kpi.idle_pct()
    );

    // Future-work item 2: automated knob selection via main effects.
    println!();
    println!("Knob importance (main-effect utility spread across the sweep):");
    for k in rank_knobs(&outcome.evaluated, pipeline.idle_weight) {
        println!(
            "  {:<12} range {:6.2} utility points over {} values",
            k.knob, k.utility_range, k.distinct_values
        );
    }
}
