//! The §11 future-work extensions in action: incremental capacity
//! auto-scaling (`prorp-scale`) and prediction-aware maintenance
//! scheduling (`prorp-core::maintenance`).
//!
//! ```text
//! cargo run --release -p prorp-bench --example capacity_scaling
//! ```

use prorp_core::MaintenanceScheduler;
use prorp_forecast::ProbabilisticPredictor;
use prorp_scale::{compare_binary_vs_incremental, CapacityPlanner, DiurnalDemandModel};
use prorp_storage::HistoryTable;
use prorp_types::{EventKind, PolicyConfig, Seconds, Timestamp};

const DAY: i64 = 86_400;
const HOUR: i64 = 3_600;

fn main() {
    // ── Part 1: binary resume/pause vs incremental vCore planning ──
    let model = DiurnalDemandModel::default();
    let history = model.generate(21, Seconds(900), 11);
    let test = model.generate(7, Seconds(900), 77);
    let planner = CapacityPlanner::default();
    let (binary, incremental) =
        compare_binary_vs_incremental(&planner, &history, &test).expect("planning succeeds");

    println!("Incremental capacity auto-scaling (future work 1)");
    println!(
        "  demand: 21 days training, 7 days test, 15-minute slots, {}-vCore SKU",
        planner.max_vcores
    );
    println!();
    println!(
        "  {:<22} {:>14} {:>12} {:>12}",
        "policy", "service rate", "waste rate", "vCore-slots"
    );
    println!(
        "  {:<22} {:>13.1}% {:>11.1}% {:>12.0}",
        "binary (ProRP today)",
        100.0 * binary.service_rate(),
        100.0 * binary.waste_rate(),
        binary.allocated
    );
    println!(
        "  {:<22} {:>13.1}% {:>11.1}% {:>12.0}",
        "incremental (planned)",
        100.0 * incremental.service_rate(),
        100.0 * incremental.waste_rate(),
        incremental.allocated
    );
    println!(
        "  => {:.0}% less capacity allocated for {:.1} points of service rate",
        100.0 * (1.0 - incremental.allocated / binary.allocated.max(1e-9)),
        100.0 * (binary.service_rate() - incremental.service_rate())
    );
    println!();

    // ── Part 2: maintenance piggybacking on predicted activity ──
    let mut history = HistoryTable::new();
    for d in 0..28 {
        history.insert_history(Timestamp(d * DAY + 9 * HOUR), EventKind::Start);
        history.insert_history(Timestamp(d * DAY + 12 * HOUR), EventKind::End);
    }
    let predictor = ProbabilisticPredictor::new(PolicyConfig::default()).expect("valid knobs");
    let mut naive = MaintenanceScheduler::new();
    let mut aware = MaintenanceScheduler::new();
    // A nightly backup due by 06:00, scheduled each midnight for a week.
    for d in 28..35 {
        let now = Timestamp(d * DAY);
        let deadline = now + Seconds::hours(30); // may slip into the next day
        let prediction = predictor.predict_at(&history, now);
        // Naive: ignores predictions.
        naive
            .place(now, None, Seconds::minutes(20), deadline)
            .expect("valid job");
        // Prediction-aware: rides the predicted 09:00 activity.
        aware
            .place(now, prediction.as_ref(), Seconds::minutes(20), deadline)
            .expect("valid job");
    }
    println!("Maintenance scheduling (future work 4): 7 nightly backups");
    println!(
        "  naive            : {} forced maintenance-only resumes",
        naive.stats().forced_resumes
    );
    println!(
        "  prediction-aware : {} forced resumes, {} piggybacked on predicted activity ({:.0}%)",
        aware.stats().forced_resumes,
        aware.stats().piggybacked,
        100.0 * aware.stats().piggyback_rate()
    );
}
