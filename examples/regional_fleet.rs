//! A region-scale fleet under all three policies, with the operational
//! machinery turned on: load balancing (history moves with the database,
//! §3.3), fault injection into resume workflows, and the §7 diagnostics
//! and mitigation runner.
//!
//! ```text
//! cargo run --release -p prorp-bench --example regional_fleet
//! PRORP_FLEET=500 cargo run --release -p prorp-bench --example regional_fleet
//! ```

use prorp_bench::ExperimentScale;
use prorp_sim::{SimPolicy, Simulation};
use prorp_types::{PolicyConfig, Seconds};
use prorp_workload::RegionName;

fn main() {
    let scale = ExperimentScale::from_env();
    let traces = scale.fleet_for(RegionName::Eu1);
    println!(
        "Regional fleet: {} databases in EU1 for {} days (KPIs after day {})\n",
        scale.fleet, scale.days, scale.warmup_days
    );

    for policy in [
        SimPolicy::Reactive,
        SimPolicy::Proactive(PolicyConfig::default()),
        SimPolicy::Optimal,
    ] {
        let label = policy.label();
        let mut config = scale.sim_config(policy);
        // Exercise the operational subsystems.
        config.rebalance_period = Some(Seconds::hours(4));
        config.rebalance_threshold = 4;
        config.diagnostics_period = Some(Seconds::minutes(5));
        config.stuck_probability = 0.02; // 2 % of resume workflows hang
        config.stuck_timeout = Seconds::minutes(10);
        config.maintenance_period = Some(Seconds::days(1)); // nightly backups
        let report = Simulation::new(config, traces.clone())
            .expect("valid config")
            .run()
            .expect("simulation completes");

        println!("═══ {label} ═══");
        println!("{}", report.kpi);
        println!(
            "Cluster: {} spill moves, {} balance moves (history shipped via backup/restore), {} oversubscriptions",
            report.spill_moves, report.balance_moves, report.oversubscriptions
        );
        println!(
            "Diagnostics: {} mitigations, {} incidents escalated",
            report.mitigations, report.incidents
        );
        println!(
            "Maintenance: {} jobs piggybacked on predicted activity, {} forced resumes ({:.0}% piggybacked)",
            report.maintenance.piggybacked,
            report.maintenance.forced_resumes,
            100.0 * report.maintenance.piggyback_rate()
        );
        let max_batch = report.resume_batches.iter().max().copied().unwrap_or(0);
        println!(
            "Proactive-resume scan: {} iterations, largest batch {} databases",
            report.resume_batches.len(),
            max_batch
        );
        let total_tuples: usize = report.history_stats.iter().map(|s| s.tuples).sum();
        let total_kib: usize = report
            .history_stats
            .iter()
            .map(|s| s.logical_bytes)
            .sum::<usize>()
            / 1024;
        println!(
            "History store: {total_tuples} tuples across the fleet ({total_kib} KiB logical)\n"
        );
    }
}
