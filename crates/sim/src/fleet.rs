//! Struct-of-arrays fleet state for million-database shards.
//!
//! The original per-shard layout held one `DbSim` struct per database
//! with a `Box<dyn DatabasePolicy>` inside — a million heap allocations
//! per shard, each a pointer chase away, plus a `HashMap<DatabaseId,
//! usize>` lookup on every event.  At paper scale (§9 runs hundreds of
//! thousands of databases per region) allocator traffic and cache
//! misses dominate the event loop, so this module stores the same state
//! as parallel arrays:
//!
//! * `EngineArena` (crate-internal) — one homogeneous `Vec` of concrete engines.  The
//!   policy is uniform across a run (`SimConfig::policy` plus the
//!   predictor/fault knobs), so the dynamic dispatch the boxes paid for
//!   on *every event* collapses into one enum discriminant chosen at
//!   startup; engines sit contiguously in memory in shard-trace order.
//! * [`DbIndexMap`] — the `DbId → index` map.  Generated fleets use
//!   dense ids, so the map is a flat `Vec<u32>` indexed by raw id
//!   (sentinel [`u32::MAX`] = absent) with an automatic spill to a
//!   `HashMap` when ids turn out sparse.
//! * [`BitSet`] — one bit per database for the boolean flags
//!   (`demand`, `resume_in_flight`) instead of one byte each inside a
//!   padded struct.
//!
//! Determinism is untouched by the layout change: the arena preserves
//! shard-trace order, the index map is a pure function of the inserted
//! ids, and no operation here consults anything but its arguments.
//! The testkit shard-invariance oracle (bit-identical KPIs at any shard
//! count) is the regression net proving it.

use crate::config::{SimConfig, SimPolicy};
#[cfg(feature = "strict-invariants")]
use prorp_core::LifecycleInvariants;
use prorp_core::{DatabasePolicy, OptimalEngine, ProactiveEngine, ReactiveEngine};
use prorp_forecast::{
    ConfidenceBasis, FailEvery, IncrementalPredictor, ProbabilisticPredictor, SharedScratch,
};
use prorp_telemetry::{SegmentAccumulator, SegmentKind};
use prorp_types::{DatabaseId, ProrpError, Seconds};
use prorp_workload::Trace;
use std::collections::HashMap;

/// Absent-entry sentinel in the dense index vector.
const SENTINEL: u32 = u32::MAX;

/// A `DatabaseId → dense index` map specialised for mostly-dense ids.
///
/// Generated fleets number their databases `0..n`, so a shard's ids —
/// an id-hash partition of that range — fit a flat `Vec<u32>` keyed by
/// raw id with a small constant factor of waste.  Ids that stray far
/// beyond the dense range (hand-built fleets, external id spaces) make
/// the map migrate every entry into a `HashMap` once and stay there.
/// Lookups are a bounds check plus one array read on the dense path.
#[derive(Clone, Debug, Default)]
pub struct DbIndexMap {
    dense: Vec<u32>,
    sparse: HashMap<DatabaseId, u32>,
    len: usize,
}

impl DbIndexMap {
    /// An empty map (dense until proven sparse).
    pub fn new() -> Self {
        DbIndexMap::default()
    }

    /// An empty map expecting about `capacity` databases.
    pub fn with_capacity(capacity: usize) -> Self {
        DbIndexMap {
            dense: Vec::with_capacity(capacity),
            sparse: HashMap::new(),
            len: 0,
        }
    }

    /// Number of mapped databases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no database is mapped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw-id ceiling below which an id keeps the map dense: a shard of
    /// an id-hashed `0..n` fleet holds roughly `n / shards` entries with
    /// raw ids up to `n`, so the dense vector is allowed to be a wide
    /// multiple of the entry count before spilling.
    fn dense_limit(&self) -> u64 {
        32 * (self.len as u64 + 1) + 1024
    }

    /// Map `id` to `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` does not fit the `u32` storage (the per-shard
    /// fleet would have to exceed ~4.29 billion databases) or when `id`
    /// is already mapped.
    pub fn insert(&mut self, id: DatabaseId, index: usize) {
        let slot = u32::try_from(index).expect("shard fleet exceeds u32 index space");
        assert!(slot != SENTINEL, "index u32::MAX is reserved");
        if self.sparse.is_empty() {
            let raw = id.raw();
            if raw < self.dense_limit() {
                let at = raw as usize;
                if at >= self.dense.len() {
                    self.dense.resize(at + 1, SENTINEL);
                }
                assert!(self.dense[at] == SENTINEL, "database {id} mapped twice");
                self.dense[at] = slot;
                self.len += 1;
                return;
            }
            // Sparse ids: migrate the dense prefix into the hash map and
            // stay sparse from here on.
            self.sparse.reserve(self.len + 1);
            for (raw, &v) in self.dense.iter().enumerate() {
                if v != SENTINEL {
                    self.sparse.insert(DatabaseId(raw as u64), v);
                }
            }
            self.dense = Vec::new();
        }
        let prev = self.sparse.insert(id, slot);
        assert!(prev.is_none(), "database {id} mapped twice");
        self.len += 1;
    }

    /// The dense index of `id`, if mapped.
    #[inline]
    pub fn get(&self, id: DatabaseId) -> Option<usize> {
        if self.sparse.is_empty() {
            let raw = id.raw();
            if (raw as usize) < self.dense.len() && self.dense[raw as usize] != SENTINEL {
                return Some(self.dense[raw as usize] as usize);
            }
            return None;
        }
        self.sparse.get(&id).map(|&v| v as usize)
    }

    /// Whether the map spilled to the sparse (hash) representation.
    pub fn is_sparse(&self) -> bool {
        !self.sparse.is_empty()
    }
}

/// A fixed-purpose bit vector: one boolean per database at one bit each.
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty bit set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// An empty bit set with room for `capacity` bits.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            words: Vec::with_capacity(capacity.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, value: bool) {
        if self.len % 64 == 0 {
            self.words.push(0);
        }
        let i = self.len;
        self.len += 1;
        self.set(i, value);
    }

    /// Read bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Write bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of bounds (len {})", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }
}

/// One homogeneous arena of policy engines.
///
/// The run's policy/predictor/fault combination picks the variant once;
/// every database's engine then lives inline in one contiguous `Vec`,
/// in shard-trace order.  [`get_mut`](EngineArena::get_mut) still hands
/// the event loop a `&mut dyn DatabasePolicy`, so the loop body is
/// unchanged — the dispatch just happens on one enum discriminant
/// instead of a million boxed vtables.
pub(crate) enum EngineArena {
    /// Reactive baseline engines.
    Reactive(Vec<ReactiveEngine>),
    /// Oracle engines (Figure 2(c) bounding box).
    Optimal(Vec<OptimalEngine>),
    /// Proactive engines on the incremental prediction index.
    Incremental(Vec<ProactiveEngine<IncrementalPredictor>>),
    /// Incremental predictor wrapped in forecast fault injection.
    IncrementalFaulty(Vec<ProactiveEngine<FailEvery<IncrementalPredictor>>>),
    /// Proactive engines on the naive reference predictor.
    Naive(Vec<ProactiveEngine<ProbabilisticPredictor>>),
    /// Naive predictor wrapped in forecast fault injection.
    NaiveFaulty(Vec<ProactiveEngine<FailEvery<ProbabilisticPredictor>>>),
}

impl EngineArena {
    /// An empty arena of the variant `cfg` calls for, pre-sized for
    /// `capacity` engines.
    pub(crate) fn for_config(cfg: &SimConfig, capacity: usize) -> EngineArena {
        let faulty = cfg.fault().forecast_fail_every.is_some();
        match &cfg.policy {
            SimPolicy::Reactive => EngineArena::Reactive(Vec::with_capacity(capacity)),
            SimPolicy::Optimal => EngineArena::Optimal(Vec::with_capacity(capacity)),
            SimPolicy::Proactive(_) => match (cfg.naive_predictor, faulty) {
                (false, false) => EngineArena::Incremental(Vec::with_capacity(capacity)),
                (false, true) => EngineArena::IncrementalFaulty(Vec::with_capacity(capacity)),
                (true, false) => EngineArena::Naive(Vec::with_capacity(capacity)),
                (true, true) => EngineArena::NaiveFaulty(Vec::with_capacity(capacity)),
            },
        }
    }

    /// Number of engines in the arena.
    pub(crate) fn len(&self) -> usize {
        match self {
            EngineArena::Reactive(v) => v.len(),
            EngineArena::Optimal(v) => v.len(),
            EngineArena::Incremental(v) => v.len(),
            EngineArena::IncrementalFaulty(v) => v.len(),
            EngineArena::Naive(v) => v.len(),
            EngineArena::NaiveFaulty(v) => v.len(),
        }
    }

    /// Build and append the engine for `trace`, exactly as the old boxed
    /// `build_engine` did (same constructors, same fault wrapping).
    pub(crate) fn push(
        &mut self,
        cfg: &SimConfig,
        trace: &Trace,
        scratch: &SharedScratch,
    ) -> Result<(), ProrpError> {
        let breaker = cfg.fault().breaker;
        let fail_every = cfg.fault().forecast_fail_every.map(u64::from);
        let backend = cfg.storage_backend;
        match self {
            EngineArena::Reactive(v) => {
                v.push(ReactiveEngine::with_backend(
                    Seconds::hours(7),
                    Seconds::days(28),
                    backend,
                )?);
            }
            EngineArena::Optimal(v) => {
                v.push(OptimalEngine::with_backend(
                    trace.sessions.clone(),
                    backend,
                )?);
            }
            EngineArena::Incremental(v) => {
                let SimPolicy::Proactive(pc) = &cfg.policy else {
                    unreachable!("arena variant chosen from cfg.policy");
                };
                let predictor = IncrementalPredictor::with_scratch(
                    *pc,
                    ConfidenceBasis::Windows,
                    scratch.clone(),
                )?;
                v.push(ProactiveEngine::with_backend(
                    *pc, predictor, breaker, backend,
                )?);
            }
            EngineArena::IncrementalFaulty(v) => {
                let SimPolicy::Proactive(pc) = &cfg.policy else {
                    unreachable!("arena variant chosen from cfg.policy");
                };
                let predictor = IncrementalPredictor::with_scratch(
                    *pc,
                    ConfidenceBasis::Windows,
                    scratch.clone(),
                )?;
                let n = fail_every.expect("faulty variant requires forecast_fail_every");
                v.push(ProactiveEngine::with_backend(
                    *pc,
                    FailEvery::new(predictor, n),
                    breaker,
                    backend,
                )?);
            }
            EngineArena::Naive(v) => {
                let SimPolicy::Proactive(pc) = &cfg.policy else {
                    unreachable!("arena variant chosen from cfg.policy");
                };
                v.push(ProactiveEngine::with_backend(
                    *pc,
                    ProbabilisticPredictor::new(*pc)?,
                    breaker,
                    backend,
                )?);
            }
            EngineArena::NaiveFaulty(v) => {
                let SimPolicy::Proactive(pc) = &cfg.policy else {
                    unreachable!("arena variant chosen from cfg.policy");
                };
                let n = fail_every.expect("faulty variant requires forecast_fail_every");
                v.push(ProactiveEngine::with_backend(
                    *pc,
                    FailEvery::new(ProbabilisticPredictor::new(*pc)?, n),
                    breaker,
                    backend,
                )?);
            }
        }
        Ok(())
    }

    /// Engine `i` as a policy trait object (single enum dispatch).
    #[inline]
    pub(crate) fn get_mut(&mut self, i: usize) -> &mut dyn DatabasePolicy {
        match self {
            EngineArena::Reactive(v) => &mut v[i],
            EngineArena::Optimal(v) => &mut v[i],
            EngineArena::Incremental(v) => &mut v[i],
            EngineArena::IncrementalFaulty(v) => &mut v[i],
            EngineArena::Naive(v) => &mut v[i],
            EngineArena::NaiveFaulty(v) => &mut v[i],
        }
    }

    /// Engine `i`, read-only.
    #[inline]
    pub(crate) fn get(&self, i: usize) -> &dyn DatabasePolicy {
        match self {
            EngineArena::Reactive(v) => &v[i],
            EngineArena::Optimal(v) => &v[i],
            EngineArena::Incremental(v) => &v[i],
            EngineArena::IncrementalFaulty(v) => &v[i],
            EngineArena::Naive(v) => &v[i],
            EngineArena::NaiveFaulty(v) => &v[i],
        }
    }
}

/// All per-database state of one shard, struct-of-arrays.
///
/// Fields are `pub(crate)` so the event loop can borrow different
/// columns (`engines` mutably, `accs` mutably, `demand` read) without
/// fighting a struct-level borrow.
pub(crate) struct FleetState {
    /// Database ids in shard-trace order.
    pub(crate) ids: Vec<DatabaseId>,
    /// Policy engines, same order.
    pub(crate) engines: EngineArena,
    /// §8 segment accumulators, same order.
    pub(crate) accs: Vec<SegmentAccumulator>,
    /// Whether a customer session is currently active.
    pub(crate) demand: BitSet,
    /// Whether a reactive resume workflow is in flight.
    pub(crate) resume_in_flight: BitSet,
    /// Observational lifecycle checkers (strict-invariants builds only).
    #[cfg(feature = "strict-invariants")]
    pub(crate) shadows: Vec<LifecycleInvariants>,
    /// `DatabaseId → column index` lookup.
    pub(crate) index: DbIndexMap,
}

impl FleetState {
    /// An empty fleet for `cfg`, pre-sized for about `capacity`
    /// databases.
    pub(crate) fn with_capacity(cfg: &SimConfig, capacity: usize) -> FleetState {
        FleetState {
            ids: Vec::with_capacity(capacity),
            engines: EngineArena::for_config(cfg, capacity),
            accs: Vec::with_capacity(capacity),
            demand: BitSet::with_capacity(capacity),
            resume_in_flight: BitSet::with_capacity(capacity),
            #[cfg(feature = "strict-invariants")]
            shadows: Vec::with_capacity(capacity),
            index: DbIndexMap::with_capacity(capacity),
        }
    }

    /// Number of databases.
    pub(crate) fn len(&self) -> usize {
        self.ids.len()
    }

    /// Append one database: build its engine, open its segment book in
    /// [`SegmentKind::Saved`] at `cfg.start` (§2.1: a new serverless
    /// database starts paused from the fleet's perspective), and map its
    /// id.  Returns the database's column index.
    pub(crate) fn push(
        &mut self,
        cfg: &SimConfig,
        trace: &Trace,
        scratch: &SharedScratch,
    ) -> Result<usize, ProrpError> {
        let idx = self.ids.len();
        self.engines.push(cfg, trace, scratch)?;
        debug_assert_eq!(self.engines.len(), idx + 1, "columns out of step");
        let mut acc = SegmentAccumulator::new();
        acc.transition(cfg.start, SegmentKind::Saved);
        self.accs.push(acc);
        self.demand.push(false);
        self.resume_in_flight.push(false);
        self.index.insert(trace.db, idx);
        self.ids.push(trace.db);
        #[cfg(feature = "strict-invariants")]
        self.shadows.push(LifecycleInvariants::new(
            trace.db,
            cfg.start,
            self.engines.get(idx).state(),
        ));
        Ok(idx)
    }

    /// Column index of `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` belongs to another shard — an event for a
    /// foreign database is a partitioning bug, not a recoverable state.
    /// Column index of `id`, or `None` when the database is not mapped
    /// on this shard — the non-panicking probe external drivers use to
    /// vet operator requests before scheduling events.
    #[inline]
    pub(crate) fn try_index_of(&self, id: DatabaseId) -> Option<usize> {
        self.index.get(id)
    }

    #[inline]
    pub(crate) fn index_of(&self, id: DatabaseId) -> usize {
        self.index
            .get(id)
            .expect("event for a database of another shard")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ids_stay_in_the_flat_vector() {
        let mut map = DbIndexMap::new();
        for (idx, raw) in [0u64, 7, 3, 1_000].into_iter().enumerate() {
            map.insert(DatabaseId(raw), idx);
        }
        assert_eq!(map.len(), 4);
        assert!(!map.is_sparse());
        assert_eq!(map.get(DatabaseId(3)), Some(2));
        assert_eq!(map.get(DatabaseId(1_000)), Some(3));
        assert_eq!(map.get(DatabaseId(2)), None);
        assert_eq!(map.get(DatabaseId(u64::MAX)), None, "huge probe is safe");
    }

    #[test]
    fn sparse_ids_spill_to_the_hash_map_and_keep_old_entries() {
        let mut map = DbIndexMap::new();
        map.insert(DatabaseId(5), 0);
        map.insert(DatabaseId(0xDEAD_BEEF_DEAD_BEEF), 1);
        assert!(map.is_sparse());
        assert_eq!(map.get(DatabaseId(5)), Some(0), "dense prefix migrated");
        assert_eq!(map.get(DatabaseId(0xDEAD_BEEF_DEAD_BEEF)), Some(1));
        assert_eq!(map.get(DatabaseId(6)), None);
        map.insert(DatabaseId(6), 2);
        assert_eq!(map.get(DatabaseId(6)), Some(2));
        assert_eq!(map.len(), 3);
    }

    #[test]
    #[should_panic(expected = "mapped twice")]
    fn duplicate_ids_are_rejected() {
        let mut map = DbIndexMap::new();
        map.insert(DatabaseId(1), 0);
        map.insert(DatabaseId(1), 1);
    }

    #[test]
    fn bitset_round_trips_bits_across_word_boundaries() {
        let mut bits = BitSet::with_capacity(130);
        for i in 0..130 {
            bits.push(i % 3 == 0);
        }
        assert_eq!(bits.len(), 130);
        for i in 0..130 {
            assert_eq!(bits.get(i), i % 3 == 0, "bit {i}");
        }
        bits.set(64, true);
        bits.set(63, false);
        assert!(bits.get(64));
        assert!(!bits.get(63));
        assert!(BitSet::new().is_empty());
        assert!(!bits.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bitset_bounds_are_checked() {
        let bits = BitSet::new();
        let _ = bits.get(0);
    }
}
