//! Simulation configuration.
//!
//! [`SimConfig`] is built through [`SimConfig::builder`], which validates
//! every knob at [`SimConfigBuilder::build`].  The control-plane fault
//! layer (stage latencies and failure probabilities, retry budget,
//! predictor circuit breaker, forecast fault injection) is configured
//! *only* through the builder: the [`FaultConfig`] lives in a private
//! field, so a hand-mutated config cannot bypass its validation.

use prorp_obs::ObsConfig;
use prorp_storage::{CompactionMode, StorageBackend};
use prorp_telemetry::TelemetryMode;
use prorp_types::{
    BreakerConfig, FaultConfig, PolicyConfig, ProrpError, RetryPolicy, Seconds, Timestamp,
    WorkflowStage,
};

/// Which resource-allocation policy the fleet runs.
#[derive(Clone, Debug, PartialEq)]
pub enum SimPolicy {
    /// The pre-ProRP reactive baseline (§2.2).
    Reactive,
    /// The ProRP proactive policy (Algorithm 1) with the given knobs.
    Proactive(PolicyConfig),
    /// The Figure 2(c) oracle optimum.
    Optimal,
}

impl SimPolicy {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SimPolicy::Reactive => "reactive",
            SimPolicy::Proactive(_) => "proactive",
            SimPolicy::Optimal => "optimal",
        }
    }
}

/// All simulator knobs.
///
/// Construct with [`SimConfig::builder`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The policy under test.
    pub policy: SimPolicy,
    /// Simulation start (traces should begin here).
    pub start: Timestamp,
    /// Simulation end (exclusive).
    pub end: Timestamp,
    /// KPIs are measured from here (time before is warm-up during which
    /// databases accrue the history the predictor needs).
    pub measure_from: Timestamp,
    /// Total failure-free latency of a resource-allocation (resume)
    /// workflow; the builder splits it over the four workflow stages
    /// unless explicit stage latencies were given.
    pub resume_latency: Seconds,
    /// Extra latency when a resume requires a cross-node move (§1).
    pub move_penalty: Seconds,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Allocation units per node.
    pub node_capacity: usize,
    /// Period of the Algorithm 5 proactive-resume scan (production: 1 min).
    pub resume_op_period: Seconds,
    /// Pre-warm lead time `k`.
    pub prewarm: Seconds,
    /// Period of the diagnostics-and-mitigation runner, if enabled.
    pub diagnostics_period: Option<Seconds>,
    /// A resume workflow silently hangs with this probability
    /// (diagnostics fault injection, §7).
    pub stuck_probability: f64,
    /// Age after which the diagnostics runner mitigates a hung workflow.
    pub stuck_timeout: Seconds,
    /// Period of the load-balancing step, if enabled.
    pub rebalance_period: Option<Seconds>,
    /// Load spread (units) that triggers a balancing move.
    pub rebalance_threshold: usize,
    /// Period of per-database maintenance jobs (backups, stats refresh),
    /// if enabled — placed by the prediction-aware scheduler (§11 future
    /// work 4).
    pub maintenance_period: Option<Seconds>,
    /// Duration of one maintenance job.
    pub maintenance_duration: Seconds,
    /// How long a due job may wait for a predicted-online window before
    /// it is forced.
    pub maintenance_deadline: Seconds,
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Run the proactive policy on the naive reference predictor (B-tree
    /// range scans per window) instead of the default incremental
    /// prediction index.  The two are bit-identical in behaviour — this
    /// knob exists for A/B benchmarking and differential testing.
    pub naive_predictor: bool,
    /// Which storage engine backs every database's activity history
    /// (B+Tree default, or the LSM/MVCC engine).  Policy behaviour is
    /// backend-independent — same trace and seed yield bit-identical
    /// KPIs — so this knob exists for A/B benchmarking and differential
    /// testing of the storage seam.
    pub storage_backend: StorageBackend,
    /// Where LSM compaction work runs: inline at each flush
    /// ([`CompactionMode::Deterministic`], the default) or on a
    /// per-shard scheduler worker ([`CompactionMode::Background`]) so
    /// the event-loop path only enqueues.  Final state and KPIs are
    /// bit-identical across the two modes — the shard driver barriers
    /// and detaches every store before collecting results — so this
    /// knob only moves *where* the compaction wall time is spent.
    /// Ignored on the B+Tree backend.
    pub compaction_mode: CompactionMode,
    /// Number of simulation shards (worker threads).  Databases are
    /// partitioned by id-hash ([`prorp_types::DatabaseId::shard_of`]) and
    /// each shard runs its own event loop on its own cluster slice;
    /// per-shard results are merged deterministically, so the same seed
    /// yields identical KPIs for 1 and N shards (see
    /// [`crate::shard`] for the exact guarantee).
    pub shards: usize,
    /// Whether the merged per-event telemetry log is materialised in the
    /// report ([`TelemetryMode::Full`], the default) or folded into
    /// per-label counts only ([`TelemetryMode::Summary`]).  KPIs are
    /// identical either way — Summary mode exists so million-database
    /// runs do not hold tens of millions of telemetry events in the
    /// final report.
    pub telemetry_mode: TelemetryMode,
    /// The control-plane fault layer (stage latencies/failure
    /// probabilities, retry policy, predictor circuit breaker, forecast
    /// fault injection).  Private on purpose: these knobs are set only
    /// through [`SimConfig::builder`], which validates them at `build()`.
    fault: FaultConfig,
    /// Runtime observability (span traces + metrics snapshots).  Private
    /// for the same reason as `fault`: set through
    /// [`SimConfigBuilder::observe`], validated at `build()`.  Defaults
    /// to disabled, which is the zero-overhead fast path.
    observe: ObsConfig,
}

impl SimConfig {
    fn with_defaults(
        policy: SimPolicy,
        start: Timestamp,
        end: Timestamp,
        measure_from: Timestamp,
    ) -> Self {
        SimConfig {
            policy,
            start,
            end,
            measure_from,
            resume_latency: Seconds(60),
            move_penalty: Seconds(120),
            nodes: 4,
            node_capacity: 200,
            resume_op_period: Seconds::minutes(1),
            prewarm: Seconds::minutes(5),
            diagnostics_period: None,
            stuck_probability: 0.0,
            stuck_timeout: Seconds::minutes(10),
            rebalance_period: None,
            rebalance_threshold: 8,
            maintenance_period: None,
            maintenance_duration: Seconds::minutes(20),
            maintenance_deadline: Seconds::hours(24),
            seed: 0,
            naive_predictor: false,
            storage_backend: StorageBackend::default(),
            compaction_mode: CompactionMode::default(),
            shards: 1,
            telemetry_mode: TelemetryMode::Full,
            fault: FaultConfig::default(),
            observe: ObsConfig::default(),
        }
    }

    /// Start building a config with production-like defaults over
    /// `[start, end)`, measuring from `measure_from`.  Every knob is
    /// validated when [`SimConfigBuilder::build`] runs.
    pub fn builder(
        policy: SimPolicy,
        start: Timestamp,
        end: Timestamp,
        measure_from: Timestamp,
    ) -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::with_defaults(policy, start, end, measure_from),
            explicit_stage_latencies: None,
        }
    }

    /// The control-plane fault layer this config runs with.
    pub fn fault(&self) -> &FaultConfig {
        &self.fault
    }

    /// The observability knobs this config runs with.
    pub fn observe(&self) -> &ObsConfig {
        &self.observe
    }

    /// Validate knob consistency.  `build()` and the simulation entry
    /// points call this; external drivers (the control-plane server)
    /// validate operator-supplied configs through it too.
    pub fn check(&self) -> Result<(), ProrpError> {
        if self.end <= self.start {
            return Err(ProrpError::InvalidConfig(format!(
                "simulation end {:?} must follow start {:?}",
                self.end, self.start
            )));
        }
        if self.measure_from < self.start || self.measure_from >= self.end {
            return Err(ProrpError::InvalidConfig(format!(
                "measure_from {:?} must lie in [{:?}, {:?})",
                self.measure_from, self.start, self.end
            )));
        }
        if self.resume_latency.as_secs() < 0 || self.move_penalty.as_secs() < 0 {
            return Err(ProrpError::InvalidConfig(
                "latencies must be non-negative".into(),
            ));
        }
        if self.nodes == 0 || self.node_capacity == 0 {
            return Err(ProrpError::InvalidConfig(
                "cluster needs nodes and capacity".into(),
            ));
        }
        if self.resume_op_period.as_secs() <= 0 || self.prewarm.as_secs() <= 0 {
            return Err(ProrpError::InvalidConfig(
                "resume-op period and prewarm must be positive".into(),
            ));
        }
        if self.maintenance_duration.as_secs() <= 0 || self.maintenance_deadline.as_secs() <= 0 {
            return Err(ProrpError::InvalidConfig(
                "maintenance duration and deadline must be positive".into(),
            ));
        }
        if self.shards == 0 {
            return Err(ProrpError::InvalidConfig(
                "shard count must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.stuck_probability) {
            return Err(ProrpError::InvalidConfig(format!(
                "stuck_probability must be a probability, got {}",
                self.stuck_probability
            )));
        }
        self.fault.validate()?;
        self.observe.check()?;
        if let SimPolicy::Proactive(pc) = &self.policy {
            pc.validate()?;
        }
        Ok(())
    }
}

/// Builder for [`SimConfig`]; obtained from [`SimConfig::builder`].
///
/// Setters are chainable and unchecked; [`build`](Self::build) validates
/// the whole configuration at once.  Unless
/// [`stage_latencies`](Self::stage_latencies) is called, the four
/// workflow-stage latencies are derived from
/// [`resume_latency`](Self::resume_latency) (50/25/15/10 % split), so the
/// stages always sum to the configured end-to-end resume latency.
#[derive(Clone, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
    explicit_stage_latencies: Option<[Seconds; WorkflowStage::COUNT]>,
}

impl SimConfigBuilder {
    /// Total failure-free resume-workflow latency (stage latencies are
    /// derived from it unless set explicitly).
    pub fn resume_latency(mut self, v: Seconds) -> Self {
        self.cfg.resume_latency = v;
        self
    }

    /// Extra latency for a cross-node move.
    pub fn move_penalty(mut self, v: Seconds) -> Self {
        self.cfg.move_penalty = v;
        self
    }

    /// Number of compute nodes.
    pub fn nodes(mut self, v: usize) -> Self {
        self.cfg.nodes = v;
        self
    }

    /// Allocation units per node.
    pub fn node_capacity(mut self, v: usize) -> Self {
        self.cfg.node_capacity = v;
        self
    }

    /// Period of the Algorithm 5 proactive-resume scan.
    pub fn resume_op_period(mut self, v: Seconds) -> Self {
        self.cfg.resume_op_period = v;
        self
    }

    /// Pre-warm lead time `k`.
    pub fn prewarm(mut self, v: Seconds) -> Self {
        self.cfg.prewarm = v;
        self
    }

    /// Enable the diagnostics-and-mitigation runner with this period.
    pub fn diagnostics_period(mut self, v: Seconds) -> Self {
        self.cfg.diagnostics_period = Some(v);
        self
    }

    /// Probability that a resume workflow silently hangs.
    pub fn stuck_probability(mut self, v: f64) -> Self {
        self.cfg.stuck_probability = v;
        self
    }

    /// Age after which the diagnostics runner mitigates a hung workflow.
    pub fn stuck_timeout(mut self, v: Seconds) -> Self {
        self.cfg.stuck_timeout = v;
        self
    }

    /// Enable the load-balancing step with this period.
    pub fn rebalance_period(mut self, v: Seconds) -> Self {
        self.cfg.rebalance_period = Some(v);
        self
    }

    /// Load spread (units) that triggers a balancing move.
    pub fn rebalance_threshold(mut self, v: usize) -> Self {
        self.cfg.rebalance_threshold = v;
        self
    }

    /// Enable per-database maintenance jobs with this period.
    pub fn maintenance_period(mut self, v: Seconds) -> Self {
        self.cfg.maintenance_period = Some(v);
        self
    }

    /// Duration of one maintenance job.
    pub fn maintenance_duration(mut self, v: Seconds) -> Self {
        self.cfg.maintenance_duration = v;
        self
    }

    /// How long a due maintenance job may wait for a predicted-online
    /// window.
    pub fn maintenance_deadline(mut self, v: Seconds) -> Self {
        self.cfg.maintenance_deadline = v;
        self
    }

    /// RNG seed for fault injection.
    pub fn seed(mut self, v: u64) -> Self {
        self.cfg.seed = v;
        self
    }

    /// Use the naive reference predictor instead of the incremental
    /// prediction index (bit-identical behaviour; A/B benchmarking).
    pub fn naive_predictor(mut self, v: bool) -> Self {
        self.cfg.naive_predictor = v;
        self
    }

    /// Storage engine backing every database's activity history
    /// (bit-identical behaviour across backends; A/B benchmarking and
    /// differential testing).
    pub fn storage_backend(mut self, v: StorageBackend) -> Self {
        self.cfg.storage_backend = v;
        self
    }

    /// Where LSM compaction runs (inline-deterministic or on a per-shard
    /// background worker; bit-identical final state either way).
    pub fn compaction_mode(mut self, v: CompactionMode) -> Self {
        self.cfg.compaction_mode = v;
        self
    }

    /// Number of simulation shards (worker threads).
    pub fn shards(mut self, v: usize) -> Self {
        self.cfg.shards = v;
        self
    }

    /// Explicit per-stage workflow latencies (overrides the split derived
    /// from [`resume_latency`](Self::resume_latency)).
    pub fn stage_latencies(mut self, v: [Seconds; WorkflowStage::COUNT]) -> Self {
        self.explicit_stage_latencies = Some(v);
        self
    }

    /// Failure probability of one workflow stage.
    pub fn stage_failure_probability(mut self, stage: WorkflowStage, p: f64) -> Self {
        self.cfg.fault.stages[stage.index()].failure_probability = p;
        self
    }

    /// Uniform failure probability across all workflow stages.
    pub fn stage_failure_probabilities(mut self, p: f64) -> Self {
        for s in &mut self.cfg.fault.stages {
            s.failure_probability = p;
        }
        self
    }

    /// Retry policy for failed workflow stages.
    pub fn retry(mut self, v: RetryPolicy) -> Self {
        self.cfg.fault.retry = v;
        self
    }

    /// Predictor circuit-breaker knobs (§3.2 reactive fallback).
    pub fn breaker(mut self, v: BreakerConfig) -> Self {
        self.cfg.fault.breaker = v;
        self
    }

    /// Forecast fault injection: every n-th prediction fails.
    pub fn forecast_fail_every(mut self, n: u32) -> Self {
        self.cfg.fault.forecast_fail_every = Some(n);
        self
    }

    /// Runtime observability: span traces and metrics snapshots
    /// (see [`prorp_obs::ObsConfig`]).
    pub fn observe(mut self, v: ObsConfig) -> Self {
        self.cfg.observe = v;
        self
    }

    /// Telemetry materialisation mode (see [`SimConfig::telemetry_mode`]).
    pub fn telemetry_mode(mut self, v: TelemetryMode) -> Self {
        self.cfg.telemetry_mode = v;
        self
    }

    /// Validate every knob and produce the config.
    ///
    /// # Errors
    ///
    /// Returns [`ProrpError::InvalidConfig`] describing the first
    /// offending knob.
    pub fn build(mut self) -> Result<SimConfig, ProrpError> {
        // Derive stage latencies from the end-to-end resume latency
        // unless explicit latencies were given; failure probabilities
        // set through the builder are preserved either way.
        let latencies = match self.explicit_stage_latencies {
            Some(explicit) => explicit,
            None => FaultConfig::stages_for_total(self.cfg.resume_latency).map(|s| s.latency),
        };
        for (slot, latency) in self.cfg.fault.stages.iter_mut().zip(latencies) {
            slot.latency = latency;
        }
        if self.explicit_stage_latencies.is_some() {
            // Keep the public total consistent with the explicit stages.
            self.cfg.resume_latency = self.cfg.fault.total_latency();
        }
        self.cfg.check()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfigBuilder {
        SimConfig::builder(
            SimPolicy::Reactive,
            Timestamp(0),
            Timestamp(1_000_000),
            Timestamp(500_000),
        )
    }

    #[test]
    fn defaults_validate() {
        base().build().unwrap();
        SimConfig::builder(
            SimPolicy::Proactive(PolicyConfig::default()),
            Timestamp(0),
            Timestamp(10),
            Timestamp(0),
        )
        .build()
        .unwrap();
    }

    #[test]
    fn bad_windows_are_rejected() {
        assert!(SimConfig::builder(
            SimPolicy::Reactive,
            Timestamp(0),
            Timestamp(0),
            Timestamp(0)
        )
        .build()
        .is_err());
        assert!(SimConfig::builder(
            SimPolicy::Reactive,
            Timestamp(0),
            Timestamp(10),
            Timestamp(-5)
        )
        .build()
        .is_err());
        assert!(SimConfig::builder(
            SimPolicy::Reactive,
            Timestamp(0),
            Timestamp(10),
            Timestamp(10)
        )
        .build()
        .is_err());
    }

    #[test]
    fn bad_knobs_are_rejected() {
        assert!(base().nodes(0).build().is_err());
        assert!(base().stuck_probability(1.5).build().is_err());
        assert!(base().shards(0).build().is_err());
        base().shards(8).build().unwrap();
        assert!(SimConfig::builder(
            SimPolicy::Proactive(PolicyConfig {
                confidence: 0.0,
                ..PolicyConfig::default()
            }),
            Timestamp(0),
            Timestamp(10),
            Timestamp(0),
        )
        .build()
        .is_err());
    }

    #[test]
    fn fault_knobs_land_only_on_the_builder_and_are_validated() {
        let cfg = base()
            .stage_failure_probabilities(0.2)
            .stage_failure_probability(WorkflowStage::WarmCache, 0.5)
            .retry(RetryPolicy {
                max_attempts: 2,
                base_backoff: Seconds(5),
                max_backoff: Seconds(20),
            })
            .breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown: Seconds::hours(1),
            })
            .forecast_fail_every(4)
            .build()
            .unwrap();
        let f = cfg.fault();
        assert_eq!(
            f.stage(WorkflowStage::AllocateNode).failure_probability,
            0.2
        );
        assert_eq!(f.stage(WorkflowStage::WarmCache).failure_probability, 0.5);
        assert_eq!(f.retry.max_attempts, 2);
        assert_eq!(f.breaker.failure_threshold, 1);
        assert_eq!(f.forecast_fail_every, Some(4));

        assert!(base().stage_failure_probabilities(1.5).build().is_err());
        assert!(base()
            .retry(RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            })
            .build()
            .is_err());
        assert!(base().forecast_fail_every(0).build().is_err());
    }

    #[test]
    fn stage_latencies_default_to_the_resume_latency_split() {
        let cfg = base().build().unwrap();
        assert_eq!(cfg.fault().total_latency(), Seconds(60));
        let cfg = base().resume_latency(Seconds(200)).build().unwrap();
        assert_eq!(cfg.fault().total_latency(), Seconds(200));
        assert_eq!(
            cfg.fault().stage(WorkflowStage::AllocateNode).latency,
            Seconds(100)
        );
        // Explicit latencies win and re-derive the public total.
        let cfg = base()
            .resume_latency(Seconds(200))
            .stage_latencies([Seconds(1), Seconds(2), Seconds(3), Seconds(4)])
            .build()
            .unwrap();
        assert_eq!(cfg.fault().total_latency(), Seconds(10));
        assert_eq!(cfg.resume_latency, Seconds(10));
    }

    #[test]
    fn default_fault_layer_is_inert() {
        let cfg = base().build().unwrap();
        assert_eq!(cfg.fault().total_latency(), Seconds(60));
        assert!(!cfg.fault().injects_stage_faults());
    }

    #[test]
    fn observe_knob_defaults_off_and_is_validated() {
        let cfg = base().build().unwrap();
        assert!(!cfg.observe().enabled);
        let cfg = base()
            .observe(ObsConfig::with_snapshots(Seconds::hours(6)))
            .build()
            .unwrap();
        assert_eq!(cfg.observe().snapshot_every, Some(Seconds::hours(6)));
        assert!(base()
            .observe(ObsConfig::with_snapshots(Seconds::ZERO))
            .build()
            .is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(SimPolicy::Reactive.label(), "reactive");
        assert_eq!(
            SimPolicy::Proactive(PolicyConfig::default()).label(),
            "proactive"
        );
        assert_eq!(SimPolicy::Optimal.label(), "optimal");
    }
}
