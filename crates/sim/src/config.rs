//! Simulation configuration.

use prorp_types::{PolicyConfig, ProrpError, Seconds, Timestamp};

/// Which resource-allocation policy the fleet runs.
#[derive(Clone, Debug, PartialEq)]
pub enum SimPolicy {
    /// The pre-ProRP reactive baseline (§2.2).
    Reactive,
    /// The ProRP proactive policy (Algorithm 1) with the given knobs.
    Proactive(PolicyConfig),
    /// The Figure 2(c) oracle optimum.
    Optimal,
}

impl SimPolicy {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SimPolicy::Reactive => "reactive",
            SimPolicy::Proactive(_) => "proactive",
            SimPolicy::Optimal => "optimal",
        }
    }
}

/// All simulator knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The policy under test.
    pub policy: SimPolicy,
    /// Simulation start (traces should begin here).
    pub start: Timestamp,
    /// Simulation end (exclusive).
    pub end: Timestamp,
    /// KPIs are measured from here (time before is warm-up during which
    /// databases accrue the history the predictor needs).
    pub measure_from: Timestamp,
    /// Latency of a resource-allocation (resume) workflow.
    pub resume_latency: Seconds,
    /// Extra latency when a resume requires a cross-node move (§1).
    pub move_penalty: Seconds,
    /// Number of compute nodes.
    pub nodes: usize,
    /// Allocation units per node.
    pub node_capacity: usize,
    /// Period of the Algorithm 5 proactive-resume scan (production: 1 min).
    pub resume_op_period: Seconds,
    /// Pre-warm lead time `k`.
    pub prewarm: Seconds,
    /// Period of the diagnostics-and-mitigation runner, if enabled.
    pub diagnostics_period: Option<Seconds>,
    /// A resume workflow silently hangs with this probability
    /// (diagnostics fault injection, §7).
    pub stuck_probability: f64,
    /// Age after which the diagnostics runner mitigates a hung workflow.
    pub stuck_timeout: Seconds,
    /// Period of the load-balancing step, if enabled.
    pub rebalance_period: Option<Seconds>,
    /// Load spread (units) that triggers a balancing move.
    pub rebalance_threshold: usize,
    /// Period of per-database maintenance jobs (backups, stats refresh),
    /// if enabled — placed by the prediction-aware scheduler (§11 future
    /// work 4).
    pub maintenance_period: Option<Seconds>,
    /// Duration of one maintenance job.
    pub maintenance_duration: Seconds,
    /// How long a due job may wait for a predicted-online window before
    /// it is forced.
    pub maintenance_deadline: Seconds,
    /// RNG seed for fault injection.
    pub seed: u64,
    /// Number of simulation shards (worker threads).  Databases are
    /// partitioned by id-hash ([`prorp_types::DatabaseId::shard_of`]) and
    /// each shard runs its own event loop on its own cluster slice;
    /// per-shard results are merged deterministically, so the same seed
    /// yields identical KPIs for 1 and N shards (see
    /// [`crate::shard`] for the exact guarantee).
    pub shards: usize,
}

impl SimConfig {
    /// A config with production-like defaults over `[start, end)`,
    /// measuring from `measure_from`.
    pub fn new(
        policy: SimPolicy,
        start: Timestamp,
        end: Timestamp,
        measure_from: Timestamp,
    ) -> Self {
        SimConfig {
            policy,
            start,
            end,
            measure_from,
            resume_latency: Seconds(60),
            move_penalty: Seconds(120),
            nodes: 4,
            node_capacity: 200,
            resume_op_period: Seconds::minutes(1),
            prewarm: Seconds::minutes(5),
            diagnostics_period: None,
            stuck_probability: 0.0,
            stuck_timeout: Seconds::minutes(10),
            rebalance_period: None,
            rebalance_threshold: 8,
            maintenance_period: None,
            maintenance_duration: Seconds::minutes(20),
            maintenance_deadline: Seconds::hours(24),
            seed: 0,
            shards: 1,
        }
    }

    /// Validate knob consistency.
    pub fn validate(&self) -> Result<(), ProrpError> {
        if self.end <= self.start {
            return Err(ProrpError::InvalidConfig(format!(
                "simulation end {:?} must follow start {:?}",
                self.end, self.start
            )));
        }
        if self.measure_from < self.start || self.measure_from >= self.end {
            return Err(ProrpError::InvalidConfig(format!(
                "measure_from {:?} must lie in [{:?}, {:?})",
                self.measure_from, self.start, self.end
            )));
        }
        if self.resume_latency.as_secs() < 0 || self.move_penalty.as_secs() < 0 {
            return Err(ProrpError::InvalidConfig(
                "latencies must be non-negative".into(),
            ));
        }
        if self.nodes == 0 || self.node_capacity == 0 {
            return Err(ProrpError::InvalidConfig(
                "cluster needs nodes and capacity".into(),
            ));
        }
        if self.resume_op_period.as_secs() <= 0 || self.prewarm.as_secs() <= 0 {
            return Err(ProrpError::InvalidConfig(
                "resume-op period and prewarm must be positive".into(),
            ));
        }
        if self.maintenance_duration.as_secs() <= 0 || self.maintenance_deadline.as_secs() <= 0 {
            return Err(ProrpError::InvalidConfig(
                "maintenance duration and deadline must be positive".into(),
            ));
        }
        if self.shards == 0 {
            return Err(ProrpError::InvalidConfig(
                "shard count must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.stuck_probability) {
            return Err(ProrpError::InvalidConfig(format!(
                "stuck_probability must be a probability, got {}",
                self.stuck_probability
            )));
        }
        if let SimPolicy::Proactive(pc) = &self.policy {
            pc.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig::new(
            SimPolicy::Reactive,
            Timestamp(0),
            Timestamp(1_000_000),
            Timestamp(500_000),
        )
    }

    #[test]
    fn defaults_validate() {
        base().validate().unwrap();
        SimConfig::new(
            SimPolicy::Proactive(PolicyConfig::default()),
            Timestamp(0),
            Timestamp(10),
            Timestamp(0),
        )
        .validate()
        .unwrap();
    }

    #[test]
    fn bad_windows_are_rejected() {
        let mut c = base();
        c.end = Timestamp(0);
        assert!(c.validate().is_err());
        let mut c = base();
        c.measure_from = Timestamp(-5);
        assert!(c.validate().is_err());
        let mut c = base();
        c.measure_from = c.end;
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let mut c = base();
        c.nodes = 0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.stuck_probability = 1.5;
        assert!(c.validate().is_err());
        let mut c = base();
        c.shards = 0;
        assert!(c.validate().is_err());
        let mut c = base();
        c.shards = 8;
        c.validate().unwrap();
        let mut c = base();
        c.policy = SimPolicy::Proactive(PolicyConfig {
            confidence: 0.0,
            ..PolicyConfig::default()
        });
        assert!(c.validate().is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(SimPolicy::Reactive.label(), "reactive");
        assert_eq!(
            SimPolicy::Proactive(PolicyConfig::default()).label(),
            "proactive"
        );
        assert_eq!(SimPolicy::Optimal.label(), "optimal");
    }
}
