//! The per-shard event loop of the sharded fleet simulation.
//!
//! A region-scale run (§9 evaluates fleets of hundreds of thousands of
//! databases) is embarrassingly parallel *almost* everywhere: policy
//! engines, segment accounting, and the Algorithm 5 scan are all
//! per-database or per-partition work.  This module exploits that by
//! partitioning the fleet by id-hash ([`DatabaseId::shard_of`]) into
//! `SimConfig::shards` shards and running one complete event loop per
//! shard, each with its own:
//!
//! * [`EventQueue`] over the shard's traces only;
//! * cluster slice ([`Cluster::with_node_range`]) with globally unique
//!   node ids, full `nodes × node_capacity` per shard;
//! * shard-local `sys.databases` partition ([`MetadataStore`]) scanned by
//!   a shard-local Algorithm 5 [`ProactiveResumeOp`] on the *same* tick
//!   schedule as every other shard;
//! * diagnostics runner and maintenance scheduler.
//!
//! # Determinism guarantee
//!
//! The merged report is a pure function of `(seed, traces)` regardless of
//! the shard count: every cross-shard quantity is either an integer sum
//! (segment totals, login/workflow counts, retry/giveup counters, stage
//! latency histograms, batch sizes per tick) or a deterministic k-way
//! merge (the telemetry log, the incident log).  No stateful RNG exists
//! anywhere in the loop: whether a workflow hangs (`workflow_hangs`),
//! whether a workflow *stage* fails, and how much jitter its backoff
//! draws ([`ResumeWorkflow`]) are all stateless per-key SplitMix64
//! draws, so fault behaviour does not depend on which shard processes a
//! database or in what order.  Fleet KPIs are computed
//! once, from the summed integer segment totals, never by averaging
//! per-shard ratios — which is also why an empty shard (zero databases
//! hash into it) contributes exactly nothing instead of skewing the
//! QoS/COGS fractions.
//!
//! The guarantee covers uncontended capacity (the default
//! `nodes × node_capacity` is sized so resumes never spill).  Under
//! deliberate capacity pressure the partitioning itself changes placement
//! dynamics — two databases that competed for one node may land in
//! different shards — exactly as moving a database to a different ring
//! would in production.

use crate::cluster::{AllocationOutcome, Cluster};
use crate::config::{SimConfig, SimPolicy};
use crate::diagnostics::DiagnosticsRunner;
use crate::events::{EventQueue, SimEvent};
use crate::fleet::FleetState;
use crate::obs::{SelfObservations, ShardObs};
#[cfg(feature = "strict-invariants")]
use prorp_core::LifecycleInvariants;
use prorp_core::{
    EngineAction, EngineCounters, EngineEvent, MaintenanceScheduler, MaintenanceStats, PolicyKind,
    ProactiveResumeOp, ResumeWorkflow, StageOutcome,
};
use prorp_forecast::SweepScratch;
use prorp_obs::ObsReport;
use prorp_storage::{
    backup_history, restore_backend, CompactionMode, CompactionScheduler, HistoryRead,
    MetadataStore, StorageBackend, StorageStats,
};
use prorp_telemetry::{
    IncidentKind, IncidentLog, SegmentAccumulator, SegmentKind, ShardCounters, TelemetryKind,
    TelemetryLog, WorkflowStats,
};
use prorp_types::{DatabaseId, DbState, ProrpError, Seconds, Timestamp};
use prorp_workload::Trace;
use std::borrow::Cow;
use std::collections::HashMap;
use std::time::Instant;

/// Validate the engine's post-event state against the shadow lifecycle
/// checker.  Compiled out (always `Ok`) unless `strict-invariants` is on.
#[cfg(feature = "strict-invariants")]
fn observe_shadow(
    fleet: &mut FleetState,
    idx: usize,
    now: Timestamp,
    event: EngineEvent,
) -> Result<(), ProrpError> {
    let after = fleet.engines.get(idx).state();
    fleet.shadows[idx].observe(now, event, after)
}

#[cfg(not(feature = "strict-invariants"))]
#[inline(always)]
fn observe_shadow(
    _fleet: &mut FleetState,
    _idx: usize,
    _now: Timestamp,
    _event: EngineEvent,
) -> Result<(), ProrpError> {
    Ok(())
}

/// One in-flight staged workflow plus the timestamp its single
/// outstanding [`SimEvent::WorkflowStageDone`] event was scheduled for.
/// A cancelled-and-restarted workflow leaves stale stage events in the
/// queue; comparing against `expected_at` rejects them.
struct ActiveWorkflow {
    wf: ResumeWorkflow,
    expected_at: Timestamp,
}

/// Everything one shard worker produced; the runner merges these into the
/// fleet-level [`SimReport`](crate::SimReport).
pub struct ShardOutcome {
    /// Per-database results in shard-trace order: `(id, closed segment
    /// accumulator, engine counters, history storage stats)`.
    pub dbs: Vec<(DatabaseId, SegmentAccumulator, EngineCounters, StorageStats)>,
    /// The shard's time-ordered telemetry log.
    pub telemetry: TelemetryLog,
    /// Algorithm 5 batch sizes, one entry per scan tick.
    pub resume_batches: Vec<usize>,
    /// Spill moves on this shard's cluster slice.
    pub spill_moves: u64,
    /// Load-balancing moves on this shard's cluster slice.
    pub balance_moves: u64,
    /// Over-subscription incidents on this shard's cluster slice.
    pub oversubscriptions: u64,
    /// Hung workflows the shard's diagnostics runner force-completed.
    pub mitigations: u64,
    /// Escalations: repeat stuck databases plus retry-budget exhaustions.
    pub incidents: u64,
    /// Staged workflows that exhausted their retry budget.
    pub giveups: u64,
    /// Staged-workflow telemetry: per-stage latency histograms plus
    /// retry/giveup/breaker counters.
    pub workflow: WorkflowStats,
    /// The shard's incident log (canonically ordered by the merge).
    pub incident_log: IncidentLog,
    /// Maintenance placement counters.
    pub maintenance: MaintenanceStats,
    /// Timing/throughput counters for this worker.
    pub counters: ShardCounters,
    /// The shard's observability output (`None` when observability is
    /// disabled in the config).
    pub obs: Option<ObsReport>,
}

/// Partition trace indices by database-id hash into `shard_count` groups.
///
/// Returns one `Vec` of indices into `traces` per shard; every trace
/// appears in exactly one group.  Within a group the original trace order
/// is preserved.
///
/// # Panics
///
/// Panics when `shard_count` is zero.
pub fn partition_fleet(traces: &[Trace], shard_count: usize) -> Vec<Vec<usize>> {
    assert!(shard_count > 0, "shard_count must be positive");
    let mut parts = vec![Vec::new(); shard_count];
    for (i, trace) in traces.iter().enumerate() {
        parts[trace.db.shard_of(shard_count)].push(i);
    }
    parts
}

/// Stateless fault-injection draw: does the resume workflow that database
/// `db` starts at `now` hang?
///
/// A pure function of `(seed, db, now)` via chained SplitMix64, so the
/// outcome is independent of shard layout and event interleaving — the
/// property that makes sharded runs reproduce the single-threaded run
/// bit-for-bit.
fn workflow_hangs(seed: u64, db: DatabaseId, now: Timestamp, probability: f64) -> bool {
    if probability <= 0.0 {
        return false;
    }
    let mut h = rand::splitmix64(seed ^ 0x5175_636B_5072_6F62); // stream tag
    h = rand::splitmix64(h ^ db.raw());
    h = rand::splitmix64(h ^ now.as_secs() as u64);
    // 53 mantissa bits → uniform in [0, 1).
    ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < probability
}

/// Execute the side effects an engine requested.
fn apply_actions(
    cfg: &SimConfig,
    actions: &[EngineAction],
    id: DatabaseId,
    now: Timestamp,
    queue: &mut EventQueue,
    metadata: &mut MetadataStore,
    cluster: &mut Cluster,
) {
    let is_optimal = matches!(cfg.policy, SimPolicy::Optimal);
    for action in actions {
        match action {
            EngineAction::Allocate => {
                // Allocation is performed by the event handlers (they
                // know the latency context); nothing extra here.
            }
            EngineAction::Reclaim => {
                cluster.release(id);
            }
            EngineAction::SetPredictedStart(pred) => {
                metadata.set_prediction(id, *pred);
                if is_optimal {
                    // The oracle policy bypasses the periodic scan and
                    // resumes exactly on time (zero-latency idealisation).
                    if let Some(at) = pred {
                        if *at >= now && *at < cfg.end {
                            queue.push(*at, SimEvent::ProactiveResume(id));
                        }
                    }
                }
            }
            EngineAction::ScheduleTimer(at, token) => {
                if *at < cfg.end {
                    queue.push(*at, SimEvent::EngineTimer(id, *token));
                }
            }
        }
    }
}

/// One shard's complete event-loop state, factored out of the former
/// monolithic `run_shard` function so that *drivers other than the DES*
/// can own the loop.
///
/// Two drivers exist today:
///
/// * the DES itself (`run_shard` / [`Simulation::run`]): register every
///   trace (which enqueues all its session events up front), then
///   [`run_to_end`](Self::run_to_end);
/// * the control-plane server's live driver: register databases with
///   empty traces, feed logins/logouts as they arrive over HTTP via
///   [`inject_login`](Self::inject_login) /
///   [`inject_logout`](Self::inject_logout), and advance the loop to the
///   wall (or virtual) clock's watermark with
///   [`step_until`](Self::step_until).
///
/// Both paths run the *identical* handler code over the *identical*
/// `(timestamp, priority, FIFO)`-ordered [`EventQueue`], which is what
/// makes the sim≡live differential suite's bit-identity assertion
/// possible rather than merely statistical.
///
/// [`Simulation::run`]: crate::Simulation::run
pub struct ShardDriver {
    cfg: SimConfig,
    started: Instant,
    counters: ShardCounters,
    queue: EventQueue,
    cluster: Cluster,
    metadata: MetadataStore,
    telemetry: TelemetryLog,
    diagnostics: DiagnosticsRunner,
    workflows: HashMap<DatabaseId, ActiveWorkflow>,
    workflow_stats: WorkflowStats,
    incident_log: IncidentLog,
    resume_op: ProactiveResumeOp,
    maintenance: MaintenanceScheduler,
    obs: Option<ShardObs>,
    scratch: prorp_forecast::SharedScratch,
    fleet: FleetState,
    balance_moves_history: u64,
    control_seeded: bool,
    /// The shard's LSM compaction worker, present only when the config
    /// asks for `CompactionMode::Background` on the LSM backend.  Every
    /// registered (and restored) store is attached to it; `finish()`
    /// detaches them all — a barrier that folds the worker's effort back
    /// into each store — before any stats are collected, which is what
    /// keeps reports bit-identical across compaction modes.
    compactor: Option<CompactionScheduler>,
    /// When the last `register()` call returned — the boundary between
    /// the registration and event-loop phases in the volatile wall-time
    /// breakdown.
    register_done: Option<Instant>,
}

impl ShardDriver {
    /// Build the shard's empty event-loop state.  `expected_dbs`
    /// pre-sizes the per-database arrays; an inexact hint costs a
    /// reallocation, nothing else.
    ///
    /// The config must already be validated ([`SimConfig::check`]);
    /// builder-produced configs always are.
    pub fn new(cfg: &SimConfig, shard: usize, expected_dbs: usize) -> Result<Self, ProrpError> {
        // Each shard owns a full-size slice of the region: `nodes` nodes
        // of `node_capacity`, with globally unique node ids.
        let first_node = u32::try_from(shard * cfg.nodes).map_err(|_| {
            ProrpError::Simulation(format!("node range for shard {shard} overflows u32"))
        })?;
        Ok(ShardDriver {
            started: Instant::now(),
            counters: ShardCounters::new(shard, expected_dbs),
            queue: EventQueue::new(),
            cluster: Cluster::with_node_range(first_node, cfg.nodes, cfg.node_capacity)?,
            metadata: MetadataStore::new(),
            telemetry: TelemetryLog::new(),
            diagnostics: DiagnosticsRunner::new(cfg.stuck_timeout),
            workflows: HashMap::new(),
            workflow_stats: WorkflowStats::default(),
            incident_log: IncidentLog::new(),
            // Every shard ticks on the same schedule (first run at
            // `cfg.start`, same period), so batch sizes merge
            // element-wise across shards.
            resume_op: ProactiveResumeOp::new(cfg.prewarm, cfg.resume_op_period, cfg.start)?,
            maintenance: MaintenanceScheduler::new(),
            // Disabled observability stays `None`: no allocations, no
            // handles, and every instrumentation site below is one
            // branch on the Option.
            obs: cfg.observe().enabled.then(|| ShardObs::new(cfg.observe())),
            // All the shard's incremental predictors share one
            // cursor-scratch buffer: engines live and run on this
            // worker (or server) thread only.
            scratch: SweepScratch::shared(),
            fleet: FleetState::with_capacity(cfg, expected_dbs),
            balance_moves_history: 0,
            control_seeded: false,
            compactor: (cfg.compaction_mode == CompactionMode::Background
                && cfg.storage_backend == StorageBackend::Lsm)
                .then(CompactionScheduler::new),
            register_done: None,
            cfg: cfg.clone(),
        })
    }

    /// Register one database: build its engine and segment book, place
    /// it on the cluster, seed `sys.databases`, enqueue the trace's
    /// session events clipped to `[start, end)`, and stagger its first
    /// maintenance due time.
    ///
    /// A live driver registers databases with *empty* traces (no
    /// pre-recorded sessions) and injects activity as it arrives; the
    /// registration side effects are identical either way, which keeps
    /// the two drivers' event queues in the same total order.
    pub fn register(&mut self, trace: &Trace) -> Result<(), ProrpError> {
        if self.fleet.try_index_of(trace.db).is_some() {
            return Err(ProrpError::Simulation(format!(
                "database {:?} registered twice on one shard",
                trace.db
            )));
        }
        let cfg = &self.cfg;
        self.fleet.push(cfg, trace, &self.scratch)?;
        if let Some(sched) = &self.compactor {
            // Background mode: the fresh store's compaction moves to the
            // shard's worker; the event loop will only enqueue flushes.
            let idx = self.fleet.len() - 1;
            self.fleet
                .engines
                .get_mut(idx)
                .history_mut()
                .attach_compaction(sched);
        }
        if cfg.observe().explain {
            // Decision provenance is captured inside the engine (it owns
            // the inputs — forecast, breaker, cache) and drained into the
            // trace after every event.
            let idx = self.fleet.len() - 1;
            self.fleet.engines.get_mut(idx).set_explain_enabled(true);
        }
        self.cluster.place(trace.db);
        self.metadata.set_state(trace.db, DbState::Resumed);
        for s in &trace.sessions {
            if s.start >= cfg.start && s.start < cfg.end {
                self.queue.push(s.start, SimEvent::ActivityStart(trace.db));
            }
            if s.end >= cfg.start && s.end < cfg.end {
                self.queue.push(s.end, SimEvent::ActivityEnd(trace.db));
            }
        }
        if let Some(p) = cfg.maintenance_period {
            // Stagger first due times across the fleet so jobs do not
            // all land in the same second.
            let stagger = Seconds((trace.db.raw() as i64 % p.as_secs().max(1)).max(1));
            self.queue
                .push(cfg.start + stagger, SimEvent::MaintenanceDue(trace.db));
        }
        self.counters.databases = self.fleet.len();
        self.register_done = Some(Instant::now());
        Ok(())
    }

    /// Seed the control-plane's periodic events (measurement window,
    /// Algorithm 5 scan, diagnostics, rebalance, observability
    /// snapshots).  Idempotent; call once after registration.
    pub fn start(&mut self) {
        if self.control_seeded {
            return;
        }
        self.control_seeded = true;
        let cfg = &self.cfg;
        self.queue.push(cfg.measure_from, SimEvent::MeasureStart);
        if !matches!(cfg.policy, SimPolicy::Optimal) {
            self.queue
                .push(self.resume_op.next_run(), SimEvent::ResumeOpTick);
        }
        if let Some(p) = cfg.diagnostics_period {
            self.queue.push(cfg.start + p, SimEvent::DiagnosticsTick);
        }
        if let Some(p) = cfg.rebalance_period {
            self.queue.push(cfg.start + p, SimEvent::RebalanceTick);
        }
        if let Some(p) = cfg.observe().snapshot_every {
            if cfg.start + p < cfg.end {
                self.queue.push(cfg.start + p, SimEvent::ObsSnapshot);
            }
        }
    }

    /// The shard's config.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Whether `id` is registered on this shard.
    pub fn contains(&self, id: DatabaseId) -> bool {
        self.fleet.try_index_of(id).is_some()
    }

    /// Databases registered on this shard.
    pub fn registered(&self) -> usize {
        self.fleet.len()
    }

    /// Current lifecycle state of `id`, if registered here.
    pub fn db_state(&self, id: DatabaseId) -> Option<DbState> {
        let idx = self.fleet.try_index_of(id)?;
        Some(self.fleet.engines.get(idx).state())
    }

    /// `id`'s currently published prediction, if any.
    pub fn db_prediction(&self, id: DatabaseId) -> Option<prorp_types::Prediction> {
        let idx = self.fleet.try_index_of(id)?;
        self.fleet.engines.get(idx).current_prediction()
    }

    /// `id`'s engine counters, if registered here.
    pub fn db_counters(&self, id: DatabaseId) -> Option<EngineCounters> {
        let idx = self.fleet.try_index_of(id)?;
        Some(self.fleet.engines.get(idx).counters())
    }

    /// The shard's incident log so far (retry exhaustions, stuck
    /// workflows) — what the server surfaces as HTTP 503s.
    pub fn incident_log(&self) -> &IncidentLog {
        &self.incident_log
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn next_event_ts(&self) -> Option<Timestamp> {
        self.queue.peek_ts()
    }

    /// A live (non-recorded) metrics snapshot for the `/metrics`
    /// endpoint; `None` when observability is disabled.
    pub fn metrics_snapshot(&self, at: Timestamp) -> Option<prorp_obs::MetricsSnapshot> {
        self.obs.as_ref().map(|o| o.live_snapshot(at))
    }

    /// Schedule a login for `id` at `at`.  Returns `false` (and
    /// schedules nothing) outside `[start, end)` — the same clipping
    /// registration applies to recorded sessions.
    pub fn inject_login(&mut self, at: Timestamp, id: DatabaseId) -> bool {
        self.inject(at, SimEvent::ActivityStart(id))
    }

    /// Schedule a logout for `id` at `at` (clipped like
    /// [`inject_login`](Self::inject_login)).
    pub fn inject_logout(&mut self, at: Timestamp, id: DatabaseId) -> bool {
        self.inject(at, SimEvent::ActivityEnd(id))
    }

    /// Schedule an operator-forced resume for `id` at `at`: delivered
    /// through the same pre-warm path as an Algorithm 5 selection, so a
    /// database that is serving or already warm ignores it.
    pub fn inject_forced_resume(&mut self, at: Timestamp, id: DatabaseId) -> bool {
        self.inject(at, SimEvent::ProactiveResume(id))
    }

    /// Schedule an operator-forced physical pause for `id` at `at`.
    /// The engine refuses it while the database is serving.
    pub fn inject_forced_pause(&mut self, at: Timestamp, id: DatabaseId) -> bool {
        self.inject(at, SimEvent::ForcedPause(id))
    }

    fn inject(&mut self, at: Timestamp, event: SimEvent) -> bool {
        if at < self.cfg.start || at >= self.cfg.end {
            return false;
        }
        self.queue.push(at, event);
        true
    }

    /// Drain the decision-provenance records the engine captured during
    /// the event just handled into the observability layer.  A no-op
    /// unless `ObsConfig::explain` is on.
    fn drain_decisions(&mut self, idx: usize, id: DatabaseId) {
        let Some(o) = self.obs.as_mut() else { return };
        if !o.explain_enabled() {
            return;
        }
        for (at, explain) in self.fleet.engines.get_mut(idx).drain_explains() {
            o.on_decision(at, id, explain);
        }
    }

    /// The latest recorded decision for `id` (live `why` route); `None`
    /// unless decision provenance is enabled and a decision was made.
    pub fn db_last_decision(
        &self,
        id: DatabaseId,
    ) -> Option<(Timestamp, prorp_obs::DecisionExplain)> {
        self.obs.as_ref().and_then(|o| o.last_decision(id))
    }

    /// The shard's SLO rollup so far (live `/v1/slo` route); `None`
    /// unless rollups are enabled.
    pub fn slo_series(&self) -> Option<&prorp_obs::SloSeries> {
        self.obs.as_ref().and_then(|o| o.slo_series())
    }

    /// Process every queued event strictly before `min(horizon, end)`.
    ///
    /// The DES's `run_to_end` is `step_until(end)`; a live driver calls
    /// this with its clock's watermark after committing the events that
    /// arrived before it.  Events at or past the horizon stay queued.
    pub fn step_until(&mut self, horizon: Timestamp) -> Result<(), ProrpError> {
        let stop = horizon.min(self.cfg.end);
        while let Some(ts) = self.queue.peek_ts() {
            if ts >= stop {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked event vanished");
            self.counters.events_processed += 1;
            self.handle_event(now, event)?;
        }
        Ok(())
    }

    /// Drain the event loop to the end of the simulated horizon.
    pub fn run_to_end(&mut self) -> Result<(), ProrpError> {
        self.step_until(self.cfg.end)
    }

    /// Handle one popped event — the body of the former `run_shard`
    /// match, verbatim.  An early `return Ok(())` is the old `continue`.
    fn handle_event(&mut self, now: Timestamp, event: SimEvent) -> Result<(), ProrpError> {
        let cfg = &self.cfg;
        match event {
            SimEvent::ObsSnapshot => {
                if self.obs.is_some() {
                    let register_end = self.register_done.unwrap_or(self.started);
                    let (stall_ns, offloaded_ns) = self.compaction_ns();
                    let observations = SelfObservations {
                        events_processed: self.counters.events_processed,
                        telemetry_events: self.telemetry.len() as u64,
                        databases: self.fleet.len(),
                        wall_clock_micros: self.started.elapsed().as_micros().min(u64::MAX as u128)
                            as u64,
                        workflows_in_flight: self.diagnostics.in_flight_count(),
                        register_micros: register_end.duration_since(self.started).as_micros()
                            as u64,
                        run_micros: register_end.elapsed().as_micros() as u64,
                        compaction_stall_micros: stall_ns / 1_000,
                        offloaded_compaction_micros: offloaded_ns / 1_000,
                    };
                    if let Some(o) = self.obs.as_mut() {
                        o.take_snapshot(now, observations);
                    }
                }
                if let Some(p) = cfg.observe().snapshot_every {
                    if now + p < cfg.end {
                        self.queue.push(now + p, SimEvent::ObsSnapshot);
                    }
                }
            }
            SimEvent::MeasureStart => {
                for acc in self.fleet.accs.iter_mut() {
                    acc.reset_keeping_open(now);
                }
            }
            SimEvent::ActivityStart(id) => {
                let idx = self.fleet.index_of(id);
                let was_state = self.fleet.engines.get(idx).state();
                let kind = self.fleet.engines.get(idx).kind();
                let prewarmed = matches!(
                    self.fleet.accs[idx].open_kind(),
                    Some(SegmentKind::ProactiveIdleWrong) | Some(SegmentKind::ProactiveIdleCorrect)
                );
                self.fleet.demand.set(idx, true);
                let obs_before = self
                    .obs
                    .as_ref()
                    .map(|_| self.fleet.engines.get(idx).counters());
                let actions = self
                    .fleet
                    .engines
                    .get_mut(idx)
                    .on_event(now, EngineEvent::ActivityStart);
                observe_shadow(&mut self.fleet, idx, now, EngineEvent::ActivityStart)?;
                let available =
                    was_state != DbState::PhysicallyPaused || kind == PolicyKind::Optimal;
                self.telemetry
                    .record(now, id, TelemetryKind::Login { available });
                if let Some(o) = self.obs.as_mut() {
                    o.on_engine_event(
                        now,
                        id,
                        was_state,
                        &obs_before.unwrap(),
                        self.fleet.engines.get(idx).state(),
                        &self.fleet.engines.get(idx).counters(),
                    );
                    o.on_login(now, id, available);
                }
                self.metadata.set_state(id, DbState::Resumed);
                // Hold compute while serving (idempotent).
                let outcome = self.cluster.allocate(id)?;
                if available {
                    if prewarmed {
                        self.fleet.accs[idx].reclassify_open(SegmentKind::ProactiveIdleCorrect);
                    }
                    self.fleet.accs[idx].transition(now, SegmentKind::Active);
                } else {
                    // Reactive resume: the customer waits out the staged
                    // allocation workflow (§2.2's delay; §7's stages).
                    self.fleet.accs[idx].transition(now, SegmentKind::Unavailable);
                    let mut move_penalty = Seconds::ZERO;
                    if matches!(outcome, AllocationOutcome::Moved { .. }) {
                        move_penalty = cfg.move_penalty;
                    }
                    self.diagnostics.workflow_started(id, now);
                    self.fleet.resume_in_flight.set(idx, true);
                    // A hung workflow schedules nothing; the diagnostics
                    // sweep is its only way out.
                    if !workflow_hangs(cfg.seed, id, now, cfg.stuck_probability) {
                        let wf = ResumeWorkflow::new(id, now, move_penalty);
                        let expected_at = wf.first_ready_at(cfg.fault());
                        self.queue
                            .push(expected_at, SimEvent::WorkflowStageDone(id));
                        self.workflows
                            .insert(id, ActiveWorkflow { wf, expected_at });
                    }
                }
                apply_actions(
                    cfg,
                    &actions,
                    id,
                    now,
                    &mut self.queue,
                    &mut self.metadata,
                    &mut self.cluster,
                );
                self.drain_decisions(idx, id);
            }
            SimEvent::ActivityEnd(id) => {
                let idx = self.fleet.index_of(id);
                if !self.fleet.demand.get(idx) {
                    return Ok(());
                }
                self.fleet.demand.set(idx, false);
                self.fleet.resume_in_flight.set(idx, false);
                // A still-running staged workflow is superseded: drop its
                // state (stale stage events are rejected by expected_at)
                // and retire it from the diagnostics queue.
                if self.workflows.remove(&id).is_some() {
                    self.diagnostics.workflow_completed(id);
                }
                let obs_before = self.obs.as_ref().map(|_| {
                    (
                        self.fleet.engines.get(idx).state(),
                        self.fleet.engines.get(idx).counters(),
                    )
                });
                let actions = self
                    .fleet
                    .engines
                    .get_mut(idx)
                    .on_event(now, EngineEvent::ActivityEnd);
                observe_shadow(&mut self.fleet, idx, now, EngineEvent::ActivityEnd)?;
                apply_actions(
                    cfg,
                    &actions,
                    id,
                    now,
                    &mut self.queue,
                    &mut self.metadata,
                    &mut self.cluster,
                );
                let state = self.fleet.engines.get(idx).state();
                self.metadata.set_state(id, state);
                if let Some(o) = self.obs.as_mut() {
                    let (before_state, before) = obs_before.unwrap();
                    o.on_engine_event(
                        now,
                        id,
                        before_state,
                        &before,
                        state,
                        &self.fleet.engines.get(idx).counters(),
                    );
                }
                self.drain_decisions(idx, id);
                match state {
                    DbState::LogicallyPaused => {
                        self.telemetry.record(now, id, TelemetryKind::LogicalPause);
                        self.fleet.accs[idx].transition(now, SegmentKind::LogicalPauseIdle);
                    }
                    DbState::PhysicallyPaused => {
                        self.telemetry.record(now, id, TelemetryKind::PhysicalPause);
                        self.fleet.accs[idx].transition(now, SegmentKind::Saved);
                    }
                    DbState::Resumed => {
                        // Engines always leave Resumed on ActivityEnd;
                        // defensive only.
                        self.fleet.accs[idx].transition(now, SegmentKind::Active);
                    }
                }
            }
            SimEvent::EngineTimer(id, token) => {
                let idx = self.fleet.index_of(id);
                let before = self.fleet.engines.get(idx).state();
                let obs_before = self
                    .obs
                    .as_ref()
                    .map(|_| self.fleet.engines.get(idx).counters());
                let actions = self
                    .fleet
                    .engines
                    .get_mut(idx)
                    .on_event(now, EngineEvent::Timer(token));
                observe_shadow(&mut self.fleet, idx, now, EngineEvent::Timer(token))?;
                apply_actions(
                    cfg,
                    &actions,
                    id,
                    now,
                    &mut self.queue,
                    &mut self.metadata,
                    &mut self.cluster,
                );
                let after = self.fleet.engines.get(idx).state();
                if before == DbState::LogicallyPaused && after == DbState::PhysicallyPaused {
                    self.telemetry.record(now, id, TelemetryKind::PhysicalPause);
                    self.fleet.accs[idx].transition(now, SegmentKind::Saved);
                }
                self.metadata.set_state(id, after);
                if let Some(o) = self.obs.as_mut() {
                    o.on_engine_event(
                        now,
                        id,
                        before,
                        &obs_before.unwrap(),
                        after,
                        &self.fleet.engines.get(idx).counters(),
                    );
                }
                self.drain_decisions(idx, id);
            }
            SimEvent::ResumeOpTick => {
                self.counters.resume_scans += 1;
                let selected = self
                    .resume_op
                    .run(now, std::slice::from_ref(&self.metadata));
                if let Some(o) = self.obs.as_mut() {
                    o.on_scan(selected.len());
                }
                for id in selected {
                    self.queue.push(now, SimEvent::ProactiveResume(id));
                }
                if self.resume_op.next_run() < cfg.end {
                    self.queue
                        .push(self.resume_op.next_run(), SimEvent::ResumeOpTick);
                }
            }
            SimEvent::ProactiveResume(id) => {
                let idx = self.fleet.index_of(id);
                if self.fleet.engines.get(idx).state() != DbState::PhysicallyPaused
                    || self.fleet.demand.get(idx)
                {
                    return Ok(()); // raced with a login
                }
                let obs_before = self.obs.as_ref().map(|_| {
                    (
                        self.fleet.engines.get(idx).state(),
                        self.fleet.engines.get(idx).counters(),
                    )
                });
                let actions = self
                    .fleet
                    .engines
                    .get_mut(idx)
                    .on_event(now, EngineEvent::ProactiveResume);
                observe_shadow(&mut self.fleet, idx, now, EngineEvent::ProactiveResume)?;
                if let Some(o) = self.obs.as_mut() {
                    let (before_state, before) = obs_before.unwrap();
                    o.on_engine_event(
                        now,
                        id,
                        before_state,
                        &before,
                        self.fleet.engines.get(idx).state(),
                        &self.fleet.engines.get(idx).counters(),
                    );
                }
                if actions.is_empty() {
                    return Ok(()); // the engine declined (e.g. reactive)
                }
                self.telemetry
                    .record(now, id, TelemetryKind::ProactiveResume);
                if let Some(o) = self.obs.as_mut() {
                    o.on_proactive_resume(now, id);
                }
                self.cluster.allocate(id)?;
                // Optimistically "wrong" until the login proves it
                // correct.
                self.fleet.accs[idx].transition(now, SegmentKind::ProactiveIdleWrong);
                self.metadata
                    .set_state(id, self.fleet.engines.get(idx).state());
                apply_actions(
                    cfg,
                    &actions,
                    id,
                    now,
                    &mut self.queue,
                    &mut self.metadata,
                    &mut self.cluster,
                );
                self.drain_decisions(idx, id);
            }
            SimEvent::WorkflowStageDone(id) => {
                // One stage of a staged resume finished executing: draw
                // its deterministic verdict and advance/retry/give up.
                let Some(active) = self.workflows.get_mut(&id) else {
                    return Ok(()); // workflow superseded or force-completed
                };
                if active.expected_at != now {
                    return Ok(()); // stale event of a cancelled workflow
                }
                let wf_started = active.wf.started();
                let executed_attempt = active.wf.attempt();
                match active.wf.on_stage_executed(now, cfg.seed, cfg.fault()) {
                    StageOutcome::Completed {
                        stage,
                        spent,
                        next_ready_at,
                    } => {
                        self.workflow_stats.record_stage(stage, spent);
                        if let Some(o) = self.obs.as_mut() {
                            o.on_stage_completed(now, id, stage, executed_attempt, spent);
                        }
                        match next_ready_at {
                            Some(at) => {
                                active.expected_at = at;
                                self.queue.push(at, SimEvent::WorkflowStageDone(id));
                            }
                            None => {
                                let total = now.since(wf_started);
                                self.workflow_stats.record_workflow(total);
                                if let Some(o) = self.obs.as_mut() {
                                    o.on_workflow_completed(now, id, wf_started);
                                }
                                self.workflows.remove(&id);
                                self.queue.push(now, SimEvent::WorkflowComplete(id));
                            }
                        }
                    }
                    StageOutcome::Retry {
                        stage,
                        attempt: next_attempt,
                        ready_at,
                    } => {
                        self.workflow_stats.retries += 1;
                        if let Some(o) = self.obs.as_mut() {
                            o.on_stage_retry(now, id, stage, next_attempt, ready_at.since(now));
                        }
                        active.expected_at = ready_at;
                        self.queue.push(ready_at, SimEvent::WorkflowStageDone(id));
                    }
                    StageOutcome::Exhausted { stage, attempts } => {
                        // Retry budget burned: escalate an incident and
                        // let the mitigation path force-complete the
                        // resume (the on-call engineer's fix).
                        self.workflow_stats.giveups += 1;
                        if let Some(o) = self.obs.as_mut() {
                            o.on_stage_exhausted(now, id, stage, attempts, wf_started);
                        }
                        self.workflows.remove(&id);
                        self.diagnostics.retry_exhausted(id);
                        self.incident_log
                            .push(now, id, IncidentKind::RetryExhausted { stage });
                        self.queue.push(now, SimEvent::WorkflowComplete(id));
                    }
                }
            }
            SimEvent::WorkflowComplete(id) => {
                let idx = self.fleet.index_of(id);
                self.diagnostics.workflow_completed(id);
                if !self.fleet.resume_in_flight.get(idx) {
                    return Ok(()); // superseded (activity ended meanwhile)
                }
                self.fleet.resume_in_flight.set(idx, false);
                match self.fleet.engines.get(idx).state() {
                    DbState::Resumed if self.fleet.demand.get(idx) => {
                        self.fleet.accs[idx].transition(now, SegmentKind::Active);
                    }
                    DbState::LogicallyPaused => {
                        self.fleet.accs[idx].transition(now, SegmentKind::LogicalPauseIdle);
                    }
                    _ => {}
                }
            }
            SimEvent::DiagnosticsTick => {
                for m in self.diagnostics.sweep(now) {
                    if let Some(o) = self.obs.as_mut() {
                        o.on_mitigation(now, m.db, m.escalated);
                    }
                    if m.escalated {
                        self.incident_log
                            .push(now, m.db, IncidentKind::StuckWorkflow);
                    }
                    // Mitigation force-completes the workflow now; drop
                    // any staged state so stale stage events are ignored.
                    self.workflows.remove(&m.db);
                    self.queue.push(now, SimEvent::WorkflowComplete(m.db));
                }
                if let Some(p) = cfg.diagnostics_period {
                    self.queue.push(now + p, SimEvent::DiagnosticsTick);
                }
            }
            SimEvent::MaintenanceDue(id) => {
                let idx = self.fleet.index_of(id);
                let prediction = self.fleet.engines.get(idx).current_prediction();
                let deadline = now + cfg.maintenance_deadline;
                let slot = self.maintenance.place(
                    now,
                    prediction.as_ref(),
                    cfg.maintenance_duration,
                    deadline,
                )?;
                if slot.start() < cfg.end {
                    self.queue.push(slot.start(), SimEvent::MaintenanceRun(id));
                }
                self.telemetry.record(
                    now,
                    id,
                    TelemetryKind::Maintenance {
                        forced: !slot.is_free(),
                    },
                );
                if let Some(p) = cfg.maintenance_period {
                    self.queue.push(now + p, SimEvent::MaintenanceDue(id));
                }
            }
            SimEvent::MaintenanceRun(id) => {
                // §3.3: maintenance resumes are NOT recorded as customer
                // activity and do not move the policy state machine.  A
                // job on a physically paused database briefly allocates
                // and releases compute (the backend load the scheduler
                // minimises); a job on a resumed or logically paused
                // database rides the existing allocation.
                let idx = self.fleet.index_of(id);
                if self.fleet.engines.get(idx).state() == DbState::PhysicallyPaused {
                    let _ = self.cluster.allocate(id)?;
                    self.cluster.release(id);
                }
            }
            SimEvent::RebalanceTick => {
                if let Some((moved, _, _)) = self.cluster.rebalance_step(cfg.rebalance_threshold) {
                    // Ship the history with the database (§3.3): the
                    // move serialises pages and restores them on the
                    // destination node.
                    let idx = self.fleet.index_of(moved);
                    let bytes = backup_history(self.fleet.engines.get(idx).history())?;
                    let restored = restore_backend(&bytes, cfg.storage_backend)?;
                    self.fleet.engines.get_mut(idx).restore_history(restored);
                    if let Some(sched) = &self.compactor {
                        // The restored store arrives in inline mode;
                        // re-attach it so background compaction resumes.
                        self.fleet
                            .engines
                            .get_mut(idx)
                            .history_mut()
                            .attach_compaction(sched);
                    }
                    self.telemetry.record(now, moved, TelemetryKind::Move);
                    if let Some(o) = self.obs.as_mut() {
                        o.on_move_with_history(now, moved, bytes.len() as u64);
                    }
                    self.balance_moves_history += 1;
                }
                if let Some(p) = cfg.rebalance_period {
                    self.queue.push(now + p, SimEvent::RebalanceTick);
                }
            }
            SimEvent::ForcedPause(id) => {
                let idx = self.fleet.index_of(id);
                if self.fleet.demand.get(idx) {
                    return Ok(()); // serving: the engine would refuse anyway
                }
                let before = self.fleet.engines.get(idx).state();
                let obs_before = self
                    .obs
                    .as_ref()
                    .map(|_| self.fleet.engines.get(idx).counters());
                let actions = self
                    .fleet
                    .engines
                    .get_mut(idx)
                    .on_event(now, EngineEvent::ForcedPause);
                observe_shadow(&mut self.fleet, idx, now, EngineEvent::ForcedPause)?;
                let after = self.fleet.engines.get(idx).state();
                if let Some(o) = self.obs.as_mut() {
                    o.on_engine_event(
                        now,
                        id,
                        before,
                        &obs_before.unwrap(),
                        after,
                        &self.fleet.engines.get(idx).counters(),
                    );
                }
                if actions.is_empty() {
                    return Ok(()); // refused (already physically paused)
                }
                // A pre-warm that had not yet been proven correct is
                // simply cancelled; the operator's decision wins.
                if self.workflows.remove(&id).is_some() {
                    self.diagnostics.workflow_completed(id);
                }
                self.fleet.resume_in_flight.set(idx, false);
                self.telemetry.record(now, id, TelemetryKind::PhysicalPause);
                self.fleet.accs[idx].transition(now, SegmentKind::Saved);
                self.metadata.set_state(id, after);
                apply_actions(
                    cfg,
                    &actions,
                    id,
                    now,
                    &mut self.queue,
                    &mut self.metadata,
                    &mut self.cluster,
                );
            }
        }
        Ok(())
    }

    /// Sum of (inline stall, offloaded worker) compaction wall-clock
    /// nanoseconds across the shard's engines.  Volatile diagnostics:
    /// these measure the simulator process, never the simulated world.
    fn compaction_ns(&self) -> (u64, u64) {
        let mut stall = 0u64;
        let mut offloaded = 0u64;
        for idx in 0..self.fleet.len() {
            let h = self.fleet.engines.get(idx).history();
            stall += h.compaction_stall_ns();
            offloaded += h.offloaded_compaction_ns();
        }
        (stall, offloaded)
    }

    /// Close the books: final segment accounting, invariant audits, the
    /// aligned end-of-run observability snapshot, and the mergeable
    /// [`ShardOutcome`].
    pub fn finish(mut self) -> Result<ShardOutcome, ProrpError> {
        let finish_started = Instant::now();
        let register_end = self.register_done.unwrap_or(self.started);
        self.counters.register_micros =
            register_end.duration_since(self.started).as_micros() as u64;
        self.counters.run_micros = finish_started.duration_since(register_end).as_micros() as u64;

        let cfg = &self.cfg;
        debug_assert_eq!(self.balance_moves_history, self.cluster.balance_moves);

        // Background compaction barrier: fold every worker's effort back
        // into its store and return to inline mode BEFORE any stats or
        // invariant collection, so reports are bit-identical across
        // compaction modes.  Dropping the scheduler joins the worker.
        if self.compactor.take().is_some() {
            for idx in 0..self.fleet.len() {
                self.fleet
                    .engines
                    .get_mut(idx)
                    .history_mut()
                    .detach_compaction();
            }
        }
        let (stall_ns, offloaded_ns) = self.compaction_ns();
        self.counters.compaction_stall_micros = stall_ns / 1_000;
        self.counters.offloaded_compaction_micros = offloaded_ns / 1_000;

        // Close the books.
        let mut db_results: Vec<(DatabaseId, SegmentAccumulator, EngineCounters, StorageStats)> =
            Vec::with_capacity(self.fleet.len());
        for idx in 0..self.fleet.len() {
            let id = self.fleet.ids[idx];
            self.fleet.accs[idx].close(cfg.end);
            #[cfg(feature = "strict-invariants")]
            {
                // History tuples must come back in strictly ascending
                // timestamp order from a structurally sound B-tree, and every
                // closed book must account for exactly the measured window.
                LifecycleInvariants::check_history(id, self.fleet.engines.get(idx).history())?;
                let measured = self.fleet.accs[idx].grand_total();
                let expected = cfg.end.since(cfg.measure_from);
                if measured != expected {
                    return Err(ProrpError::InvariantViolation(format!(
                        "db {id:?}: segment totals cover {measured:?} of a \
                     {expected:?} measurement window"
                    )));
                }
            }
            let engine = self.fleet.engines.get(idx);
            db_results.push((
                id,
                self.fleet.accs[idx],
                engine.counters(),
                engine.history().stats(),
            ));
        }

        self.counters.telemetry_events = self.telemetry.len() as u64;
        self.counters.set_wall_clock(self.started.elapsed());

        // Predictor circuit-breaker activity lives in the per-engine
        // counters; fold the shard totals into the workflow telemetry.
        self.workflow_stats.breaker_opens = db_results.iter().map(|r| r.2.breaker_opens).sum();
        self.workflow_stats.breaker_fallbacks =
            db_results.iter().map(|r| r.2.breaker_fallbacks).sum();

        // The end-of-run snapshot is always taken at `cfg.end`, on every
        // shard, so the merged series stays aligned.
        let obs_report = self.obs.map(|mut o| {
            o.take_snapshot(
                cfg.end,
                SelfObservations {
                    events_processed: self.counters.events_processed,
                    telemetry_events: self.counters.telemetry_events,
                    databases: self.fleet.len(),
                    wall_clock_micros: self.counters.wall_clock_micros,
                    workflows_in_flight: self.diagnostics.in_flight_count(),
                    register_micros: self.counters.register_micros,
                    run_micros: self.counters.run_micros,
                    compaction_stall_micros: self.counters.compaction_stall_micros,
                    offloaded_compaction_micros: self.counters.offloaded_compaction_micros,
                },
            );
            o.finish()
        });

        self.counters.finish_micros = finish_started.elapsed().as_micros() as u64;
        Ok(ShardOutcome {
            dbs: db_results,
            telemetry: self.telemetry,
            resume_batches: self.resume_op.batch_sizes().to_vec(),
            spill_moves: self.cluster.spill_moves,
            balance_moves: self.cluster.balance_moves,
            oversubscriptions: self.cluster.oversubscriptions,
            mitigations: self.diagnostics.mitigations,
            incidents: self.diagnostics.incidents,
            giveups: self.diagnostics.giveups,
            workflow: self.workflow_stats,
            incident_log: self.incident_log,
            maintenance: self.maintenance.stats(),
            counters: self.counters,
            obs: obs_report,
        })
    }
}

/// Run one shard's complete event loop over `traces` (the shard's subset
/// of the fleet, consumed one trace at a time so a streamed source never
/// materialises the whole partition) and return its mergeable outcome.
/// `expected_dbs` pre-sizes the per-database arrays; an inexact hint
/// costs a reallocation, nothing else.
///
/// This is now a thin wrapper over [`ShardDriver`]: register every
/// trace, seed the control events, drain to the horizon, close the
/// books.  Every pre-existing determinism test therefore exercises the
/// extracted driver.
pub(crate) fn run_shard<'a, I>(
    cfg: &SimConfig,
    shard: usize,
    expected_dbs: usize,
    traces: I,
) -> Result<ShardOutcome, ProrpError>
where
    I: IntoIterator<Item = Cow<'a, Trace>>,
{
    let mut driver = ShardDriver::new(cfg, shard, expected_dbs)?;
    for trace in traces {
        driver.register(trace.as_ref())?;
    }
    driver.start();
    driver.run_to_end()?;
    driver.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prorp_types::Session;

    fn trace(id: u64) -> Trace {
        let sessions = vec![Session::new(Timestamp(100), Timestamp(200)).unwrap()];
        Trace::new(DatabaseId(id), "test", sessions).unwrap()
    }

    #[test]
    fn partition_covers_every_trace_exactly_once() {
        let traces: Vec<Trace> = (0..100).map(trace).collect();
        for shards in [1usize, 2, 3, 8] {
            let parts = partition_fleet(&traces, shards);
            assert_eq!(parts.len(), shards);
            let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<usize>>(), "{shards} shards");
        }
    }

    #[test]
    fn fault_injection_is_stateless_and_respects_extremes() {
        let (db, at) = (DatabaseId(7), Timestamp(12_345));
        assert!(!workflow_hangs(1, db, at, 0.0));
        assert!(workflow_hangs(1, db, at, 1.0));
        // Pure function: same inputs, same outcome.
        assert_eq!(
            workflow_hangs(42, db, at, 0.5),
            workflow_hangs(42, db, at, 0.5)
        );
        // Roughly calibrated: p=0.3 over many draws lands near 30%.
        let hits = (0..10_000)
            .filter(|i| workflow_hangs(9, DatabaseId(*i), Timestamp(500), 0.3))
            .count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
