//! The diagnostics-and-mitigation runner (§7).
//!
//! "The diagnostics and mitigation runner monitors the number of
//! databases in the proactive resume and physical pause queues and the
//! resource allocation and reclamation progress.  The runner makes sure
//! that these queues drain and mitigates databases that get stuck during
//! resume or pause.  In rare cases, this automatic mitigation process
//! times out or fails, incidents are triggered and resolved by an
//! on-call engineer."
//!
//! The simulator injects hangs into resume workflows with a configurable
//! probability; this runner detects workflows older than the timeout,
//! force-completes them (a *mitigation*), and escalates databases that
//! get stuck a second time as *incidents*.

use prorp_types::{DatabaseId, Seconds, Timestamp};
use std::collections::{HashMap, HashSet};

/// Tracks in-flight resume workflows and mitigates hung ones.
#[derive(Clone, Debug)]
pub struct DiagnosticsRunner {
    timeout: Seconds,
    in_flight: HashMap<DatabaseId, Timestamp>,
    previously_mitigated: HashSet<DatabaseId>,
    /// Hung workflows force-completed.
    pub mitigations: u64,
    /// Repeat offenders escalated to the on-call engineer.
    pub incidents: u64,
}

impl DiagnosticsRunner {
    /// A runner that mitigates workflows older than `timeout`.
    pub fn new(timeout: Seconds) -> Self {
        DiagnosticsRunner {
            timeout,
            in_flight: HashMap::new(),
            previously_mitigated: HashSet::new(),
            mitigations: 0,
            incidents: 0,
        }
    }

    /// A resume workflow started for `db`.
    pub fn workflow_started(&mut self, db: DatabaseId, now: Timestamp) {
        self.in_flight.insert(db, now);
    }

    /// A resume workflow completed normally.
    pub fn workflow_completed(&mut self, db: DatabaseId) {
        self.in_flight.remove(&db);
    }

    /// Current queue depth (monitored quantity).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// One periodic sweep: returns the databases whose workflows exceeded
    /// the timeout, removing them from the in-flight set.  Each is a
    /// mitigation; a database mitigated before escalates to an incident.
    pub fn sweep(&mut self, now: Timestamp) -> Vec<DatabaseId> {
        let mut stuck: Vec<DatabaseId> = self
            .in_flight
            .iter()
            .filter(|(_, started)| now - **started >= self.timeout)
            .map(|(db, _)| *db)
            .collect();
        stuck.sort_unstable();
        for db in &stuck {
            self.in_flight.remove(db);
            self.mitigations += 1;
            if !self.previously_mitigated.insert(*db) {
                self.incidents += 1;
            }
        }
        stuck
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(id: u64) -> DatabaseId {
        DatabaseId(id)
    }

    #[test]
    fn completed_workflows_are_not_mitigated() {
        let mut d = DiagnosticsRunner::new(Seconds(100));
        d.workflow_started(db(1), Timestamp(0));
        d.workflow_completed(db(1));
        assert!(d.sweep(Timestamp(1_000)).is_empty());
        assert_eq!(d.mitigations, 0);
    }

    #[test]
    fn hung_workflows_are_mitigated_after_timeout() {
        let mut d = DiagnosticsRunner::new(Seconds(100));
        d.workflow_started(db(1), Timestamp(0));
        d.workflow_started(db(2), Timestamp(50));
        assert!(d.sweep(Timestamp(99)).is_empty(), "not yet due");
        assert_eq!(d.sweep(Timestamp(100)), vec![db(1)]);
        assert_eq!(d.mitigations, 1);
        assert_eq!(d.in_flight_count(), 1);
        assert_eq!(d.sweep(Timestamp(150)), vec![db(2)]);
        assert_eq!(d.mitigations, 2);
        assert_eq!(d.incidents, 0);
    }

    #[test]
    fn repeat_offenders_become_incidents() {
        let mut d = DiagnosticsRunner::new(Seconds(10));
        d.workflow_started(db(7), Timestamp(0));
        d.sweep(Timestamp(10));
        d.workflow_started(db(7), Timestamp(100));
        d.sweep(Timestamp(110));
        assert_eq!(d.mitigations, 2);
        assert_eq!(d.incidents, 1);
    }

    #[test]
    fn sweep_output_is_deterministic() {
        let mut d = DiagnosticsRunner::new(Seconds(1));
        for id in [5, 3, 9, 1] {
            d.workflow_started(db(id), Timestamp(0));
        }
        assert_eq!(d.sweep(Timestamp(10)), vec![db(1), db(3), db(5), db(9)]);
    }
}
