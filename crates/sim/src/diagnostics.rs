//! The diagnostics-and-mitigation runner (§7).
//!
//! "The diagnostics and mitigation runner monitors the number of
//! databases in the proactive resume and physical pause queues and the
//! resource allocation and reclamation progress.  The runner makes sure
//! that these queues drain and mitigates databases that get stuck during
//! resume or pause.  In rare cases, this automatic mitigation process
//! times out or fails, incidents are triggered and resolved by an
//! on-call engineer."
//!
//! Two fault paths feed the runner:
//!
//! * *hangs* — a workflow injected to hang schedules no further events;
//!   the periodic [`sweep`](DiagnosticsRunner::sweep) detects workflows
//!   older than the timeout and force-completes them (a *mitigation*).
//!   A database mitigated a second time escalates to an *incident*;
//! * *retry exhaustion* — a staged workflow that burned its whole retry
//!   budget reports through
//!   [`retry_exhausted`](DiagnosticsRunner::retry_exhausted); every
//!   give-up escalates to an incident immediately (the backoff schedule
//!   already was the mitigation).

use prorp_types::{DatabaseId, Seconds, Timestamp};
use std::collections::{HashMap, HashSet};

/// One force-completion issued by a [`sweep`](DiagnosticsRunner::sweep).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mitigation {
    /// The database whose workflow was force-completed.
    pub db: DatabaseId,
    /// Whether this mitigation escalated to an incident (the database
    /// was already mitigated once before).
    pub escalated: bool,
}

/// Tracks in-flight resume workflows and mitigates hung ones.
#[derive(Clone, Debug)]
pub struct DiagnosticsRunner {
    timeout: Seconds,
    in_flight: HashMap<DatabaseId, Timestamp>,
    previously_mitigated: HashSet<DatabaseId>,
    peak_in_flight: usize,
    /// Hung workflows force-completed.
    pub mitigations: u64,
    /// Escalations to the on-call engineer: repeat-stuck databases plus
    /// every retry-budget exhaustion.
    pub incidents: u64,
    /// Staged workflows that exhausted their retry budget.
    pub giveups: u64,
}

impl DiagnosticsRunner {
    /// A runner that mitigates workflows older than `timeout`.
    pub fn new(timeout: Seconds) -> Self {
        DiagnosticsRunner {
            timeout,
            in_flight: HashMap::new(),
            previously_mitigated: HashSet::new(),
            peak_in_flight: 0,
            mitigations: 0,
            incidents: 0,
            giveups: 0,
        }
    }

    /// A resume workflow started for `db`.
    pub fn workflow_started(&mut self, db: DatabaseId, now: Timestamp) {
        self.in_flight.insert(db, now);
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight.len());
    }

    /// A resume workflow completed normally.
    pub fn workflow_completed(&mut self, db: DatabaseId) {
        self.in_flight.remove(&db);
    }

    /// A staged workflow for `db` exhausted its retry budget: remove it
    /// from the queue, count the give-up, and escalate an incident.
    pub fn retry_exhausted(&mut self, db: DatabaseId) {
        self.in_flight.remove(&db);
        self.previously_mitigated.insert(db);
        self.giveups += 1;
        self.incidents += 1;
    }

    /// Current queue depth (monitored quantity).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Deepest the in-flight queue ever got (monitored quantity: the §7
    /// runner watches that these queues drain).
    pub fn peak_in_flight(&self) -> usize {
        self.peak_in_flight
    }

    /// Register the runner's observability handles
    /// ([`DiagnosticsMetrics`](crate::obs::DiagnosticsMetrics)) against a
    /// shard-local metrics registry.
    pub fn register_metrics(reg: &prorp_obs::MetricsRegistry) -> crate::obs::DiagnosticsMetrics {
        crate::obs::DiagnosticsMetrics::register(reg)
    }

    /// One periodic sweep: returns a [`Mitigation`] for every workflow
    /// that exceeded the timeout, removing it from the in-flight set.
    /// A database mitigated (or given up on) before escalates.
    pub fn sweep(&mut self, now: Timestamp) -> Vec<Mitigation> {
        let mut stuck: Vec<DatabaseId> = self
            .in_flight
            .iter()
            .filter(|(_, started)| now - **started >= self.timeout)
            .map(|(db, _)| *db)
            .collect();
        stuck.sort_unstable();
        stuck
            .into_iter()
            .map(|db| {
                self.in_flight.remove(&db);
                self.mitigations += 1;
                let escalated = !self.previously_mitigated.insert(db);
                if escalated {
                    self.incidents += 1;
                }
                Mitigation { db, escalated }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(id: u64) -> DatabaseId {
        DatabaseId(id)
    }

    fn dbs(sweep: &[Mitigation]) -> Vec<DatabaseId> {
        sweep.iter().map(|m| m.db).collect()
    }

    #[test]
    fn completed_workflows_are_not_mitigated() {
        let mut d = DiagnosticsRunner::new(Seconds(100));
        d.workflow_started(db(1), Timestamp(0));
        d.workflow_completed(db(1));
        assert!(d.sweep(Timestamp(1_000)).is_empty());
        assert_eq!(d.mitigations, 0);
    }

    #[test]
    fn hung_workflows_are_mitigated_after_timeout() {
        let mut d = DiagnosticsRunner::new(Seconds(100));
        d.workflow_started(db(1), Timestamp(0));
        d.workflow_started(db(2), Timestamp(50));
        assert!(d.sweep(Timestamp(99)).is_empty(), "not yet due");
        assert_eq!(dbs(&d.sweep(Timestamp(100))), vec![db(1)]);
        assert_eq!(d.mitigations, 1);
        assert_eq!(d.in_flight_count(), 1);
        assert_eq!(dbs(&d.sweep(Timestamp(150))), vec![db(2)]);
        assert_eq!(d.mitigations, 2);
        assert_eq!(d.incidents, 0);
    }

    #[test]
    fn queue_drains_after_mitigation_and_peak_is_tracked() {
        let mut d = DiagnosticsRunner::new(Seconds(10));
        for id in 0..5 {
            d.workflow_started(db(id), Timestamp(0));
        }
        assert_eq!(d.in_flight_count(), 5);
        assert_eq!(d.peak_in_flight(), 5);
        d.workflow_completed(db(0));
        d.workflow_completed(db(1));
        assert_eq!(d.sweep(Timestamp(10)).len(), 3, "the rest are swept");
        assert_eq!(d.in_flight_count(), 0, "queue fully drained");
        assert!(d.sweep(Timestamp(1_000)).is_empty(), "nothing left");
        // Peak is a high-water mark, not the current depth.
        d.workflow_started(db(9), Timestamp(20));
        assert_eq!(d.peak_in_flight(), 5);
    }

    #[test]
    fn second_stuck_workflow_escalates() {
        let mut d = DiagnosticsRunner::new(Seconds(10));
        d.workflow_started(db(7), Timestamp(0));
        let first = d.sweep(Timestamp(10));
        assert_eq!(
            first,
            vec![Mitigation {
                db: db(7),
                escalated: false
            }]
        );
        d.workflow_started(db(7), Timestamp(100));
        let second = d.sweep(Timestamp(110));
        assert_eq!(
            second,
            vec![Mitigation {
                db: db(7),
                escalated: true
            }]
        );
        assert_eq!(d.mitigations, 2);
        assert_eq!(d.incidents, 1);
    }

    #[test]
    fn retry_exhaustion_is_an_immediate_incident() {
        let mut d = DiagnosticsRunner::new(Seconds(10));
        d.workflow_started(db(3), Timestamp(0));
        d.retry_exhausted(db(3));
        assert_eq!(d.in_flight_count(), 0);
        assert_eq!(d.giveups, 1);
        assert_eq!(d.incidents, 1);
        assert_eq!(d.mitigations, 0, "give-ups are not sweep mitigations");
        // The database is marked: a later stuck workflow escalates too.
        d.workflow_started(db(3), Timestamp(100));
        let swept = d.sweep(Timestamp(200));
        assert!(swept[0].escalated);
        assert_eq!(d.incidents, 2);
    }

    #[test]
    fn sweep_output_is_deterministic() {
        let mut d = DiagnosticsRunner::new(Seconds(1));
        for id in [5, 3, 9, 1] {
            d.workflow_started(db(id), Timestamp(0));
        }
        assert_eq!(
            dbs(&d.sweep(Timestamp(10))),
            vec![db(1), db(3), db(5), db(9)]
        );
    }
}
