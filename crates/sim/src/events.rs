//! The simulator's event queue.
//!
//! Events are totally ordered by `(timestamp, priority, sequence)`.
//! Priority settles same-second ties the way the real control plane
//! would: finished workflows and pre-warms take effect before the login
//! that benefits from them, and logins precede logouts.

use prorp_core::TimerToken;
use prorp_types::{DatabaseId, Timestamp};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A simulation event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimEvent {
    /// A periodic observability metrics snapshot is due.  Runs before
    /// every other event at its instant, so a snapshot at `T` covers
    /// exactly the events strictly before `T` — a shard-layout-invariant
    /// cut of the run.
    ObsSnapshot,
    /// The measurement window opens (KPI accumulators re-base).
    MeasureStart,
    /// One stage of a staged resume workflow finished executing for this
    /// database (evaluate its deterministic fault draw: advance, retry,
    /// or give up).
    WorkflowStageDone(DatabaseId),
    /// A resume (allocation) workflow finished for this database.
    WorkflowComplete(DatabaseId),
    /// The control plane pre-warms this database (Algorithm 5 delivery).
    ProactiveResume(DatabaseId),
    /// The periodic proactive-resume scan fires.
    ResumeOpTick,
    /// The periodic diagnostics-and-mitigation runner fires (§7).
    DiagnosticsTick,
    /// The periodic load-balancing step fires.
    RebalanceTick,
    /// A maintenance job becomes due for this database (schedule it).
    MaintenanceDue(DatabaseId),
    /// A scheduled maintenance job starts for this database.
    MaintenanceRun(DatabaseId),
    /// A policy-engine timer fires.
    EngineTimer(DatabaseId, TimerToken),
    /// Customer activity starts (login).
    ActivityStart(DatabaseId),
    /// Customer activity ends.
    ActivityEnd(DatabaseId),
    /// An operator forced an immediate physical pause through the
    /// control-plane API.  Appended after the original variants so the
    /// established relative priorities are untouched; the DES itself
    /// never schedules it, only external drivers do.
    ForcedPause(DatabaseId),
}

impl SimEvent {
    /// Tie-break priority at equal timestamps (lower runs first).
    fn priority(&self) -> u8 {
        match self {
            SimEvent::ObsSnapshot => 0,
            SimEvent::MeasureStart => 1,
            SimEvent::WorkflowStageDone(_) => 2,
            SimEvent::WorkflowComplete(_) => 3,
            SimEvent::ProactiveResume(_) => 4,
            SimEvent::ResumeOpTick => 5,
            SimEvent::DiagnosticsTick => 6,
            SimEvent::RebalanceTick => 7,
            SimEvent::MaintenanceDue(_) => 8,
            SimEvent::MaintenanceRun(_) => 9,
            SimEvent::EngineTimer(..) => 10,
            SimEvent::ActivityStart(_) => 11,
            SimEvent::ActivityEnd(_) => 12,
            SimEvent::ForcedPause(_) => 13,
        }
    }

    /// Tie-break priority at equal timestamps (lower runs first) — the
    /// public form external drivers use to reproduce the queue's total
    /// order when committing buffered events.
    pub fn tie_priority(&self) -> u8 {
        self.priority()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Scheduled {
    ts: Timestamp,
    priority: u8,
    seq: u64,
    event: SimEvent,
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse for earliest-first.
        (other.ts, other.priority, other.seq).cmp(&(self.ts, self.priority, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Earliest-first event queue with stable FIFO tie-breaking.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule `event` at `ts`.
    pub fn push(&mut self, ts: Timestamp, event: SimEvent) {
        self.seq += 1;
        self.heap.push(Scheduled {
            ts,
            priority: event.priority(),
            seq: self.seq,
            event,
        });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(Timestamp, SimEvent)> {
        self.heap.pop().map(|s| (s.ts, s.event))
    }

    /// Timestamp of the earliest queued event without removing it —
    /// what lets a driver stop *before* a horizon instead of after
    /// popping past it.
    pub fn peek_ts(&self) -> Option<Timestamp> {
        self.heap.peek().map(|s| s.ts)
    }

    /// Events still queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(id: u64) -> DatabaseId {
        DatabaseId(id)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Timestamp(30), SimEvent::ActivityStart(db(1)));
        q.push(Timestamp(10), SimEvent::ActivityStart(db(2)));
        q.push(Timestamp(20), SimEvent::ActivityEnd(db(3)));
        let order: Vec<i64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_secs())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn same_second_ties_resolve_by_priority() {
        let mut q = EventQueue::new();
        let t = Timestamp(100);
        q.push(t, SimEvent::ActivityEnd(db(1)));
        q.push(t, SimEvent::ActivityStart(db(1)));
        q.push(t, SimEvent::ProactiveResume(db(1)));
        q.push(t, SimEvent::WorkflowComplete(db(1)));
        q.push(t, SimEvent::WorkflowStageDone(db(1)));
        q.push(t, SimEvent::ResumeOpTick);
        q.push(t, SimEvent::ObsSnapshot);
        let order: Vec<SimEvent> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                SimEvent::ObsSnapshot,
                SimEvent::WorkflowStageDone(db(1)),
                SimEvent::WorkflowComplete(db(1)),
                SimEvent::ProactiveResume(db(1)),
                SimEvent::ResumeOpTick,
                SimEvent::ActivityStart(db(1)),
                SimEvent::ActivityEnd(db(1)),
            ]
        );
    }

    #[test]
    fn equal_everything_is_fifo() {
        let mut q = EventQueue::new();
        let t = Timestamp(5);
        q.push(t, SimEvent::ActivityStart(db(1)));
        q.push(t, SimEvent::ActivityStart(db(2)));
        q.push(t, SimEvent::ActivityStart(db(3)));
        let order: Vec<SimEvent> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec![
                SimEvent::ActivityStart(db(1)),
                SimEvent::ActivityStart(db(2)),
                SimEvent::ActivityStart(db(3)),
            ]
        );
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Timestamp(1), SimEvent::ResumeOpTick);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
