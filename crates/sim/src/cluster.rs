//! A cluster of nodes: placement, allocation with spill-over moves, and
//! load balancing.
//!
//! §1: "In the worst case, there is not enough resource capacity on the
//! node to resume the resources for a database.  Such database must be
//! moved to another node with higher available amount of resources" —
//! the move costs extra resume latency, which is exactly the penalty the
//! proactive policy's pre-warming avoids.

use crate::node::Node;
use prorp_types::{DatabaseId, NodeId, ProrpError};
use std::collections::HashMap;

/// Outcome of an allocation request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocationOutcome {
    /// Allocated on the database's home node.
    OnHomeNode,
    /// The home node was full; the database moved to another node first.
    Moved {
        /// Where the database now lives.
        to: NodeId,
    },
    /// Every node is full; the allocation was forced on the home node
    /// beyond nominal capacity (an over-subscription incident).
    Oversubscribed,
}

/// A region's cluster of compute nodes.
#[derive(Clone, Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    /// Raw id of the first node; node ids are `first_node..first_node +
    /// nodes.len()`.  The sharded simulator gives each shard its own
    /// cluster with a distinct node range so reports never confuse two
    /// shards' nodes.
    first_node: u32,
    home_of: HashMap<DatabaseId, NodeId>,
    /// Databases moved because their home node was full on resume.
    pub spill_moves: u64,
    /// Load-balancing moves executed.
    pub balance_moves: u64,
    /// Forced allocations beyond nominal capacity.
    pub oversubscriptions: u64,
}

impl Cluster {
    /// Build `node_count` nodes of `capacity` units each, with node ids
    /// `0..node_count`.
    ///
    /// # Errors
    ///
    /// Rejects an empty cluster or zero capacity.
    pub fn new(node_count: usize, capacity: usize) -> Result<Self, ProrpError> {
        Cluster::with_node_range(0, node_count, capacity)
    }

    /// Build `node_count` nodes of `capacity` units each, with node ids
    /// `first_node..first_node + node_count` — shard `s` of a sharded
    /// simulation uses `first_node = s * node_count` so every node id in
    /// the region is globally unique.
    ///
    /// # Errors
    ///
    /// Rejects an empty cluster, zero capacity, or a node range that
    /// overflows `u32`.
    pub fn with_node_range(
        first_node: u32,
        node_count: usize,
        capacity: usize,
    ) -> Result<Self, ProrpError> {
        if node_count == 0 || capacity == 0 {
            return Err(ProrpError::Simulation(format!(
                "cluster needs nodes and capacity, got {node_count} x {capacity}"
            )));
        }
        if u32::try_from(node_count)
            .ok()
            .and_then(|n| first_node.checked_add(n))
            .is_none()
        {
            return Err(ProrpError::Simulation(format!(
                "node range {first_node}..+{node_count} overflows"
            )));
        }
        Ok(Cluster {
            nodes: (0..node_count)
                .map(|i| Node::new(NodeId(first_node + i as u32), capacity))
                .collect(),
            first_node,
            home_of: HashMap::new(),
            spill_moves: 0,
            balance_moves: 0,
            oversubscriptions: 0,
        })
    }

    fn idx(&self, id: NodeId) -> usize {
        (id.raw() - self.first_node) as usize
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        let i = self.idx(id);
        &mut self.nodes[i]
    }

    /// The node a database is homed on.
    pub fn home_of(&self, db: DatabaseId) -> Option<NodeId> {
        self.home_of.get(&db).copied()
    }

    /// All nodes (read-only).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total units in use across the cluster.
    pub fn total_in_use(&self) -> usize {
        self.nodes.iter().map(Node::in_use).sum()
    }

    /// Place a new database on the node with the fewest homed databases.
    pub fn place(&mut self, db: DatabaseId) -> NodeId {
        let target = self
            .nodes
            .iter()
            .min_by_key(|n| n.homed_count())
            .expect("cluster is non-empty")
            .id();
        self.node_mut(target).add_home(db);
        self.home_of.insert(db, target);
        target
    }

    /// Allocate a compute unit for `db`, spilling to the least-loaded
    /// node when the home node is full (§1's forced move).
    ///
    /// # Errors
    ///
    /// Fails only when `db` was never placed.
    pub fn allocate(&mut self, db: DatabaseId) -> Result<AllocationOutcome, ProrpError> {
        let home = self
            .home_of(db)
            .ok_or_else(|| ProrpError::Simulation(format!("{db} was never placed")))?;
        if self.node_mut(home).allocate(db).is_ok() {
            return Ok(AllocationOutcome::OnHomeNode);
        }
        // Home node full: find the node with the most free units.
        let target = self
            .nodes
            .iter()
            .max_by_key(|n| n.free())
            .expect("cluster is non-empty")
            .id();
        if self.nodes[self.idx(target)].free() == 0 {
            // Whole cluster full: force the allocation (over-subscribe).
            self.oversubscriptions += 1;
            let node = self.node_mut(home);
            node.add_home(db);
            // Bypass the capacity check by growing effective use: model
            // over-subscription by releasing nothing and tracking the
            // incident; the unit is accounted on the home node.
            // (Node::allocate refuses, so we re-home and record only.)
            return Ok(AllocationOutcome::Oversubscribed);
        }
        self.move_database(db, target)?;
        self.node_mut(target)
            .allocate(db)
            .expect("target had free capacity");
        self.spill_moves += 1;
        Ok(AllocationOutcome::Moved { to: target })
    }

    /// Release `db`'s compute unit.
    pub fn release(&mut self, db: DatabaseId) {
        if let Some(home) = self.home_of(db) {
            self.node_mut(home).release(db);
        }
    }

    /// Re-home `db` onto `target` (history transfer is the caller's job).
    pub fn move_database(&mut self, db: DatabaseId, target: NodeId) -> Result<(), ProrpError> {
        let home = self
            .home_of(db)
            .ok_or_else(|| ProrpError::Simulation(format!("{db} was never placed")))?;
        if home == target {
            return Ok(());
        }
        let had_allocation = self.nodes[self.idx(home)].has_allocation(db);
        self.node_mut(home).remove_home(db);
        let t = self.node_mut(target);
        t.add_home(db);
        if had_allocation {
            t.allocate(db)?;
        }
        self.home_of.insert(db, target);
        Ok(())
    }

    /// One load-balancing step: if the spread between the most- and
    /// least-loaded nodes exceeds `threshold` units, move one allocated
    /// database across and return it (the caller ships its history).
    pub fn rebalance_step(&mut self, threshold: usize) -> Option<(DatabaseId, NodeId, NodeId)> {
        let hot = self.nodes.iter().max_by_key(|n| n.in_use())?.id();
        let cold = self.nodes.iter().min_by_key(|n| n.in_use())?.id();
        let hot_use = self.nodes[self.idx(hot)].in_use();
        let cold_use = self.nodes[self.idx(cold)].in_use();
        if hot == cold || hot_use.saturating_sub(cold_use) <= threshold {
            return None;
        }
        if self.nodes[self.idx(cold)].free() == 0 {
            return None;
        }
        // Pick any allocated database on the hot node (deterministic:
        // smallest id).
        let candidate = self
            .home_of
            .iter()
            .filter(|(db, node)| **node == hot && self.nodes[self.idx(hot)].has_allocation(**db))
            .map(|(db, _)| *db)
            .min()?;
        self.move_database(candidate, cold).ok()?;
        self.balance_moves += 1;
        Some((candidate, hot, cold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(id: u64) -> DatabaseId {
        DatabaseId(id)
    }

    #[test]
    fn placement_spreads_databases() {
        let mut c = Cluster::new(3, 10).unwrap();
        for i in 0..9 {
            c.place(db(i));
        }
        for n in c.nodes() {
            assert_eq!(n.homed_count(), 3, "even spread");
        }
    }

    #[test]
    fn allocation_spills_to_another_node_when_home_is_full() {
        let mut c = Cluster::new(2, 2).unwrap();
        // Four databases all homed on node 0 by manual moves.
        for i in 0..4 {
            c.place(db(i));
            c.move_database(db(i), NodeId(0)).unwrap();
        }
        assert!(matches!(
            c.allocate(db(0)).unwrap(),
            AllocationOutcome::OnHomeNode
        ));
        assert!(matches!(
            c.allocate(db(1)).unwrap(),
            AllocationOutcome::OnHomeNode
        ));
        // Node 0 full: db 2 must move to node 1.
        match c.allocate(db(2)).unwrap() {
            AllocationOutcome::Moved { to } => assert_eq!(to, NodeId(1)),
            other => panic!("expected a move, got {other:?}"),
        }
        assert_eq!(c.spill_moves, 1);
        assert_eq!(c.home_of(db(2)), Some(NodeId(1)));
    }

    #[test]
    fn full_cluster_oversubscribes_and_counts_it() {
        let mut c = Cluster::new(1, 1).unwrap();
        c.place(db(0));
        c.place(db(1));
        assert!(matches!(
            c.allocate(db(0)).unwrap(),
            AllocationOutcome::OnHomeNode
        ));
        assert!(matches!(
            c.allocate(db(1)).unwrap(),
            AllocationOutcome::Oversubscribed
        ));
        assert_eq!(c.oversubscriptions, 1);
    }

    #[test]
    fn release_frees_capacity() {
        let mut c = Cluster::new(1, 1).unwrap();
        c.place(db(0));
        c.allocate(db(0)).unwrap();
        assert_eq!(c.total_in_use(), 1);
        c.release(db(0));
        assert_eq!(c.total_in_use(), 0);
    }

    #[test]
    fn move_preserves_allocation_state() {
        let mut c = Cluster::new(2, 5).unwrap();
        c.place(db(0));
        let home = c.home_of(db(0)).unwrap();
        c.allocate(db(0)).unwrap();
        let target = NodeId(1 - home.raw());
        c.move_database(db(0), target).unwrap();
        assert_eq!(c.home_of(db(0)), Some(target));
        assert!(c.nodes()[target.raw() as usize].has_allocation(db(0)));
        assert_eq!(c.nodes()[home.raw() as usize].in_use(), 0);
    }

    #[test]
    fn rebalance_moves_from_hot_to_cold() {
        let mut c = Cluster::new(2, 10).unwrap();
        for i in 0..6 {
            c.place(db(i));
            c.move_database(db(i), NodeId(0)).unwrap();
            c.allocate(db(i)).unwrap();
        }
        // Node 0 has 6 allocations, node 1 has 0.
        let (moved, from, to) = c.rebalance_step(2).expect("imbalance detected");
        assert_eq!(from, NodeId(0));
        assert_eq!(to, NodeId(1));
        assert_eq!(c.home_of(moved), Some(NodeId(1)));
        assert_eq!(c.balance_moves, 1);
        // Balanced enough at threshold 10: no further move.
        assert!(c.rebalance_step(10).is_none());
    }

    #[test]
    fn rejects_degenerate_clusters() {
        assert!(Cluster::new(0, 5).is_err());
        assert!(Cluster::new(3, 0).is_err());
        assert!(Cluster::with_node_range(u32::MAX - 1, 4, 5).is_err());
    }

    #[test]
    fn offset_node_ranges_behave_like_base_zero() {
        // Shard 3 of a 4-node-per-shard region: nodes 12..16.
        let mut c = Cluster::with_node_range(12, 4, 2).unwrap();
        for i in 0..8 {
            c.place(db(i));
        }
        for n in c.nodes() {
            assert!((12..16).contains(&n.id().raw()), "node {:?}", n.id());
            assert_eq!(n.homed_count(), 2, "even spread");
        }
        let home = c.home_of(db(0)).unwrap();
        assert!(matches!(
            c.allocate(db(0)).unwrap(),
            AllocationOutcome::OnHomeNode
        ));
        let target = NodeId(if home == NodeId(12) { 15 } else { 12 });
        c.move_database(db(0), target).unwrap();
        assert_eq!(c.home_of(db(0)), Some(target));
        assert_eq!(c.total_in_use(), 1);
    }
}
