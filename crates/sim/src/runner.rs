//! The simulation driver.
//!
//! Replays a fleet of traces through per-database policy engines,
//! executes the engines' actions against the cluster (allocation
//! workflows with latency and spill-over moves, reclamation, timers,
//! metadata publication), runs the Algorithm 5 scan, and accounts every
//! second of fleet time into the §8 segment kinds.
//!
//! The event loop itself lives in [`crate::shard`]: the fleet is
//! partitioned by database-id hash into [`SimConfig::shards`] shards,
//! each shard runs a complete loop (on its own worker thread when more
//! than one shard is configured), and this module merges the per-shard
//! outcomes into one [`SimReport`].  The merge works on integer totals
//! and counts only, so one run is fully deterministic given the config
//! seed and the traces — and, under uncontended capacity, bit-identical
//! across shard counts.

use crate::config::SimConfig;
use crate::shard::{self, ShardOutcome};
use prorp_core::{EngineCounters, MaintenanceStats, ProactiveResumeOp};
use prorp_obs::ObsReport;
use prorp_storage::StorageStats;
use prorp_telemetry::{
    IncidentLog, KpiReport, SegmentAccumulator, ShardCounters, TelemetryKind, TelemetryLog,
    TelemetryMergeIter, TelemetryMode, TelemetrySummary, WorkflowStats,
};
use prorp_types::{DatabaseId, ProrpError, Seconds, Timestamp};
use prorp_workload::{Trace, TraceSource};
use std::borrow::Cow;
use std::collections::HashMap;

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Which policy ran.
    pub policy_label: &'static str,
    /// Fleet-level KPIs over the measurement window.
    pub kpi: KpiReport,
    /// Full telemetry log (whole run, timestamped).  Empty when the run
    /// used [`TelemetryMode::Summary`] — consult
    /// [`telemetry_summary`](Self::telemetry_summary) instead.
    pub telemetry: TelemetryLog,
    /// Per-label event counts over the whole run, computed during the
    /// streaming merge.  Populated in every mode; in
    /// [`TelemetryMode::Summary`] runs it is the only telemetry output.
    pub telemetry_summary: TelemetrySummary,
    /// Per-database engine counters (whole run), in input-trace order.
    pub counters: Vec<EngineCounters>,
    /// Batch sizes of each proactive-resume scan iteration (Figure 11).
    pub resume_batches: Vec<usize>,
    /// Per-database history storage statistics at end of run (Figure 10),
    /// in input-trace order.
    pub history_stats: Vec<StorageStats>,
    /// Databases moved because a resume found the home node full.
    pub spill_moves: u64,
    /// Load-balancing moves executed.
    pub balance_moves: u64,
    /// Forced allocations beyond nominal node capacity.
    pub oversubscriptions: u64,
    /// Hung workflows force-completed by the diagnostics runner.
    pub mitigations: u64,
    /// Escalations to the on-call engineer: repeat stuck databases plus
    /// retry-budget exhaustions (equals `incident_log.len()`).
    pub incidents: u64,
    /// Staged workflows that exhausted their retry budget.
    pub giveups: u64,
    /// Staged-workflow telemetry: per-stage latency histograms plus
    /// retry/giveup and circuit-breaker counters, fleet-wide.
    pub workflow: WorkflowStats,
    /// Fleet-wide incident log in canonical `(time, database, kind)`
    /// order — identical at any shard count.
    pub incident_log: IncidentLog,
    /// Maintenance placement quality (§11 future work 4); all zeros when
    /// maintenance is disabled.
    pub maintenance: MaintenanceStats,
    /// Per-shard timing/throughput counters, one entry per shard in
    /// shard order (a single entry for an unsharded run).
    pub shard_counters: Vec<ShardCounters>,
    /// Merged observability output — the canonical trace plus the
    /// metrics-snapshot series — when `SimConfig::observe()` enabled the
    /// observability layer; `None` otherwise.
    pub obs: Option<ObsReport>,
    /// Measurement window start.
    pub measure_from: Timestamp,
    /// Simulation end.
    pub end: Timestamp,
}

impl SimReport {
    /// Workflow counts per `bin` over the measurement window — the
    /// Figure 11 ([`TelemetryKind::ProactiveResume`]) and Figure 12
    /// ([`TelemetryKind::PhysicalPause`]) inputs.
    ///
    /// All-zero in [`TelemetryMode::Summary`] runs (the per-event log the
    /// bins are cut from is not materialised).
    pub fn workflow_bins(&self, kind: TelemetryKind, bin: Seconds) -> Vec<usize> {
        self.telemetry
            .counts_per_bin(kind, self.measure_from, self.end, bin)
    }
}

/// KPI accounting identities the merge must preserve (checked in
/// strict-invariants builds): every fraction lies in `[0, 1]` and the six
/// segment fractions partition the measured window exactly.
#[cfg(feature = "strict-invariants")]
fn check_kpi_identities(kpi: &KpiReport) -> Result<(), ProrpError> {
    const EPS: f64 = 1e-9;
    let fracs = [
        ("active", kpi.active_frac),
        ("logical-idle", kpi.idle_logical_frac),
        ("proactive-correct", kpi.idle_proactive_correct_frac),
        ("proactive-wrong", kpi.idle_proactive_wrong_frac),
        ("saved", kpi.saved_frac),
        ("unavailable", kpi.unavailable_frac),
    ];
    for (name, f) in fracs {
        if !(-EPS..=1.0 + EPS).contains(&f) {
            return Err(ProrpError::InvariantViolation(format!(
                "KPI fraction {name} = {f} outside [0, 1]"
            )));
        }
    }
    let sum: f64 = fracs.iter().map(|(_, f)| f).sum();
    // An empty fleet legitimately reports all-zero fractions.
    if sum != 0.0 && (sum - 1.0).abs() > 1e-6 {
        return Err(ProrpError::InvariantViolation(format!(
            "segment fractions sum to {sum}, expected 1"
        )));
    }
    Ok(())
}

/// A configured simulation, ready to run.
pub struct Simulation {
    config: SimConfig,
    traces: Vec<Trace>,
}

impl Simulation {
    /// Build a simulation over `traces`.
    ///
    /// # Errors
    ///
    /// Propagates config validation failures.
    pub fn new(config: SimConfig, traces: Vec<Trace>) -> Result<Self, ProrpError> {
        config.check()?;
        Ok(Simulation { config, traces })
    }

    /// Run to completion and report.
    ///
    /// With `config.shards == 1` the whole fleet runs on the calling
    /// thread; with more shards the fleet is partitioned by id-hash and
    /// each shard's event loop runs on its own scoped worker thread.
    /// Either way the merged report is identical (see [`crate::shard`]
    /// for the determinism guarantee).
    ///
    /// # Errors
    ///
    /// Returns [`ProrpError::Simulation`] on internal invariant
    /// violations (these indicate bugs, not bad inputs).
    pub fn run(self) -> Result<SimReport, ProrpError> {
        let cfg = &self.config;
        let partitions = shard::partition_fleet(&self.traces, cfg.shards);

        let outcomes: Vec<ShardOutcome> = if cfg.shards == 1 {
            let traces = partitions[0]
                .iter()
                .map(|&i| Cow::Borrowed(&self.traces[i]));
            vec![shard::run_shard(cfg, 0, partitions[0].len(), traces)?]
        } else {
            let traces = &self.traces;
            let joined = crossbeam::scope(|scope| {
                let handles: Vec<_> = partitions
                    .iter()
                    .enumerate()
                    .map(|(i, idxs)| {
                        scope.spawn(move |_| {
                            let part = idxs.iter().map(|&j| Cow::Borrowed(&traces[j]));
                            shard::run_shard(cfg, i, idxs.len(), part)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(ProrpError::Simulation("shard worker panicked".into()))
                        })
                    })
                    .collect::<Vec<Result<ShardOutcome, ProrpError>>>()
            })
            .map_err(|_| ProrpError::Simulation("shard scope panicked".into()))?;
            joined.into_iter().collect::<Result<Vec<_>, _>>()?
        };

        let order: HashMap<DatabaseId, usize> = self
            .traces
            .iter()
            .enumerate()
            .map(|(i, t)| (t.db, i))
            .collect();
        merge_outcomes(cfg, &order, self.traces.len(), outcomes)
    }

    /// Run over a [`TraceSource`] without materialising the fleet.
    ///
    /// Each shard worker generates exactly its own id-hash partition of
    /// the fleet, one trace at a time, while building its event queue —
    /// so peak memory holds the per-database engine state but never a
    /// million session vectors at once.  For any source whose `trace(i)`
    /// agrees with a materialised `Vec<Trace>` (e.g.
    /// [`prorp_workload::LazyFleet`] vs
    /// [`prorp_workload::RegionProfile::generate_fleet`]), the report is
    /// bit-identical to [`Simulation::run`] over that vector.
    ///
    /// # Errors
    ///
    /// Propagates config validation failures, rejects duplicate database
    /// ids in the source, and returns [`ProrpError::Simulation`] on
    /// internal invariant violations.
    pub fn run_streamed<S: TraceSource + ?Sized>(
        config: SimConfig,
        source: &S,
    ) -> Result<SimReport, ProrpError> {
        config.check()?;
        let cfg = &config;
        let n = source.len();

        // One cheap id pass sizes the shards and fixes the output order.
        let mut shard_sizes = vec![0usize; cfg.shards];
        let mut order: HashMap<DatabaseId, usize> = HashMap::with_capacity(n);
        for i in 0..n {
            let id = source.db_id(i);
            shard_sizes[id.shard_of(cfg.shards)] += 1;
            if order.insert(id, i).is_some() {
                return Err(ProrpError::Simulation(format!(
                    "duplicate database id {id} in trace source"
                )));
            }
        }

        let outcomes: Vec<ShardOutcome> = if cfg.shards == 1 {
            let traces = (0..n).map(|i| Cow::Owned(source.trace(i)));
            vec![shard::run_shard(cfg, 0, n, traces)?]
        } else {
            let joined = crossbeam::scope(|scope| {
                let handles: Vec<_> = shard_sizes
                    .iter()
                    .enumerate()
                    .map(|(s, &size)| {
                        scope.spawn(move |_| {
                            let part = (0..n)
                                .filter(|&i| source.db_id(i).shard_of(cfg.shards) == s)
                                .map(|i| Cow::Owned(source.trace(i)));
                            shard::run_shard(cfg, s, size, part)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(ProrpError::Simulation("shard worker panicked".into()))
                        })
                    })
                    .collect::<Vec<Result<ShardOutcome, ProrpError>>>()
            })
            .map_err(|_| ProrpError::Simulation("shard scope panicked".into()))?;
            joined.into_iter().collect::<Result<Vec<_>, _>>()?
        };

        merge_outcomes(cfg, &order, n, outcomes)
    }
}

/// Merge per-shard outcomes into the fleet report.
///
/// Every merged quantity is shard-order-independent: segment totals
/// and workflow counts are integer sums, per-database rows are
/// re-ordered to the input-trace order (`order` maps id → input
/// position, `n` is the fleet size), batch sizes sum element-wise
/// per tick, and the telemetry log is k-way merged by timestamp.
/// Fleet KPI fractions are computed once from the summed totals —
/// never by averaging per-shard ratios — so a shard with zero
/// databases contributes nothing instead of dragging the QoS/COGS
/// percentages toward its (undefined) local ratio.
///
/// The KPI event counts and the per-label summary are folded out of a
/// single pass over the streaming merge iterator; the merged log itself
/// is materialised only in [`TelemetryMode::Full`] runs.
pub fn merge_outcomes(
    cfg: &SimConfig,
    order: &HashMap<DatabaseId, usize>,
    n: usize,
    outcomes: Vec<ShardOutcome>,
) -> Result<SimReport, ProrpError> {
    {
        let mut fleet_acc = SegmentAccumulator::new();
        let mut counters: Vec<Option<EngineCounters>> = vec![None; n];
        let mut history_stats: Vec<Option<StorageStats>> = vec![None; n];
        let mut forecast_failures = 0u64;
        let mut spill_moves = 0u64;
        let mut balance_moves = 0u64;
        let mut oversubscriptions = 0u64;
        let mut mitigations = 0u64;
        let mut incidents = 0u64;
        let mut giveups = 0u64;
        let mut maintenance = MaintenanceStats::default();
        let mut shard_counters = Vec::with_capacity(outcomes.len());
        let mut shard_batches = Vec::with_capacity(outcomes.len());
        let mut shard_logs = Vec::with_capacity(outcomes.len());
        let mut shard_workflows = Vec::with_capacity(outcomes.len());
        let mut shard_incident_logs = Vec::with_capacity(outcomes.len());
        let mut shard_obs = Vec::with_capacity(outcomes.len());

        for outcome in outcomes {
            for (id, acc, ctr, stats) in &outcome.dbs {
                fleet_acc.merge(acc);
                forecast_failures += ctr.forecast_failures;
                let at = *order
                    .get(id)
                    .ok_or_else(|| ProrpError::Simulation(format!("unknown database {id}")))?;
                counters[at] = Some(*ctr);
                history_stats[at] = Some(*stats);
            }
            spill_moves += outcome.spill_moves;
            balance_moves += outcome.balance_moves;
            oversubscriptions += outcome.oversubscriptions;
            mitigations += outcome.mitigations;
            incidents += outcome.incidents;
            giveups += outcome.giveups;
            maintenance.piggybacked += outcome.maintenance.piggybacked;
            maintenance.forced_resumes += outcome.maintenance.forced_resumes;
            shard_batches.push(outcome.resume_batches);
            shard_counters.push(outcome.counters);
            shard_logs.push(outcome.telemetry);
            shard_workflows.push(outcome.workflow);
            shard_incident_logs.push(outcome.incident_log);
            if let Some(o) = outcome.obs {
                shard_obs.push(o);
            }
        }
        let obs = if cfg.observe().enabled {
            Some(ObsReport::merge(shard_obs)?)
        } else {
            None
        };

        // One pass over the streaming k-way merge feeds the KPI event
        // counts and the per-label summary; the merged log is only
        // written out when the run materialises telemetry.
        let materialise = cfg.telemetry_mode == TelemetryMode::Full;
        let mut kpi = KpiReport::from_segments(&fleet_acc);
        let mut summary = TelemetrySummary::new();
        let mut iter = TelemetryMergeIter::new(shard_logs);
        let mut merged_events = Vec::with_capacity(if materialise { iter.remaining() } else { 0 });
        for e in &mut iter {
            summary.observe(&e);
            if e.ts >= cfg.measure_from && e.ts < cfg.end {
                match e.kind {
                    TelemetryKind::Login { available: true } => kpi.logins_available += 1,
                    TelemetryKind::Login { available: false } => kpi.logins_unavailable += 1,
                    TelemetryKind::ProactiveResume => kpi.proactive_resumes += 1,
                    TelemetryKind::PhysicalPause => kpi.physical_pauses += 1,
                    TelemetryKind::ForecastFailure => kpi.forecast_failures += 1,
                    _ => {}
                }
            }
            if materialise {
                merged_events.push(e);
            }
        }
        let telemetry = TelemetryLog::from_sorted_events(merged_events);
        kpi.forecast_failures = forecast_failures;
        #[cfg(feature = "strict-invariants")]
        check_kpi_identities(&kpi)?;

        fn collect<T>(rows: Vec<Option<T>>, what: &str) -> Result<Vec<T>, ProrpError> {
            rows.into_iter()
                .enumerate()
                .map(|(i, r)| {
                    r.ok_or_else(|| {
                        ProrpError::Simulation(format!("trace {i} missing from merged {what}"))
                    })
                })
                .collect()
        }

        Ok(SimReport {
            policy_label: cfg.policy.label(),
            kpi,
            telemetry,
            telemetry_summary: summary,
            counters: collect(counters, "counters")?,
            resume_batches: ProactiveResumeOp::sum_shard_batches(&shard_batches),
            history_stats: collect(history_stats, "history stats")?,
            spill_moves,
            balance_moves,
            oversubscriptions,
            mitigations,
            incidents,
            giveups,
            // The merges are commutative sums / a canonical sort, so the
            // fleet-wide values are identical at any shard count.
            workflow: WorkflowStats::merge(&shard_workflows),
            incident_log: IncidentLog::merge(shard_incident_logs),
            maintenance,
            shard_counters,
            obs,
            measure_from: cfg.measure_from,
            end: cfg.end,
        })
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimPolicy;
    use prorp_types::{PolicyConfig, Session};
    use prorp_workload::{RegionName, RegionProfile};

    const DAY: i64 = 86_400;
    const HOUR: i64 = 3_600;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    /// One database with a strict 09:00–17:00 daily pattern for 35 days.
    fn daily_trace() -> Trace {
        let sessions: Vec<Session> = (0..35)
            .map(|d| Session::new(t(d * DAY + 9 * HOUR), t(d * DAY + 17 * HOUR)).unwrap())
            .collect();
        Trace::new(DatabaseId(0), "daily", sessions).unwrap()
    }

    fn config_for(policy: SimPolicy) -> SimConfig {
        SimConfig::builder(policy, t(0), t(35 * DAY), t(30 * DAY))
            .build()
            .unwrap()
    }

    fn run(policy: SimPolicy, traces: Vec<Trace>) -> SimReport {
        Simulation::new(config_for(policy), traces)
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn proactive_beats_reactive_on_a_daily_pattern() {
        let reactive = run(SimPolicy::Reactive, vec![daily_trace()]);
        let proactive = run(
            SimPolicy::Proactive(PolicyConfig::default()),
            vec![daily_trace()],
        );
        // With l = 7 h and a 16 h idle night, the reactive policy
        // physically pauses every night and every morning login is a
        // reactive resume → QoS 0 in the measurement window.
        assert_eq!(reactive.kpi.qos_pct(), 0.0, "{}", reactive.kpi);
        // The proactive policy pre-warms ahead of the 09:00 login.
        assert_eq!(proactive.kpi.qos_pct(), 100.0, "{}", proactive.kpi);
        assert!(proactive.kpi.proactive_resumes >= 5);
        // And it saves the night: idle stays a small fraction.
        assert!(
            proactive.kpi.idle_pct() < 20.0,
            "idle {:.2}%",
            proactive.kpi.idle_pct()
        );
    }

    #[test]
    fn optimal_policy_is_a_perfect_bounding_box() {
        let optimal = run(SimPolicy::Optimal, vec![daily_trace()]);
        assert_eq!(optimal.kpi.qos_pct(), 100.0);
        assert!(optimal.kpi.idle_pct() < 0.1, "{}", optimal.kpi);
        assert_eq!(optimal.kpi.unavailable_frac, 0.0);
        // Active exactly 8/24 of the time.
        assert!((optimal.kpi.active_frac - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn reactive_policy_absorbs_short_gaps_in_logical_pause() {
        // Sessions with 30-minute gaps: the reactive policy never
        // physically pauses, so every login lands on available resources.
        let mut sessions = Vec::new();
        let mut cursor = 0i64;
        while cursor + 5_400 < 35 * DAY {
            sessions.push(Session::new(t(cursor), t(cursor + 5_400)).unwrap());
            cursor += 5_400 + 1_800;
        }
        let trace = Trace::new(DatabaseId(0), "fragmented", sessions).unwrap();
        let report = run(SimPolicy::Reactive, vec![trace]);
        assert_eq!(report.kpi.qos_pct(), 100.0, "{}", report.kpi);
        assert_eq!(report.kpi.physical_pauses, 0);
        assert!(report.kpi.idle_logical_frac > 0.1);
    }

    #[test]
    fn fleet_simulation_is_deterministic() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(40, t(0), t(35 * DAY), 17);
        let a = run(
            SimPolicy::Proactive(PolicyConfig::default()),
            traces.clone(),
        );
        let b = run(SimPolicy::Proactive(PolicyConfig::default()), traces);
        assert_eq!(a.kpi, b.kpi);
        assert_eq!(a.resume_batches, b.resume_batches);
        assert_eq!(a.telemetry.len(), b.telemetry.len());
    }

    #[test]
    fn fleet_qos_improves_under_the_proactive_policy() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(60, t(0), t(35 * DAY), 3);
        let reactive = run(SimPolicy::Reactive, traces.clone());
        let proactive = run(
            SimPolicy::Proactive(PolicyConfig::default()),
            traces.clone(),
        );
        let optimal = run(SimPolicy::Optimal, traces);
        assert!(
            proactive.kpi.qos_pct() > reactive.kpi.qos_pct(),
            "proactive {:.1}% vs reactive {:.1}%",
            proactive.kpi.qos_pct(),
            reactive.kpi.qos_pct()
        );
        assert_eq!(optimal.kpi.qos_pct(), 100.0);
        assert!(optimal.kpi.idle_pct() <= proactive.kpi.idle_pct());
    }

    #[test]
    fn stuck_workflows_are_mitigated() {
        let mut cfg = config_for(SimPolicy::Reactive);
        cfg.stuck_probability = 1.0; // every reactive resume hangs
        cfg.diagnostics_period = Some(Seconds::minutes(2));
        cfg.stuck_timeout = Seconds::minutes(5);
        let report = Simulation::new(cfg, vec![daily_trace()])
            .unwrap()
            .run()
            .unwrap();
        assert!(report.mitigations > 0, "diagnostics must mitigate hangs");
        // A database stuck repeatedly escalates.
        assert!(report.incidents > 0);
    }

    #[test]
    fn rebalancing_moves_carry_history_intact() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(30, t(0), t(35 * DAY), 5);
        let mut cfg = config_for(SimPolicy::Proactive(PolicyConfig::default()));
        cfg.nodes = 2;
        cfg.node_capacity = 30;
        cfg.rebalance_period = Some(Seconds::hours(6));
        cfg.rebalance_threshold = 2;
        let report = Simulation::new(cfg, traces).unwrap().run().unwrap();
        // Moves happened and nothing broke; history stats survive.
        assert!(report.balance_moves > 0, "expected load-balancing moves");
        assert!(report.history_stats.iter().any(|s| s.tuples > 0));
    }

    #[test]
    fn resume_batches_are_bounded_by_fleet_size() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(50, t(0), t(32 * DAY), 9);
        let report = run(SimPolicy::Proactive(PolicyConfig::default()), traces);
        assert!(!report.resume_batches.is_empty());
        assert!(report.resume_batches.iter().all(|&b| b <= 50));
    }

    #[test]
    fn maintenance_piggybacks_under_the_proactive_policy() {
        // Daily-pattern database with daily maintenance: under the
        // proactive policy the scheduler should ride the predicted 09:00
        // activity for most jobs; under the reactive policy (no
        // predictions) every job is forced.
        let traces = vec![daily_trace()];
        let mut proactive_cfg = config_for(SimPolicy::Proactive(PolicyConfig::default()));
        proactive_cfg.maintenance_period = Some(Seconds::days(1));
        let proactive = Simulation::new(proactive_cfg, traces.clone())
            .unwrap()
            .run()
            .unwrap();
        let mut reactive_cfg = config_for(SimPolicy::Reactive);
        reactive_cfg.maintenance_period = Some(Seconds::days(1));
        let reactive = Simulation::new(reactive_cfg, traces)
            .unwrap()
            .run()
            .unwrap();

        assert_eq!(
            reactive.maintenance.piggybacked, 0,
            "no predictions, no piggybacking: {:?}",
            reactive.maintenance
        );
        assert!(reactive.maintenance.forced_resumes > 20);
        assert!(
            proactive.maintenance.piggyback_rate() > 0.5,
            "proactive jobs should mostly ride predicted activity: {:?}",
            proactive.maintenance
        );
        // Telemetry labels the outcomes.
        let counts = proactive.telemetry.counts();
        assert!(counts.get("maintenance-piggybacked").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn tight_capacity_forces_spill_moves() {
        // Many synchronized daily databases on a tiny cluster: the morning
        // herd cannot fit on home nodes, forcing the §1 "moved to another
        // node" path (with its extra latency) or over-subscription.
        let traces: Vec<Trace> = (0..20)
            .map(|i| {
                let sessions: Vec<Session> = (0..32)
                    .map(|d| {
                        Session::new(
                            t(d * DAY + 9 * HOUR + i * 10),
                            t(d * DAY + 11 * HOUR + i * 10),
                        )
                        .unwrap()
                    })
                    .collect();
                Trace::new(DatabaseId(i as u64), "daily", sessions).unwrap()
            })
            .collect();
        let cfg = SimConfig::builder(SimPolicy::Reactive, t(0), t(32 * DAY), t(28 * DAY))
            .nodes(4)
            .node_capacity(3) // 12 slots for 20 concurrently active DBs
            .build()
            .unwrap();
        let report = Simulation::new(cfg, traces).unwrap().run().unwrap();
        assert!(
            report.spill_moves + report.oversubscriptions > 0,
            "capacity pressure must trigger spills or oversubscription"
        );
    }

    #[test]
    fn optimal_policy_piggybacks_all_maintenance() {
        // The oracle publishes exact next-session predictions, so every
        // maintenance job lands inside real activity.
        let mut cfg = config_for(SimPolicy::Optimal);
        cfg.maintenance_period = Some(Seconds::days(1));
        let report = Simulation::new(cfg, vec![daily_trace()])
            .unwrap()
            .run()
            .unwrap();
        assert!(report.maintenance.piggybacked > 20);
        assert!(
            report.maintenance.piggyback_rate() > 0.9,
            "{:?}",
            report.maintenance
        );
    }

    #[test]
    fn staged_workflows_populate_histograms_without_faults() {
        // Default config: stage faults off, so every reactive resume
        // walks all four stages cleanly in exactly resume_latency.
        let report = run(SimPolicy::Reactive, vec![daily_trace()]);
        let w = &report.workflow;
        assert!(w.total_stage_completions() > 0);
        assert_eq!(w.stage_completions[0], w.stage_completions[3]);
        assert!(w.workflow_latency.count() > 0);
        assert_eq!(w.workflow_latency.max(), Seconds(60));
        assert_eq!(w.retries, 0);
        assert_eq!(w.giveups, 0);
        assert_eq!(report.giveups, 0);
        assert!(report.incident_log.is_empty());
    }

    #[test]
    fn observability_is_off_by_default() {
        let report = run(SimPolicy::Reactive, vec![daily_trace()]);
        assert!(report.obs.is_none());
    }

    #[test]
    fn enabled_observability_reports_trace_and_snapshots() {
        let cfg = SimConfig::builder(
            SimPolicy::Proactive(PolicyConfig::default()),
            t(0),
            t(35 * DAY),
            t(30 * DAY),
        )
        .observe(crate::ObsConfig::with_snapshots(Seconds::days(7)))
        .build()
        .unwrap();
        let report = Simulation::new(cfg, vec![daily_trace()])
            .unwrap()
            .run()
            .unwrap();
        let obs = report.obs.as_ref().expect("observability enabled");
        assert!(!obs.trace.is_empty());
        // Snapshots at days 7/14/21/28 (day 35 coincides with the end)
        // plus the end-of-run snapshot.
        assert_eq!(obs.snapshots.len(), 5);
        assert_eq!(obs.final_snapshot().unwrap().at, t(35 * DAY));
        // The trace's login spans reconcile with the metric counters.
        let login_spans = obs
            .trace
            .iter()
            .filter(|r| matches!(r.kind, prorp_obs::SpanKind::Login { .. }))
            .count() as u64;
        let snap = obs.final_snapshot().unwrap();
        let avail = snap
            .get("prorp_logins_available_total")
            .unwrap()
            .as_counter()
            .unwrap();
        let unavail = snap
            .get("prorp_logins_unavailable_total")
            .unwrap()
            .as_counter()
            .unwrap();
        assert_eq!(login_spans, avail + unavail);
        // Mid-run snapshots are monotone in the counters.
        let first = obs.snapshots[0]
            .get("prorp_logins_available_total")
            .unwrap()
            .as_counter()
            .unwrap();
        assert!(first <= avail);
        // KPIs are untouched by enabling observability.
        let baseline = run(
            SimPolicy::Proactive(PolicyConfig::default()),
            vec![daily_trace()],
        );
        assert_eq!(report.kpi, baseline.kpi);
    }

    #[test]
    fn observability_output_is_shard_count_invariant() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(30, t(0), t(35 * DAY), 11);
        let run_with = |shards: usize| {
            let cfg = SimConfig::builder(
                SimPolicy::Proactive(PolicyConfig::default()),
                t(0),
                t(35 * DAY),
                t(30 * DAY),
            )
            .shards(shards)
            .observe(crate::ObsConfig::with_snapshots(Seconds::days(10)))
            .build()
            .unwrap();
            Simulation::new(cfg, traces.clone())
                .unwrap()
                .run()
                .unwrap()
                .obs
                .unwrap()
        };
        let one = run_with(1);
        let four = run_with(4);
        assert_eq!(one.trace, four.trace, "traces must be bit-identical");
        let det = |r: &ObsReport| {
            r.snapshots
                .iter()
                .map(|s| s.deterministic())
                .collect::<Vec<_>>()
        };
        assert_eq!(det(&one), det(&four), "deterministic metrics must match");
    }

    #[test]
    fn forecast_failures_zero_without_fault_injection() {
        let report = run(
            SimPolicy::Proactive(PolicyConfig::default()),
            vec![daily_trace()],
        );
        assert_eq!(report.kpi.forecast_failures, 0);
    }
}
