//! The simulation driver.
//!
//! Replays a fleet of traces through per-database policy engines,
//! executes the engines' actions against the cluster (allocation
//! workflows with latency and spill-over moves, reclamation, timers,
//! metadata publication), runs the Algorithm 5 scan, and accounts every
//! second of fleet time into the §8 segment kinds.
//!
//! One run is fully deterministic given the config seed and the traces.

use crate::cluster::{AllocationOutcome, Cluster};
use crate::config::{SimConfig, SimPolicy};
use crate::diagnostics::DiagnosticsRunner;
use crate::events::{EventQueue, SimEvent};
use prorp_core::{
    DatabasePolicy, EngineAction, EngineCounters, EngineEvent, MaintenanceScheduler,
    MaintenanceStats, OptimalEngine, PolicyKind, ProactiveEngine, ProactiveResumeOp,
    ReactiveEngine,
};
use prorp_forecast::ProbabilisticPredictor;
use prorp_storage::{backup_history, restore_history, MetadataStore, StorageStats};
use prorp_telemetry::{KpiReport, SegmentAccumulator, SegmentKind, TelemetryKind, TelemetryLog};
use prorp_types::{DatabaseId, DbState, ProrpError, Seconds, Timestamp};
use prorp_workload::Trace;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One simulated database: its policy engine plus bookkeeping.
struct DbSim {
    engine: Box<dyn DatabasePolicy>,
    acc: SegmentAccumulator,
    demand: bool,
    resume_in_flight: bool,
}

/// Results of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Which policy ran.
    pub policy_label: &'static str,
    /// Fleet-level KPIs over the measurement window.
    pub kpi: KpiReport,
    /// Full telemetry log (whole run, timestamped).
    pub telemetry: TelemetryLog,
    /// Per-database engine counters (whole run).
    pub counters: Vec<EngineCounters>,
    /// Batch sizes of each proactive-resume scan iteration (Figure 11).
    pub resume_batches: Vec<usize>,
    /// Per-database history storage statistics at end of run (Figure 10).
    pub history_stats: Vec<StorageStats>,
    /// Databases moved because a resume found the home node full.
    pub spill_moves: u64,
    /// Load-balancing moves executed.
    pub balance_moves: u64,
    /// Forced allocations beyond nominal node capacity.
    pub oversubscriptions: u64,
    /// Hung workflows force-completed by the diagnostics runner.
    pub mitigations: u64,
    /// Repeat stuck databases escalated as incidents.
    pub incidents: u64,
    /// Maintenance placement quality (§11 future work 4); all zeros when
    /// maintenance is disabled.
    pub maintenance: MaintenanceStats,
    /// Measurement window start.
    pub measure_from: Timestamp,
    /// Simulation end.
    pub end: Timestamp,
}

impl SimReport {
    /// Workflow counts per `bin` over the measurement window — the
    /// Figure 11 ([`TelemetryKind::ProactiveResume`]) and Figure 12
    /// ([`TelemetryKind::PhysicalPause`]) inputs.
    pub fn workflow_bins(&self, kind: TelemetryKind, bin: Seconds) -> Vec<usize> {
        self.telemetry
            .counts_per_bin(kind, self.measure_from, self.end, bin)
    }
}

/// A configured simulation, ready to run.
pub struct Simulation {
    config: SimConfig,
    traces: Vec<Trace>,
}

impl Simulation {
    /// Build a simulation over `traces`.
    ///
    /// # Errors
    ///
    /// Propagates config validation failures.
    pub fn new(config: SimConfig, traces: Vec<Trace>) -> Result<Self, ProrpError> {
        config.validate()?;
        Ok(Simulation { config, traces })
    }

    fn build_engine(&self, trace: &Trace) -> Result<Box<dyn DatabasePolicy>, ProrpError> {
        Ok(match &self.config.policy {
            SimPolicy::Reactive => Box::new(ReactiveEngine::new(
                Seconds::hours(7),
                Seconds::days(28),
            )?),
            SimPolicy::Proactive(pc) => {
                let predictor = ProbabilisticPredictor::new(*pc)?;
                Box::new(ProactiveEngine::new(*pc, predictor)?)
            }
            SimPolicy::Optimal => Box::new(OptimalEngine::new(trace.sessions.clone())?),
        })
    }

    /// Run to completion and report.
    ///
    /// # Errors
    ///
    /// Returns [`ProrpError::Simulation`] on internal invariant
    /// violations (these indicate bugs, not bad inputs).
    pub fn run(self) -> Result<SimReport, ProrpError> {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut queue = EventQueue::new();
        let mut cluster = Cluster::new(cfg.nodes, cfg.node_capacity)?;
        let mut metadata = MetadataStore::new();
        let mut telemetry = TelemetryLog::new();
        let mut diagnostics = DiagnosticsRunner::new(cfg.stuck_timeout);
        let mut resume_op =
            ProactiveResumeOp::new(cfg.prewarm, cfg.resume_op_period, cfg.start)?;
        let mut maintenance = MaintenanceScheduler::new();
        let is_optimal = matches!(cfg.policy, SimPolicy::Optimal);

        // Build per-database state and enqueue every trace event.
        let mut dbs: Vec<DbSim> = Vec::with_capacity(self.traces.len());
        for trace in self.traces.iter() {
            let engine = self.build_engine(trace)?;
            let mut acc = SegmentAccumulator::new();
            // Until the first login the fleet holds no resources for the
            // database (§2.1: a new serverless database starts paused
            // from the fleet's perspective).
            acc.transition(cfg.start, SegmentKind::Saved);
            dbs.push(DbSim {
                engine,
                acc,
                demand: false,
                resume_in_flight: false,
            });
            cluster.place(trace.db);
            metadata.set_state(trace.db, DbState::Resumed);
            for s in &trace.sessions {
                if s.start >= cfg.start && s.start < cfg.end {
                    queue.push(s.start, SimEvent::ActivityStart(trace.db));
                }
                if s.end >= cfg.start && s.end < cfg.end {
                    queue.push(s.end, SimEvent::ActivityEnd(trace.db));
                }
            }
        }
        let db_index = |id: DatabaseId| id.raw() as usize;

        queue.push(cfg.measure_from, SimEvent::MeasureStart);
        if !is_optimal {
            queue.push(resume_op.next_run(), SimEvent::ResumeOpTick);
        }
        if let Some(p) = cfg.diagnostics_period {
            queue.push(cfg.start + p, SimEvent::DiagnosticsTick);
        }
        if let Some(p) = cfg.rebalance_period {
            queue.push(cfg.start + p, SimEvent::RebalanceTick);
        }
        if let Some(p) = cfg.maintenance_period {
            // Stagger first due times across the fleet so jobs do not all
            // land in the same second.
            for trace in self.traces.iter() {
                let stagger = Seconds((trace.db.raw() as i64 % p.as_secs().max(1)).max(1));
                queue.push(cfg.start + stagger, SimEvent::MaintenanceDue(trace.db));
            }
        }

        let mut balance_moves_history = 0u64;

        while let Some((now, event)) = queue.pop() {
            if now >= cfg.end {
                break;
            }
            match event {
                SimEvent::MeasureStart => {
                    for d in dbs.iter_mut() {
                        d.acc.reset_keeping_open(now);
                    }
                }
                SimEvent::ActivityStart(id) => {
                    let idx = db_index(id);
                    let was_state = dbs[idx].engine.state();
                    let kind = dbs[idx].engine.kind();
                    let prewarmed = matches!(
                        dbs[idx].acc.open_kind(),
                        Some(SegmentKind::ProactiveIdleWrong)
                            | Some(SegmentKind::ProactiveIdleCorrect)
                    );
                    dbs[idx].demand = true;
                    let actions = dbs[idx].engine.on_event(now, EngineEvent::ActivityStart);
                    let available =
                        was_state != DbState::PhysicallyPaused || kind == PolicyKind::Optimal;
                    telemetry.record(now, id, TelemetryKind::Login { available });
                    metadata.set_state(id, DbState::Resumed);
                    // Hold compute while serving (idempotent).
                    let outcome = cluster.allocate(id)?;
                    if available {
                        if prewarmed {
                            dbs[idx]
                                .acc
                                .reclassify_open(SegmentKind::ProactiveIdleCorrect);
                        }
                        dbs[idx].acc.transition(now, SegmentKind::Active);
                    } else {
                        // Reactive resume: the customer waits out the
                        // allocation workflow (§2.2's delay).
                        dbs[idx].acc.transition(now, SegmentKind::Unavailable);
                        let mut latency = cfg.resume_latency;
                        if matches!(outcome, AllocationOutcome::Moved { .. }) {
                            latency = latency + cfg.move_penalty;
                        }
                        diagnostics.workflow_started(id, now);
                        dbs[idx].resume_in_flight = true;
                        let hangs = cfg.stuck_probability > 0.0
                            && rng.random_bool(cfg.stuck_probability);
                        if !hangs {
                            queue.push(now + latency, SimEvent::WorkflowComplete(id));
                        }
                    }
                    self.apply_actions(&actions, id, now, &mut queue, &mut metadata, &mut cluster);
                }
                SimEvent::ActivityEnd(id) => {
                    let idx = db_index(id);
                    if !dbs[idx].demand {
                        continue;
                    }
                    dbs[idx].demand = false;
                    dbs[idx].resume_in_flight = false;
                    let actions = dbs[idx].engine.on_event(now, EngineEvent::ActivityEnd);
                    self.apply_actions(&actions, id, now, &mut queue, &mut metadata, &mut cluster);
                    let state = dbs[idx].engine.state();
                    metadata.set_state(id, state);
                    match state {
                        DbState::LogicallyPaused => {
                            telemetry.record(now, id, TelemetryKind::LogicalPause);
                            dbs[idx].acc.transition(now, SegmentKind::LogicalPauseIdle);
                        }
                        DbState::PhysicallyPaused => {
                            telemetry.record(now, id, TelemetryKind::PhysicalPause);
                            dbs[idx].acc.transition(now, SegmentKind::Saved);
                        }
                        DbState::Resumed => {
                            // Engines always leave Resumed on ActivityEnd;
                            // defensive only.
                            dbs[idx].acc.transition(now, SegmentKind::Active);
                        }
                    }
                }
                SimEvent::EngineTimer(id, token) => {
                    let idx = db_index(id);
                    let before = dbs[idx].engine.state();
                    let actions = dbs[idx]
                        .engine
                        .on_event(now, EngineEvent::Timer(token));
                    self.apply_actions(&actions, id, now, &mut queue, &mut metadata, &mut cluster);
                    let after = dbs[idx].engine.state();
                    if before == DbState::LogicallyPaused && after == DbState::PhysicallyPaused {
                        telemetry.record(now, id, TelemetryKind::PhysicalPause);
                        dbs[idx].acc.transition(now, SegmentKind::Saved);
                    }
                    metadata.set_state(id, after);
                }
                SimEvent::ResumeOpTick => {
                    let selected = resume_op.run(now, &metadata);
                    for id in selected {
                        queue.push(now, SimEvent::ProactiveResume(id));
                    }
                    if resume_op.next_run() < cfg.end {
                        queue.push(resume_op.next_run(), SimEvent::ResumeOpTick);
                    }
                }
                SimEvent::ProactiveResume(id) => {
                    let idx = db_index(id);
                    if dbs[idx].engine.state() != DbState::PhysicallyPaused || dbs[idx].demand {
                        continue; // raced with a login
                    }
                    let actions = dbs[idx]
                        .engine
                        .on_event(now, EngineEvent::ProactiveResume);
                    if actions.is_empty() {
                        continue; // the engine declined (e.g. reactive)
                    }
                    telemetry.record(now, id, TelemetryKind::ProactiveResume);
                    cluster.allocate(id)?;
                    // Optimistically "wrong" until the login proves it
                    // correct.
                    dbs[idx]
                        .acc
                        .transition(now, SegmentKind::ProactiveIdleWrong);
                    metadata.set_state(id, dbs[idx].engine.state());
                    self.apply_actions(&actions, id, now, &mut queue, &mut metadata, &mut cluster);
                }
                SimEvent::WorkflowComplete(id) => {
                    let idx = db_index(id);
                    diagnostics.workflow_completed(id);
                    if !dbs[idx].resume_in_flight {
                        continue; // superseded (activity ended meanwhile)
                    }
                    dbs[idx].resume_in_flight = false;
                    match dbs[idx].engine.state() {
                        DbState::Resumed if dbs[idx].demand => {
                            dbs[idx].acc.transition(now, SegmentKind::Active);
                        }
                        DbState::LogicallyPaused => {
                            dbs[idx].acc.transition(now, SegmentKind::LogicalPauseIdle);
                        }
                        _ => {}
                    }
                }
                SimEvent::DiagnosticsTick => {
                    for id in diagnostics.sweep(now) {
                        // Mitigation force-completes the workflow now.
                        queue.push(now, SimEvent::WorkflowComplete(id));
                    }
                    if let Some(p) = cfg.diagnostics_period {
                        queue.push(now + p, SimEvent::DiagnosticsTick);
                    }
                }
                SimEvent::MaintenanceDue(id) => {
                    let idx = db_index(id);
                    let prediction = dbs[idx].engine.current_prediction();
                    let deadline = now + cfg.maintenance_deadline;
                    let slot = maintenance.place(
                        now,
                        prediction.as_ref(),
                        cfg.maintenance_duration,
                        deadline,
                    )?;
                    if slot.start() < cfg.end {
                        queue.push(slot.start(), SimEvent::MaintenanceRun(id));
                    }
                    telemetry.record(
                        now,
                        id,
                        TelemetryKind::Maintenance {
                            forced: !slot.is_free(),
                        },
                    );
                    if let Some(p) = cfg.maintenance_period {
                        queue.push(now + p, SimEvent::MaintenanceDue(id));
                    }
                }
                SimEvent::MaintenanceRun(id) => {
                    // §3.3: maintenance resumes are NOT recorded as customer
                    // activity and do not move the policy state machine.  A
                    // job on a physically paused database briefly allocates
                    // and releases compute (the backend load the scheduler
                    // minimises); a job on a resumed or logically paused
                    // database rides the existing allocation.
                    let idx = db_index(id);
                    if dbs[idx].engine.state() == DbState::PhysicallyPaused {
                        let _ = cluster.allocate(id)?;
                        cluster.release(id);
                    }
                }
                SimEvent::RebalanceTick => {
                    if let Some((moved, _, _)) = cluster.rebalance_step(cfg.rebalance_threshold) {
                        // Ship the history with the database (§3.3): the
                        // move serialises pages and restores them on the
                        // destination node.
                        let idx = db_index(moved);
                        let bytes = backup_history(dbs[idx].engine.history())?;
                        let restored = restore_history(&bytes)?;
                        dbs[idx].engine.restore_history(restored);
                        telemetry.record(now, moved, TelemetryKind::Move);
                        balance_moves_history += 1;
                    }
                    if let Some(p) = cfg.rebalance_period {
                        queue.push(now + p, SimEvent::RebalanceTick);
                    }
                }
            }
        }

        // Close the books.
        let mut fleet_acc = SegmentAccumulator::new();
        for d in dbs.iter_mut() {
            d.acc.close(cfg.end);
            fleet_acc.merge(&d.acc);
        }
        let mut kpi = KpiReport::from_segments(&fleet_acc);
        for e in telemetry.range(cfg.measure_from, cfg.end) {
            match e.kind {
                TelemetryKind::Login { available: true } => kpi.logins_available += 1,
                TelemetryKind::Login { available: false } => kpi.logins_unavailable += 1,
                TelemetryKind::ProactiveResume => kpi.proactive_resumes += 1,
                TelemetryKind::PhysicalPause => kpi.physical_pauses += 1,
                TelemetryKind::ForecastFailure => kpi.forecast_failures += 1,
                _ => {}
            }
        }
        kpi.forecast_failures = dbs
            .iter()
            .map(|d| d.engine.counters().forecast_failures)
            .sum();

        let counters: Vec<EngineCounters> =
            dbs.iter().map(|d| d.engine.counters()).collect();
        let history_stats: Vec<StorageStats> =
            dbs.iter().map(|d| d.engine.history().stats()).collect();
        debug_assert_eq!(balance_moves_history, cluster.balance_moves);

        Ok(SimReport {
            policy_label: cfg.policy.label(),
            kpi,
            telemetry,
            counters,
            resume_batches: resume_op.batch_sizes().to_vec(),
            history_stats,
            spill_moves: cluster.spill_moves,
            balance_moves: cluster.balance_moves,
            oversubscriptions: cluster.oversubscriptions,
            mitigations: diagnostics.mitigations,
            incidents: diagnostics.incidents,
            maintenance: maintenance.stats(),
            measure_from: cfg.measure_from,
            end: cfg.end,
        })
    }

    /// Execute the side effects an engine requested.
    fn apply_actions(
        &self,
        actions: &[EngineAction],
        id: DatabaseId,
        now: Timestamp,
        queue: &mut EventQueue,
        metadata: &mut MetadataStore,
        cluster: &mut Cluster,
    ) {
        let is_optimal = matches!(self.config.policy, SimPolicy::Optimal);
        for action in actions {
            match action {
                EngineAction::Allocate => {
                    // Allocation is performed by the event handlers (they
                    // know the latency context); nothing extra here.
                }
                EngineAction::Reclaim => {
                    cluster.release(id);
                }
                EngineAction::SetPredictedStart(pred) => {
                    metadata.set_prediction(id, *pred);
                    if is_optimal {
                        // The oracle policy bypasses the periodic scan and
                        // resumes exactly on time (zero-latency idealisation).
                        if let Some(at) = pred {
                            if *at >= now && *at < self.config.end {
                                queue.push(*at, SimEvent::ProactiveResume(id));
                            }
                        }
                    }
                }
                EngineAction::ScheduleTimer(at, token) => {
                    if *at < self.config.end {
                        queue.push(*at, SimEvent::EngineTimer(id, *token));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prorp_types::{PolicyConfig, Session};
    use prorp_workload::{RegionName, RegionProfile};

    const DAY: i64 = 86_400;
    const HOUR: i64 = 3_600;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    /// One database with a strict 09:00–17:00 daily pattern for 35 days.
    fn daily_trace() -> Trace {
        let sessions: Vec<Session> = (0..35)
            .map(|d| {
                Session::new(t(d * DAY + 9 * HOUR), t(d * DAY + 17 * HOUR)).unwrap()
            })
            .collect();
        Trace::new(DatabaseId(0), "daily", sessions).unwrap()
    }

    fn config_for(policy: SimPolicy) -> SimConfig {
        SimConfig::new(policy, t(0), t(35 * DAY), t(30 * DAY))
    }

    fn run(policy: SimPolicy, traces: Vec<Trace>) -> SimReport {
        Simulation::new(config_for(policy), traces).unwrap().run().unwrap()
    }

    #[test]
    fn proactive_beats_reactive_on_a_daily_pattern() {
        let reactive = run(SimPolicy::Reactive, vec![daily_trace()]);
        let proactive = run(
            SimPolicy::Proactive(PolicyConfig::default()),
            vec![daily_trace()],
        );
        // With l = 7 h and a 16 h idle night, the reactive policy
        // physically pauses every night and every morning login is a
        // reactive resume → QoS 0 in the measurement window.
        assert_eq!(reactive.kpi.qos_pct(), 0.0, "{}", reactive.kpi);
        // The proactive policy pre-warms ahead of the 09:00 login.
        assert_eq!(proactive.kpi.qos_pct(), 100.0, "{}", proactive.kpi);
        assert!(proactive.kpi.proactive_resumes >= 5);
        // And it saves the night: idle stays a small fraction.
        assert!(
            proactive.kpi.idle_pct() < 20.0,
            "idle {:.2}%",
            proactive.kpi.idle_pct()
        );
    }

    #[test]
    fn optimal_policy_is_a_perfect_bounding_box() {
        let optimal = run(SimPolicy::Optimal, vec![daily_trace()]);
        assert_eq!(optimal.kpi.qos_pct(), 100.0);
        assert!(optimal.kpi.idle_pct() < 0.1, "{}", optimal.kpi);
        assert_eq!(optimal.kpi.unavailable_frac, 0.0);
        // Active exactly 8/24 of the time.
        assert!((optimal.kpi.active_frac - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn reactive_policy_absorbs_short_gaps_in_logical_pause() {
        // Sessions with 30-minute gaps: the reactive policy never
        // physically pauses, so every login lands on available resources.
        let mut sessions = Vec::new();
        let mut cursor = 0i64;
        while cursor + 5_400 < 35 * DAY {
            sessions.push(Session::new(t(cursor), t(cursor + 5_400)).unwrap());
            cursor += 5_400 + 1_800;
        }
        let trace = Trace::new(DatabaseId(0), "fragmented", sessions).unwrap();
        let report = run(SimPolicy::Reactive, vec![trace]);
        assert_eq!(report.kpi.qos_pct(), 100.0, "{}", report.kpi);
        assert_eq!(report.kpi.physical_pauses, 0);
        assert!(report.kpi.idle_logical_frac > 0.1);
    }

    #[test]
    fn fleet_simulation_is_deterministic() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(40, t(0), t(35 * DAY), 17);
        let a = run(SimPolicy::Proactive(PolicyConfig::default()), traces.clone());
        let b = run(SimPolicy::Proactive(PolicyConfig::default()), traces);
        assert_eq!(a.kpi, b.kpi);
        assert_eq!(a.resume_batches, b.resume_batches);
        assert_eq!(a.telemetry.len(), b.telemetry.len());
    }

    #[test]
    fn fleet_qos_improves_under_the_proactive_policy() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(60, t(0), t(35 * DAY), 3);
        let reactive = run(SimPolicy::Reactive, traces.clone());
        let proactive = run(SimPolicy::Proactive(PolicyConfig::default()), traces.clone());
        let optimal = run(SimPolicy::Optimal, traces);
        assert!(
            proactive.kpi.qos_pct() > reactive.kpi.qos_pct(),
            "proactive {:.1}% vs reactive {:.1}%",
            proactive.kpi.qos_pct(),
            reactive.kpi.qos_pct()
        );
        assert_eq!(optimal.kpi.qos_pct(), 100.0);
        assert!(optimal.kpi.idle_pct() <= proactive.kpi.idle_pct());
    }

    #[test]
    fn stuck_workflows_are_mitigated() {
        let mut cfg = config_for(SimPolicy::Reactive);
        cfg.stuck_probability = 1.0; // every reactive resume hangs
        cfg.diagnostics_period = Some(Seconds::minutes(2));
        cfg.stuck_timeout = Seconds::minutes(5);
        let report = Simulation::new(cfg, vec![daily_trace()])
            .unwrap()
            .run()
            .unwrap();
        assert!(report.mitigations > 0, "diagnostics must mitigate hangs");
        // A database stuck repeatedly escalates.
        assert!(report.incidents > 0);
    }

    #[test]
    fn rebalancing_moves_carry_history_intact() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(30, t(0), t(35 * DAY), 5);
        let mut cfg = config_for(SimPolicy::Proactive(PolicyConfig::default()));
        cfg.nodes = 2;
        cfg.node_capacity = 30;
        cfg.rebalance_period = Some(Seconds::hours(6));
        cfg.rebalance_threshold = 2;
        let report = Simulation::new(cfg, traces).unwrap().run().unwrap();
        // Moves happened and nothing broke; history stats survive.
        assert!(report.balance_moves > 0, "expected load-balancing moves");
        assert!(report.history_stats.iter().any(|s| s.tuples > 0));
    }

    #[test]
    fn resume_batches_are_bounded_by_fleet_size() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let traces = profile.generate_fleet(50, t(0), t(32 * DAY), 9);
        let report = run(SimPolicy::Proactive(PolicyConfig::default()), traces);
        assert!(!report.resume_batches.is_empty());
        assert!(report.resume_batches.iter().all(|&b| b <= 50));
    }

    #[test]
    fn maintenance_piggybacks_under_the_proactive_policy() {
        // Daily-pattern database with daily maintenance: under the
        // proactive policy the scheduler should ride the predicted 09:00
        // activity for most jobs; under the reactive policy (no
        // predictions) every job is forced.
        let traces = vec![daily_trace()];
        let mut proactive_cfg = config_for(SimPolicy::Proactive(PolicyConfig::default()));
        proactive_cfg.maintenance_period = Some(Seconds::days(1));
        let proactive = Simulation::new(proactive_cfg, traces.clone())
            .unwrap()
            .run()
            .unwrap();
        let mut reactive_cfg = config_for(SimPolicy::Reactive);
        reactive_cfg.maintenance_period = Some(Seconds::days(1));
        let reactive = Simulation::new(reactive_cfg, traces)
            .unwrap()
            .run()
            .unwrap();

        assert_eq!(
            reactive.maintenance.piggybacked, 0,
            "no predictions, no piggybacking: {:?}",
            reactive.maintenance
        );
        assert!(reactive.maintenance.forced_resumes > 20);
        assert!(
            proactive.maintenance.piggyback_rate() > 0.5,
            "proactive jobs should mostly ride predicted activity: {:?}",
            proactive.maintenance
        );
        // Telemetry labels the outcomes.
        let counts = proactive.telemetry.counts();
        assert!(counts.get("maintenance-piggybacked").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn tight_capacity_forces_spill_moves() {
        // Many synchronized daily databases on a tiny cluster: the morning
        // herd cannot fit on home nodes, forcing the §1 "moved to another
        // node" path (with its extra latency) or over-subscription.
        let traces: Vec<Trace> = (0..20)
            .map(|i| {
                let sessions: Vec<Session> = (0..32)
                    .map(|d| {
                        Session::new(
                            t(d * DAY + 9 * HOUR + i * 10),
                            t(d * DAY + 11 * HOUR + i * 10),
                        )
                        .unwrap()
                    })
                    .collect();
                Trace::new(DatabaseId(i as u64), "daily", sessions).unwrap()
            })
            .collect();
        let mut cfg = SimConfig::new(
            SimPolicy::Reactive,
            t(0),
            t(32 * DAY),
            t(28 * DAY),
        );
        cfg.nodes = 4;
        cfg.node_capacity = 3; // 12 slots for 20 concurrently active DBs
        let report = Simulation::new(cfg, traces).unwrap().run().unwrap();
        assert!(
            report.spill_moves + report.oversubscriptions > 0,
            "capacity pressure must trigger spills or oversubscription"
        );
    }

    #[test]
    fn optimal_policy_piggybacks_all_maintenance() {
        // The oracle publishes exact next-session predictions, so every
        // maintenance job lands inside real activity.
        let mut cfg = config_for(SimPolicy::Optimal);
        cfg.maintenance_period = Some(Seconds::days(1));
        let report = Simulation::new(cfg, vec![daily_trace()])
            .unwrap()
            .run()
            .unwrap();
        assert!(report.maintenance.piggybacked > 20);
        assert!(
            report.maintenance.piggyback_rate() > 0.9,
            "{:?}",
            report.maintenance
        );
    }

    #[test]
    fn forecast_failures_zero_without_fault_injection() {
        let report = run(SimPolicy::Proactive(PolicyConfig::default()), vec![daily_trace()]);
        assert_eq!(report.kpi.forecast_failures, 0);
    }
}
