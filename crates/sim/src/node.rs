//! One compute node: finite capacity, per-database allocation units.
//!
//! Serverless compute reclaims idle databases' resources so that "the
//! number of physical machines is reduced" (§1).  A node hosts many
//! databases but only the resumed / logically-paused ones hold an
//! allocation unit; a physically paused database occupies no compute.

use prorp_types::{DatabaseId, NodeId, ProrpError};
use std::collections::HashSet;

/// A compute node.
#[derive(Clone, Debug)]
pub struct Node {
    id: NodeId,
    capacity: usize,
    /// Databases currently holding an allocation unit.
    allocated: HashSet<DatabaseId>,
    /// Databases homed on this node (allocated or not).
    homed: HashSet<DatabaseId>,
}

impl Node {
    /// A node with `capacity` allocation units.
    pub fn new(id: NodeId, capacity: usize) -> Self {
        Node {
            id,
            capacity,
            allocated: HashSet::new(),
            homed: HashSet::new(),
        }
    }

    /// Node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Total allocation units.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Units currently in use.
    pub fn in_use(&self) -> usize {
        self.allocated.len()
    }

    /// Units still free.
    pub fn free(&self) -> usize {
        self.capacity.saturating_sub(self.allocated.len())
    }

    /// Whether `db` is homed here.
    pub fn hosts(&self, db: DatabaseId) -> bool {
        self.homed.contains(&db)
    }

    /// Whether `db` holds an allocation unit here.
    pub fn has_allocation(&self, db: DatabaseId) -> bool {
        self.allocated.contains(&db)
    }

    /// Number of homed databases.
    pub fn homed_count(&self) -> usize {
        self.homed.len()
    }

    /// Home a database on this node (without allocating).
    pub fn add_home(&mut self, db: DatabaseId) {
        self.homed.insert(db);
    }

    /// Remove a database entirely (move-away / deletion).
    pub fn remove_home(&mut self, db: DatabaseId) {
        self.homed.remove(&db);
        self.allocated.remove(&db);
    }

    /// Grant `db` an allocation unit.
    ///
    /// # Errors
    ///
    /// Fails when the node is full or does not host `db`; idempotent for
    /// a database that already holds a unit.
    pub fn allocate(&mut self, db: DatabaseId) -> Result<(), ProrpError> {
        if !self.homed.contains(&db) {
            return Err(ProrpError::Simulation(format!(
                "{db} is not homed on {}",
                self.id
            )));
        }
        if self.allocated.contains(&db) {
            return Ok(());
        }
        if self.allocated.len() >= self.capacity {
            return Err(ProrpError::Simulation(format!(
                "node {} is at capacity ({})",
                self.id, self.capacity
            )));
        }
        self.allocated.insert(db);
        Ok(())
    }

    /// Release `db`'s allocation unit (idempotent).
    pub fn release(&mut self, db: DatabaseId) {
        self.allocated.remove(&db);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(id: u64) -> DatabaseId {
        DatabaseId(id)
    }

    #[test]
    fn allocate_respects_capacity() {
        let mut n = Node::new(NodeId(0), 2);
        n.add_home(db(1));
        n.add_home(db(2));
        n.add_home(db(3));
        assert!(n.allocate(db(1)).is_ok());
        assert!(n.allocate(db(2)).is_ok());
        assert_eq!(n.free(), 0);
        let err = n.allocate(db(3)).unwrap_err();
        assert!(err.to_string().contains("capacity"));
        n.release(db(1));
        assert!(n.allocate(db(3)).is_ok());
    }

    #[test]
    fn allocate_is_idempotent_and_requires_homing() {
        let mut n = Node::new(NodeId(0), 1);
        n.add_home(db(1));
        assert!(n.allocate(db(1)).is_ok());
        assert!(n.allocate(db(1)).is_ok(), "idempotent re-allocate");
        assert_eq!(n.in_use(), 1);
        assert!(n.allocate(db(9)).is_err(), "not homed");
    }

    #[test]
    fn remove_home_releases_everything() {
        let mut n = Node::new(NodeId(0), 4);
        n.add_home(db(1));
        n.allocate(db(1)).unwrap();
        n.remove_home(db(1));
        assert!(!n.hosts(db(1)));
        assert!(!n.has_allocation(db(1)));
        assert_eq!(n.in_use(), 0);
    }

    #[test]
    fn release_is_idempotent() {
        let mut n = Node::new(NodeId(0), 1);
        n.add_home(db(1));
        n.release(db(1));
        assert_eq!(n.in_use(), 0);
    }
}
