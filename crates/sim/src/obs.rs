//! Shard-local observability wiring for the event loop.
//!
//! `ShardObs` is the single object the shard runner threads through its
//! instrumentation sites when `SimConfig::observe()` is enabled.  It owns
//! the shard's [`TraceBuffer`], its [`MetricsRegistry`], and every typed
//! metric-handle bundle, so the event loop itself stays free of metric
//! names.  When observability is disabled the runner holds
//! `Option::<ShardObs>::None` and every site reduces to one branch.
//!
//! # How engine activity is observed
//!
//! The policy engines are never instrumented directly.  Instead the
//! runner captures the engine's `Copy` [`EngineCounters`] (and
//! [`DbState`]) immediately before and after each `on_event` call and
//! hands both readings to `ShardObs::on_engine_event`, which turns the
//! *deltas* into spans and metric increments:
//!
//! * a state change emits a `lifecycle` span (Algorithm 1, Figure 4);
//! * prediction/forecast-failure/fallback deltas emit `predict` spans
//!   with the matching [`PredictOutcome`];
//! * a breaker-open delta emits a `breaker opened` span and marks the
//!   database open; the next successful prediction on a marked database
//!   emits the matching `breaker closed` span (the engine closes its
//!   breaker exactly on that success — see `CircuitBreaker::
//!   record_success` — so the derivation is exact, not heuristic).
//!
//! All spans carry simulated timestamps only, so the merged trace is
//! bit-identical at any shard count (see `prorp_obs::span`).

use crate::diagnostics::DiagnosticsRunner;
use prorp_core::{
    BreakerMetrics, CircuitBreaker, EngineCounters, EngineMetrics, ProactiveResumeOp,
    ResumeOpMetrics,
};
use prorp_obs::span::DecisionExplain;
use prorp_obs::{
    BreakerTransition, Counter, Histogram, MetricsRegistry, MetricsSnapshot, ObsConfig, ObsReport,
    PredictOutcome, Sketch, SloSeries, SpanKind, StageResult, TraceBuffer, TraceSink,
    WorkflowOutcome,
};
use prorp_types::{DatabaseId, DbState, Seconds, Timestamp, WorkflowStage};
use std::collections::{HashMap, HashSet};

/// Handles for the §7 diagnostics-and-mitigation runner, registered
/// through [`DiagnosticsRunner::register_metrics`].
#[derive(Clone, Debug)]
pub struct DiagnosticsMetrics {
    mitigations: Counter,
    incidents: Counter,
    giveups: Counter,
}

impl DiagnosticsMetrics {
    pub(crate) fn register(reg: &MetricsRegistry) -> Self {
        DiagnosticsMetrics {
            mitigations: reg.counter("prorp_mitigations_total"),
            incidents: reg.counter("prorp_incidents_total"),
            giveups: reg.counter("prorp_workflow_giveups_total"),
        }
    }
}

/// Per-shard self-observations fed into the volatile `sim_self_*` gauges
/// at snapshot time.  These describe the simulator *process* (wall
/// clocks, per-shard work counts), vary with the shard layout, and are
/// therefore excluded from every determinism assertion.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SelfObservations {
    /// Simulation events the shard's loop has processed so far.
    pub events_processed: u64,
    /// Telemetry records the shard has emitted so far.
    pub telemetry_events: u64,
    /// Databases assigned to this shard.
    pub databases: usize,
    /// Wall-clock micros since the shard loop started.
    pub wall_clock_micros: u64,
    /// Resume workflows currently tracked by the diagnostics runner.
    pub workflows_in_flight: usize,
    /// Wall-clock micros of the registration phase (engine construction
    /// and trace seeding).
    pub register_micros: u64,
    /// Wall-clock micros of the event-loop phase so far.
    pub run_micros: u64,
    /// Micros the shard's mutation paths spent blocked on inline LSM
    /// compaction (0 on B+Tree and in background mode).
    pub compaction_stall_micros: u64,
    /// Micros of LSM compaction done off the hot path by the scheduler
    /// worker (0 outside background mode).
    pub offloaded_compaction_micros: u64,
}

/// All observability state of one shard: trace buffer, metrics registry,
/// typed handle bundles, and the snapshot series.
pub(crate) struct ShardObs {
    trace: TraceBuffer,
    /// Record span traces at all (`ObsConfig::trace_spans`); rollup-only
    /// runs keep metrics, sketches, and SLO series without the per-event
    /// trace memory.
    trace_spans: bool,
    /// Capture `SpanKind::Decision` provenance (`ObsConfig::explain`).
    explain: bool,
    registry: MetricsRegistry,
    engine: EngineMetrics,
    breaker: BreakerMetrics,
    resume_op: ResumeOpMetrics,
    diagnostics: DiagnosticsMetrics,
    lifecycle_transitions: Counter,
    stage_seconds: Histogram,
    workflow_seconds: Histogram,
    workflow_retries: Counter,
    checkpoints: Counter,
    checkpoint_bytes: Counter,
    recovers: Counter,
    /// Resume-stage durations as a mergeable quantile sketch (the
    /// histogram above keeps the coarse Prometheus buckets; the sketch
    /// yields exact deterministic percentiles at any shard count).
    stage_latency_sketch: Sketch,
    /// Customer-visible QoS-miss delay: the staged-workflow duration an
    /// unavailable login waited out.
    qos_miss_delay_sketch: Sketch,
    /// Backoff waits drawn by workflow stage retries.
    retry_backoff_sketch: Sketch,
    /// Per-region SLO rollup (`ObsConfig::slo`).
    slo: Option<SloSeries>,
    /// Latest decision-provenance record per database, for the live
    /// `why` endpoint (the full history lives in the trace).
    last_decision: HashMap<DatabaseId, (Timestamp, DecisionExplain)>,
    /// Databases whose predictor breaker is currently open; lets the next
    /// successful prediction be attributed as the breaker-closing probe.
    breaker_open: HashSet<DatabaseId>,
    snapshots: Vec<MetricsSnapshot>,
}

impl ShardObs {
    /// Build the shard's observability state, registering every metric
    /// up front so all shards snapshot identical name sets.
    pub(crate) fn new(cfg: &ObsConfig) -> Self {
        let registry = MetricsRegistry::new();
        let engine = EngineMetrics::register(&registry);
        let breaker = CircuitBreaker::register_metrics(&registry);
        let resume_op = ProactiveResumeOp::register_metrics(&registry);
        let diagnostics = DiagnosticsRunner::register_metrics(&registry);
        let lifecycle_transitions = registry.counter("prorp_lifecycle_transitions_total");
        let stage_seconds = registry.histogram("prorp_workflow_stage_seconds");
        let workflow_seconds = registry.histogram("prorp_workflow_seconds");
        let workflow_retries = registry.counter("prorp_workflow_retries_total");
        let checkpoints = registry.counter("prorp_checkpoints_total");
        let checkpoint_bytes = registry.counter("prorp_checkpoint_bytes_total");
        let recovers = registry.counter("prorp_recovers_total");
        let stage_latency_sketch = registry.sketch("prorp_resume_stage_latency_seconds");
        let qos_miss_delay_sketch = registry.sketch("prorp_qos_miss_delay_seconds");
        let retry_backoff_sketch = registry.sketch("prorp_retry_backoff_seconds");
        // Volatile self-observations: registered eagerly (so merges see
        // consistent name sets) but only written at snapshot time.
        registry.gauge("prorp_workflows_in_flight");
        registry.gauge("sim_self_events_processed");
        registry.gauge("sim_self_telemetry_events");
        registry.gauge("sim_self_trace_records");
        registry.gauge("sim_self_databases");
        registry.gauge("sim_self_wall_clock_micros");
        registry.gauge("sim_self_register_micros");
        registry.gauge("sim_self_run_micros");
        registry.gauge("sim_self_compaction_stall_micros");
        registry.gauge("sim_self_offloaded_compaction_micros");
        ShardObs {
            trace: TraceBuffer::new(),
            trace_spans: cfg.trace_spans,
            explain: cfg.explain,
            registry,
            engine,
            breaker,
            resume_op,
            diagnostics,
            lifecycle_transitions,
            stage_seconds,
            workflow_seconds,
            workflow_retries,
            checkpoints,
            checkpoint_bytes,
            recovers,
            stage_latency_sketch,
            qos_miss_delay_sketch,
            retry_backoff_sketch,
            slo: cfg.slo.map(SloSeries::new),
            last_decision: HashMap::new(),
            breaker_open: HashSet::new(),
            snapshots: Vec::new(),
        }
    }

    /// Whether decision-provenance capture is on (the driver only drains
    /// engine explains when it is).
    pub(crate) fn explain_enabled(&self) -> bool {
        self.explain
    }

    /// Fold one drained engine decision into the trace and the
    /// per-database latest-decision index.
    pub(crate) fn on_decision(&mut self, at: Timestamp, db: DatabaseId, explain: DecisionExplain) {
        if self.trace_spans {
            self.trace.event(at, db, SpanKind::Decision { explain });
        }
        self.last_decision.insert(db, (at, explain));
    }

    /// The latest decision recorded for `db`, if any (live `why` route).
    pub(crate) fn last_decision(&self, db: DatabaseId) -> Option<(Timestamp, DecisionExplain)> {
        self.last_decision.get(&db).copied()
    }

    /// The shard-local SLO rollup so far (live `/v1/slo` route).
    pub(crate) fn slo_series(&self) -> Option<&SloSeries> {
        self.slo.as_ref()
    }

    /// Fold one engine event into spans and metrics from its
    /// before/after counter and state readings.
    pub(crate) fn on_engine_event(
        &mut self,
        now: Timestamp,
        db: DatabaseId,
        before_state: DbState,
        before: &EngineCounters,
        after_state: DbState,
        after: &EngineCounters,
    ) {
        self.engine.observe_delta(before, after);
        if before_state != after_state {
            self.lifecycle_transitions.inc();
            if self.trace_spans {
                self.trace.event(
                    now,
                    db,
                    SpanKind::Lifecycle {
                        from: before_state,
                        to: after_state,
                    },
                );
            }
        }
        let fallbacks = after.breaker_fallbacks - before.breaker_fallbacks;
        for _ in 0..fallbacks {
            self.breaker.fallback();
            if self.trace_spans {
                self.trace.event(
                    now,
                    db,
                    SpanKind::Predict {
                        outcome: PredictOutcome::BreakerFallback,
                    },
                );
            }
        }
        let predictions = after.predictions - before.predictions;
        let failures = after.forecast_failures - before.forecast_failures;
        if self.trace_spans {
            for _ in 0..failures {
                self.trace.event(
                    now,
                    db,
                    SpanKind::Predict {
                        outcome: PredictOutcome::Failed,
                    },
                );
            }
            for _ in 0..predictions.saturating_sub(failures) {
                self.trace.event(
                    now,
                    db,
                    SpanKind::Predict {
                        outcome: PredictOutcome::Predicted,
                    },
                );
            }
        }
        if after.breaker_opens > before.breaker_opens {
            self.breaker.opened();
            self.breaker_open.insert(db);
            if let Some(slo) = self.slo.as_mut() {
                for _ in 0..(after.breaker_opens - before.breaker_opens) {
                    slo.on_breaker_open(now, db);
                }
            }
            if self.trace_spans {
                self.trace.event(
                    now,
                    db,
                    SpanKind::Breaker {
                        transition: BreakerTransition::Opened,
                    },
                );
            }
        } else if predictions > failures && self.breaker_open.remove(&db) {
            // A successful prediction on a breaker-open database is the
            // half-open re-probe that closed the breaker.
            self.breaker.closed();
            if self.trace_spans {
                self.trace.event(
                    now,
                    db,
                    SpanKind::Breaker {
                        transition: BreakerTransition::Closed,
                    },
                );
            }
        }
    }

    /// A customer login landed; `available` is the QoS outcome.
    pub(crate) fn on_login(&mut self, now: Timestamp, db: DatabaseId, available: bool) {
        if let Some(slo) = self.slo.as_mut() {
            slo.on_login(now, db, available);
        }
        if self.trace_spans {
            self.trace.event(now, db, SpanKind::Login { available });
        }
    }

    /// The Algorithm 5 scan delivered a pre-warm to this database.
    pub(crate) fn on_proactive_resume(&mut self, now: Timestamp, db: DatabaseId) {
        if let Some(slo) = self.slo.as_mut() {
            slo.on_proactive_resume(now, db);
        }
        if self.trace_spans {
            self.trace.event(now, db, SpanKind::ProactiveResume);
        }
    }

    /// One scan tick selected `batch` databases.
    pub(crate) fn on_scan(&mut self, batch: usize) {
        self.resume_op.observe_scan(batch);
    }

    /// A workflow stage attempt succeeded after `spent` (entry to
    /// success); the span covers that window.
    pub(crate) fn on_stage_completed(
        &mut self,
        now: Timestamp,
        db: DatabaseId,
        stage: WorkflowStage,
        attempt: u32,
        spent: prorp_types::Seconds,
    ) {
        self.stage_seconds.observe(spent.as_secs());
        self.stage_latency_sketch.observe(spent.as_secs());
        if self.trace_spans {
            self.trace.span(
                now - spent,
                now,
                db,
                SpanKind::WorkflowStage {
                    stage,
                    attempt,
                    result: StageResult::Ok,
                },
            );
        }
    }

    /// A stage attempt failed transiently; `attempt` is the retry about
    /// to run after waiting out `backoff`.
    pub(crate) fn on_stage_retry(
        &mut self,
        now: Timestamp,
        db: DatabaseId,
        stage: WorkflowStage,
        attempt: u32,
        backoff: Seconds,
    ) {
        self.workflow_retries.inc();
        self.retry_backoff_sketch.observe(backoff.as_secs());
        if self.trace_spans {
            self.trace.event(
                now,
                db,
                SpanKind::WorkflowStage {
                    stage,
                    attempt,
                    result: StageResult::Retry,
                },
            );
        }
    }

    /// A stage burned its whole retry budget after `attempts` tries; the
    /// workflow (running since `started`) gives up and escalates.
    pub(crate) fn on_stage_exhausted(
        &mut self,
        now: Timestamp,
        db: DatabaseId,
        stage: WorkflowStage,
        attempts: u32,
        started: Timestamp,
    ) {
        self.diagnostics.giveups.inc();
        self.diagnostics.incidents.inc();
        if self.trace_spans {
            self.trace.event(
                now,
                db,
                SpanKind::WorkflowStage {
                    stage,
                    attempt: attempts,
                    result: StageResult::Exhausted,
                },
            );
            self.trace.span(
                started,
                now,
                db,
                SpanKind::Workflow {
                    outcome: WorkflowOutcome::GaveUp,
                },
            );
        }
    }

    /// A staged workflow (running since `started`) completed its final
    /// stage.
    pub(crate) fn on_workflow_completed(
        &mut self,
        now: Timestamp,
        db: DatabaseId,
        started: Timestamp,
    ) {
        let waited = now.since(started);
        self.workflow_seconds.observe(waited.as_secs());
        // Every staged workflow serves an unavailable login, so its total
        // duration *is* the customer's QoS-miss delay.
        self.qos_miss_delay_sketch.observe(waited.as_secs());
        if let Some(slo) = self.slo.as_mut() {
            slo.on_resume_completed(now, db, waited);
        }
        if self.trace_spans {
            self.trace.span(
                started,
                now,
                db,
                SpanKind::Workflow {
                    outcome: WorkflowOutcome::Completed,
                },
            );
        }
    }

    /// The diagnostics sweep force-completed a stuck workflow.
    pub(crate) fn on_mitigation(&mut self, now: Timestamp, db: DatabaseId, escalated: bool) {
        self.diagnostics.mitigations.inc();
        if escalated {
            self.diagnostics.incidents.inc();
        }
        if self.trace_spans {
            self.trace
                .event(now, db, SpanKind::Mitigation { escalated });
        }
    }

    /// A rebalance move checkpointed this database's history B-tree into
    /// a `bytes`-byte image and recovered it on the destination.
    pub(crate) fn on_move_with_history(&mut self, now: Timestamp, db: DatabaseId, bytes: u64) {
        self.checkpoints.inc();
        self.checkpoint_bytes.add(bytes);
        self.recovers.inc();
        if self.trace_spans {
            self.trace.event(now, db, SpanKind::Checkpoint { bytes });
            self.trace.event(now, db, SpanKind::Recover { bytes });
        }
    }

    /// Take one metrics snapshot at simulated instant `at`, refreshing
    /// the gauges from the current self-observations first.
    /// A snapshot of the current registry state *without* recording it
    /// into the deterministic snapshot series — the live `/metrics`
    /// endpoint scrapes this so a scrape never perturbs the run's
    /// observable output.
    pub(crate) fn live_snapshot(&self, at: Timestamp) -> MetricsSnapshot {
        self.registry.snapshot(at)
    }

    pub(crate) fn take_snapshot(&mut self, at: Timestamp, stats: SelfObservations) {
        self.registry
            .gauge("prorp_workflows_in_flight")
            .set(stats.workflows_in_flight as i64);
        self.registry
            .gauge("sim_self_events_processed")
            .set(stats.events_processed as i64);
        self.registry
            .gauge("sim_self_telemetry_events")
            .set(stats.telemetry_events as i64);
        self.registry
            .gauge("sim_self_trace_records")
            .set(self.trace.len() as i64);
        self.registry
            .gauge("sim_self_databases")
            .set(stats.databases as i64);
        self.registry
            .gauge("sim_self_wall_clock_micros")
            .set(stats.wall_clock_micros.min(i64::MAX as u64) as i64);
        self.registry
            .gauge("sim_self_register_micros")
            .set(stats.register_micros.min(i64::MAX as u64) as i64);
        self.registry
            .gauge("sim_self_run_micros")
            .set(stats.run_micros.min(i64::MAX as u64) as i64);
        self.registry
            .gauge("sim_self_compaction_stall_micros")
            .set(stats.compaction_stall_micros.min(i64::MAX as u64) as i64);
        self.registry
            .gauge("sim_self_offloaded_compaction_micros")
            .set(stats.offloaded_compaction_micros.min(i64::MAX as u64) as i64);
        self.snapshots.push(self.registry.snapshot(at));
    }

    /// Consume the shard's observability state into its mergeable report.
    ///
    /// The shard's trace buffer is sorted into canonical
    /// `(start, db, seq)` order here, on the worker thread — backdated
    /// spans (whose `start` lies before the previous record's) make the
    /// raw emission order non-canonical — so the fleet-wide
    /// `TraceBuffer::merge` can k-way merge pre-sorted parts in one
    /// linear pass.
    pub(crate) fn finish(self) -> ObsReport {
        let mut trace = self.trace.into_records();
        trace.sort_by_key(|r| r.sort_key());
        ObsReport {
            trace,
            snapshots: self.snapshots,
            slo: self.slo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prorp_types::Seconds;

    #[test]
    fn engine_event_deltas_become_spans_and_metrics() {
        let mut obs = ShardObs::new(&ObsConfig::on());
        let before = EngineCounters::default();
        let mut after = before;
        after.predictions = 1;
        after.logical_pauses = 1;
        obs.on_engine_event(
            Timestamp(60),
            DatabaseId(3),
            DbState::Resumed,
            &before,
            DbState::LogicallyPaused,
            &after,
        );
        let report = {
            let mut o = obs;
            o.take_snapshot(Timestamp(100), SelfObservations::default());
            o.finish()
        };
        assert_eq!(report.trace.len(), 2, "lifecycle + predict");
        let snap = report.final_snapshot().unwrap();
        assert_eq!(
            snap.get("prorp_lifecycle_transitions_total")
                .unwrap()
                .as_counter(),
            Some(1)
        );
        assert_eq!(
            snap.get("prorp_predictions_total").unwrap().as_counter(),
            Some(1)
        );
    }

    #[test]
    fn breaker_open_then_success_derives_a_close() {
        let mut obs = ShardObs::new(&ObsConfig::on());
        let db = DatabaseId(9);
        let before = EngineCounters::default();

        // Event 1: forecast failure trips the breaker open.
        let mut opened = before;
        opened.predictions = 1;
        opened.forecast_failures = 1;
        opened.breaker_opens = 1;
        obs.on_engine_event(
            Timestamp(10),
            db,
            DbState::Resumed,
            &before,
            DbState::Resumed,
            &opened,
        );

        // Event 2: the half-open re-probe succeeds → breaker closed.
        let mut closed = opened;
        closed.predictions = 2;
        obs.on_engine_event(
            Timestamp(20),
            db,
            DbState::Resumed,
            &opened,
            DbState::Resumed,
            &closed,
        );

        let mut o = obs;
        o.take_snapshot(Timestamp(30), SelfObservations::default());
        let report = o.finish();
        let snap = report.final_snapshot().unwrap();
        assert_eq!(
            snap.get("prorp_breaker_opens_total").unwrap().as_counter(),
            Some(1)
        );
        assert_eq!(
            snap.get("prorp_breaker_closes_total").unwrap().as_counter(),
            Some(1)
        );
        let breaker_spans: Vec<_> = report
            .trace
            .iter()
            .filter(|r| matches!(r.kind, SpanKind::Breaker { .. }))
            .collect();
        assert_eq!(breaker_spans.len(), 2);
        assert_eq!(
            breaker_spans[0].kind,
            SpanKind::Breaker {
                transition: BreakerTransition::Opened
            }
        );
        assert_eq!(
            breaker_spans[1].kind,
            SpanKind::Breaker {
                transition: BreakerTransition::Closed
            }
        );
    }

    #[test]
    fn workflow_sites_fill_histograms_and_spans() {
        let mut obs = ShardObs::new(&ObsConfig::on());
        let db = DatabaseId(1);
        obs.on_stage_completed(
            Timestamp(130),
            db,
            WorkflowStage::AllocateNode,
            1,
            Seconds(30),
        );
        obs.on_stage_retry(
            Timestamp(150),
            db,
            WorkflowStage::AttachStorage,
            2,
            Seconds(20),
        );
        obs.on_workflow_completed(Timestamp(180), db, Timestamp(100));
        obs.on_mitigation(Timestamp(200), db, true);
        obs.on_move_with_history(Timestamp(210), db, 4_096);
        obs.take_snapshot(Timestamp(300), SelfObservations::default());
        let report = obs.finish();
        let snap = report.final_snapshot().unwrap();
        assert_eq!(
            snap.get("prorp_workflow_stage_seconds")
                .unwrap()
                .as_histogram(),
            Some((1, 30))
        );
        assert_eq!(
            snap.get("prorp_workflow_seconds").unwrap().as_histogram(),
            Some((1, 80))
        );
        assert_eq!(
            snap.get("prorp_workflow_retries_total")
                .unwrap()
                .as_counter(),
            Some(1)
        );
        assert_eq!(
            snap.get("prorp_mitigations_total").unwrap().as_counter(),
            Some(1)
        );
        assert_eq!(
            snap.get("prorp_incidents_total").unwrap().as_counter(),
            Some(1)
        );
        assert_eq!(
            snap.get("prorp_checkpoint_bytes_total")
                .unwrap()
                .as_counter(),
            Some(4_096)
        );
        // The stage span covers [entry, success].
        let stage = report
            .trace
            .iter()
            .find(|r| matches!(r.kind, SpanKind::WorkflowStage { .. }))
            .unwrap();
        assert_eq!(stage.start, Timestamp(100));
        assert_eq!(stage.end, Timestamp(130));
    }

    #[test]
    fn snapshots_carry_self_observations_as_volatile_gauges() {
        let mut obs = ShardObs::new(&ObsConfig::on());
        obs.take_snapshot(
            Timestamp(500),
            SelfObservations {
                events_processed: 42,
                telemetry_events: 7,
                databases: 3,
                wall_clock_micros: 12_345,
                workflows_in_flight: 2,
                register_micros: 1_000,
                run_micros: 11_000,
                compaction_stall_micros: 9,
                offloaded_compaction_micros: 90,
            },
        );
        let report = obs.finish();
        let snap = report.final_snapshot().unwrap();
        assert_eq!(snap.at, Timestamp(500));
        assert_eq!(
            snap.get("sim_self_wall_clock_micros").unwrap().as_gauge(),
            Some(12_345)
        );
        assert_eq!(
            snap.get("prorp_workflows_in_flight").unwrap().as_gauge(),
            Some(2)
        );
        assert_eq!(
            snap.get("sim_self_compaction_stall_micros")
                .unwrap()
                .as_gauge(),
            Some(9)
        );
        // The volatile gauges vanish from the deterministic surface.
        let det = snap.deterministic();
        assert!(det.get("sim_self_wall_clock_micros").is_none());
        assert!(det.get("sim_self_offloaded_compaction_micros").is_none());
        assert!(det.get("prorp_workflows_in_flight").is_some());
    }
}
