//! Discrete-event simulator of a serverless Azure-SQL-style region.
//!
//! The paper evaluates ProRP against production telemetry; we evaluate it
//! against a simulated region replaying synthetic traces.  The simulator
//! reproduces the moving parts the evaluation depends on:
//!
//! * [`node`] / [`cluster`] — compute nodes with finite capacity,
//!   least-loaded placement, and load-balancing **moves** that carry the
//!   database history along via backup/restore (§3.3);
//! * [`events`] — the time-ordered event queue; ties at one timestamp
//!   resolve control-plane work (workflow completions, proactive resumes)
//!   before customer logins, so a pre-warm scheduled for second `t`
//!   benefits a login at second `t`;
//! * [`config`] — simulation knobs: policy choice, workflow latencies,
//!   fleet layout, scan periods, fault injection.  Built through
//!   [`SimConfig::builder`], which owns the fault-layer knobs (stage
//!   failure probabilities, retry policy, predictor circuit breaker) and
//!   validates everything at `build()`;
//! * [`runner`] — the driver: partitions the fleet by id-hash, fans the
//!   shards out over worker threads, and merges the per-shard outcomes
//!   into one [`SimReport`].  [`Simulation::run_streamed`] does the same
//!   over a [`prorp_workload::TraceSource`] without ever materialising
//!   the whole fleet;
//! * [`fleet`] — struct-of-arrays per-shard database state: one arena of
//!   homogeneous policy engines (`EngineArena`, internal), flat
//!   segment-accumulator and flag columns ([`BitSet`]), and a dense
//!   [`DbIndexMap`] from database id to arena slot.  This is what lets
//!   one shard hold hundreds of thousands of databases without a boxed
//!   allocation per database;
//! * [`shard`] — the per-shard event loop: replays traces through
//!   per-database policy engines, executes their actions (allocation
//!   workflows with latency, reclamation, timers, metadata publication),
//!   runs the Algorithm 5 proactive-resume scan over the shard-local
//!   `sys.databases` partition, accounts every second of fleet time into
//!   [`prorp_telemetry::SegmentKind`]s, and emits the telemetry log; N
//!   shards run with zero cross-thread coordination while the merged
//!   KPIs stay bit-identical to a single-threaded run;
//! * [`diagnostics`] — the §7 diagnostics-and-mitigation runner: detects
//!   stuck workflows (fault injection), mitigates them, and escalates
//!   repeat offenders and retry-budget exhaustions as incidents;
//! * [`obs`] — shard-local wiring of the deterministic observability
//!   layer (`prorp-obs`): builds the trace buffer and metrics registry
//!   when `SimConfig::builder().observe(..)` enables them, turns engine
//!   counter deltas into spans, and snapshots metrics on the
//!   [`SimEvent::ObsSnapshot`](events::SimEvent::ObsSnapshot) schedule.
//!   The merged [`ObsReport`](prorp_obs::ObsReport) rides on
//!   [`SimReport::obs`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cluster;
pub mod config;
pub mod diagnostics;
pub mod events;
pub mod fleet;
pub mod node;
pub mod obs;
pub mod runner;
pub mod shard;

pub use config::{SimConfig, SimConfigBuilder, SimPolicy};
pub use diagnostics::{DiagnosticsRunner, Mitigation};
pub use fleet::{BitSet, DbIndexMap};
pub use obs::DiagnosticsMetrics;
pub use prorp_obs::ObsConfig;
pub use prorp_storage::{CompactionMode, StorageBackend};
pub use prorp_telemetry::{TelemetryMode, TelemetrySummary};
pub use runner::{merge_outcomes, SimReport, Simulation};
pub use shard::{partition_fleet, ShardDriver, ShardOutcome};
