//! Observability conformance: the online metrics/trace surface must
//! agree with the offline report, survive arbitrary fault plans, and
//! stay pinned to golden exports.
//!
//! Three layers:
//!
//! * a reconciliation property — for generated fleets and fault plans,
//!   every counter in the final metrics snapshot must equal the
//!   corresponding `SimReport` aggregate (the snapshot is built from
//!   live counter deltas, the report from offline folds; agreement means
//!   neither path drops or double-counts an event);
//! * a shard-invariance property — the JSONL trace of a generated
//!   scenario is byte-identical at 1 and 3 shards;
//! * golden exports — a fixed faulty scenario's trace (`.jsonl`) and
//!   deterministic Prometheus text (`.prom`) are pinned under
//!   `tests/goldens/`, re-recordable with `scripts/bless.sh`.  The CI
//!   gate also runs the `prorp-trace` CLI against the golden trace.

use proptest::prelude::*;
use prorp_core::EngineCounters;
use prorp_obs::{prometheus_text, trace_jsonl, ObsConfig, SpanKind};
use prorp_sim::{SimPolicy, SimReport};
use prorp_types::{PolicyConfig, Seconds};
use testkit::golden::check_golden_file;
use testkit::oracles::{builder, run};
use testkit::strategies::{fault_plan, fleet_spec, FaultPlan, FleetSpec};

fn run_observed(spec: &FleetSpec, plan: &FaultPlan, shards: usize) -> SimReport {
    let cfg = plan
        .apply(builder(SimPolicy::Proactive(PolicyConfig::default())))
        .shards(shards)
        .observe(ObsConfig::with_snapshots(Seconds::days(7)))
        .build()
        .expect("observed configs validate");
    run(cfg, spec.traces())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The final metrics snapshot and the offline `SimReport` are two
    /// independent aggregations of the same event stream; every shared
    /// quantity must match exactly.
    #[test]
    fn snapshot_totals_reconcile_with_the_report(
        spec in fleet_spec(),
        plan in fault_plan(),
    ) {
        let report = run_observed(&spec, &plan, 2);
        let obs = report.obs.as_ref().expect("observability was enabled");
        let snap = obs.final_snapshot().expect("a final snapshot is always taken");
        let counter = |name: &str| {
            snap.get(name)
                .and_then(|v| v.as_counter())
                .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
        };
        // Engine counters: the metrics accumulate per-event deltas, the
        // report sums final per-database counters.
        let engine_sum =
            |f: fn(&EngineCounters) -> u64| report.counters.iter().map(f).sum::<u64>();
        prop_assert_eq!(
            counter("prorp_logins_available_total"),
            engine_sum(|c| c.logins_available)
        );
        prop_assert_eq!(
            counter("prorp_logins_unavailable_total"),
            engine_sum(|c| c.logins_unavailable)
        );
        prop_assert_eq!(
            counter("prorp_logical_pauses_total"),
            engine_sum(|c| c.logical_pauses)
        );
        prop_assert_eq!(
            counter("prorp_physical_pauses_total"),
            engine_sum(|c| c.physical_pauses)
        );
        prop_assert_eq!(
            counter("prorp_proactive_resumes_total"),
            engine_sum(|c| c.proactive_resumes)
        );
        prop_assert_eq!(
            counter("prorp_predictions_total"),
            engine_sum(|c| c.predictions)
        );
        prop_assert_eq!(
            counter("prorp_forecast_failures_total"),
            engine_sum(|c| c.forecast_failures)
        );
        prop_assert_eq!(
            counter("prorp_breaker_opens_total"),
            engine_sum(|c| c.breaker_opens)
        );
        prop_assert_eq!(
            counter("prorp_breaker_fallbacks_total"),
            engine_sum(|c| c.breaker_fallbacks)
        );
        // Workflow and diagnostics layers.
        prop_assert_eq!(counter("prorp_workflow_retries_total"), report.workflow.retries);
        prop_assert_eq!(counter("prorp_workflow_giveups_total"), report.giveups);
        prop_assert_eq!(counter("prorp_mitigations_total"), report.mitigations);
        prop_assert_eq!(counter("prorp_incidents_total"), report.incidents);
        let (stage_count, _) = snap
            .get("prorp_workflow_stage_seconds")
            .and_then(|v| v.as_histogram())
            .expect("stage histogram registered");
        prop_assert_eq!(
            stage_count,
            report.workflow.stage_completions.iter().sum::<u64>(),
            "every completed stage is one histogram observation"
        );
        // Trace-level identity: one Login span per served/refused login.
        let login_spans = obs
            .trace
            .iter()
            .filter(|r| matches!(r.kind, SpanKind::Login { .. }))
            .count() as u64;
        prop_assert_eq!(
            login_spans,
            counter("prorp_logins_available_total")
                + counter("prorp_logins_unavailable_total")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any generated fleet and fault plan, the rendered trace bytes
    /// do not depend on the shard layout.
    #[test]
    fn trace_bytes_are_shard_layout_invariant(
        spec in fleet_spec(),
        plan in fault_plan(),
    ) {
        let single = run_observed(&spec, &plan, 1);
        let sharded = run_observed(&spec, &plan, 3);
        let t1 = trace_jsonl(&single.obs.expect("obs on").trace);
        let t3 = trace_jsonl(&sharded.obs.expect("obs on").trace);
        prop_assert_eq!(t1, t3, "trace bytes must not depend on sharding");
    }
}

/// The fixed scenario behind the golden exports: a small Eu1 fleet with
/// flaky stages and forecast faults, so the trace exercises retries,
/// give-ups, breaker episodes, and mitigations.
fn golden_scenario() -> SimReport {
    let plan = FaultPlan {
        stage_failure: 0.25,
        warm_cache_extra: 0.1,
        forecast_fail_every: Some(3),
        stuck_probability: 0.05,
        seed: 29,
        ..FaultPlan::quiescent()
    };
    let spec = FleetSpec {
        region: prorp_workload::RegionName::Eu1,
        size: 8,
        seed: 7,
    };
    run_observed(&spec, &plan, 2)
}

#[test]
fn golden_trace_and_prometheus_exports() {
    let report = golden_scenario();
    let obs = report.obs.expect("observability was enabled");
    let mut drifts = Vec::new();
    if let Err(msg) = check_golden_file("trace_small.jsonl", &trace_jsonl(&obs.trace)) {
        drifts.push(msg);
    }
    let snap = obs
        .final_snapshot()
        .expect("a final snapshot is always taken")
        .deterministic();
    if let Err(msg) = check_golden_file("metrics_small.prom", &prometheus_text(&snap)) {
        drifts.push(msg);
    }
    assert!(
        drifts.is_empty(),
        "{} golden export(s) drifted:\n\n{}",
        drifts.len(),
        drifts.join("\n\n")
    );
}
