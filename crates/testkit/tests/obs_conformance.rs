//! Observability conformance: the online metrics/trace surface must
//! agree with the offline report, survive arbitrary fault plans, and
//! stay pinned to golden exports.
//!
//! Three layers:
//!
//! * a reconciliation property — for generated fleets and fault plans,
//!   every counter in the final metrics snapshot must equal the
//!   corresponding `SimReport` aggregate (the snapshot is built from
//!   live counter deltas, the report from offline folds; agreement means
//!   neither path drops or double-counts an event);
//! * a shard-invariance property — the JSONL trace of a generated
//!   scenario is byte-identical at 1 and 3 shards;
//! * golden exports — a fixed faulty scenario's trace (`.jsonl`) and
//!   deterministic Prometheus text (`.prom`) are pinned under
//!   `tests/goldens/`, re-recordable with `scripts/bless.sh`.  The CI
//!   gate also runs the `prorp-trace` CLI against the golden trace.
//!
//! The SLO rollup layer adds three more:
//!
//! * merge-law properties — quantile-sketch merging is associative,
//!   commutative, and equal to pooled observation; the full SLO rollup
//!   (rows + burn-rate alerts) renders byte-identically at 1, 2, and 8
//!   shards;
//! * golden SLO exports — the fixed scenario's per-region rollup rows
//!   (`slo_small.jsonl`) and alert log (`alerts_small.jsonl`);
//! * a provenance acceptance check — recorded `Decision` spans replay
//!   through `timetravel::replay_as_of` to the *same* predicted resume
//!   instant the engine acted on.

use proptest::prelude::*;
use prorp_core::EngineCounters;
use prorp_obs::{
    alerts_jsonl, evaluate_alerts, prometheus_text, replay_as_of, slo_jsonl, trace_jsonl,
    DecisionAction, ObsConfig, QuantileSketch, SloConfig, SpanKind,
};
use prorp_sim::{SimPolicy, SimReport};
use prorp_types::{PolicyConfig, Seconds};
use testkit::golden::check_golden_file;
use testkit::oracles::{builder, run};
use testkit::strategies::{fault_plan, fleet_spec, FaultPlan, FleetSpec};

fn run_observed(spec: &FleetSpec, plan: &FaultPlan, shards: usize) -> SimReport {
    let cfg = plan
        .apply(builder(SimPolicy::Proactive(PolicyConfig::default())))
        .shards(shards)
        .observe(ObsConfig::with_snapshots(Seconds::days(7)))
        .build()
        .expect("observed configs validate");
    run(cfg, spec.traces())
}

/// Like [`run_observed`] with the SLO rollup and decision-provenance
/// capture switched on.
fn run_observed_slo(spec: &FleetSpec, plan: &FaultPlan, shards: usize) -> SimReport {
    let cfg = plan
        .apply(builder(SimPolicy::Proactive(PolicyConfig::default())))
        .shards(shards)
        .observe(
            ObsConfig::with_snapshots(Seconds::days(7))
                .with_slo(SloConfig::default())
                .with_explain(),
        )
        .build()
        .expect("observed configs validate");
    run(cfg, spec.traces())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The final metrics snapshot and the offline `SimReport` are two
    /// independent aggregations of the same event stream; every shared
    /// quantity must match exactly.
    #[test]
    fn snapshot_totals_reconcile_with_the_report(
        spec in fleet_spec(),
        plan in fault_plan(),
    ) {
        let report = run_observed(&spec, &plan, 2);
        let obs = report.obs.as_ref().expect("observability was enabled");
        let snap = obs.final_snapshot().expect("a final snapshot is always taken");
        let counter = |name: &str| {
            snap.get(name)
                .and_then(|v| v.as_counter())
                .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
        };
        // Engine counters: the metrics accumulate per-event deltas, the
        // report sums final per-database counters.
        let engine_sum =
            |f: fn(&EngineCounters) -> u64| report.counters.iter().map(f).sum::<u64>();
        prop_assert_eq!(
            counter("prorp_logins_available_total"),
            engine_sum(|c| c.logins_available)
        );
        prop_assert_eq!(
            counter("prorp_logins_unavailable_total"),
            engine_sum(|c| c.logins_unavailable)
        );
        prop_assert_eq!(
            counter("prorp_logical_pauses_total"),
            engine_sum(|c| c.logical_pauses)
        );
        prop_assert_eq!(
            counter("prorp_physical_pauses_total"),
            engine_sum(|c| c.physical_pauses)
        );
        prop_assert_eq!(
            counter("prorp_proactive_resumes_total"),
            engine_sum(|c| c.proactive_resumes)
        );
        prop_assert_eq!(
            counter("prorp_predictions_total"),
            engine_sum(|c| c.predictions)
        );
        prop_assert_eq!(
            counter("prorp_forecast_failures_total"),
            engine_sum(|c| c.forecast_failures)
        );
        prop_assert_eq!(
            counter("prorp_breaker_opens_total"),
            engine_sum(|c| c.breaker_opens)
        );
        prop_assert_eq!(
            counter("prorp_breaker_fallbacks_total"),
            engine_sum(|c| c.breaker_fallbacks)
        );
        // Workflow and diagnostics layers.
        prop_assert_eq!(counter("prorp_workflow_retries_total"), report.workflow.retries);
        prop_assert_eq!(counter("prorp_workflow_giveups_total"), report.giveups);
        prop_assert_eq!(counter("prorp_mitigations_total"), report.mitigations);
        prop_assert_eq!(counter("prorp_incidents_total"), report.incidents);
        let (stage_count, _) = snap
            .get("prorp_workflow_stage_seconds")
            .and_then(|v| v.as_histogram())
            .expect("stage histogram registered");
        prop_assert_eq!(
            stage_count,
            report.workflow.stage_completions.iter().sum::<u64>(),
            "every completed stage is one histogram observation"
        );
        // Trace-level identity: one Login span per served/refused login.
        let login_spans = obs
            .trace
            .iter()
            .filter(|r| matches!(r.kind, SpanKind::Login { .. }))
            .count() as u64;
        prop_assert_eq!(
            login_spans,
            counter("prorp_logins_available_total")
                + counter("prorp_logins_unavailable_total")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For any generated fleet and fault plan, the rendered trace bytes
    /// do not depend on the shard layout.
    #[test]
    fn trace_bytes_are_shard_layout_invariant(
        spec in fleet_spec(),
        plan in fault_plan(),
    ) {
        let single = run_observed(&spec, &plan, 1);
        let sharded = run_observed(&spec, &plan, 3);
        let t1 = trace_jsonl(&single.obs.expect("obs on").trace);
        let t3 = trace_jsonl(&sharded.obs.expect("obs on").trace);
        prop_assert_eq!(t1, t3, "trace bytes must not depend on sharding");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sketch merging obeys the monoid laws and equals pooled
    /// observation — the algebra the shard-merge discipline rests on.
    #[test]
    fn sketch_merge_is_associative_commutative_and_pooling(
        a in prop::collection::vec(-10i64..2_000_000, 0..40),
        b in prop::collection::vec(-10i64..2_000_000, 0..40),
        c in prop::collection::vec(-10i64..2_000_000, 0..40),
    ) {
        let sketch_of = |values: &[i64]| {
            let mut s = QuantileSketch::new();
            for &v in values {
                s.observe(v);
            }
            s
        };
        let (sa, sb, sc) = (sketch_of(&a), sketch_of(&b), sketch_of(&c));

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut ab_c = sa.clone();
        ab_c.merge_from(&sb);
        ab_c.merge_from(&sc);
        let mut bc = sb.clone();
        bc.merge_from(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge_from(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "associative");

        // a ⊔ b == b ⊔ a
        let mut ab = sa.clone();
        ab.merge_from(&sb);
        let mut ba = sb.clone();
        ba.merge_from(&sa);
        prop_assert_eq!(&ab, &ba, "commutative");

        // Merging shard sketches equals observing the pooled stream, so
        // every derived quantile is shard-layout invariant.
        let pooled: Vec<i64> = a.iter().chain(&b).chain(&c).copied().collect();
        let pooled = sketch_of(&pooled);
        prop_assert_eq!(&ab_c, &pooled, "merge == pooled observation");
        for (num, den) in [(50u64, 100u64), (95, 100), (99, 100)] {
            prop_assert_eq!(ab_c.quantile(num, den), pooled.quantile(num, den));
        }

        // The identity element: merging an empty sketch changes nothing.
        let mut with_empty = ab_c.clone();
        with_empty.merge_from(&QuantileSketch::new());
        prop_assert_eq!(&with_empty, &ab_c, "empty sketch is the identity");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The rendered SLO rollup — per-region rows *and* the burn-rate
    /// alert log derived from them — is byte-identical at 1, 2, and 8
    /// shards for any generated fleet and fault plan.
    #[test]
    fn slo_rollups_are_shard_layout_invariant(
        spec in fleet_spec(),
        plan in fault_plan(),
    ) {
        let rendered: Vec<(String, String)> = [1usize, 2, 8]
            .iter()
            .map(|&shards| {
                let report = run_observed_slo(&spec, &plan, shards);
                let obs = report.obs.as_ref().expect("obs on");
                let series = obs.slo.as_ref().expect("slo rollups on");
                (slo_jsonl(series), alerts_jsonl(&evaluate_alerts(series)))
            })
            .collect();
        prop_assert_eq!(&rendered[0], &rendered[1], "1 vs 2 shards");
        prop_assert_eq!(&rendered[0], &rendered[2], "1 vs 8 shards");
    }
}

/// The fixed scenario behind the golden exports: a small Eu1 fleet with
/// flaky stages and forecast faults, so the trace exercises retries,
/// give-ups, breaker episodes, and mitigations.
fn golden_plan() -> FaultPlan {
    FaultPlan {
        stage_failure: 0.25,
        warm_cache_extra: 0.1,
        forecast_fail_every: Some(3),
        stuck_probability: 0.05,
        seed: 29,
        ..FaultPlan::quiescent()
    }
}

fn golden_spec() -> FleetSpec {
    FleetSpec {
        region: prorp_workload::RegionName::Eu1,
        size: 8,
        seed: 7,
    }
}

fn golden_scenario() -> SimReport {
    run_observed(&golden_spec(), &golden_plan(), 2)
}

/// The same fixed scenario with SLO rollups and decision-provenance
/// capture on — the input behind the SLO goldens and the replay
/// acceptance check.
fn golden_slo_scenario() -> SimReport {
    run_observed_slo(&golden_spec(), &golden_plan(), 2)
}

#[test]
fn golden_trace_and_prometheus_exports() {
    let report = golden_scenario();
    let obs = report.obs.expect("observability was enabled");
    let mut drifts = Vec::new();
    if let Err(msg) = check_golden_file("trace_small.jsonl", &trace_jsonl(&obs.trace)) {
        drifts.push(msg);
    }
    let snap = obs
        .final_snapshot()
        .expect("a final snapshot is always taken")
        .deterministic();
    if let Err(msg) = check_golden_file("metrics_small.prom", &prometheus_text(&snap)) {
        drifts.push(msg);
    }
    assert!(
        drifts.is_empty(),
        "{} golden export(s) drifted:\n\n{}",
        drifts.len(),
        drifts.join("\n\n")
    );
}

#[test]
fn golden_slo_rollup_and_alert_exports() {
    let report = golden_slo_scenario();
    let obs = report.obs.expect("observability was enabled");
    let series = obs.slo.as_ref().expect("slo rollups were enabled");
    let mut drifts = Vec::new();
    if let Err(msg) = check_golden_file("slo_small.jsonl", &slo_jsonl(series)) {
        drifts.push(msg);
    }
    if let Err(msg) = check_golden_file("alerts_small.jsonl", &alerts_jsonl(&obs.alerts())) {
        drifts.push(msg);
    }
    // The explain-bearing trace, pinned so `scripts/check.sh` can gate
    // the `prorp-trace why` CLI against a trace with Decision spans.
    if let Err(msg) = check_golden_file("trace_decisions_small.jsonl", &trace_jsonl(&obs.trace)) {
        drifts.push(msg);
    }
    assert!(
        drifts.is_empty(),
        "{} golden SLO export(s) drifted:\n\n{}",
        drifts.len(),
        drifts.join("\n\n")
    );
}

/// Decision provenance closes the loop with storage time travel: for a
/// pause decision the engine explained with a predicted next resume,
/// replaying the database's login history "as of" the decision instant
/// re-derives the *same* prediction the engine acted on.
#[test]
fn recorded_decisions_replay_through_time_travel() {
    let report = golden_slo_scenario();
    let obs = report.obs.expect("observability was enabled");
    let mut checked = 0usize;
    for r in &obs.trace {
        let SpanKind::Decision { explain } = &r.kind else {
            continue;
        };
        // Pause-time decisions whose forecast ran fresh at the decision
        // instant; cached or breaker-suppressed forecasts were computed
        // at a different time, so the instant-replay contract does not
        // apply to them.
        if explain.cache_hit || explain.breaker_open {
            continue;
        }
        if !matches!(
            explain.action,
            DecisionAction::PhysicalPause | DecisionAction::DeferPause
        ) {
            continue;
        }
        let Some(predicted) = explain.predicted else {
            continue;
        };
        let replay = replay_as_of(&obs.trace, r.db, r.start, PolicyConfig::default())
            .expect("replay succeeds");
        let again = replay
            .prediction
            .unwrap_or_else(|| panic!("replay at {:?} for {:?} lost the forecast", r.start, r.db));
        assert_eq!(
            again.start, predicted,
            "replayed prediction for {:?} as of {:?} disagrees with the recorded decision",
            r.db, r.start
        );
        checked += 1;
        if checked >= 8 {
            break;
        }
    }
    assert!(
        checked > 0,
        "the golden scenario recorded no fresh-forecast pause decisions to replay"
    );
}
