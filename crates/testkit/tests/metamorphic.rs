//! Metamorphic edge cases: configurations that *look* different but are
//! semantically the identity must produce bit-identical reports.

use proptest::prelude::*;
use prorp_sim::SimPolicy;
use prorp_types::{PolicyConfig, Seconds};
use testkit::oracles::{assert_behaviour_equal, assert_reports_equal, builder, run, run_policy};
use testkit::strategies::{fault_plan, fleet_spec, policy_config, FleetSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Zeroing every probability in a generated fault plan turns it into
    /// the identity: retry budgets, breaker knobs, and fault seeds that
    /// never fire must leave the whole report untouched.
    #[test]
    fn zero_probability_fault_layer_is_the_identity(
        spec in fleet_spec(),
        pc in policy_config(),
        plan in fault_plan(),
        reactive_pick in any::<bool>(),
    ) {
        let policy = if reactive_pick {
            SimPolicy::Reactive
        } else {
            SimPolicy::Proactive(pc)
        };
        let mut quiet = plan;
        quiet.stage_failure = 0.0;
        quiet.warm_cache_extra = 0.0;
        quiet.forecast_fail_every = None;
        quiet.stuck_probability = 0.0;
        let defused = run(
            quiet.apply(builder(policy.clone())).build().unwrap(),
            spec.traces(),
        );
        let clean = run_policy(policy, &spec.traces());
        assert_reports_equal(&defused, &clean, &format!("defused {quiet:?}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// A zero prediction horizon (`p = 0`) switches prediction off: the
    /// proactive engine must degenerate to the reactive baseline — same
    /// KPIs, same workflows, zero predictions attempted — for any fleet
    /// and any remaining knob values.
    #[test]
    fn zero_horizon_proactive_is_the_reactive_baseline(
        spec in fleet_spec(),
        pc in policy_config(),
    ) {
        // Pin `l` and `h` to the values the reactive baseline hard-codes
        // so the pause schedules and history trims line up; with the
        // horizon at zero no other knob can influence behaviour.
        let pc = PolicyConfig {
            horizon: Seconds::ZERO,
            logical_pause: Seconds::hours(7),
            history_len: Seconds::days(28),
            ..pc
        };
        let traces = spec.traces();
        let disabled = run_policy(SimPolicy::Proactive(pc), &traces);
        let reactive = run_policy(SimPolicy::Reactive, &traces);

        for c in &disabled.counters {
            prop_assert_eq!(c.predictions, 0, "p = 0 must never invoke the predictor");
            prop_assert_eq!(c.forecast_failures, 0);
            prop_assert_eq!(c.breaker_fallbacks, 0);
        }
        prop_assert_eq!(disabled.kpi.proactive_resumes, 0);
        // Behaviour only: the two engines trim history at different
        // instants, so storage internals may take different shapes.
        assert_behaviour_equal(&disabled, &reactive, &format!("p = 0 on {spec:?}"));
    }
}

/// Fixed-fleet regression for the fault-free metamorphic identity,
/// pinned so a strategy change cannot silently shrink its coverage:
/// explicit zero probabilities, a custom retry budget, a diagnostics
/// runner, and a live breaker config must all be inert without faults.
#[test]
fn fault_probability_zero_runs_bit_identical_to_fault_free() {
    let spec = FleetSpec {
        region: prorp_workload::RegionName::Eu1,
        size: 16,
        seed: 7,
    };
    let armed = run(
        builder(SimPolicy::Reactive)
            .seed(99)
            .stage_failure_probabilities(0.0)
            .stuck_probability(0.0)
            .retry(prorp_types::RetryPolicy {
                max_attempts: 5,
                base_backoff: Seconds(10),
                max_backoff: Seconds::minutes(2),
            })
            .breaker(prorp_types::BreakerConfig {
                failure_threshold: 1,
                cooldown: Seconds::minutes(1),
            })
            .diagnostics_period(Seconds::minutes(5))
            .build()
            .unwrap(),
        spec.traces(),
    );
    let clean = run_policy(SimPolicy::Reactive, &spec.traces());
    assert_reports_equal(&armed, &clean, "p(fault) = 0 fixed fleet");
    assert_eq!(armed.workflow.retries, 0);
    assert_eq!(armed.incidents, 0);
    assert_eq!(armed.mitigations, 0);
}

/// Fixed-fleet regression for the `p = 0` degeneration on a proactive
/// config that differs from the baseline in every *other* knob.
#[test]
fn zero_horizon_fixed_fleet_regression() {
    let spec = FleetSpec {
        region: prorp_workload::RegionName::Us2,
        size: 16,
        seed: 41,
    };
    let pc = PolicyConfig {
        horizon: Seconds::ZERO,
        confidence: 0.75,
        window: Seconds::hours(2),
        slide: Seconds::minutes(10),
        prewarm: Seconds::minutes(1),
        ..PolicyConfig::default()
    };
    let traces = spec.traces();
    let disabled = run_policy(SimPolicy::Proactive(pc), &traces);
    let reactive = run_policy(SimPolicy::Reactive, &traces);
    assert_behaviour_equal(&disabled, &reactive, "p = 0 fixed fleet");
    assert_eq!(disabled.kpi.proactive_resumes, 0);
    assert!(
        disabled.kpi.physical_pauses > 0,
        "fleet must exercise pauses"
    );
}
