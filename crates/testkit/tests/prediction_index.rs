//! Differential oracles for the incremental prediction index.
//!
//! The incremental predictor (`prorp_forecast::IncrementalPredictor`) is
//! an *optimisation*, not a behaviour change: for every history, knob
//! setting, and query instant it must return the exact same
//! `Option<Prediction>` — confidence bit for bit — as the naive
//! from-scratch Algorithm 4 scan it replaces.  Three oracles enforce
//! that claim at three scales:
//!
//! 1. a proptest interleaving `insert_history` / `delete_old_history` /
//!    `predict_at` on a single table, comparing the incrementally
//!    maintained index against a table rebuilt from scratch at every
//!    query (and against the naive predictor on both);
//! 2. a fleet-level differential: whole simulations run with the
//!    default (incremental) predictor versus the `naive_predictor`
//!    knob must produce bit-identical reports under arbitrary fleets,
//!    knobs, and fault plans;
//! 3. a pinned shard-invariance check at 1/2/8 shards with the index
//!    enabled, complementing the generated shard oracle in
//!    `differential.rs`.

use proptest::prelude::*;
use prorp_forecast::{ConfidenceBasis, IncrementalPredictor, ProbabilisticPredictor};
use prorp_sim::SimPolicy;
use prorp_storage::HistoryTable;
use prorp_types::{EventKind, PolicyConfig, Timestamp};
use testkit::oracles::{assert_reports_equal, builder, run, DAY};
use testkit::strategies::{fault_plan, fleet_spec, policy_config, FleetSpec};

/// One step of an interleaved history workload.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `insert_history(t, kind)` — out-of-order and duplicate
    /// timestamps included on purpose.
    Insert(i64, bool),
    /// `delete_old_history(history_len, now)` (Algorithm 3).
    Trim(i64),
    /// Query both predictors at `now` and cross-check.
    Predict(i64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            5 => (0i64..40 * DAY, any::<bool>()).prop_map(|(t, s)| Op::Insert(t, s)),
            1 => (0i64..45 * DAY).prop_map(Op::Trim),
            2 => (0i64..45 * DAY).prop_map(Op::Predict),
        ],
        1..100,
    )
}

/// Replay every mutation applied so far into a brand-new table and
/// configure its slot index over the final contents — the from-scratch
/// rebuild the incremental maintenance must be indistinguishable from.
fn rebuild(applied: &[Op], pc: &PolicyConfig) -> HistoryTable {
    let mut t = HistoryTable::default();
    for op in applied {
        match *op {
            Op::Insert(ts, start) => {
                let kind = if start {
                    EventKind::Start
                } else {
                    EventKind::End
                };
                t.insert_history(Timestamp(ts), kind);
            }
            Op::Trim(now) => {
                t.delete_old_history(pc.history_len, Timestamp(now));
            }
            Op::Predict(_) => unreachable!("queries are not mutations"),
        }
    }
    t.configure_slot_index(pc.seasonality.period(), pc.slide);
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary interleavings of inserts (in and out of order),
    /// Algorithm 3 trims, and queries, the incrementally maintained
    /// login cache + slot index never diverge from a from-scratch
    /// rebuild, and the incremental predictor never diverges from the
    /// naive scan — on either table, either confidence basis, and any
    /// validated knob setting.
    #[test]
    fn incremental_never_diverges_from_rebuild(
        ops in ops(),
        pc in policy_config(),
        logins_basis in any::<bool>(),
    ) {
        let basis = if logins_basis {
            ConfidenceBasis::Logins
        } else {
            ConfidenceBasis::Windows
        };
        let naive = ProbabilisticPredictor::with_basis(pc, basis).unwrap();
        let fast = IncrementalPredictor::with_basis(pc, basis).unwrap();

        let mut live = HistoryTable::default();
        live.configure_slot_index(pc.seasonality.period(), pc.slide);
        let mut applied: Vec<Op> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(ts, start) => {
                    let kind = if start { EventKind::Start } else { EventKind::End };
                    live.insert_history(Timestamp(ts), kind);
                    applied.push(op);
                }
                Op::Trim(now) => {
                    live.delete_old_history(pc.history_len, Timestamp(now));
                    applied.push(op);
                }
                Op::Predict(now) => {
                    // Internal consistency of the live table's caches.
                    live.check_invariants();
                    let rebuilt = rebuild(&applied, &pc);
                    let now = Timestamp(now);
                    let want = naive.predict_at(&live, now);
                    prop_assert_eq!(
                        fast.predict_at(&live, now), want,
                        "incremental diverged on the live table at {:?}", now
                    );
                    prop_assert_eq!(
                        fast.predict_at(&rebuilt, now), want,
                        "incremental diverged on the rebuilt table at {:?}", now
                    );
                    prop_assert_eq!(
                        naive.predict_at(&rebuilt, now), want,
                        "rebuild changed the naive answer at {:?}", now
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Whole-fleet differential: the `naive_predictor` knob swaps the
    /// reference Algorithm 4 scan back in, and every deterministic field
    /// of the report — KPIs, per-database counters (cache hits
    /// included), workflow stats, incident logs — must be bit-identical
    /// to the default incremental arm, whatever the fleet, knobs, and
    /// fault plan.
    #[test]
    fn naive_and_incremental_fleets_are_bit_identical(
        spec in fleet_spec(),
        pc in policy_config(),
        plan in fault_plan(),
    ) {
        let traces = spec.traces();
        let fast = run(
            plan.apply(builder(SimPolicy::Proactive(pc))).build().unwrap(),
            traces.clone(),
        );
        let naive = run(
            plan.apply(builder(SimPolicy::Proactive(pc)))
                .naive_predictor(true)
                .build()
                .unwrap(),
            traces,
        );
        assert_reports_equal(&fast, &naive, &format!("incremental vs naive, {spec:?}, {plan:?}"));
    }
}

/// Pinned shard invariance with the prediction index enabled: the
/// per-shard scratch buffers and per-engine caches must not leak any
/// layout dependence into the report at 1, 2, or 8 shards.
#[test]
fn index_enabled_fleet_is_shard_invariant_at_1_2_8() {
    use prorp_workload::RegionName;

    let spec = FleetSpec {
        region: RegionName::all()[0],
        size: 12,
        seed: 7,
    };
    let traces = spec.traces();
    let policy = SimPolicy::Proactive(PolicyConfig::default());
    let one = run(
        builder(policy.clone()).shards(1).build().unwrap(),
        traces.clone(),
    );
    for shards in [2usize, 8] {
        let many = run(
            builder(policy.clone()).shards(shards).build().unwrap(),
            traces.clone(),
        );
        assert_reports_equal(&one, &many, &format!("1 vs {shards} shards with index"));
    }
}
