//! Differential oracles across the three policy engines.
//!
//! Every property here runs complete fleet simulations with the
//! `strict-invariants` lifecycle checker active, so each case is doubly
//! audited: the explicit oracle assertions below, and the transition /
//! monotonicity / accounting checks inside the sim runner.

use proptest::prelude::*;
use prorp_sim::SimPolicy;
use prorp_types::{BreakerConfig, DatabaseId, DbState, Seconds, Timestamp};
use testkit::oracles::{assert_reports_equal, builder, run, run_policy};
use testkit::strategies::{fault_plan, fleet_spec, policy_config};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Dominance of the offline-optimal oracle for *arbitrary* knob
    /// settings: it serves at least as many logins and reclaims at least
    /// as many resource-hours as either online policy, and every
    /// report's KPI fractions satisfy the accounting identities (saved
    /// time is a subset of the non-active, non-waiting remainder).
    ///
    /// Note what is deliberately *not* asserted here: proactive QoS is
    /// not unconditionally above reactive QoS — with a short horizon and
    /// a strict confidence threshold, Transition ❸ (old database, no
    /// predicted activity ⇒ immediate physical pause) trades QoS for
    /// savings and can genuinely lose logins the lazy baseline would
    /// have served.  That bracketing is the paper's claim *at the
    /// Table 1 operating point* and is pinned as such by
    /// [`table1_bracketing_holds_across_fleets`].
    #[test]
    fn optimal_dominates_for_arbitrary_knobs(
        spec in fleet_spec(),
        pc in policy_config(),
    ) {
        let traces = spec.traces();
        let reactive = run_policy(SimPolicy::Reactive, &traces);
        let proactive = run_policy(SimPolicy::Proactive(pc), &traces);
        let optimal = run_policy(SimPolicy::Optimal, &traces);

        let eps = 1e-9;
        prop_assert!(
            optimal.kpi.qos_pct() + eps >= proactive.kpi.qos_pct(),
            "oracle QoS {} below proactive {} for {spec:?}",
            optimal.kpi.qos_pct(),
            proactive.kpi.qos_pct()
        );
        prop_assert!(
            optimal.kpi.qos_pct() + eps >= reactive.kpi.qos_pct(),
            "oracle QoS {} below reactive {} for {spec:?}",
            optimal.kpi.qos_pct(),
            reactive.kpi.qos_pct()
        );
        // The oracle reclaims at least as much as the reactive baseline:
        // it skips both the logical-pause linger and the resume latency.
        prop_assert!(
            optimal.kpi.saved_frac + eps >= reactive.kpi.saved_frac,
            "oracle saves {} below reactive {} for {spec:?}",
            optimal.kpi.saved_frac,
            reactive.kpi.saved_frac
        );
        for report in [&reactive, &proactive, &optimal] {
            let idle_total = 1.0 - report.kpi.active_frac - report.kpi.unavailable_frac;
            prop_assert!(
                report.kpi.saved_frac <= idle_total + eps,
                "{}: saved fraction {} exceeds total idle {}",
                report.policy_label,
                report.kpi.saved_frac,
                idle_total
            );
        }
    }
}

/// The paper's Figure 2 ordering at the Table 1 operating point:
/// reactive QoS ≤ proactive QoS ≤ optimal QoS on every evaluation
/// region, across several workload seeds.  This is the headline claim
/// the simulator reproduces, so it is pinned as a fixed grid rather
/// than left to generated knobs (which can legitimately violate it —
/// see [`optimal_dominates_for_arbitrary_knobs`]).
#[test]
fn table1_bracketing_holds_across_fleets() {
    use prorp_types::PolicyConfig;
    use prorp_workload::RegionName;
    use testkit::strategies::FleetSpec;

    for region in RegionName::all() {
        for seed in [1u64, 2, 3] {
            let spec = FleetSpec {
                region,
                size: 10,
                seed,
            };
            let traces = spec.traces();
            let reactive = run_policy(SimPolicy::Reactive, &traces);
            let proactive = run_policy(SimPolicy::Proactive(PolicyConfig::default()), &traces);
            let optimal = run_policy(SimPolicy::Optimal, &traces);
            assert!(
                reactive.kpi.qos_pct() <= proactive.kpi.qos_pct() + 1e-9
                    && proactive.kpi.qos_pct() <= optimal.kpi.qos_pct() + 1e-9,
                "{spec:?}: bracketing violated — reactive {} / proactive {} / optimal {}",
                reactive.kpi.qos_pct(),
                proactive.kpi.qos_pct(),
                optimal.kpi.qos_pct()
            );
            assert_eq!(
                optimal.kpi.logins_unavailable, 0,
                "{spec:?}: the oracle must never miss a login"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Shard invariance under arbitrary fault schedules: partitioning
    /// the fleet over worker threads must not change a single
    /// deterministic field of the report, whatever the fault layer does.
    #[test]
    fn any_fault_schedule_is_shard_invariant(
        spec in fleet_spec(),
        pc in policy_config(),
        plan in fault_plan(),
        shards in 2usize..6,
        reactive_pick in any::<bool>(),
    ) {
        let policy = if reactive_pick {
            SimPolicy::Reactive
        } else {
            SimPolicy::Proactive(pc)
        };
        let traces = spec.traces();
        let one = run(
            plan.apply(builder(policy.clone())).shards(1).build().unwrap(),
            traces.clone(),
        );
        let many = run(
            plan.apply(builder(policy)).shards(shards).build().unwrap(),
            traces,
        );
        assert_reports_equal(&one, &many, &format!("1 vs {shards} shards, {plan:?}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// A breaker pinned open from the first prediction degrades every
    /// proactive engine to the §3.2 reactive fallback: the fleet must be
    /// bit-identical to the reactive baseline except for the recorded
    /// probe failures, whatever the remaining knobs say.
    #[test]
    fn breaker_pinned_proactive_is_bit_identical_to_reactive(
        spec in fleet_spec(),
        pc in policy_config(),
    ) {
        // The reactive baseline hard-codes the production 7 h logical
        // pause; pin the generated config to it so the two fleets run
        // the same pause schedule.  Every other knob may vary freely —
        // with the breaker open none of them can matter.
        let pc = prorp_types::PolicyConfig {
            logical_pause: Seconds::hours(7),
            ..pc
        };
        let traces = spec.traces();
        let pinned = run(
            builder(SimPolicy::Proactive(pc))
                .forecast_fail_every(1)
                .breaker(BreakerConfig {
                    failure_threshold: 1,
                    cooldown: Seconds::days(365),
                })
                .build()
                .unwrap(),
            traces.clone(),
        );
        let reactive = run_policy(SimPolicy::Reactive, &traces);

        prop_assert!(pinned.kpi.forecast_failures > 0, "probes must fail");
        prop_assert_eq!(pinned.kpi.proactive_resumes, 0);
        let mut kpi = pinned.kpi;
        kpi.forecast_failures = reactive.kpi.forecast_failures;
        prop_assert_eq!(kpi, reactive.kpi);
        prop_assert_eq!(
            pinned.workflow.stage_completions,
            reactive.workflow.stage_completions
        );
        prop_assert_eq!(
            &pinned.workflow.workflow_latency,
            &reactive.workflow.workflow_latency
        );
        prop_assert!(pinned.workflow.breaker_opens > 0, "breakers must trip");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The `sqlmini` metadata path agrees with the native
    /// [`prorp_storage::MetadataStore`] under interleaved upserts
    /// (including overwrites) and repeated Algorithm 5 scans at varying
    /// instants — not just a single final query.
    #[test]
    fn sqlmini_metadata_scan_agrees_with_native_store(
        ops in prop::collection::vec(
            (0u64..32, 0u8..3, prop::option::of(0i64..80_000)),
            1..80,
        ),
        scans in prop::collection::vec(
            (0i64..90_000, 1i64..900, 1i64..2_000),
            1..6,
        ),
    ) {
        use prorp_sqlmini::MetadataDb;
        use prorp_storage::{DbMeta, MetadataStore};

        let mut sql = MetadataDb::new();
        let mut native = MetadataStore::new();
        // Interleave: after every few upserts, both layers answer a scan
        // and must agree — catching divergence that a final-state-only
        // comparison would mask (e.g. stale index entries surviving an
        // overwrite).
        for (i, (id, state, pred)) in ops.iter().enumerate() {
            let state = match state {
                0 => DbState::Resumed,
                1 => DbState::LogicallyPaused,
                _ => DbState::PhysicallyPaused,
            };
            sql.upsert(*id, state, *pred).unwrap();
            native.upsert(
                DatabaseId(*id),
                DbMeta {
                    state,
                    pred_start: pred.map(Timestamp),
                },
            );
            if i % 7 == 6 {
                let (now, prewarm, width) = scans[i % scans.len()];
                let mut a = sql.databases_to_resume(now, prewarm, width).unwrap();
                let mut b: Vec<u64> = native
                    .databases_to_resume_iter(Timestamp(now), Seconds(prewarm), Seconds(width))
                    .map(|d| d.raw())
                    .collect();
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "scan after op {} diverged", i);
            }
        }
        for &(now, prewarm, width) in &scans {
            let mut a = sql.databases_to_resume(now, prewarm, width).unwrap();
            let mut b: Vec<u64> = native
                .databases_to_resume_iter(Timestamp(now), Seconds(prewarm), Seconds(width))
                .map(|d| d.raw())
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
