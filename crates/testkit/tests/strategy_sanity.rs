//! The strategies must emit only valid-by-construction values: a
//! generator that can produce a rejected config would burn property
//! cases on validation errors instead of behaviour.

use proptest::prelude::*;
use prorp_sim::SimPolicy;
use testkit::oracles::builder;
use testkit::strategies::{fault_plan, fleet_spec, policy_config};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated knob set passes [`prorp_types::PolicyConfig`]
    /// validation, and window never exceeds horizon.
    #[test]
    fn generated_policy_configs_validate(pc in policy_config()) {
        prop_assert!(pc.validate().is_ok(), "rejected: {pc:?}");
        prop_assert!(pc.window <= pc.horizon);
        prop_assert!(!pc.prediction_disabled());
    }

    /// Every generated fault plan builds a valid simulator config.
    #[test]
    fn generated_fault_plans_build(pc in policy_config(), plan in fault_plan()) {
        let cfg = plan.apply(builder(SimPolicy::Proactive(pc))).build();
        prop_assert!(cfg.is_ok(), "rejected: {plan:?} -> {cfg:?}");
        let cfg = cfg.unwrap();
        prop_assert_eq!(
            cfg.diagnostics_period.is_some(),
            plan.stuck_probability > 0.0,
            "stuck workflows need the diagnostics runner"
        );
    }

    /// Fleet expansion is deterministic: the same spec yields the same
    /// traces, and each database appears exactly once.
    #[test]
    fn fleet_specs_expand_deterministically(spec in fleet_spec()) {
        let a = spec.traces();
        let b = spec.traces();
        prop_assert_eq!(a.len(), spec.size);
        let mut ids: Vec<_> = a.iter().map(|t| t.db).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), spec.size, "duplicate database ids");
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.db, y.db);
            prop_assert_eq!(&x.sessions, &y.sessions);
        }
    }
}
