//! Golden KPI snapshots over a seed × shard-count × fault-knob matrix.
//!
//! Each case runs one 16-database Eu1 fleet over the standard 35-day
//! window and compares the rendered KPI surface byte-for-byte against
//! `tests/goldens/<name>.json`.  The simulator promises bit-stable
//! results for a fixed seed at any shard count, so *any* drift is either
//! a deliberate semantic change — re-record with `scripts/bless.sh` and
//! review the diff — or a regression this suite just caught.

use prorp_sim::{SimConfigBuilder, SimPolicy, Simulation};
use prorp_types::{BreakerConfig, PolicyConfig, RetryPolicy, Seconds, Timestamp};
use prorp_workload::{RegionName, RegionProfile, Trace};
use testkit::golden::{check_golden, render_report};
use testkit::oracles::{DAY, MEASURE_DAY, SPAN_DAYS};

struct Case {
    name: &'static str,
    policy: fn() -> SimPolicy,
    shards: usize,
    fleet_seed: u64,
    fault_seed: u64,
    tweak: fn(SimConfigBuilder) -> SimConfigBuilder,
}

fn clean(b: SimConfigBuilder) -> SimConfigBuilder {
    b
}

fn flaky_stages(b: SimConfigBuilder) -> SimConfigBuilder {
    b.stage_failure_probabilities(0.25)
        .retry(RetryPolicy {
            max_attempts: 4,
            base_backoff: Seconds(20),
            max_backoff: Seconds::minutes(2),
        })
        .stuck_probability(0.05)
        .diagnostics_period(Seconds::minutes(5))
}

fn breaker_faults(b: SimConfigBuilder) -> SimConfigBuilder {
    b.forecast_fail_every(3).breaker(BreakerConfig {
        failure_threshold: 2,
        cooldown: Seconds::hours(2),
    })
}

fn proactive() -> SimPolicy {
    SimPolicy::Proactive(PolicyConfig::default())
}

const MATRIX: &[Case] = &[
    Case {
        name: "reactive_s1_clean",
        policy: || SimPolicy::Reactive,
        shards: 1,
        fleet_seed: 101,
        fault_seed: 0,
        tweak: clean,
    },
    Case {
        name: "reactive_s2_faulty",
        policy: || SimPolicy::Reactive,
        shards: 2,
        fleet_seed: 102,
        fault_seed: 17,
        tweak: flaky_stages,
    },
    Case {
        name: "proactive_s1_clean",
        policy: proactive,
        shards: 1,
        fleet_seed: 103,
        fault_seed: 0,
        tweak: clean,
    },
    Case {
        name: "proactive_s3_faulty",
        policy: proactive,
        shards: 3,
        fleet_seed: 104,
        fault_seed: 23,
        tweak: flaky_stages,
    },
    Case {
        name: "proactive_s1_breaker",
        policy: proactive,
        shards: 1,
        fleet_seed: 105,
        fault_seed: 29,
        tweak: breaker_faults,
    },
    Case {
        name: "optimal_s1_clean",
        policy: || SimPolicy::Optimal,
        shards: 1,
        fleet_seed: 106,
        fault_seed: 0,
        tweak: clean,
    },
];

fn fleet(seed: u64) -> Vec<Trace> {
    RegionProfile::for_region(RegionName::Eu1).generate_fleet(
        16,
        Timestamp(0),
        Timestamp(SPAN_DAYS * DAY),
        seed,
    )
}

#[test]
fn golden_kpi_matrix() {
    let mut drifts = Vec::new();
    for case in MATRIX {
        let b = prorp_sim::SimConfig::builder(
            (case.policy)(),
            Timestamp(0),
            Timestamp(SPAN_DAYS * DAY),
            Timestamp(MEASURE_DAY * DAY),
        )
        .shards(case.shards)
        .seed(case.fault_seed);
        let cfg = (case.tweak)(b).build().expect("matrix configs validate");
        let report = Simulation::new(cfg, fleet(case.fleet_seed))
            .unwrap()
            .run()
            .unwrap();
        if let Err(msg) = check_golden(case.name, &render_report(&report)) {
            drifts.push(msg);
        }
    }
    assert!(
        drifts.is_empty(),
        "{} of {} golden snapshots drifted:\n\n{}",
        drifts.len(),
        MATRIX.len(),
        drifts.join("\n\n")
    );
}
