//! The sim ≡ live differential suite.
//!
//! The control-plane server (`prorp-server`) drives the *same*
//! [`prorp_sim::ShardDriver`] stack the DES runs, through a watermark
//! protocol instead of a pre-loaded queue.  This suite is the
//! correctness centerpiece of service mode:
//!
//! * replay a recorded fleet through both drivers and assert the
//!   reports are **bit-identical** — resume/pause decisions (telemetry
//!   events), KPI counters, per-database engine counters, incident
//!   logs, Algorithm 5 batch sizes, and the observability span trace —
//!   at 1 shard and at 8 shards, clean and under fault injection;
//! * a proptest oracle proving ingest is **idempotent and
//!   reorder-tolerant within a watermark window**: arbitrary intra-
//!   window arrival order plus injected duplicate deliveries cannot
//!   change a single decision.

use proptest::prelude::*;
use prorp_obs::SloConfig;
use prorp_server::{IngestOutcome, LiveDriver, LiveEvent, LiveEventKind};
use prorp_sim::{
    CompactionMode, ObsConfig, SimConfig, SimConfigBuilder, SimPolicy, SimReport, Simulation,
    StorageBackend,
};
use prorp_types::{DatabaseId, PolicyConfig, RetryPolicy, Seconds, Timestamp};
use prorp_workload::{RegionName, RegionProfile, Trace};
use testkit::oracles::{assert_reports_equal, DAY, MEASURE_DAY, SPAN_DAYS};

fn fleet(seed: u64, dbs: usize) -> Vec<Trace> {
    RegionProfile::for_region(RegionName::Eu1).generate_fleet(
        dbs,
        Timestamp(0),
        Timestamp(SPAN_DAYS * DAY),
        seed,
    )
}

fn base_config(policy: SimPolicy, shards: usize) -> SimConfigBuilder {
    SimConfig::builder(
        policy,
        Timestamp(0),
        Timestamp(SPAN_DAYS * DAY),
        Timestamp(MEASURE_DAY * DAY),
    )
    .shards(shards)
    .observe(
        ObsConfig::with_snapshots(Seconds::days(7))
            .with_slo(SloConfig::default())
            .with_explain(),
    )
}

/// Flatten traces into the wire-form event stream, in trace order (the
/// order a recorded production stream would interleave arrivals).
fn stream_of(traces: &[Trace]) -> Vec<LiveEvent> {
    let mut events = Vec::new();
    for t in traces {
        for s in &t.sessions {
            events.push(LiveEvent {
                db: t.db,
                at: s.start,
                kind: LiveEventKind::Login,
            });
            events.push(LiveEvent {
                db: t.db,
                at: s.end,
                kind: LiveEventKind::Logout,
            });
        }
    }
    events.sort_by_key(|e| e.at);
    events
}

/// Replay `events` through a [`LiveDriver`], ingesting everything that
/// falls inside each `[watermark, watermark + chunk)` window right
/// before advancing past it.
fn run_live(cfg: &SimConfig, traces: &[Trace], events: &[LiveEvent], chunk: Seconds) -> SimReport {
    let ids: Vec<DatabaseId> = traces.iter().map(|t| t.db).collect();
    let mut driver = LiveDriver::new(cfg, &ids).expect("live driver builds");
    let mut window_start = cfg.start;
    while window_start < cfg.end {
        let window_end = (window_start + chunk).min(cfg.end);
        for ev in events {
            if ev.at >= window_start && ev.at < window_end {
                assert_eq!(driver.ingest(*ev), IngestOutcome::Accepted, "{ev:?}");
            }
        }
        driver.advance_to(window_end).expect("advance");
        window_start = window_end;
    }
    driver.finish().expect("live run finishes")
}

/// Everything [`assert_reports_equal`] covers, plus the full telemetry
/// event log and the deterministic observability surface (span trace +
/// volatile-masked metrics snapshots) — "identical decisions, KPI
/// counters, and span traces" from the issue, literally.
fn assert_live_identical(des: &SimReport, live: &SimReport, context: &str) {
    assert_reports_equal(des, live, context);
    assert_eq!(
        des.telemetry.events(),
        live.telemetry.events(),
        "{context}: decision (telemetry) logs differ"
    );
    assert_eq!(
        des.telemetry_summary, live.telemetry_summary,
        "{context}: telemetry summaries differ"
    );
    match (&des.obs, &live.obs) {
        (Some(a), Some(b)) => {
            assert_eq!(a.trace, b.trace, "{context}: span traces differ");
            let da: Vec<_> = a.snapshots.iter().map(|s| s.deterministic()).collect();
            let db: Vec<_> = b.snapshots.iter().map(|s| s.deterministic()).collect();
            assert_eq!(da, db, "{context}: metrics snapshot series differ");
            // SLO rollups, their derived rows, and the burn-rate alert
            // log must agree bit for bit — the fleet-scale surface an
            // operator actually pages on.
            assert_eq!(a.slo, b.slo, "{context}: SLO series differ");
            assert_eq!(a.alerts(), b.alerts(), "{context}: alert logs differ");
            // Decision provenance rides inside the trace; compare the
            // explain records on their own too so a regression names
            // the surface that broke.
            let explains = |r: &prorp_obs::ObsReport| -> Vec<_> {
                r.trace
                    .iter()
                    .filter(|t| matches!(t.kind, prorp_obs::SpanKind::Decision { .. }))
                    .cloned()
                    .collect()
            };
            let (ea, eb) = (explains(a), explains(b));
            assert_eq!(ea, eb, "{context}: decision explains differ");
        }
        (a, b) => assert_eq!(
            a.is_some(),
            b.is_some(),
            "{context}: observability presence differs"
        ),
    }
}

fn run_des(cfg: &SimConfig, traces: &[Trace]) -> SimReport {
    Simulation::new(cfg.clone(), traces.to_vec())
        .expect("config validates")
        .run()
        .expect("DES completes")
}

#[test]
fn live_matches_des_at_one_and_eight_shards() {
    let traces = fleet(4242, 16);
    let events = stream_of(&traces);
    for policy in [
        SimPolicy::Reactive,
        SimPolicy::Proactive(PolicyConfig::default()),
    ] {
        for shards in [1usize, 8] {
            let cfg = base_config(policy.clone(), shards)
                .build()
                .expect("config validates");
            let des = run_des(&cfg, &traces);
            let live = run_live(&cfg, &traces, &events, Seconds::hours(6));
            assert_live_identical(
                &des,
                &live,
                &format!("{} @ {shards} shard(s)", cfg.policy.label()),
            );
        }
    }
}

/// The storage hot-path changes reach service mode too: a live driver
/// running the LSM backend with the background compaction scheduler
/// must make decisions bit-identical to the DES running the same
/// backend with inline (deterministic) compaction.  This is the
/// end-to-end form of the `CompactionScheduler` determinism argument —
/// worker threads under the wall-clock-capable driver change nothing
/// observable.
#[test]
fn live_lsm_background_matches_des_inline_compaction() {
    let traces = fleet(909, 12);
    let events = stream_of(&traces);
    for shards in [1usize, 4] {
        let des_cfg = base_config(SimPolicy::Proactive(PolicyConfig::default()), shards)
            .storage_backend(StorageBackend::Lsm)
            .build()
            .expect("config validates");
        let live_cfg = base_config(SimPolicy::Proactive(PolicyConfig::default()), shards)
            .storage_backend(StorageBackend::Lsm)
            .compaction_mode(CompactionMode::Background)
            .build()
            .expect("config validates");
        let des = run_des(&des_cfg, &traces);
        let live = run_live(&live_cfg, &traces, &events, Seconds::hours(6));
        assert_live_identical(
            &des,
            &live,
            &format!("lsm inline-DES vs background-live @ {shards} shard(s)"),
        );
    }
}

#[test]
fn live_matches_des_under_fault_injection() {
    let traces = fleet(77, 12);
    let events = stream_of(&traces);
    for shards in [1usize, 8] {
        let cfg = base_config(SimPolicy::Proactive(PolicyConfig::default()), shards)
            .stage_failure_probabilities(0.3)
            .retry(RetryPolicy {
                max_attempts: 2,
                base_backoff: Seconds(20),
                max_backoff: Seconds::minutes(2),
            })
            .stuck_probability(0.05)
            .diagnostics_period(Seconds::minutes(5))
            .forecast_fail_every(5)
            .build()
            .expect("config validates");
        let des = run_des(&cfg, &traces);
        let live = run_live(&cfg, &traces, &events, Seconds::hours(3));
        assert_live_identical(&des, &live, &format!("faulty @ {shards} shard(s)"));
        // The fault layer actually fired — the differential is not
        // vacuous.
        assert!(
            des.workflow.retries > 0 || des.giveups > 0,
            "fault knobs produced no faults; tighten the config"
        );
    }
}

/// Deterministic in-place Fisher–Yates, keyed by a proptest-chosen seed
/// (`Date`-free and `rand`-free: the testkit only vendors proptest).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ingest idempotency + intra-window reorder tolerance: shuffle the
    /// arrivals inside every watermark window, redeliver a sample of
    /// them as duplicates (same window *and* after their window closed),
    /// and the final report still matches the clean DES run bit for bit.
    #[test]
    fn ingest_is_idempotent_and_reorder_tolerant(
        fleet_seed in 0u64..1_000,
        shuffle_seed in any::<u64>(),
        chunk_hours in 1i64..48,
        shards in 1u64..4,
    ) {
        let traces = fleet(fleet_seed, 6);
        let events = stream_of(&traces);
        let cfg = base_config(SimPolicy::Proactive(PolicyConfig::default()), shards as usize)
            .build()
            .expect("config validates");
        let des = run_des(&cfg, &traces);

        let ids: Vec<DatabaseId> = traces.iter().map(|t| t.db).collect();
        let mut driver = LiveDriver::new(&cfg, &ids).expect("live driver builds");
        let chunk = Seconds::hours(chunk_hours);
        let mut window_start = cfg.start;
        let mut window_index = 0u64;
        let mut previous: Option<LiveEvent> = None;
        while window_start < cfg.end {
            let window_end = (window_start + chunk).min(cfg.end);
            let mut arrivals: Vec<LiveEvent> = events
                .iter()
                .copied()
                .filter(|e| e.at >= window_start && e.at < window_end)
                .collect();
            // Arbitrary arrival order within the window…
            shuffle(&mut arrivals, shuffle_seed ^ window_index);
            // …with every third delivery duplicated immediately.
            for (i, ev) in arrivals.iter().enumerate() {
                prop_assert_eq!(driver.ingest(*ev), IngestOutcome::Accepted);
                if i % 3 == 0 {
                    prop_assert_eq!(driver.ingest(*ev), IngestOutcome::Duplicate);
                }
            }
            // Redelivery from an already-committed window is rejected
            // as late — it cannot rewrite history.
            if let Some(old) = previous {
                prop_assert_eq!(driver.ingest(old), IngestOutcome::Late);
            }
            previous = arrivals.first().copied().or(previous);
            driver.advance_to(window_end).expect("advance");
            window_start = window_end;
            window_index += 1;
        }
        let live = driver.finish().expect("live run finishes");
        assert_live_identical(&des, &live, "shuffled+duplicated replay");
    }
}
