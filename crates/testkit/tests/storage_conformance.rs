//! Storage-backend conformance: behind the `HistoryStore` seam, the
//! LSM/MVCC engine must be observationally indistinguishable from the
//! B+Tree — on a single store, across a whole simulated fleet, and in
//! the recorded observability stream.
//!
//! Four layers:
//!
//! * a single-store interleaving property — arbitrary Algorithm 2/3
//!   op sequences applied through `&mut dyn HistoryStore` to both
//!   backends must agree on every read (with the B+Tree as the model),
//!   and every intermediate LSM seqno must `snapshot()` back to exactly
//!   the state the model held at that point;
//! * a fleet differential — generated fleets under generated fault
//!   plans produce bit-identical behaviour (KPIs, per-database engine
//!   counters, incidents, batches) on either backend;
//! * LSM shard invariance — a pinned faulty scenario on the LSM backend
//!   reports identically at 1, 2, and 8 shards, including the history
//!   storage statistics;
//! * observability equality and time travel — the JSONL span trace of a
//!   pinned scenario is byte-identical across backends (checkpoints
//!   serialise events, not pages), and replaying a recorded database's
//!   Login spans through `prorp_obs::timetravel` at a recorded Predict
//!   instant reproduces the predictor run from an LSM snapshot.

use proptest::prelude::*;
use prorp_forecast::ProbabilisticPredictor;
use prorp_obs::span::SpanKind;
use prorp_obs::{timetravel, trace_jsonl, ObsConfig, PredictOutcome};
use prorp_sim::{CompactionMode, SimPolicy, SimReport, StorageBackend};
use prorp_storage::{
    CompactionScheduler, HistoryRead, HistoryStore, HistoryTable, LsmConfig, LsmHistory,
    LsmSnapshot, TimeTravel,
};
use prorp_types::{ActivityEvent, EventKind, PolicyConfig, Seconds, Timestamp};
use testkit::oracles::{assert_behaviour_equal, assert_reports_equal, builder, run, DAY};
use testkit::strategies::{fault_plan, fleet_spec, FaultPlan, FleetSpec};

// ── Layer 1: single-store interleavings ──────────────────────────────

/// One Algorithm 2 or Algorithm 3 call.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `sys.InsertHistory(@time, @type)`.
    Insert { at: i64, login: bool },
    /// `sys.DeleteOldHistory(@h, now)`.
    Trim { now: i64, h_days: i64 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..40 * DAY, any::<bool>())
            .prop_map(|(at, login)| Op::Insert { at, login }),
        1 => (0i64..40 * DAY, 1i64..6)
            .prop_map(|(now, h_days)| Op::Trim { now, h_days }),
    ]
}

fn apply(store: &mut dyn HistoryStore, op: Op) {
    match op {
        Op::Insert { at, login } => {
            let kind = if login {
                EventKind::Start
            } else {
                EventKind::End
            };
            store.insert_history(Timestamp(at), kind);
        }
        Op::Trim { now, h_days } => {
            store.delete_old_history(Seconds::days(h_days), Timestamp(now));
        }
    }
    store.check_invariants();
}

/// Every read the engines and predictors perform, compared pairwise.
fn assert_reads_equal(model: &dyn HistoryRead, lsm: &dyn HistoryRead, context: &str) {
    assert_eq!(model.len(), lsm.len(), "{context}: len");
    assert_eq!(model.version(), lsm.version(), "{context}: version");
    assert_eq!(model.min_timestamp(), lsm.min_timestamp(), "{context}: min");
    assert_eq!(model.max_timestamp(), lsm.max_timestamp(), "{context}: max");
    assert_eq!(model.logins(), lsm.logins(), "{context}: login cache");
    assert_eq!(model.events(), lsm.events(), "{context}: events");
    assert_eq!(
        model.stats().tuples,
        lsm.stats().tuples,
        "{context}: logical stats"
    );
    // Algorithm 4 style probes across the whole keyspan.
    for lo in (0..40 * DAY).step_by(6 * 3_600) {
        let (lo, hi) = (Timestamp(lo), Timestamp(lo + 7 * 3_600));
        assert_eq!(
            model.login_window_stats(lo, hi),
            lsm.login_window_stats(lo, hi),
            "{context}: window stats at {lo}"
        );
        assert_eq!(
            model.any_event_in(lo, hi),
            lsm.any_event_in(lo, hi),
            "{context}: any_event_in at {lo}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary insert/trim interleavings: the LSM store must agree
    /// with the B+Tree after every op, and each recorded seqno must
    /// snapshot back to the exact event set the model held then.
    #[test]
    fn interleavings_agree_and_snapshots_rebuild(ops in prop::collection::vec(op(), 1..60)) {
        let mut model = HistoryTable::new();
        let mut lsm = LsmHistory::new();
        // `(seqno, events the model held at that seqno)` after each op.
        let mut states: Vec<(u64, Vec<ActivityEvent>)> = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut model, op);
            apply(&mut lsm, op);
            assert_reads_equal(&model, &lsm, &format!("after op {i} ({op:?})"));
            states.push((lsm.version(), model.events()));
        }
        // Time travel back through every recorded seqno: the snapshot
        // must equal the state rebuilt from the op prefix (held by the
        // model at that point), not just the final state.
        for (seqno, expected) in &states {
            let snap = lsm.snapshot(*seqno);
            prop_assert_eq!(snap.seqno(), *seqno);
            prop_assert_eq!(&snap.events(), expected, "snapshot at seqno {}", seqno);
        }
        // Seqno 0 is always the empty store.
        prop_assert!(lsm.snapshot(0).is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forced-compaction oracle for the range-tombstone path: a
    /// tiny-memtable LSM store (flush every 4 versions, so trims become
    /// range tombstones that real merges then garbage-collect) must stay
    /// read-identical to the per-tuple-delete B+Tree model in BOTH
    /// compaction modes, with a worker barrier forced after every trim.
    /// Snapshots pinned mid-stream must keep resolving their exact
    /// historical tuples even after compaction has merged or dropped the
    /// runs they pin.
    #[test]
    fn forced_compaction_preserves_observable_state(
        ops in prop::collection::vec(op(), 1..60),
    ) {
        let tiny = LsmConfig {
            memtable_cap: 4,
            bloom_filters: true,
        };
        let sched = CompactionScheduler::new();
        let mut model = HistoryTable::new();
        let mut inline = LsmHistory::with_config(tiny);
        let mut bg = LsmHistory::with_config(tiny);
        bg.attach_scheduler(&sched);
        // `(snapshot, events the model held at freeze time)` pairs,
        // pinned eagerly while the runs they read through are live.
        let mut pins: Vec<(LsmSnapshot, Vec<ActivityEvent>)> = Vec::new();
        for (i, &op) in ops.iter().enumerate() {
            apply(&mut model, op);
            apply(&mut inline, op);
            apply(&mut bg, op);
            if i % 5 == 0 {
                pins.push((inline.snapshot(inline.version()), model.events()));
                pins.push((bg.snapshot(bg.version()), model.events()));
            }
            if matches!(op, Op::Trim { .. }) {
                // Let the worker catch up, then the two modes must agree
                // on every read the engines perform.
                bg.compaction_barrier();
                assert_reads_equal(&inline, &bg, &format!("inline vs background after op {i}"));
            }
        }
        bg.compaction_barrier();
        assert_reads_equal(&model, &inline, "model vs inline at end");
        assert_reads_equal(&model, &bg, "model vs background at end");
        // Physical convergence: background compaction is a pure
        // relocation of the inline work, so the effort ledgers, the run
        // layout, and the GC floor all match bit for bit.
        prop_assert_eq!(inline.metrics(), bg.metrics(), "effort ledgers diverged");
        prop_assert_eq!(inline.run_count(), bg.run_count());
        prop_assert_eq!(inline.gc_floor(), bg.gc_floor());
        prop_assert_eq!(
            bg.compaction_stall_ns(),
            0u64,
            "background mode must keep the mutation path stall-free"
        );
        // Pinned snapshots stay exact below the GC floor: every tuple
        // the model held at freeze time resolves through the pinned run
        // hierarchy even though the live stores may have dropped it.
        for (snap, expected) in &pins {
            prop_assert_eq!(snap.len(), expected.len(), "pinned len at seqno {}", snap.seqno());
            for ev in expected {
                prop_assert_eq!(
                    snap.resolve(ev.ts.as_secs()),
                    Some(i64::from(ev.kind == EventKind::Start)),
                    "pinned resolve of {} at seqno {}", ev.ts, snap.seqno()
                );
            }
        }
        bg.detach_compaction();
    }
}

// ── Layers 2–4: fleet-level oracles ──────────────────────────────────

fn run_backend(
    spec: &FleetSpec,
    plan: &FaultPlan,
    shards: usize,
    backend: StorageBackend,
    observe: bool,
) -> SimReport {
    run_mode(
        spec,
        plan,
        shards,
        backend,
        observe,
        CompactionMode::default(),
    )
}

fn run_mode(
    spec: &FleetSpec,
    plan: &FaultPlan,
    shards: usize,
    backend: StorageBackend,
    observe: bool,
    mode: CompactionMode,
) -> SimReport {
    let mut b = plan
        .apply(builder(SimPolicy::Proactive(PolicyConfig::default())))
        .shards(shards)
        .storage_backend(backend)
        .compaction_mode(mode);
    if observe {
        b = b.observe(ObsConfig::on());
    }
    run(b.build().expect("backend configs validate"), spec.traces())
}

/// The pinned scenario for the deterministic (non-proptest) layers.
fn pinned() -> (FleetSpec, FaultPlan) {
    let spec = FleetSpec {
        region: prorp_workload::RegionName::all()[1],
        size: 10,
        seed: 20_240_607,
    };
    let plan = FaultPlan {
        stage_failure: 0.1,
        warm_cache_extra: 0.1,
        seed: 7,
        ..FaultPlan::quiescent()
    };
    (spec, plan)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The storage backend is invisible to behaviour: generated fleets
    /// under generated fault plans report identical KPIs, engine
    /// counters, incidents, and resume batches on either backend.
    /// (History *storage statistics* legitimately differ — the LSM
    /// retains MVCC versions — so this compares behaviour, not pages.)
    #[test]
    fn fleet_behaviour_is_backend_independent(
        spec in fleet_spec(),
        plan in fault_plan(),
    ) {
        let btree = run_backend(&spec, &plan, 2, StorageBackend::BTree, false);
        let lsm = run_backend(&spec, &plan, 2, StorageBackend::Lsm, false);
        assert_behaviour_equal(&btree, &lsm, &format!("{spec:?} under {plan:?}"));
    }
}

/// Shard invariance holds on the LSM backend exactly as on the B+Tree,
/// in both compaction modes: 1, 2, and 8 shards produce bit-identical
/// reports, including the merged history storage statistics.
#[test]
fn lsm_reports_are_shard_invariant() {
    let (spec, plan) = pinned();
    let single = run_backend(&spec, &plan, 1, StorageBackend::Lsm, false);
    for mode in [CompactionMode::Deterministic, CompactionMode::Background] {
        for shards in [2, 8] {
            let sharded = run_mode(&spec, &plan, shards, StorageBackend::Lsm, false, mode);
            assert_reports_equal(
                &single,
                &sharded,
                &format!("lsm at {shards} shards ({} compaction)", mode.label()),
            );
        }
    }
}

/// A whole simulated fleet reports bit-identically whether LSM
/// compaction runs inline at flush points or on the scheduler's
/// background worker: the drivers detach every store behind a barrier
/// before collecting stats, and history statistics are logical
/// (post-tombstone), so not a single byte of the report may move.
#[test]
fn fleet_reports_are_compaction_mode_independent() {
    let (spec, plan) = pinned();
    let det = run_backend(&spec, &plan, 2, StorageBackend::Lsm, false);
    let bg = run_mode(
        &spec,
        &plan,
        2,
        StorageBackend::Lsm,
        false,
        CompactionMode::Background,
    );
    assert_reports_equal(&det, &bg, "deterministic vs background compaction");
}

/// The recorded observability stream is a backend-independent artefact:
/// checkpoint/recover spans carry the size of the serialised *event*
/// stream, not of backend pages, so the JSONL traces match byte for
/// byte.
#[test]
fn span_traces_are_byte_identical_across_backends() {
    let (spec, plan) = pinned();
    let btree = run_backend(&spec, &plan, 2, StorageBackend::BTree, true);
    let lsm = run_backend(&spec, &plan, 2, StorageBackend::Lsm, true);
    let jsonl = |r: &SimReport| trace_jsonl(&r.obs.as_ref().expect("observed").trace);
    assert_eq!(
        jsonl(&btree),
        jsonl(&lsm),
        "span traces diverged between backends"
    );
}

/// End-to-end time travel: pick a recorded Predict instant from a real
/// simulated trace, replay that database's Login spans through the LSM
/// store, and re-run Algorithm 4 over `snapshot_as_of(T)`.  The result
/// must equal a prediction computed over a directly rebuilt B+Tree
/// history — the same tuples by a different engine and route.
#[test]
fn time_travel_reproduces_a_recorded_prediction() {
    let (spec, plan) = pinned();
    let report = run_backend(&spec, &plan, 2, StorageBackend::Lsm, true);
    let records = &report.obs.as_ref().expect("observed").trace;
    // Chosen (db, T): the last successful predictor run in the trace,
    // so plenty of history precedes it.
    let (db, at) = records
        .iter()
        .filter_map(|r| match r.kind {
            SpanKind::Predict {
                outcome: PredictOutcome::Predicted,
            } => Some((r.db, r.start)),
            _ => None,
        })
        .next_back()
        .expect("a 35-day proactive run records predictor runs");

    let replay = timetravel::replay_as_of(records, db, at, PolicyConfig::default())
        .expect("replay succeeds");
    assert!(
        replay.reproduces_recorded_run(),
        "replay instant must hit the recorded run"
    );
    assert!(replay.logins_replayed > 0, "the database logged in");
    assert!(replay.snapshot_len > 0, "history precedes the predict run");

    // Independent route: rebuild the pre-T history directly in a
    // B+Tree and predict over it.
    let mut table = HistoryTable::new();
    for r in records.iter().filter(|r| r.db == db && r.start <= at) {
        if matches!(r.kind, SpanKind::Login { .. }) {
            table.insert_history(r.start, EventKind::Start);
        }
    }
    let expected = ProbabilisticPredictor::new(PolicyConfig::default())
        .expect("Table 1 defaults validate")
        .predict_at(&table, at);
    assert_eq!(
        replay.prediction, expected,
        "LSM snapshot replay diverged from the direct rebuild"
    );
}
