//! Golden KPI snapshots.
//!
//! A golden file pins the *exact* deterministic KPI surface of one
//! simulated scenario: every [`KpiReport`] field, the derived QoS and
//! idle percentages, the fleet-wide workflow/fault counters, and the
//! cluster-churn totals.  The suite fails if any of them drifts by a
//! single bit — which is the point: the simulator promises bit-stable
//! results for a fixed seed, so any drift is either a deliberate
//! semantic change (re-bless with `scripts/bless.sh`) or a regression.
//!
//! Rendering is a hand-built canonical JSON string — fixed key order,
//! two-space indent, `f64` written with Rust's shortest-round-trip
//! formatting — so files are diffable and byte-comparable without a JSON
//! parser or serde dependency.
//!
//! Files live in the workspace-level `tests/goldens/` directory next to
//! the cross-crate integration tests.  To re-record after an intentional
//! KPI change, run `scripts/bless.sh` (or `BLESS=1 cargo test -p testkit
//! --test golden_kpis`) and review the resulting diff like any other
//! code change.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use prorp_sim::SimReport;
use prorp_telemetry::KpiReport;

/// The workspace-level golden directory (`tests/goldens/`).
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/goldens"))
}

fn render_kpi(out: &mut String, kpi: &KpiReport) {
    let _ = writeln!(out, "  \"kpi\": {{");
    let _ = writeln!(out, "    \"logins_available\": {},", kpi.logins_available);
    let _ = writeln!(
        out,
        "    \"logins_unavailable\": {},",
        kpi.logins_unavailable
    );
    let _ = writeln!(out, "    \"qos_pct\": {},", kpi.qos_pct());
    let _ = writeln!(out, "    \"active_frac\": {},", kpi.active_frac);
    let _ = writeln!(out, "    \"idle_logical_frac\": {},", kpi.idle_logical_frac);
    let _ = writeln!(
        out,
        "    \"idle_proactive_correct_frac\": {},",
        kpi.idle_proactive_correct_frac
    );
    let _ = writeln!(
        out,
        "    \"idle_proactive_wrong_frac\": {},",
        kpi.idle_proactive_wrong_frac
    );
    let _ = writeln!(out, "    \"saved_frac\": {},", kpi.saved_frac);
    let _ = writeln!(out, "    \"unavailable_frac\": {},", kpi.unavailable_frac);
    let _ = writeln!(out, "    \"idle_pct\": {},", kpi.idle_pct());
    let _ = writeln!(out, "    \"proactive_resumes\": {},", kpi.proactive_resumes);
    let _ = writeln!(out, "    \"physical_pauses\": {},", kpi.physical_pauses);
    let _ = writeln!(out, "    \"forecast_failures\": {}", kpi.forecast_failures);
    let _ = writeln!(out, "  }},");
}

/// Render the deterministic KPI surface of a report as canonical JSON.
///
/// Besides the fleet KPIs this includes the workflow/fault counters and
/// the cluster-churn totals, widening the net a drift must slip through;
/// wall-clock quantities (shard timings, prediction latencies) are
/// deliberately excluded.
pub fn render_report(report: &SimReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"policy\": \"{}\",", report.policy_label);
    render_kpi(&mut out, &report.kpi);
    let _ = writeln!(out, "  \"workflow\": {{");
    let _ = writeln!(out, "    \"retries\": {},", report.workflow.retries);
    let _ = writeln!(out, "    \"giveups\": {},", report.workflow.giveups);
    let _ = writeln!(
        out,
        "    \"breaker_opens\": {},",
        report.workflow.breaker_opens
    );
    let _ = writeln!(
        out,
        "    \"breaker_fallbacks\": {},",
        report.workflow.breaker_fallbacks
    );
    let _ = writeln!(
        out,
        "    \"stage_completions\": [{}]",
        report
            .workflow
            .stage_completions
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"fleet\": {{");
    let _ = writeln!(out, "    \"spill_moves\": {},", report.spill_moves);
    let _ = writeln!(out, "    \"balance_moves\": {},", report.balance_moves);
    let _ = writeln!(
        out,
        "    \"oversubscriptions\": {},",
        report.oversubscriptions
    );
    let _ = writeln!(out, "    \"mitigations\": {},", report.mitigations);
    let _ = writeln!(out, "    \"incidents\": {},", report.incidents);
    let _ = writeln!(
        out,
        "    \"resume_scans\": {},",
        report.resume_batches.len()
    );
    let _ = writeln!(
        out,
        "    \"resumes_scheduled\": {},",
        report.resume_batches.iter().sum::<usize>()
    );
    let _ = writeln!(out, "    \"telemetry_events\": {}", report.telemetry.len());
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Compare a rendered report against the golden file `<name>.json`.
///
/// With `BLESS=1` in the environment the golden is (re)written and the
/// check passes.  Otherwise a missing or differing golden produces an
/// `Err` whose message carries both versions and the re-blessing
/// instructions.
///
/// # Errors
///
/// Returns a human-readable description of the drift (or of the missing
/// file) suitable for a test panic message.
pub fn check_golden(name: &str, rendered: &str) -> Result<(), String> {
    check_golden_file(&format!("{name}.json"), rendered)
}

/// Compare rendered text against the golden file `file_name` (with its
/// extension spelled out — `.jsonl` traces and `.prom` metric exports
/// use this directly; [`check_golden`] appends `.json` for KPI
/// snapshots).  Blessing and drift reporting behave exactly like
/// [`check_golden`].
///
/// # Errors
///
/// Returns a human-readable description of the drift (or of the missing
/// file) suitable for a test panic message.
pub fn check_golden_file(file_name: &str, rendered: &str) -> Result<(), String> {
    let path = goldens_dir().join(file_name);
    if std::env::var("BLESS").as_deref() == Ok("1") {
        fs::create_dir_all(goldens_dir())
            .map_err(|e| format!("cannot create {}: {e}", goldens_dir().display()))?;
        fs::write(&path, rendered).map_err(|e| format!("cannot bless {}: {e}", path.display()))?;
        return Ok(());
    }
    let expected = fs::read_to_string(&path).map_err(|e| {
        format!(
            "golden {} is unreadable ({e}); record it with scripts/bless.sh",
            path.display()
        )
    })?;
    if expected != rendered {
        return Err(format!(
            "drift against golden {file_name}.\n\
             If this change is intentional, re-bless with scripts/bless.sh \
             and review the diff.\n\
             --- expected ---\n{expected}\n--- actual ---\n{rendered}"
        ));
    }
    Ok(())
}
