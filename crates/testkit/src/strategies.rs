//! Proptest strategies over the space the paper explores.
//!
//! Three generators cover the three axes of a simulated experiment:
//!
//! * [`fleet_spec`] — *which databases*: a region archetype mix, a fleet
//!   size, and a workload seed, expanded into traces by
//!   [`FleetSpec::traces`];
//! * [`policy_config`] — *which knobs*: the Table 1 parameters inside
//!   their validated ranges (`w ≤ p`, positive durations, confidence in
//!   `(0, 1)`), with an occasional weekly seasonality when the history
//!   is long enough to support it;
//! * [`fault_plan`] — *which failures*: the control-plane fault layer
//!   (per-stage failure probabilities, retry budget, predictor circuit
//!   breaker, forecast fault injection, and stuck-workflow probability
//!   paired with a diagnostics period so hung workflows are mitigated).
//!
//! Everything generated here is valid by construction: the property
//! tests assert behaviour, not knob validation, so a strategy that could
//! emit a rejected configuration would only waste cases.

use proptest::prelude::*;
use prorp_sim::SimConfigBuilder;
use prorp_types::{
    BreakerConfig, PolicyConfig, RetryPolicy, Seasonality, Seconds, Timestamp, WorkflowStage,
};
use prorp_workload::{RegionName, RegionProfile, Trace};

use crate::oracles::{DAY, SPAN_DAYS};

/// A compact, `Copy` description of a generated fleet.  Kept separate
/// from the traces themselves so failing cases print as a three-field
/// spec instead of thousands of session timestamps.
#[derive(Clone, Copy, Debug)]
pub struct FleetSpec {
    /// Which region archetype mix generates the traces.
    pub region: RegionName,
    /// Number of databases in the fleet.
    pub size: usize,
    /// Workload-generator seed.
    pub seed: u64,
}

impl FleetSpec {
    /// Expand the spec into traces over the standard 35-day window.
    pub fn traces(&self) -> Vec<Trace> {
        RegionProfile::for_region(self.region).generate_fleet(
            self.size,
            Timestamp(0),
            Timestamp(SPAN_DAYS * DAY),
            self.seed,
        )
    }
}

/// Strategy over small fleets: any of the four evaluation regions,
/// 6–12 databases, and an arbitrary workload seed.  Small on purpose —
/// the differential oracles run two or three full simulations per case.
pub fn fleet_spec() -> impl Strategy<Value = FleetSpec> {
    (0usize..4, 6usize..13, 0u64..1_000_000).prop_map(|(region, size, seed)| FleetSpec {
        region: RegionName::all()[region],
        size,
        seed,
    })
}

/// Strategy over the Table 1 policy knobs, constrained to the validated
/// region of the space: positive durations, `w ≤ p`, confidence in
/// `(0, 1)`, and weekly seasonality only when at least four weeks of
/// history back it.
pub fn policy_config() -> impl Strategy<Value = PolicyConfig> {
    (
        (1i64..13, 7i64..36, 6i64..49),          // l hours, h days, p hours
        (5u32..91, 1i64..6, 5i64..61, 1i64..16), // c %, w hours, s minutes, k minutes
        0u32..5,                                 // seasonality pick: one in five weekly
    )
        .prop_map(|((l, h, p), (c, w, s, k), season)| {
            let seasonality = if season == 0 && h >= 28 {
                Seasonality::Weekly
            } else {
                Seasonality::Daily
            };
            PolicyConfig {
                logical_pause: Seconds::hours(l),
                history_len: Seconds::days(h),
                horizon: Seconds::hours(p),
                confidence: f64::from(c) / 100.0,
                window: Seconds::hours(w),
                slide: Seconds::minutes(s),
                prewarm: Seconds::minutes(k),
                seasonality,
            }
        })
}

/// A generated control-plane fault schedule.  [`FaultPlan::apply`]
/// installs it on a [`SimConfigBuilder`]; [`FaultPlan::quiescent`] is
/// the identity plan every generated plan degenerates to when all its
/// probabilities are zeroed.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Uniform failure probability across all four workflow stages.
    pub stage_failure: f64,
    /// Extra failure probability on the warm-cache stage (the flakiest
    /// stage in production folklore).
    pub warm_cache_extra: f64,
    /// Retry budget for failed stages.
    pub retry: RetryPolicy,
    /// Predictor circuit-breaker knobs.
    pub breaker: BreakerConfig,
    /// Forecast fault injection: every n-th prediction fails.
    pub forecast_fail_every: Option<u32>,
    /// Probability that a resume workflow silently hangs; when positive,
    /// [`FaultPlan::apply`] also enables the diagnostics runner so hung
    /// workflows are mitigated instead of stalling forever.
    pub stuck_probability: f64,
    /// Fault-injection RNG seed.
    pub seed: u64,
}

impl FaultPlan {
    /// The fault-free plan: zero probabilities, default retry/breaker.
    pub fn quiescent() -> FaultPlan {
        FaultPlan {
            stage_failure: 0.0,
            warm_cache_extra: 0.0,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            forecast_fail_every: None,
            stuck_probability: 0.0,
            seed: 0,
        }
    }

    /// Install the plan on a builder.
    pub fn apply(&self, b: SimConfigBuilder) -> SimConfigBuilder {
        let mut b = b
            .seed(self.seed)
            .stage_failure_probabilities(self.stage_failure)
            .stage_failure_probability(
                WorkflowStage::WarmCache,
                (self.stage_failure + self.warm_cache_extra).min(1.0),
            )
            .retry(self.retry)
            .breaker(self.breaker)
            .stuck_probability(self.stuck_probability);
        if let Some(n) = self.forecast_fail_every {
            b = b.forecast_fail_every(n);
        }
        if self.stuck_probability > 0.0 {
            b = b.diagnostics_period(Seconds::minutes(5));
        }
        b
    }
}

/// Strategy over fault schedules.  Probabilities stay moderate and the
/// retry budget generous enough that most workflows still complete;
/// give-ups and incidents are allowed — the oracles assert determinism
/// and equivalence, not success.
pub fn fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        (0u32..40, 0u32..30),         // stage %, warm-cache extra %
        (2u32..6, 5i64..61, 1i64..7), // attempts, base backoff s, max multiple
        (1u32..5, 10i64..181),        // breaker threshold, cooldown minutes
        prop::option::of(2u32..9),    // forecast fail-every
        (0u32..3, 0u64..1_000_000),   // stuck pick (one in three), fault seed
    )
        .prop_map(
            |(
                (fail, extra),
                (attempts, base, mult),
                (threshold, cooldown),
                every,
                (stuck, seed),
            )| {
                FaultPlan {
                    stage_failure: f64::from(fail) / 100.0,
                    warm_cache_extra: f64::from(extra) / 100.0,
                    retry: RetryPolicy {
                        max_attempts: attempts,
                        base_backoff: Seconds(base),
                        max_backoff: Seconds(base * mult),
                    },
                    breaker: BreakerConfig {
                        failure_threshold: threshold,
                        cooldown: Seconds::minutes(cooldown),
                    },
                    forecast_fail_every: every,
                    stuck_probability: if stuck == 0 { 0.05 } else { 0.0 },
                    seed,
                }
            },
        )
}
