//! Differential oracles: run generated scenarios through the policy
//! engines and compare whole [`SimReport`]s.
//!
//! All oracles use the paper's standard experiment window — 35 simulated
//! days with KPIs measured over the last five, so every database accrues
//! the four weeks of history the Table 1 defaults assume before
//! measurement starts.
//!
//! [`assert_reports_equal`] is the workhorse: it compares every
//! deterministic field of two reports and masks only the wall-clock
//! prediction-latency counters ([`EngineCounters::prediction_ns_sum`] /
//! [`EngineCounters::prediction_ns_max`]) and the per-shard timing block,
//! which are documented to vary run to run.

use prorp_core::EngineCounters;
use prorp_sim::{SimConfig, SimConfigBuilder, SimPolicy, SimReport, Simulation};
use prorp_types::Timestamp;
use prorp_workload::Trace;

/// One simulated day, in seconds.
pub const DAY: i64 = 86_400;
/// Length of the simulated window, in days.
pub const SPAN_DAYS: i64 = 35;
/// Day on which KPI measurement starts (the first 30 days are warm-up).
pub const MEASURE_DAY: i64 = 30;

/// A builder over the standard window with production-like defaults.
pub fn builder(policy: SimPolicy) -> SimConfigBuilder {
    SimConfig::builder(
        policy,
        Timestamp(0),
        Timestamp(SPAN_DAYS * DAY),
        Timestamp(MEASURE_DAY * DAY),
    )
}

/// Run a validated config over the given traces.
///
/// # Panics
///
/// Panics if the simulation rejects the config or an invariant check
/// fails mid-run (the testkit always runs with `strict-invariants`).
pub fn run(cfg: SimConfig, traces: Vec<Trace>) -> SimReport {
    Simulation::new(cfg, traces)
        .expect("testkit configs must validate")
        .run()
        .expect("simulation must complete without invariant violations")
}

/// Run a policy with default knobs over the standard window.
pub fn run_policy(policy: SimPolicy, traces: &[Trace]) -> SimReport {
    run(
        builder(policy).build().expect("default builder validates"),
        traces.to_vec(),
    )
}

/// An engine-counter block with the wall-clock prediction-latency fields
/// zeroed, leaving only the logical (deterministic) counters.
pub fn logical(c: &EngineCounters) -> EngineCounters {
    EngineCounters {
        prediction_ns_sum: 0,
        prediction_ns_max: 0,
        ..*c
    }
}

/// Assert that two reports are identical on every deterministic field.
///
/// The policy label is *not* compared — several oracles assert that two
/// differently-labelled configurations (a pinned proactive fleet and the
/// reactive baseline, say) behave identically.  Shard timing counters
/// and wall-clock prediction latencies are masked as documented
/// nondeterminism; everything else must match bit for bit.
///
/// # Panics
///
/// Panics with the name of the first differing field.
pub fn assert_reports_equal(a: &SimReport, b: &SimReport, context: &str) {
    assert_eq!(
        a.history_stats, b.history_stats,
        "{context}: history storage statistics differ"
    );
    assert_behaviour_equal(a, b, context);
}

/// Like [`assert_reports_equal`] but without the history storage
/// statistics.
///
/// Used by the oracles that compare *different engines* (`p = 0`
/// proactive vs. the reactive baseline): the two trim history per
/// Algorithm 3 at different instants — reactive only on activity end,
/// proactive on every re-prediction — so the B-trees take different
/// split/merge paths even though every observable behaviour matches.
///
/// # Panics
///
/// Panics with the name of the first differing field.
pub fn assert_behaviour_equal(a: &SimReport, b: &SimReport, context: &str) {
    assert_eq!(a.kpi, b.kpi, "{context}: fleet KPIs differ");
    let la: Vec<EngineCounters> = a.counters.iter().map(logical).collect();
    let lb: Vec<EngineCounters> = b.counters.iter().map(logical).collect();
    assert_eq!(la, lb, "{context}: per-database engine counters differ");
    assert_eq!(
        a.resume_batches, b.resume_batches,
        "{context}: proactive-resume batch sizes differ"
    );
    assert_eq!(
        a.spill_moves, b.spill_moves,
        "{context}: spill moves differ"
    );
    assert_eq!(
        a.balance_moves, b.balance_moves,
        "{context}: balance moves differ"
    );
    assert_eq!(
        a.oversubscriptions, b.oversubscriptions,
        "{context}: oversubscriptions differ"
    );
    assert_eq!(
        a.mitigations, b.mitigations,
        "{context}: mitigations differ"
    );
    assert_eq!(
        a.incidents, b.incidents,
        "{context}: incident counts differ"
    );
    assert_eq!(a.giveups, b.giveups, "{context}: giveup counts differ");
    assert_eq!(a.workflow, b.workflow, "{context}: workflow stats differ");
    assert_eq!(
        a.incident_log.entries(),
        b.incident_log.entries(),
        "{context}: incident logs differ"
    );
    assert_eq!(
        a.maintenance, b.maintenance,
        "{context}: maintenance differs"
    );
    assert_eq!(
        a.telemetry.len(),
        b.telemetry.len(),
        "{context}: telemetry volumes differ"
    );
}
