//! Deterministic conformance testkit for the ProRP workspace.
//!
//! The simulator's headline guarantee is *determinism*: the same traces,
//! knobs, and seed produce bit-identical KPIs at any shard count, with or
//! without the invariant checker, on any machine.  That guarantee is what
//! makes differential testing possible — two configurations that are
//! *semantically* equivalent (a tripped circuit breaker vs. the reactive
//! baseline, a zero-probability fault layer vs. no fault layer, `p = 0`
//! vs. prediction disabled) must produce *identical* reports, not merely
//! similar ones.  This crate packages that idea into three reusable
//! layers:
//!
//! * [`strategies`] — proptest generators over the space the paper
//!   explores: fleet specifications (region archetype mix, size, seed),
//!   the Table 1 policy knobs (`l`, `h`, `p`, `c`, `w`, `s`, `k`) inside
//!   their validated ranges, and control-plane fault plans (stage failure
//!   probabilities, retry budgets, breaker knobs, forecast fault
//!   injection, stuck workflows);
//! * [`oracles`] — helpers to run a generated scenario through the
//!   reactive, proactive, and offline-optimal engines over the standard
//!   35-day window and compare the resulting [`prorp_sim::SimReport`]s
//!   field by field, masking only the wall-clock counters that are
//!   *documented* to be nondeterministic;
//! * [`golden`] — a canonical JSON rendering of the deterministic KPI
//!   surface of a report, plus a golden-file store under
//!   `tests/goldens/` with a `BLESS=1` re-recording mode (see
//!   `scripts/bless.sh`).
//!
//! Because this crate depends on `prorp-sim` with the
//! `strict-invariants` feature, **every simulation executed by the
//! testkit also runs the observational lifecycle checker**: illegal
//! state transitions, backwards timestamps, out-of-order history tables,
//! and broken KPI accounting identities turn into hard errors inside the
//! property runs themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod golden;
pub mod oracles;
pub mod strategies;

pub use golden::{check_golden, check_golden_file, goldens_dir, render_report};
pub use oracles::{
    assert_behaviour_equal, assert_reports_equal, builder, logical, run, run_policy,
};
pub use strategies::{fault_plan, fleet_spec, policy_config, FaultPlan, FleetSpec};
