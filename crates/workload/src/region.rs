//! Per-region fleet profiles.
//!
//! The paper evaluates on the two largest European and the two largest US
//! Azure regions (EU1, EU2, US1, US2), each hosting hundreds of thousands
//! of serverless databases with slightly different workload compositions
//! (Figure 6 shows region-to-region variation of a few percentage
//! points).  Each [`RegionProfile`] is a weighted archetype mix whose
//! aggregate idle-interval distribution is calibrated to Figure 3 — see
//! the calibration test in `idle.rs` and the Figure 3 bench.

use crate::archetype::Archetype;
use crate::trace::Trace;
use prorp_types::{DatabaseId, Timestamp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// The four evaluation regions of §9.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegionName {
    /// Largest European region.
    Eu1,
    /// Second-largest European region.
    Eu2,
    /// Largest US region.
    Us1,
    /// Second-largest US region.
    Us2,
}

impl RegionName {
    /// All four evaluation regions, in the paper's order.
    pub fn all() -> [RegionName; 4] {
        [
            RegionName::Eu1,
            RegionName::Eu2,
            RegionName::Us1,
            RegionName::Us2,
        ]
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            RegionName::Eu1 => "EU1",
            RegionName::Eu2 => "EU2",
            RegionName::Us1 => "US1",
            RegionName::Us2 => "US2",
        }
    }
}

impl fmt::Display for RegionName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Archetype families a region mixes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Family {
    Stable,
    Daily,
    Weekly,
    Bursty,
    Dormant,
    Fragmented,
    Drifting,
}

/// A region's workload composition.
#[derive(Clone, Debug)]
pub struct RegionProfile {
    /// Which region this profile models.
    pub name: RegionName,
    weights: [(Family, f64); 7],
}

impl RegionProfile {
    /// The calibrated profile of a region.
    ///
    /// Weights were chosen so the fleet-level idle-gap distribution
    /// reproduces the Figure 3 marginals (~72 % of idle intervals under
    /// one hour carrying ~5 % of total idle time); regions differ by a
    /// few points to produce the Figure 6 spread.
    pub fn for_region(name: RegionName) -> Self {
        // Calibration notes: under the reactive policy every login that
        // follows a >= l gap costs ~l hours of logical-pause idle, so the
        // paper's joint bands (QoS 60-68 %, idle 5-12 %) require a fleet
        // averaging under ~1 login per database-day — i.e. dominated by
        // dormant databases — with a minority of high-frequency stable /
        // fragmented databases supplying the short-gap head of Figure 3(a).
        let weights = match name {
            RegionName::Eu1 => [
                (Family::Stable, 0.07),
                (Family::Daily, 0.13),
                (Family::Weekly, 0.07),
                (Family::Bursty, 0.06),
                (Family::Dormant, 0.61),
                (Family::Fragmented, 0.03),
                (Family::Drifting, 0.03),
            ],
            RegionName::Eu2 => [
                (Family::Stable, 0.09),
                (Family::Daily, 0.15),
                (Family::Weekly, 0.06),
                (Family::Bursty, 0.06),
                (Family::Dormant, 0.56),
                (Family::Fragmented, 0.05),
                (Family::Drifting, 0.03),
            ],
            RegionName::Us1 => [
                (Family::Stable, 0.11),
                (Family::Daily, 0.12),
                (Family::Weekly, 0.08),
                (Family::Bursty, 0.07),
                (Family::Dormant, 0.54),
                (Family::Fragmented, 0.04),
                (Family::Drifting, 0.04),
            ],
            RegionName::Us2 => [
                (Family::Stable, 0.10),
                (Family::Daily, 0.14),
                (Family::Weekly, 0.07),
                (Family::Bursty, 0.06),
                (Family::Dormant, 0.55),
                (Family::Fragmented, 0.05),
                (Family::Drifting, 0.03),
            ],
        };
        RegionProfile { name, weights }
    }

    fn pick_family(&self, rng: &mut StdRng) -> Family {
        let total: f64 = self.weights.iter().map(|(_, w)| w).sum();
        let mut roll = rng.random::<f64>() * total;
        for (family, w) in &self.weights {
            if roll < *w {
                return *family;
            }
            roll -= w;
        }
        self.weights[self.weights.len() - 1].0
    }

    /// Draw one database's archetype, jittering family parameters so no
    /// two databases are identical.
    pub fn sample_archetype(&self, rng: &mut StdRng) -> Archetype {
        let family = self.pick_family(rng);
        Self::instantiate(family, rng)
    }

    fn instantiate(family: Family, rng: &mut StdRng) -> Archetype {
        match family {
            Family::Stable => Archetype::WithQuietDays {
                base: Box::new(Archetype::Stable {
                    session_hours: rng.random_range(3.0..9.0),
                    gap_minutes: rng.random_range(10.0..40.0),
                }),
                skip_probability: rng.random_range(0.05..0.22),
            },
            Family::Daily => {
                // Two sub-populations: *tight* schedules (start time
                // varies by minutes) and *diffuse* ones (the session
                // lands somewhere in a many-hour span).  The diffuse half
                // is what makes the window-size knob (Figure 8) and the
                // confidence knob (Figure 9) bite: a 1-hour window
                // captures under 10 % of a diffuse database's days, so
                //小 windows drop below the c = 0.1 threshold entirely.
                let (jitter, skip) = if rng.random_bool(0.5) {
                    (rng.random_range(20.0..90.0), rng.random_range(0.05..0.20))
                } else {
                    (rng.random_range(120.0..300.0), rng.random_range(0.08..0.30))
                };
                Archetype::WithOffPattern {
                    base: Box::new(Archetype::Daily {
                        start_hour: rng.random_range(6.0..11.0),
                        duration_hours: rng.random_range(3.0..8.0),
                        jitter_minutes: jitter,
                        skip_probability: skip,
                    }),
                    extra_per_day: rng.random_range(0.05..0.3),
                    extra_minutes: rng.random_range(10.0..40.0),
                }
            }
            Family::Weekly => Archetype::WithOffPattern {
                base: Box::new(Archetype::Weekly {
                    active_days: vec![0, 1, 2, 3, 4],
                    start_hour: rng.random_range(7.0..10.0),
                    duration_hours: rng.random_range(6.0..10.0),
                    jitter_minutes: rng.random_range(20.0..90.0),
                }),
                extra_per_day: rng.random_range(0.05..0.3),
                extra_minutes: rng.random_range(10.0..40.0),
            },
            Family::Bursty => Archetype::Bursty {
                // Genuine spikes: a burst every few days at a random
                // time.  Denser rates would put ~0.3 probability in every
                // clock window and the c = 0.1 policy would (correctly)
                // hold such databases logically paused around the clock.
                sessions_per_day: rng.random_range(0.1..0.35),
                session_minutes: rng.random_range(10.0..60.0),
            },
            Family::Dormant => Archetype::Dormant {
                // Sparse enough that no 7-hour window accumulates the
                // 0.1 confidence threshold: dormant databases are the
                // purely-reactive tail of the fleet.
                days_between_sessions: rng.random_range(8.0..20.0),
                session_minutes: rng.random_range(10.0..60.0),
            },
            Family::Fragmented => Archetype::WithQuietDays {
                base: Box::new(Archetype::Fragmented {
                    start_hour: rng.random_range(7.0..10.0),
                    span_hours: rng.random_range(5.0..8.0),
                    session_minutes: rng.random_range(15.0..25.0),
                    gap_minutes: rng.random_range(20.0..35.0),
                }),
                skip_probability: rng.random_range(0.05..0.20),
            },
            Family::Drifting => {
                let before = Self::instantiate(Family::Daily, rng);
                let after = Self::instantiate(Family::Daily, rng);
                Archetype::Drifting {
                    before: Box::new(before),
                    after: Box::new(after),
                    switch_day: rng.random_range(10..20),
                }
            }
        }
    }

    fn region_salt(&self) -> u64 {
        match self.name {
            RegionName::Eu1 => 0x4555_3100,
            RegionName::Eu2 => 0x4555_3200,
            RegionName::Us1 => 0x5553_3100,
            RegionName::Us2 => 0x5553_3200,
        }
    }

    /// Generate the trace of database `i` alone over `[start, end)`.
    ///
    /// Each database draws from its own sub-stream keyed on
    /// `(seed, region, i)`, so this is exactly the `i`-th element of
    /// [`generate_fleet`](Self::generate_fleet) without materialising the
    /// other `n - 1` traces — the random-access primitive behind
    /// [`LazyFleet`](crate::LazyFleet) and the million-database scale
    /// runs.
    pub fn generate_trace(&self, i: usize, start: Timestamp, end: Timestamp, seed: u64) -> Trace {
        // Per-database sub-stream keyed on (seed, region, i) so a
        // fleet-size change does not reshuffle existing databases.
        let mut db_rng = StdRng::seed_from_u64(
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64)
                ^ self.region_salt(),
        );
        let archetype = self.sample_archetype(&mut db_rng);
        let sessions = archetype.generate(start, end, &mut db_rng);
        Trace::new(DatabaseId(i as u64), archetype.label(), sessions)
            .expect("generator emits ordered disjoint sessions")
    }

    /// Generate a fleet of `n` database traces over `[start, end)`.
    ///
    /// Deterministic in `seed`; database ids are `0..n`.  Equivalent to
    /// collecting [`generate_trace`](Self::generate_trace) for
    /// `i in 0..n`; fleets too large to materialise should use
    /// [`LazyFleet`](crate::LazyFleet) instead.
    pub fn generate_fleet(
        &self,
        n: usize,
        start: Timestamp,
        end: Timestamp,
        seed: u64,
    ) -> Vec<Trace> {
        (0..n)
            .map(|i| self.generate_trace(i, start, end, seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prorp_types::Seconds;

    #[test]
    fn labels_match_the_paper() {
        let labels: Vec<_> = RegionName::all().iter().map(|r| r.label()).collect();
        assert_eq!(labels, vec!["EU1", "EU2", "US1", "US2"]);
        assert_eq!(RegionName::Eu1.to_string(), "EU1");
    }

    #[test]
    fn weights_sum_to_one() {
        for region in RegionName::all() {
            let p = RegionProfile::for_region(region);
            let total: f64 = p.weights.iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "{region}: {total}");
        }
    }

    #[test]
    fn fleet_generation_is_deterministic_and_diverse() {
        let p = RegionProfile::for_region(RegionName::Eu1);
        let t0 = Timestamp(0);
        let t1 = t0 + Seconds::days(14);
        let a = p.generate_fleet(50, t0, t1, 99);
        let b = p.generate_fleet(50, t0, t1, 99);
        assert_eq!(a, b);
        let archetypes: std::collections::HashSet<_> =
            a.iter().map(|t| t.archetype.clone()).collect();
        assert!(
            archetypes.len() >= 4,
            "expected a diverse mix, got {archetypes:?}"
        );
        // Database ids are stable and dense.
        for (i, t) in a.iter().enumerate() {
            assert_eq!(t.db, DatabaseId(i as u64));
        }
    }

    #[test]
    fn growing_the_fleet_preserves_existing_databases() {
        let p = RegionProfile::for_region(RegionName::Us1);
        let t0 = Timestamp(0);
        let t1 = t0 + Seconds::days(7);
        let small = p.generate_fleet(10, t0, t1, 7);
        let large = p.generate_fleet(20, t0, t1, 7);
        assert_eq!(&large[..10], &small[..]);
    }

    #[test]
    fn different_regions_produce_different_fleets() {
        let t0 = Timestamp(0);
        let t1 = t0 + Seconds::days(7);
        let eu = RegionProfile::for_region(RegionName::Eu1).generate_fleet(30, t0, t1, 5);
        let us = RegionProfile::for_region(RegionName::Us1).generate_fleet(30, t0, t1, 5);
        assert_ne!(eu, us);
    }
}
