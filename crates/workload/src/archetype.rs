//! Per-database activity archetypes.
//!
//! §1 of the paper: "There are databases with stable usage, databases
//! that follow a weekly or a daily pattern, and databases that have short
//! unpredictable spikes of activity.  Furthermore, resource utilization
//! may change over time for each database."  Each variant below generates
//! a session list for one synthetic database; [`Archetype::Drifting`]
//! covers the "changes over time" clause that motivates the §8 training
//! pipeline.

use prorp_types::{Seconds, Session, Timestamp};
use rand::rngs::StdRng;
use rand::RngExt;
use std::fmt;

/// Hours are expressed as fractional clock hours `[0, 24)`.
#[derive(Clone, Debug, PartialEq)]
pub enum Archetype {
    /// Nearly continuous usage with brief nightly dips — the "stable
    /// usage" population.  Long sessions, short gaps.
    Stable {
        /// Mean session length in hours.
        session_hours: f64,
        /// Mean gap between sessions in minutes.
        gap_minutes: f64,
    },
    /// A daily business-hours pattern: one main session per day starting
    /// near `start_hour`, occasionally skipped.
    Daily {
        /// Clock hour the session starts at.
        start_hour: f64,
        /// Session duration in hours.
        duration_hours: f64,
        /// Uniform jitter (± minutes) on the start time.
        jitter_minutes: f64,
        /// Probability a given day has no session.
        skip_probability: f64,
    },
    /// A weekly pattern: sessions only on the given days of the week
    /// (day 0 = the epoch's weekday).
    Weekly {
        /// Active days of week, e.g. `[0, 1, 2, 3, 4]` for a five-day
        /// working week.
        active_days: Vec<i64>,
        /// Clock hour the session starts at.
        start_hour: f64,
        /// Session duration in hours.
        duration_hours: f64,
        /// Uniform jitter (± minutes) on the start time.
        jitter_minutes: f64,
    },
    /// Short unpredictable spikes: a Poisson-like arrival of brief
    /// sessions with no time-of-day structure.
    Bursty {
        /// Mean sessions per day.
        sessions_per_day: f64,
        /// Mean session length in minutes.
        session_minutes: f64,
    },
    /// Mostly idle with rare activity — the long-idle tail of Figure 3(b).
    Dormant {
        /// Mean days between sessions.
        days_between_sessions: f64,
        /// Session duration in minutes.
        session_minutes: f64,
    },
    /// Many short sessions separated by sub-hour gaps — the head of
    /// Figure 3(a) (72 % of idle intervals within one hour).
    Fragmented {
        /// Clock hour the active period starts.
        start_hour: f64,
        /// Length of the daily active period in hours.
        span_hours: f64,
        /// Mean session length in minutes within the span.
        session_minutes: f64,
        /// Mean gap length in minutes within the span.
        gap_minutes: f64,
    },
    /// A base pattern with whole days randomly gone quiet — vacations,
    /// deploy freezes, weekends off.  Quiet days cap the detector's
    /// attainable confidence at roughly `1 − skip`, which is what lets a
    /// high confidence threshold (Figure 9) filter even "always-on"
    /// databases.
    WithQuietDays {
        /// The regular pattern.
        base: Box<Archetype>,
        /// Probability a given day is entirely quiet.
        skip_probability: f64,
    },
    /// A base pattern plus sparse off-pattern sessions at random times —
    /// real daily-pattern customers also log in at odd hours, and those
    /// logins are what keeps the proactive policy's QoS below 100 %.
    WithOffPattern {
        /// The regular pattern.
        base: Box<Archetype>,
        /// Mean off-pattern sessions per day (Poisson-like renewal).
        extra_per_day: f64,
        /// Mean off-pattern session length in minutes.
        extra_minutes: f64,
    },
    /// Behaviour that switches archetype partway through the trace —
    /// the data drift §8's monthly re-training exists for.
    Drifting {
        /// Behaviour before the switch.
        before: Box<Archetype>,
        /// Behaviour after the switch.
        after: Box<Archetype>,
        /// Day index (from trace start) at which behaviour switches.
        switch_day: i64,
    },
}

impl Archetype {
    /// Short label for telemetry and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Archetype::Stable { .. } => "stable",
            Archetype::Daily { .. } => "daily",
            Archetype::Weekly { .. } => "weekly",
            Archetype::Bursty { .. } => "bursty",
            Archetype::Dormant { .. } => "dormant",
            Archetype::Fragmented { .. } => "fragmented",
            Archetype::WithQuietDays { base, .. } => base.label(),
            Archetype::WithOffPattern { base, .. } => base.label(),
            Archetype::Drifting { .. } => "drifting",
        }
    }

    /// Generate this database's sessions over `[start, end)`.
    ///
    /// The output is time-ordered and disjoint with at least one second
    /// between consecutive sessions, and every session is clipped to the
    /// interval.
    pub fn generate(&self, start: Timestamp, end: Timestamp, rng: &mut StdRng) -> Vec<Session> {
        let mut sessions = match self {
            Archetype::Stable {
                session_hours,
                gap_minutes,
            } => gen_alternating(
                start,
                end,
                Seconds((session_hours * 3600.0) as i64),
                Seconds((gap_minutes * 60.0) as i64),
                rng,
            ),
            Archetype::Daily {
                start_hour,
                duration_hours,
                jitter_minutes,
                skip_probability,
            } => gen_daily(
                start,
                end,
                |_| true,
                *start_hour,
                *duration_hours,
                *jitter_minutes,
                *skip_probability,
                rng,
            ),
            Archetype::Weekly {
                active_days,
                start_hour,
                duration_hours,
                jitter_minutes,
            } => gen_daily(
                start,
                end,
                |day: Timestamp| active_days.contains(&day.day_of_week()),
                *start_hour,
                *duration_hours,
                *jitter_minutes,
                0.0,
                rng,
            ),
            Archetype::Bursty {
                sessions_per_day,
                session_minutes,
            } => {
                let mean_gap_secs = if *sessions_per_day > 0.0 {
                    86_400.0 / sessions_per_day
                } else {
                    f64::INFINITY
                };
                gen_renewal(start, end, mean_gap_secs, session_minutes * 60.0, rng)
            }
            Archetype::Dormant {
                days_between_sessions,
                session_minutes,
            } => gen_renewal(
                start,
                end,
                days_between_sessions * 86_400.0,
                session_minutes * 60.0,
                rng,
            ),
            Archetype::Fragmented {
                start_hour,
                span_hours,
                session_minutes,
                gap_minutes,
            } => gen_fragmented(
                start,
                end,
                *start_hour,
                *span_hours,
                *session_minutes,
                *gap_minutes,
                rng,
            ),
            Archetype::WithQuietDays {
                base,
                skip_probability,
            } => {
                let sessions = base.generate(start, end, rng);
                let first_day = start.day_index();
                let last_day = end.day_index();
                let quiet: std::collections::HashSet<i64> = (first_day..=last_day)
                    .filter(|_| rng.random_bool(skip_probability.clamp(0.0, 1.0)))
                    .collect();
                sessions
                    .into_iter()
                    .filter(|s| !quiet.contains(&s.start.day_index()))
                    .collect()
            }
            Archetype::WithOffPattern {
                base,
                extra_per_day,
                extra_minutes,
            } => {
                let mut s = base.generate(start, end, rng);
                let mean_gap_secs = if *extra_per_day > 0.0 {
                    86_400.0 / extra_per_day
                } else {
                    f64::INFINITY
                };
                s.extend(gen_renewal(
                    start,
                    end,
                    mean_gap_secs,
                    extra_minutes * 60.0,
                    rng,
                ));
                s
            }
            Archetype::Drifting {
                before,
                after,
                switch_day,
            } => {
                let switch = start + Seconds::days(*switch_day);
                let switch = switch.min(end).max(start);
                let mut s = before.generate(start, switch, rng);
                let mut tail = after.generate(switch, end, rng);
                // Drop overlap at the seam.
                if let (Some(last), Some(first)) = (s.last(), tail.first()) {
                    if first.start <= last.end {
                        tail.remove(0);
                    }
                }
                s.append(&mut tail);
                s
            }
        };
        clip_and_sanitise(&mut sessions, start, end);
        sessions
    }
}

impl fmt::Display for Archetype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Exponential sample with the given mean (inverse-CDF method).
fn exp_sample(mean: f64, rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    -mean * u.ln()
}

/// Alternate session/gap with ±50 % uniform noise around the means.
fn gen_alternating(
    start: Timestamp,
    end: Timestamp,
    session: Seconds,
    gap: Seconds,
    rng: &mut StdRng,
) -> Vec<Session> {
    let mut out = Vec::new();
    let mut cursor = start;
    let noisy = |mean: i64, rng: &mut StdRng| -> i64 {
        let lo = (mean / 2).max(1);
        let hi = (mean * 3 / 2).max(lo + 1);
        rng.random_range(lo..hi)
    };
    while cursor < end {
        let dur = Seconds(noisy(session.as_secs().max(2), rng));
        let s_end = (cursor + dur).min(end);
        if let Ok(s) = Session::new(cursor, s_end) {
            out.push(s);
        }
        cursor = s_end + Seconds(noisy(gap.as_secs().max(2), rng));
    }
    out
}

/// One session per qualifying day at `start_hour ± jitter`.
#[allow(clippy::too_many_arguments)]
fn gen_daily(
    start: Timestamp,
    end: Timestamp,
    day_filter: impl Fn(Timestamp) -> bool,
    start_hour: f64,
    duration_hours: f64,
    jitter_minutes: f64,
    skip_probability: f64,
    rng: &mut StdRng,
) -> Vec<Session> {
    let mut out = Vec::new();
    let mut day = start.start_of_day();
    while day < end {
        if day_filter(day) && !rng.random_bool(skip_probability.clamp(0.0, 1.0)) {
            let jitter = if jitter_minutes > 0.0 {
                rng.random_range(-(jitter_minutes * 60.0) as i64..=(jitter_minutes * 60.0) as i64)
            } else {
                0
            };
            let s_start = day + Seconds((start_hour * 3600.0) as i64) + Seconds(jitter);
            let s_end = s_start + Seconds((duration_hours * 3600.0).max(60.0) as i64);
            if let Ok(s) = Session::new(s_start, s_end) {
                out.push(s);
            }
        }
        day += Seconds::days(1);
    }
    out
}

/// A renewal process of activity *clusters*: exponential inter-cluster
/// gaps, and within each cluster a geometric number of short sessions
/// separated by sub-hour gaps.  Clustering matches how sparse customers
/// actually behave (a spike of work = several connections in a row) and
/// supplies the short-gap head of Figure 3(a) without adding predictable
/// structure.
const CLUSTER_CONTINUE_P: f64 = 0.55;
const CLUSTER_GAP_MEAN_SECS: f64 = 15.0 * 60.0;

fn gen_renewal(
    start: Timestamp,
    end: Timestamp,
    mean_gap_secs: f64,
    mean_session_secs: f64,
    rng: &mut StdRng,
) -> Vec<Session> {
    let mut out = Vec::new();
    if !mean_gap_secs.is_finite() {
        return out;
    }
    let mut cursor = start + Seconds(exp_sample(mean_gap_secs, rng) as i64);
    while cursor < end {
        // One cluster: a first session, then geometric continuations.
        loop {
            let dur = Seconds((exp_sample(mean_session_secs, rng) as i64).max(30));
            let s_end = cursor + dur;
            if let Ok(s) = Session::new(cursor, s_end) {
                out.push(s);
            }
            cursor = s_end;
            if cursor >= end || !rng.random_bool(CLUSTER_CONTINUE_P) {
                break;
            }
            cursor += Seconds((exp_sample(CLUSTER_GAP_MEAN_SECS, rng) as i64).clamp(60, 3_000));
        }
        cursor += Seconds((exp_sample(mean_gap_secs, rng) as i64).max(60));
    }
    out
}

/// A daily active span filled with short session/gap alternation.
fn gen_fragmented(
    start: Timestamp,
    end: Timestamp,
    start_hour: f64,
    span_hours: f64,
    session_minutes: f64,
    gap_minutes: f64,
    rng: &mut StdRng,
) -> Vec<Session> {
    let mut out = Vec::new();
    let mut day = start.start_of_day();
    while day < end {
        let span_start = day + Seconds((start_hour * 3600.0) as i64);
        let span_end = span_start + Seconds((span_hours * 3600.0) as i64);
        let mut cursor = span_start;
        while cursor < span_end {
            let dur = Seconds((exp_sample(session_minutes * 60.0, rng) as i64).max(30));
            let s_end = (cursor + dur).min(span_end);
            if let Ok(s) = Session::new(cursor, s_end) {
                out.push(s);
            }
            cursor = s_end + Seconds((exp_sample(gap_minutes * 60.0, rng) as i64).max(30));
        }
        day += Seconds::days(1);
    }
    out
}

/// Clip to `[start, end)`, drop empty/inverted sessions, and enforce a
/// minimum one-second gap between consecutive sessions.
fn clip_and_sanitise(sessions: &mut Vec<Session>, start: Timestamp, end: Timestamp) {
    sessions.retain(|s| s.end > start && s.start < end);
    for s in sessions.iter_mut() {
        s.start = s.start.max(start);
        s.end = s.end.min(end - Seconds(1)).max(s.start);
    }
    sessions.sort_by_key(|s| s.start);
    let mut cleaned: Vec<Session> = Vec::with_capacity(sessions.len());
    for s in sessions.drain(..) {
        match cleaned.last_mut() {
            Some(prev) if s.start <= prev.end + Seconds(1) => {
                // Merge touching/overlapping sessions.
                prev.end = prev.end.max(s.end);
            }
            _ => cleaned.push(s),
        }
    }
    *sessions = cleaned;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const DAY: i64 = 86_400;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn check_well_formed(sessions: &[Session], start: Timestamp, end: Timestamp) {
        for s in sessions {
            assert!(s.start <= s.end, "inverted session {s}");
            assert!(s.start >= start && s.end < end, "session {s} outside range");
        }
        for w in sessions.windows(2) {
            assert!(
                w[1].start > w[0].end + Seconds(0),
                "sessions overlap or touch: {} then {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn all_archetypes_generate_well_formed_traces() {
        let start = Timestamp(0);
        let end = Timestamp(30 * DAY);
        let archetypes: Vec<Archetype> = vec![
            Archetype::Stable {
                session_hours: 6.0,
                gap_minutes: 20.0,
            },
            Archetype::Daily {
                start_hour: 9.0,
                duration_hours: 8.0,
                jitter_minutes: 15.0,
                skip_probability: 0.05,
            },
            Archetype::Weekly {
                active_days: vec![0, 1, 2, 3, 4],
                start_hour: 8.0,
                duration_hours: 9.0,
                jitter_minutes: 20.0,
            },
            Archetype::Bursty {
                sessions_per_day: 3.0,
                session_minutes: 15.0,
            },
            Archetype::Dormant {
                days_between_sessions: 5.0,
                session_minutes: 30.0,
            },
            Archetype::Fragmented {
                start_hour: 8.0,
                span_hours: 10.0,
                session_minutes: 10.0,
                gap_minutes: 15.0,
            },
        ];
        for a in &archetypes {
            let sessions = a.generate(start, end, &mut rng(42));
            assert!(!sessions.is_empty(), "{a} generated nothing");
            check_well_formed(&sessions, start, end);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Archetype::Bursty {
            sessions_per_day: 5.0,
            session_minutes: 20.0,
        };
        let s1 = a.generate(Timestamp(0), Timestamp(10 * DAY), &mut rng(7));
        let s2 = a.generate(Timestamp(0), Timestamp(10 * DAY), &mut rng(7));
        let s3 = a.generate(Timestamp(0), Timestamp(10 * DAY), &mut rng(8));
        assert_eq!(s1, s2);
        assert_ne!(s1, s3, "different seeds should differ");
    }

    #[test]
    fn daily_sessions_land_near_the_start_hour() {
        let a = Archetype::Daily {
            start_hour: 9.0,
            duration_hours: 2.0,
            jitter_minutes: 10.0,
            skip_probability: 0.0,
        };
        let sessions = a.generate(Timestamp(0), Timestamp(20 * DAY), &mut rng(1));
        assert_eq!(sessions.len(), 20);
        for s in &sessions {
            let hour = s.start.second_of_day() as f64 / 3600.0;
            assert!(
                (hour - 9.0).abs() <= 0.2,
                "session starts at clock hour {hour}"
            );
        }
    }

    #[test]
    fn weekly_respects_active_days() {
        let a = Archetype::Weekly {
            active_days: vec![2, 4],
            start_hour: 10.0,
            duration_hours: 1.0,
            jitter_minutes: 0.0,
        };
        let sessions = a.generate(Timestamp(0), Timestamp(28 * DAY), &mut rng(3));
        assert_eq!(sessions.len(), 8); // 2 days/week × 4 weeks
        for s in &sessions {
            assert!([2, 4].contains(&s.start.day_of_week()));
        }
    }

    #[test]
    fn dormant_traces_are_sparse() {
        let a = Archetype::Dormant {
            days_between_sessions: 7.0,
            session_minutes: 30.0,
        };
        // ~8 renewal clusters of geometric size 1/(1-p) ≈ 2.2 are
        // expected (~18 sessions, σ ≈ 8); bound at +3σ so the assertion
        // checks sparsity rather than one RNG stream's luck.
        let sessions = a.generate(Timestamp(0), Timestamp(56 * DAY), &mut rng(11));
        assert!(
            sessions.len() <= 42,
            "dormant produced {} sessions",
            sessions.len()
        );
    }

    #[test]
    fn fragmented_produces_mostly_short_gaps() {
        let a = Archetype::Fragmented {
            start_hour: 8.0,
            span_hours: 10.0,
            session_minutes: 10.0,
            gap_minutes: 15.0,
        };
        let sessions = a.generate(Timestamp(0), Timestamp(14 * DAY), &mut rng(5));
        let gaps = prorp_types::event::idle_gaps(&sessions);
        let short = gaps.iter().filter(|g| g.as_secs() < 3_600).count();
        assert!(
            short as f64 / gaps.len() as f64 > 0.7,
            "expected mostly sub-hour gaps, got {short}/{}",
            gaps.len()
        );
    }

    #[test]
    fn drifting_switches_behaviour_at_the_switch_day() {
        let a = Archetype::Drifting {
            before: Box::new(Archetype::Daily {
                start_hour: 9.0,
                duration_hours: 1.0,
                jitter_minutes: 0.0,
                skip_probability: 0.0,
            }),
            after: Box::new(Archetype::Daily {
                start_hour: 21.0,
                duration_hours: 1.0,
                jitter_minutes: 0.0,
                skip_probability: 0.0,
            }),
            switch_day: 10,
        };
        let sessions = a.generate(Timestamp(0), Timestamp(20 * DAY), &mut rng(9));
        check_well_formed(&sessions, Timestamp(0), Timestamp(20 * DAY));
        for s in &sessions {
            let hour = s.start.hour_of_day();
            if s.start.day_index() < 10 {
                assert_eq!(hour, 9, "before switch at {}", s.start);
            } else {
                assert_eq!(hour, 21, "after switch at {}", s.start);
            }
        }
    }

    #[test]
    fn labels_cover_every_variant() {
        let d = Archetype::Drifting {
            before: Box::new(Archetype::Stable {
                session_hours: 1.0,
                gap_minutes: 1.0,
            }),
            after: Box::new(Archetype::Dormant {
                days_between_sessions: 1.0,
                session_minutes: 1.0,
            }),
            switch_day: 1,
        };
        assert_eq!(d.label(), "drifting");
        assert_eq!(d.to_string(), "drifting");
    }
}
