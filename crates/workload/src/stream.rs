//! Streaming fleet access for million-database runs.
//!
//! A materialised `Vec<Trace>` of a million databases holds a million
//! session vectors and archetype strings at once — allocator traffic and
//! resident memory the simulator never needs simultaneously, because
//! each simulation shard only consumes its own id-hash partition of the
//! fleet, one trace at a time, during event-queue construction.
//!
//! [`TraceSource`] is the random-access contract that makes streaming
//! possible: database ids are enumerable without generating sessions
//! (`db_id` is cheap), and any single trace can be produced on demand
//! (`trace`).  [`LazyFleet`] implements it on top of
//! [`RegionProfile::generate_trace`], whose per-database RNG sub-streams
//! were independent from day one — so the `i`-th lazy trace is
//! bit-identical to the `i`-th element of
//! [`RegionProfile::generate_fleet`], and a sharded simulator can have
//! each worker generate exactly its own partition in parallel with no
//! coordination.

use crate::region::RegionProfile;
use crate::trace::Trace;
use prorp_types::{DatabaseId, Timestamp};

/// Random access to a fleet of traces without requiring the whole fleet
/// in memory.
///
/// Implementations must be deterministic: `trace(i)` must return the
/// same trace every time it is called, and `db_id(i)` must equal
/// `trace(i).db` without doing the (potentially expensive) session
/// generation.  `Sync` is required so simulation shards can pull their
/// partitions from one shared source concurrently.
pub trait TraceSource: Sync {
    /// Number of databases in the fleet.
    fn len(&self) -> usize;

    /// Whether the fleet is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The id of database `i` — must be cheap (no session generation).
    fn db_id(&self, i: usize) -> DatabaseId;

    /// Produce the full trace of database `i`.
    fn trace(&self, i: usize) -> Trace;
}

/// A materialised fleet is trivially a source (traces are cloned out).
impl TraceSource for [Trace] {
    fn len(&self) -> usize {
        <[Trace]>::len(self)
    }

    fn db_id(&self, i: usize) -> DatabaseId {
        self[i].db
    }

    fn trace(&self, i: usize) -> Trace {
        self[i].clone()
    }
}

impl TraceSource for Vec<Trace> {
    fn len(&self) -> usize {
        <[Trace]>::len(self)
    }

    fn db_id(&self, i: usize) -> DatabaseId {
        self[i].db
    }

    fn trace(&self, i: usize) -> Trace {
        self[i].clone()
    }
}

/// A fleet that generates each trace on demand instead of up front.
///
/// Holds only the generation parameters (profile, window, seed); every
/// [`trace`](TraceSource::trace) call re-derives the database's private
/// RNG sub-stream, so the fleet costs O(1) memory no matter how many
/// databases it describes.  Database ids are dense `0..len`.
#[derive(Clone, Debug)]
pub struct LazyFleet {
    profile: RegionProfile,
    len: usize,
    start: Timestamp,
    end: Timestamp,
    seed: u64,
}

impl LazyFleet {
    /// A lazy fleet of `len` databases over `[start, end)`, bit-identical
    /// to `profile.generate_fleet(len, start, end, seed)`.
    pub fn new(
        profile: RegionProfile,
        len: usize,
        start: Timestamp,
        end: Timestamp,
        seed: u64,
    ) -> Self {
        LazyFleet {
            profile,
            len,
            start,
            end,
            seed,
        }
    }

    /// Iterate the fleet in database order, generating one trace at a
    /// time.
    pub fn iter(&self) -> impl Iterator<Item = Trace> + '_ {
        (0..self.len).map(|i| TraceSource::trace(self, i))
    }
}

impl TraceSource for LazyFleet {
    fn len(&self) -> usize {
        self.len
    }

    fn db_id(&self, i: usize) -> DatabaseId {
        debug_assert!(i < self.len, "database index {i} out of bounds");
        DatabaseId(i as u64)
    }

    fn trace(&self, i: usize) -> Trace {
        assert!(i < self.len, "database index {i} out of bounds");
        self.profile
            .generate_trace(i, self.start, self.end, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionName;
    use prorp_types::Seconds;

    fn window() -> (Timestamp, Timestamp) {
        (Timestamp(0), Timestamp(0) + Seconds::days(10))
    }

    #[test]
    fn lazy_fleet_matches_materialised_fleet_bit_for_bit() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let (t0, t1) = window();
        let eager = profile.generate_fleet(40, t0, t1, 23);
        let lazy = LazyFleet::new(profile, 40, t0, t1, 23);
        assert_eq!(lazy.len(), eager.len());
        for (i, want) in eager.iter().enumerate() {
            assert_eq!(lazy.db_id(i), want.db);
            assert_eq!(&lazy.trace(i), want, "database {i}");
        }
        let collected: Vec<Trace> = lazy.iter().collect();
        assert_eq!(collected, eager);
    }

    #[test]
    fn random_access_is_order_independent() {
        let profile = RegionProfile::for_region(RegionName::Us2);
        let (t0, t1) = window();
        let lazy = LazyFleet::new(profile, 8, t0, t1, 5);
        // Pull traces out of order; each must be self-consistent.
        let last = lazy.trace(7);
        let first = lazy.trace(0);
        assert_eq!(lazy.trace(7), last);
        assert_eq!(lazy.trace(0), first);
        assert_ne!(first, last);
    }

    #[test]
    fn slices_and_vecs_are_sources() {
        let profile = RegionProfile::for_region(RegionName::Eu2);
        let (t0, t1) = window();
        let fleet = profile.generate_fleet(5, t0, t1, 3);
        let as_slice: &[Trace] = &fleet;
        assert_eq!(TraceSource::len(as_slice), 5);
        assert_eq!(as_slice.db_id(2), fleet[2].db);
        assert_eq!(TraceSource::trace(&fleet, 4), fleet[4]);
        assert!(!TraceSource::is_empty(&fleet));
        assert!(TraceSource::is_empty(&Vec::<Trace>::new()));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn lazy_trace_bounds_are_checked() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let (t0, t1) = window();
        let _ = LazyFleet::new(profile, 2, t0, t1, 1).trace(2);
    }
}
