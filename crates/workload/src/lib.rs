//! Synthetic customer-activity traces.
//!
//! The paper evaluates on months of production telemetry from four large
//! Azure regions — data we do not have.  This crate synthesises the
//! closest public equivalent: per-database session traces drawn from the
//! activity archetypes the paper's §1 names ("databases with stable
//! usage, databases that follow a weekly or a daily pattern, and databases
//! that have short unpredictable spikes of activity"), mixed per region
//! and calibrated so the idle-interval marginals match Figure 3 (~72 % of
//! idle intervals shorter than one hour, contributing only ~5 % of total
//! idle time).
//!
//! * [`archetype`] — the session generators;
//! * [`trace`] — the [`Trace`] container, event lowering, and CSV
//!   round-tripping;
//! * [`region`] — per-region archetype mixes (EU1, EU2, US1, US2) and
//!   fleet generation;
//! * [`stream`] — the [`TraceSource`] streaming contract and
//!   [`LazyFleet`], which generate traces on demand so million-database
//!   fleets never hold every login trace in memory at once;
//! * [`idle`] — idle-gap statistics used by the Figure 3 reproduction and
//!   the calibration tests.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod idle;
pub mod region;
pub mod stream;
pub mod summary;
pub mod trace;

pub use archetype::Archetype;
pub use idle::IdleStats;
pub use region::{RegionName, RegionProfile};
pub use stream::{LazyFleet, TraceSource};
pub use summary::FleetSummary;
pub use trace::Trace;
