//! Fleet composition summaries.
//!
//! The paper's workload sections (§1, §9.1) characterise the fleet by
//! archetype prevalence and per-database activity rates; this module
//! computes the same characterisation for a synthetic fleet so that
//! experiment outputs can state exactly what mix they ran on.

use crate::idle::IdleStats;
use crate::trace::Trace;
use prorp_types::Seconds;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics for one archetype within a fleet.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ArchetypeSummary {
    /// Databases of this archetype.
    pub databases: usize,
    /// Total sessions across those databases.
    pub sessions: usize,
    /// Total active time.
    pub active: Seconds,
    /// Mean sessions per database per day over the summarised span.
    pub sessions_per_db_day: f64,
    /// Mean active fraction of wall time.
    pub active_fraction: f64,
}

/// A whole-fleet composition report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetSummary {
    /// Per-archetype aggregates, keyed by archetype label.
    pub archetypes: BTreeMap<String, ArchetypeSummary>,
    /// Total databases.
    pub databases: usize,
    /// Fleet-wide logins per database-day.
    pub logins_per_db_day: f64,
    /// Fraction of idle intervals shorter than one hour (Figure 3a).
    pub short_idle_fraction: f64,
    /// Share of idle duration carried by sub-hour intervals (Figure 3b).
    pub short_idle_duration_share: f64,
}

impl FleetSummary {
    /// Summarise a fleet over the span `[start, end)` implied by its
    /// traces (empty traces contribute databases but no activity).
    pub fn from_traces(traces: &[Trace], span: Seconds) -> Self {
        let days = (span.as_secs() as f64 / 86_400.0).max(f64::EPSILON);
        let mut archetypes: BTreeMap<String, ArchetypeSummary> = BTreeMap::new();
        let mut total_sessions = 0usize;
        for t in traces {
            let entry = archetypes.entry(t.archetype.clone()).or_default();
            entry.databases += 1;
            entry.sessions += t.sessions.len();
            entry.active = entry.active + t.total_active();
            total_sessions += t.sessions.len();
        }
        for entry in archetypes.values_mut() {
            let db_days = entry.databases as f64 * days;
            entry.sessions_per_db_day = entry.sessions as f64 / db_days.max(f64::EPSILON);
            entry.active_fraction =
                entry.active.as_secs() as f64 / (db_days * 86_400.0).max(f64::EPSILON);
        }
        let idle = IdleStats::from_traces(traces);
        FleetSummary {
            databases: traces.len(),
            logins_per_db_day: total_sessions as f64
                / (traces.len() as f64 * days).max(f64::EPSILON),
            short_idle_fraction: idle.fraction_below(Seconds::hours(1)),
            short_idle_duration_share: idle.duration_share_below(Seconds::hours(1)),
            archetypes,
        }
    }
}

impl fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} databases, {:.2} logins per database-day; sub-hour idle: {:.1}% of intervals, {:.1}% of duration",
            self.databases,
            self.logins_per_db_day,
            100.0 * self.short_idle_fraction,
            100.0 * self.short_idle_duration_share
        )?;
        writeln!(
            f,
            "{:<12} {:>5} {:>10} {:>16} {:>14}",
            "archetype", "dbs", "share", "sessions/db-day", "active-time %"
        )?;
        for (label, a) in &self.archetypes {
            writeln!(
                f,
                "{:<12} {:>5} {:>9.1}% {:>16.2} {:>13.1}%",
                label,
                a.databases,
                100.0 * a.databases as f64 / self.databases.max(1) as f64,
                a.sessions_per_db_day,
                100.0 * a.active_fraction
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{RegionName, RegionProfile};
    use prorp_types::{DatabaseId, Session, Timestamp};

    #[test]
    fn summary_counts_by_archetype() {
        let s1 = Session::new(Timestamp(0), Timestamp(3_600)).unwrap();
        let s2 = Session::new(Timestamp(7_200), Timestamp(10_800)).unwrap();
        let traces = vec![
            Trace::new(DatabaseId(0), "daily", vec![s1, s2]).unwrap(),
            Trace::new(DatabaseId(1), "daily", vec![s1]).unwrap(),
            Trace::new(DatabaseId(2), "dormant", vec![]).unwrap(),
        ];
        let summary = FleetSummary::from_traces(&traces, Seconds::days(1));
        assert_eq!(summary.databases, 3);
        let daily = &summary.archetypes["daily"];
        assert_eq!(daily.databases, 2);
        assert_eq!(daily.sessions, 3);
        assert!((daily.sessions_per_db_day - 1.5).abs() < 1e-9);
        // 3 sessions x 1h over 2 db-days.
        assert!((daily.active_fraction - 3.0 / 48.0).abs() < 1e-9);
        assert_eq!(summary.archetypes["dormant"].sessions, 0);
        assert!((summary.logins_per_db_day - 1.0).abs() < 1e-9);
    }

    #[test]
    fn region_fleet_summary_is_calibration_consistent() {
        let span = Seconds::days(28);
        let traces = RegionProfile::for_region(RegionName::Eu1).generate_fleet(
            200,
            Timestamp(0),
            Timestamp(0) + span,
            42,
        );
        let summary = FleetSummary::from_traces(&traces, span);
        // The calibration targets (§2 of DESIGN.md): about one login per
        // database-day and mostly-short idle intervals with a small
        // duration share.
        assert!(
            (0.4..2.0).contains(&summary.logins_per_db_day),
            "logins/db-day = {}",
            summary.logins_per_db_day
        );
        assert!(summary.short_idle_fraction > 0.5);
        assert!(summary.short_idle_duration_share < 0.15);
        // Dormant databases dominate the population.
        let dormant_share = summary.archetypes["dormant"].databases as f64 / 200.0;
        assert!(dormant_share > 0.4, "dormant share {dormant_share}");
        let rendered = summary.to_string();
        assert!(rendered.contains("archetype"), "{rendered}");
    }

    #[test]
    fn empty_fleet_is_harmless() {
        let summary = FleetSummary::from_traces(&[], Seconds::days(1));
        assert_eq!(summary.databases, 0);
        assert_eq!(summary.logins_per_db_day, 0.0);
        assert!(summary.archetypes.is_empty());
    }
}
