//! Idle-interval statistics (the Figure 3 quantities).
//!
//! The paper's motivating measurement: "72 % of idle intervals are within
//! one hour … however, these short idle intervals contribute only 5 % to
//! the total idle time duration."  [`IdleStats`] computes both marginals,
//! plus the bucketed histogram the Figure 3 bench prints.

use crate::trace::Trace;
use prorp_types::{event::idle_gaps, Seconds};

/// Histogram bucket upper bounds (seconds); the last bucket is open.
pub const BUCKET_BOUNDS: [i64; 7] = [
    15 * 60,      // < 15 min
    30 * 60,      // 15–30 min
    60 * 60,      // 30–60 min
    2 * 60 * 60,  // 1–2 h
    8 * 60 * 60,  // 2–8 h
    24 * 60 * 60, // 8–24 h
    7 * 86_400,   // 1–7 d
];

/// Labels matching [`BUCKET_BOUNDS`] plus the open tail.
pub const BUCKET_LABELS: [&str; 8] = [
    "<15m", "15-30m", "30-60m", "1-2h", "2-8h", "8-24h", "1-7d", ">7d",
];

/// Aggregate idle-gap statistics over a fleet of traces.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IdleStats {
    /// All idle gaps in seconds, unsorted.
    gaps: Vec<i64>,
}

impl IdleStats {
    /// Collect every between-session idle gap across the fleet.
    pub fn from_traces(traces: &[Trace]) -> Self {
        let mut gaps = Vec::new();
        for t in traces {
            gaps.extend(idle_gaps(&t.sessions).into_iter().map(|g| g.as_secs()));
        }
        IdleStats { gaps }
    }

    /// Number of idle intervals observed.
    pub fn count(&self) -> usize {
        self.gaps.len()
    }

    /// Total idle time.
    pub fn total(&self) -> Seconds {
        Seconds(self.gaps.iter().sum())
    }

    /// Fraction of idle intervals shorter than `threshold`
    /// (Figure 3(a)'s headline: ≈ 0.72 at one hour).
    pub fn fraction_below(&self, threshold: Seconds) -> f64 {
        if self.gaps.is_empty() {
            return 0.0;
        }
        let short = self
            .gaps
            .iter()
            .filter(|&&g| g < threshold.as_secs())
            .count();
        short as f64 / self.gaps.len() as f64
    }

    /// Share of total idle *duration* carried by intervals shorter than
    /// `threshold` (Figure 3(b)'s headline: ≈ 0.05 at one hour).
    pub fn duration_share_below(&self, threshold: Seconds) -> f64 {
        let total: i64 = self.gaps.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let short: i64 = self.gaps.iter().filter(|&&g| g < threshold.as_secs()).sum();
        short as f64 / total as f64
    }

    /// Histogram over [`BUCKET_BOUNDS`]: `(count, total_seconds)` per
    /// bucket, including the open tail.
    pub fn histogram(&self) -> [(usize, i64); 8] {
        let mut out = [(0usize, 0i64); 8];
        for &g in &self.gaps {
            let idx = BUCKET_BOUNDS
                .iter()
                .position(|&b| g < b)
                .unwrap_or(BUCKET_BOUNDS.len());
            out[idx].0 += 1;
            out[idx].1 += g;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{RegionName, RegionProfile};
    use prorp_types::{DatabaseId, Session, Timestamp};

    fn trace(gaps: &[i64]) -> Trace {
        // Build sessions of length 10 separated by the given gaps.
        let mut sessions = Vec::new();
        let mut cursor = 0i64;
        sessions.push(Session::new(Timestamp(cursor), Timestamp(cursor + 10)).unwrap());
        cursor += 10;
        for &g in gaps {
            let start = cursor + g;
            sessions.push(Session::new(Timestamp(start), Timestamp(start + 10)).unwrap());
            cursor = start + 10;
        }
        Trace::new(DatabaseId(0), "test", sessions).unwrap()
    }

    #[test]
    fn fractions_match_hand_computation() {
        // Gaps: 3 short (10 min) + 1 long (10 h).
        let t = trace(&[600, 600, 600, 36_000]);
        let stats = IdleStats::from_traces(&[t]);
        assert_eq!(stats.count(), 4);
        assert!((stats.fraction_below(Seconds::hours(1)) - 0.75).abs() < 1e-9);
        let share = stats.duration_share_below(Seconds::hours(1));
        assert!((share - 1_800.0 / 37_800.0).abs() < 1e-9);
        assert_eq!(stats.total(), Seconds(37_800));
    }

    #[test]
    fn histogram_buckets_cover_everything() {
        let t = trace(&[60, 1_200, 2_400, 5_000, 10_000, 50_000, 200_000, 1_000_000]);
        let stats = IdleStats::from_traces(&[t]);
        let hist = stats.histogram();
        let total: usize = hist.iter().map(|(c, _)| c).sum();
        assert_eq!(total, stats.count());
        let dur: i64 = hist.iter().map(|(_, d)| d).sum();
        assert_eq!(dur, stats.total().as_secs());
        assert_eq!(hist[7].0, 1, ">7d bucket holds the 1Ms gap");
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = IdleStats::from_traces(&[]);
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.fraction_below(Seconds::hours(1)), 0.0);
        assert_eq!(stats.duration_share_below(Seconds::hours(1)), 0.0);
    }

    /// The Figure 3 calibration: the synthetic fleet must reproduce the
    /// paper's marginals — a large majority of idle intervals are
    /// sub-hour, yet they carry only a small share of total idle time.
    #[test]
    fn region_mix_reproduces_figure_3_marginals() {
        let profile = RegionProfile::for_region(RegionName::Eu1);
        let fleet = profile.generate_fleet(300, Timestamp(0), Timestamp(0) + Seconds::days(28), 42);
        let stats = IdleStats::from_traces(&fleet);
        let frac = stats.fraction_below(Seconds::hours(1));
        let share = stats.duration_share_below(Seconds::hours(1));
        assert!(
            (0.55..=0.85).contains(&frac),
            "short-interval fraction {frac:.3} outside the Figure 3(a) band"
        );
        assert!(
            share <= 0.15,
            "short-interval duration share {share:.3} outside the Figure 3(b) band"
        );
        assert!(stats.count() > 3_000, "fleet should produce many gaps");
    }
}
