//! Trace containers and serialisation.
//!
//! A [`Trace`] is the ground-truth activity of one database: the ordered,
//! disjoint customer sessions the simulator replays.  Traces round-trip
//! through a simple CSV (`db_id,start,end` per session) so experiments
//! can persist and reload the exact workload they ran on.

use prorp_types::{ActivityEvent, DatabaseId, ProrpError, Session, Timestamp};
use std::fmt::Write as _;

/// The ground-truth activity of one synthetic database.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The database this trace belongs to.
    pub db: DatabaseId,
    /// Label of the archetype that produced it (for stratified reports).
    pub archetype: String,
    /// Time-ordered, disjoint sessions.
    pub sessions: Vec<Session>,
}

impl Trace {
    /// Build a trace, validating ordering and disjointness.
    pub fn new(
        db: DatabaseId,
        archetype: impl Into<String>,
        sessions: Vec<Session>,
    ) -> Result<Self, ProrpError> {
        for w in sessions.windows(2) {
            if w[1].start <= w[0].end {
                return Err(ProrpError::InvalidEvent(format!(
                    "trace sessions must be ordered and disjoint: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        Ok(Trace {
            db,
            archetype: archetype.into(),
            sessions,
        })
    }

    /// Flatten to boundary events in time order.
    pub fn events(&self) -> Vec<ActivityEvent> {
        self.sessions.iter().flat_map(|s| s.to_events()).collect()
    }

    /// First login strictly after `now`, if any.
    pub fn next_login_after(&self, now: Timestamp) -> Option<Timestamp> {
        let idx = self.sessions.partition_point(|s| s.start <= now);
        self.sessions.get(idx).map(|s| s.start)
    }

    /// Total active time.
    pub fn total_active(&self) -> prorp_types::Seconds {
        self.sessions
            .iter()
            .fold(prorp_types::Seconds::ZERO, |acc, s| acc + s.duration())
    }

    /// Time span from first session start to last session end.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        Some((self.sessions.first()?.start, self.sessions.last()?.end))
    }
}

/// Serialise traces to the CSV interchange form (`db_id,archetype,start,end`).
pub fn to_csv(traces: &[Trace]) -> String {
    let mut out = String::from("db_id,archetype,start,end\n");
    for trace in traces {
        for s in &trace.sessions {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                trace.db.raw(),
                trace.archetype,
                s.start.as_secs(),
                s.end.as_secs()
            );
        }
    }
    out
}

/// Parse traces back from [`to_csv`] output.  Sessions of each database
/// must appear in time order; databases may interleave.
pub fn from_csv(csv: &str) -> Result<Vec<Trace>, ProrpError> {
    let mut per_db: Vec<(DatabaseId, String, Vec<Session>)> = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 {
            if line != "db_id,archetype,start,end" {
                return Err(ProrpError::InvalidEvent(format!(
                    "bad CSV header: {line:?}"
                )));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let err =
            |what: &str| ProrpError::InvalidEvent(format!("line {}: {what}: {line:?}", lineno + 1));
        let db: u64 = parts
            .next()
            .ok_or_else(|| err("missing db_id"))?
            .parse()
            .map_err(|_| err("bad db_id"))?;
        let archetype = parts.next().ok_or_else(|| err("missing archetype"))?;
        let start: i64 = parts
            .next()
            .ok_or_else(|| err("missing start"))?
            .parse()
            .map_err(|_| err("bad start"))?;
        let end: i64 = parts
            .next()
            .ok_or_else(|| err("missing end"))?
            .parse()
            .map_err(|_| err("bad end"))?;
        if parts.next().is_some() {
            return Err(err("too many fields"));
        }
        let session =
            Session::new(Timestamp(start), Timestamp(end)).map_err(|e| err(&e.to_string()))?;
        let db = DatabaseId(db);
        match per_db.iter_mut().find(|(id, _, _)| *id == db) {
            Some((_, _, sessions)) => sessions.push(session),
            None => per_db.push((db, archetype.to_string(), vec![session])),
        }
    }
    per_db
        .into_iter()
        .map(|(db, archetype, sessions)| Trace::new(db, archetype, sessions))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(a: i64, b: i64) -> Session {
        Session::new(Timestamp(a), Timestamp(b)).unwrap()
    }

    fn sample() -> Vec<Trace> {
        vec![
            Trace::new(DatabaseId(1), "daily", vec![s(0, 10), s(100, 150)]).unwrap(),
            Trace::new(DatabaseId(2), "bursty", vec![s(5, 6)]).unwrap(),
        ]
    }

    #[test]
    fn validation_rejects_disorder_and_overlap() {
        assert!(Trace::new(DatabaseId(1), "x", vec![s(10, 20), s(5, 8)]).is_err());
        assert!(Trace::new(DatabaseId(1), "x", vec![s(0, 10), s(10, 20)]).is_err());
        assert!(Trace::new(DatabaseId(1), "x", vec![s(0, 10), s(11, 20)]).is_ok());
    }

    #[test]
    fn events_and_lookup() {
        let t = &sample()[0];
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.next_login_after(Timestamp(0)), Some(Timestamp(100)));
        assert_eq!(t.next_login_after(Timestamp(-1)), Some(Timestamp(0)));
        assert_eq!(t.next_login_after(Timestamp(100)), None);
        assert_eq!(t.total_active(), prorp_types::Seconds(60));
        assert_eq!(t.span(), Some((Timestamp(0), Timestamp(150))));
    }

    #[test]
    fn csv_roundtrip_is_identity() {
        let traces = sample();
        let csv = to_csv(&traces);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed, traces);
    }

    #[test]
    fn csv_parse_errors_are_descriptive() {
        assert!(from_csv("nonsense\n").is_err());
        let bad_session = "db_id,archetype,start,end\n1,x,50,10\n";
        assert!(from_csv(bad_session).is_err());
        let bad_field = "db_id,archetype,start,end\n1,x,abc,10\n";
        assert!(from_csv(bad_field).is_err());
        let extra = "db_id,archetype,start,end\n1,x,1,2,3\n";
        assert!(from_csv(extra).is_err());
        // Blank lines are tolerated.
        assert!(from_csv("db_id,archetype,start,end\n\n")
            .unwrap()
            .is_empty());
    }
}
