//! Property tests for trace generation and serialisation: every archetype
//! emits well-formed traces under random parameters, and the CSV codec is
//! an identity on generated fleets.

use proptest::prelude::*;
use prorp_types::{Seconds, Timestamp};
use prorp_workload::trace::{from_csv, to_csv};
use prorp_workload::{Archetype, RegionName, RegionProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn archetype_strategy() -> impl Strategy<Value = Archetype> {
    prop_oneof![
        (1.0f64..12.0, 5.0f64..60.0).prop_map(|(session_hours, gap_minutes)| {
            Archetype::Stable {
                session_hours,
                gap_minutes,
            }
        }),
        (0.0f64..23.0, 0.5f64..10.0, 0.0f64..180.0, 0.0f64..0.5).prop_map(
            |(start_hour, duration_hours, jitter_minutes, skip_probability)| Archetype::Daily {
                start_hour,
                duration_hours,
                jitter_minutes,
                skip_probability,
            }
        ),
        (0.05f64..3.0, 1.0f64..120.0).prop_map(|(sessions_per_day, session_minutes)| {
            Archetype::Bursty {
                sessions_per_day,
                session_minutes,
            }
        }),
        (1.0f64..30.0, 1.0f64..120.0).prop_map(|(days_between_sessions, session_minutes)| {
            Archetype::Dormant {
                days_between_sessions,
                session_minutes,
            }
        }),
        (0.0f64..16.0, 1.0f64..8.0, 2.0f64..40.0, 2.0f64..60.0).prop_map(
            |(start_hour, span_hours, session_minutes, gap_minutes)| Archetype::Fragmented {
                start_hour,
                span_hours,
                session_minutes,
                gap_minutes,
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_archetype_emits_well_formed_traces(
        archetype in archetype_strategy(),
        seed in any::<u64>(),
        days in 1i64..40,
    ) {
        let start = Timestamp(0);
        let end = start + Seconds::days(days);
        let mut rng = StdRng::seed_from_u64(seed);
        let sessions = archetype.generate(start, end, &mut rng);
        for s in &sessions {
            prop_assert!(s.start <= s.end);
            prop_assert!(s.start >= start && s.end < end);
        }
        for w in sessions.windows(2) {
            prop_assert!(w[1].start > w[0].end, "{} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn csv_roundtrip_on_generated_fleets(
        n in 1usize..20,
        seed in any::<u64>(),
        days in 3i64..20,
    ) {
        let profile = RegionProfile::for_region(RegionName::Us2);
        let traces = profile.generate_fleet(
            n,
            Timestamp(0),
            Timestamp(0) + Seconds::days(days),
            seed,
        );
        let csv = to_csv(&traces);
        let parsed = from_csv(&csv).unwrap();
        // Databases with no sessions do not appear in the CSV; every
        // parsed trace must match its source exactly.
        let nonempty: Vec<_> = traces
            .iter()
            .filter(|t| !t.sessions.is_empty())
            .cloned()
            .collect();
        prop_assert_eq!(parsed, nonempty);
    }
}
