//! Regression tests for the `prorp-trace` CLI's failure behaviour: a
//! malformed JSONL input must exit non-zero with an error that names
//! the offending line, never panic or silently succeed.

use std::path::PathBuf;
use std::process::{Command, Output};

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("prorp-trace-test-{}-{name}", std::process::id()));
    std::fs::write(&path, contents).expect("write temp trace");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_prorp-trace"))
        .args(args)
        .output()
        .expect("spawn prorp-trace")
}

#[test]
fn malformed_jsonl_exits_nonzero_with_line_number() {
    let path = write_temp(
        "malformed.jsonl",
        "\n{\"this is\": not json at all\nmore garbage\n",
    );
    let out = run(&[path.to_str().unwrap(), "summary"]);
    std::fs::remove_file(&path).ok();
    assert!(
        !out.status.success(),
        "malformed input must fail, got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("trace line 2"),
        "error must name the offending line, got: {stderr}"
    );
}

#[test]
fn truncated_record_exits_nonzero() {
    // Well-formed JSON object, but not a trace record (fields missing).
    let path = write_temp("truncated.jsonl", "{\"start\":1}\n");
    let out = run(&[path.to_str().unwrap(), "summary"]);
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    assert!(!out.stderr.is_empty(), "must explain what was wrong");
}

#[test]
fn missing_file_exits_nonzero() {
    let out = run(&["/definitely/not/a/real/trace.jsonl", "summary"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "got: {stderr}");
}

#[test]
fn missing_arguments_print_usage() {
    let out = run(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: prorp-trace"), "got: {stderr}");
}

#[test]
fn unknown_command_exits_nonzero() {
    let path = write_temp("empty.jsonl", "");
    let out = run(&[path.to_str().unwrap(), "frobnicate"]);
    std::fs::remove_file(&path).ok();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "got: {stderr}");
}

#[test]
fn empty_trace_is_valid_input() {
    // The failure modes above are about *malformed* input; an empty
    // stream is well-formed and must keep succeeding.
    let path = write_temp("ok-empty.jsonl", "\n\n");
    let out = run(&[path.to_str().unwrap(), "summary"]);
    std::fs::remove_file(&path).ok();
    assert!(
        out.status.success(),
        "empty trace must be accepted: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}
