//! The span/event model and deterministic trace buffers.
//!
//! A *span* is one unit of control-plane work with a start and end in
//! **simulated** time: a lifecycle transition of the Algorithm 1 FSM, one
//! stage (or the whole) of an Algorithm 5 staged resume workflow, one
//! predictor invocation of Algorithm 4, or a B-tree checkpoint/recover
//! during a rebalance move.  An *event* is a zero-width span
//! (`start == end`), used for points such as logins or breaker trips.
//!
//! Because spans are stamped with simulated timestamps only — never wall
//! clocks — and ordered by the canonical key
//! `(start, database id, per-database sequence number)`, a merged trace is
//! **bit-identical at any shard count**: every database lives on exactly
//! one shard, so its per-database emission order (the sequence number) is
//! independent of how databases are partitioned across workers.  This
//! extends the deterministic-merge discipline of `TelemetryLog::merge` to
//! trace streams.

use prorp_types::{DatabaseId, DbState, Timestamp, WorkflowStage};
use std::collections::HashMap;

/// How one predictor invocation (Algorithm 4) ended.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredictOutcome {
    /// The forecaster produced a usable next-activity prediction.
    Predicted,
    /// The forecaster failed; the engine recorded a forecast failure.
    Failed,
    /// The circuit breaker was open, so the engine skipped the forecaster
    /// and fell back to the reactive policy.
    BreakerFallback,
}

impl PredictOutcome {
    /// Stable lowercase label used by the exporters.
    pub const fn label(self) -> &'static str {
        match self {
            PredictOutcome::Predicted => "predicted",
            PredictOutcome::Failed => "failed",
            PredictOutcome::BreakerFallback => "breaker-fallback",
        }
    }
}

/// A circuit-breaker state change observed on one database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BreakerTransition {
    /// Repeated forecast failures tripped the breaker open.
    Opened,
    /// A successful re-probe closed the breaker again.
    Closed,
}

impl BreakerTransition {
    /// Stable lowercase label used by the exporters.
    pub const fn label(self) -> &'static str {
        match self {
            BreakerTransition::Opened => "opened",
            BreakerTransition::Closed => "closed",
        }
    }
}

/// How one attempt of a resume-workflow stage ended.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StageResult {
    /// The attempt completed and the workflow advanced.
    Ok,
    /// The attempt failed; a retry is scheduled with backoff.
    Retry,
    /// The attempt failed and the retry budget is exhausted; the workflow
    /// is escalated to the diagnostics runner.
    Exhausted,
}

impl StageResult {
    /// Stable lowercase label used by the exporters.
    pub const fn label(self) -> &'static str {
        match self {
            StageResult::Ok => "ok",
            StageResult::Retry => "retry",
            StageResult::Exhausted => "exhausted",
        }
    }
}

/// How a whole staged resume workflow ended.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkflowOutcome {
    /// All four stages completed and the database reached `Resumed`.
    Completed,
    /// A stage exhausted its retries and the workflow gave up.
    GaveUp,
}

impl WorkflowOutcome {
    /// Stable lowercase label used by the exporters.
    pub const fn label(self) -> &'static str {
        match self {
            WorkflowOutcome::Completed => "completed",
            WorkflowOutcome::GaveUp => "gave-up",
        }
    }
}

/// Which proactive control-plane decision a provenance record explains.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DecisionAction {
    /// The engine committed to a pause-ahead: the database went
    /// physically paused on the strength of the forecast.
    PhysicalPause,
    /// The engine re-checked the pause condition and deferred: the
    /// database stayed logically paused awaiting predicted activity.
    DeferPause,
    /// A scheduled proactive resume fired and the database was
    /// re-allocated ahead of its predicted login.
    ProactiveResume,
}

impl DecisionAction {
    /// Stable lowercase label used by the exporters.
    pub const fn label(self) -> &'static str {
        match self {
            DecisionAction::PhysicalPause => "physical-pause",
            DecisionAction::DeferPause => "defer-pause",
            DecisionAction::ProactiveResume => "proactive-resume",
        }
    }
}

/// The compact provenance of one proactive decision: every input the
/// engine acted on, in integers only (the confidence basis is kept as a
/// hit/total count pair, not a float), so records stay `Eq` and merge
/// deterministically.
///
/// Replayable: feeding the database's Login spans at or before the
/// decision instant through [`crate::timetravel::replay_as_of`] must
/// reproduce `predicted` — the check behind `prorp-trace why`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DecisionExplain {
    /// What the engine decided.
    pub action: DecisionAction,
    /// The predicted next login the decision used (`None` = no usable
    /// forecast; the engine was running reactively).
    pub predicted: Option<Timestamp>,
    /// Login events in the trimmed history window the forecast saw.
    pub history_len: u32,
    /// Pattern hits backing the winning prediction (confidence
    /// numerator); 0 without a forecast.
    pub confidence_hits: u32,
    /// Windows examined by the pattern search (confidence denominator);
    /// 0 without a forecast.
    pub confidence_total: u32,
    /// Whether the circuit breaker was open at decision time.
    pub breaker_open: bool,
    /// Whether the forecast came from the prediction cache.
    pub cache_hit: bool,
}

/// What a trace span describes.
///
/// One variant per observable control-plane action; the taxonomy mirrors
/// the paper's algorithms so an operator reading a trace can map every
/// record back to a pseudocode line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanKind {
    /// A lifecycle transition of the Algorithm 1 FSM (Figure 4).
    Lifecycle {
        /// State before the transition.
        from: DbState,
        /// State after the transition.
        to: DbState,
    },
    /// A customer login event; `available` is the QoS outcome.
    Login {
        /// Whether the database could serve the login immediately.
        available: bool,
    },
    /// One predictor invocation (Algorithm 4 / `repredict`).
    Predict {
        /// How the invocation ended.
        outcome: PredictOutcome,
    },
    /// A circuit-breaker state change.
    Breaker {
        /// Which way the breaker moved.
        transition: BreakerTransition,
    },
    /// One attempt of one resume-workflow stage (Algorithm 5 control
    /// plane).  The span covers the simulated stage latency; retries are
    /// zero-width events at the failure point.
    WorkflowStage {
        /// The stage attempted.
        stage: WorkflowStage,
        /// 1-based attempt number.
        attempt: u32,
        /// How the attempt ended.
        result: StageResult,
    },
    /// A whole staged resume workflow, from start to completion/give-up.
    Workflow {
        /// How the workflow ended.
        outcome: WorkflowOutcome,
    },
    /// A database selected by the proactive resume scan (Algorithm 5).
    ProactiveResume,
    /// A diagnostics-runner mitigation of a stuck workflow (§7).
    Mitigation {
        /// Whether the mitigation escalated (repeat offender).
        escalated: bool,
    },
    /// A B-tree metadata checkpoint taken during a rebalance move.
    Checkpoint {
        /// Size of the checkpoint image in bytes.
        bytes: u64,
    },
    /// A B-tree metadata recovery from a checkpoint image.
    Recover {
        /// Size of the recovered image in bytes.
        bytes: u64,
    },
    /// Decision provenance: the inputs behind one proactive
    /// resume/pause/defer decision (recorded when `ObsConfig::explain`
    /// is on; queried by `prorp-trace why`).
    Decision {
        /// The recorded inputs and the action they produced.
        explain: DecisionExplain,
    },
}

impl SpanKind {
    /// Stable lowercase label naming the variant, used as the `kind` field
    /// of the JSONL export and by the query layer.
    pub const fn label(&self) -> &'static str {
        match self {
            SpanKind::Lifecycle { .. } => "lifecycle",
            SpanKind::Login { .. } => "login",
            SpanKind::Predict { .. } => "predict",
            SpanKind::Breaker { .. } => "breaker",
            SpanKind::WorkflowStage { .. } => "workflow-stage",
            SpanKind::Workflow { .. } => "workflow",
            SpanKind::ProactiveResume => "proactive-resume",
            SpanKind::Mitigation { .. } => "mitigation",
            SpanKind::Checkpoint { .. } => "checkpoint",
            SpanKind::Recover { .. } => "recover",
            SpanKind::Decision { .. } => "decision",
        }
    }
}

/// One record of a trace: a span plus its canonical-order key.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Simulated start of the span.
    pub start: Timestamp,
    /// Simulated end of the span (`== start` for point events).
    pub end: Timestamp,
    /// The database the span belongs to.
    pub db: DatabaseId,
    /// Per-database emission sequence number (0-based).  Unique within a
    /// database, so `(start, db, seq)` totally orders any merged trace.
    pub seq: u64,
    /// What happened.
    pub kind: SpanKind,
}

impl TraceRecord {
    /// The canonical merge-order key.
    #[inline]
    pub fn sort_key(&self) -> (i64, u64, u64) {
        (self.start.as_secs(), self.db.raw(), self.seq)
    }

    /// Span duration in simulated time (zero for point events).
    #[inline]
    pub fn duration(&self) -> prorp_types::Seconds {
        self.end.since(self.start)
    }
}

/// Destination for spans emitted by instrumented components.
///
/// Implementations must not look at wall clocks: everything needed to
/// reproduce a trace bit-for-bit is in the arguments.
pub trait TraceSink {
    /// Record a span covering `[start, end]` in simulated time.
    fn span(&mut self, start: Timestamp, end: Timestamp, db: DatabaseId, kind: SpanKind);

    /// Record a zero-width point event.
    fn event(&mut self, at: Timestamp, db: DatabaseId, kind: SpanKind) {
        self.span(at, at, db, kind);
    }
}

/// A sink that drops everything — the disabled-observability fast path.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn span(&mut self, _: Timestamp, _: Timestamp, _: DatabaseId, _: SpanKind) {}
}

/// An in-memory sink that assigns per-database sequence numbers as spans
/// arrive, preserving each database's emission order across shard merges.
#[derive(Clone, Default, Debug)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
    next_seq: HashMap<DatabaseId, u64>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Consume the buffer, yielding records in emission order.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Merge per-shard record streams into one canonical trace.
    ///
    /// The output is ordered by [`TraceRecord::sort_key`].  Each database
    /// lives on exactly one shard, so its sequence numbers came from a
    /// single buffer and the result is independent of the shard layout.
    ///
    /// Parts that already arrive in canonical order (the shard runner
    /// sorts its buffer on the worker thread before handing it over) are
    /// k-way merged without re-sorting, so the fleet-wide combine step is
    /// a single linear pass; an unsorted part is detected and sorted
    /// first, preserving the old flatten-and-sort semantics for ad-hoc
    /// callers.
    pub fn merge(parts: Vec<Vec<TraceRecord>>) -> Vec<TraceRecord> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        /// Heap entry: (record sort key, source index).
        type HeapKey = Reverse<((i64, u64, u64), usize)>;

        let total = parts.iter().map(Vec::len).sum();
        let mut sources: Vec<std::vec::IntoIter<TraceRecord>> = parts
            .into_iter()
            .map(|mut part| {
                if !part.windows(2).all(|w| w[0].sort_key() <= w[1].sort_key()) {
                    part.sort_by_key(TraceRecord::sort_key);
                }
                part.into_iter()
            })
            .collect();
        // Heap of (next sort key, source index); ties across sources
        // cannot happen in a sharded run (each database's records sit in
        // one part), but the source index makes the order total anyway.
        let mut heads: Vec<Option<TraceRecord>> = sources.iter_mut().map(Iterator::next).collect();
        let mut heap: BinaryHeap<HeapKey> = heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|r| Reverse((r.sort_key(), i))))
            .collect();
        let mut merged = Vec::with_capacity(total);
        while let Some(Reverse((_, i))) = heap.pop() {
            let record = heads[i].take().expect("heap entries have a live head");
            merged.push(record);
            if let Some(next) = sources[i].next() {
                heads[i] = Some(next);
                heap.push(Reverse((next.sort_key(), i)));
            }
        }
        merged
    }
}

impl TraceSink for TraceBuffer {
    fn span(&mut self, start: Timestamp, end: Timestamp, db: DatabaseId, kind: SpanKind) {
        let seq = self.next_seq.entry(db).or_insert(0);
        self.records.push(TraceRecord {
            start,
            end,
            db,
            seq: *seq,
            kind,
        });
        *seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(buf: &mut TraceBuffer, start: i64, db: u64) {
        buf.event(
            Timestamp(start),
            DatabaseId(db),
            SpanKind::Login { available: true },
        );
    }

    #[test]
    fn sequence_numbers_are_per_database() {
        let mut buf = TraceBuffer::new();
        rec(&mut buf, 10, 1);
        rec(&mut buf, 20, 2);
        rec(&mut buf, 30, 1);
        let records = buf.into_records();
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 0, "db-2 starts its own sequence");
        assert_eq!(records[2].seq, 1);
    }

    #[test]
    fn merge_is_shard_layout_invariant() {
        // Same per-database streams, partitioned two different ways.
        let mut a1 = TraceBuffer::new();
        rec(&mut a1, 10, 1);
        rec(&mut a1, 10, 2);
        rec(&mut a1, 30, 1);
        let merged_one = TraceBuffer::merge(vec![a1.into_records()]);

        let mut b1 = TraceBuffer::new();
        rec(&mut b1, 10, 1);
        rec(&mut b1, 30, 1);
        let mut b2 = TraceBuffer::new();
        rec(&mut b2, 10, 2);
        let merged_two = TraceBuffer::merge(vec![b2.into_records(), b1.into_records()]);

        assert_eq!(merged_one, merged_two);
    }

    #[test]
    fn merge_sorts_backdated_parts_before_k_way_merging() {
        // A backdated span (start before the previous record's) leaves a
        // buffer out of canonical order; merge must detect and sort it.
        let mut unsorted = TraceBuffer::new();
        rec(&mut unsorted, 50, 1);
        unsorted.span(
            Timestamp(10),
            Timestamp(50),
            DatabaseId(1),
            SpanKind::Workflow {
                outcome: WorkflowOutcome::Completed,
            },
        );
        let mut sorted = TraceBuffer::new();
        rec(&mut sorted, 20, 2);
        rec(&mut sorted, 60, 2);

        let a = unsorted.into_records();
        let b = sorted.into_records();
        let mut want: Vec<TraceRecord> = a.iter().chain(b.iter()).copied().collect();
        want.sort_by_key(TraceRecord::sort_key);

        let merged = TraceBuffer::merge(vec![a, b]);
        assert_eq!(merged, want);
        assert!(merged
            .windows(2)
            .all(|w| w[0].sort_key() <= w[1].sort_key()));
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.event(Timestamp(0), DatabaseId(0), SpanKind::ProactiveResume);
        sink.span(
            Timestamp(0),
            Timestamp(5),
            DatabaseId(0),
            SpanKind::Checkpoint { bytes: 64 },
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            SpanKind::Lifecycle {
                from: DbState::Resumed,
                to: DbState::LogicallyPaused
            }
            .label(),
            "lifecycle"
        );
        assert_eq!(PredictOutcome::BreakerFallback.label(), "breaker-fallback");
        assert_eq!(WorkflowOutcome::GaveUp.label(), "gave-up");
        assert_eq!(StageResult::Exhausted.label(), "exhausted");
        assert_eq!(BreakerTransition::Opened.label(), "opened");
    }
}
