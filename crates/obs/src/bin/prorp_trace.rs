//! `prorp-trace` — query a JSONL trace from the command line.
//!
//! ```text
//! prorp-trace <trace.jsonl> summary [--json]
//! prorp-trace <trace.jsonl> timeline <db-id> [limit]
//! prorp-trace <trace.jsonl> slowest-stages [n]
//! prorp-trace <trace.jsonl> breaker [--json]
//! prorp-trace <trace.jsonl> qos-misses [limit]
//! prorp-trace <trace.jsonl> why <db-id> <t>
//! prorp-trace <trace.jsonl> time-travel <db-id> <t> [knob=value ...]
//! ```
//!
//! The input is the stream written by `prorp_obs::trace_jsonl` (the
//! `ObsReport::trace` of a run).  All output is a deterministic function
//! of the trace bytes, so CI runs the CLI against a golden trace.

use prorp_obs::span::{DecisionAction, SpanKind, TraceRecord};
use prorp_obs::{query, timetravel, JsonValue};
use prorp_types::{DatabaseId, PolicyConfig, Seasonality, Seconds, Timestamp};
use std::process::ExitCode;

const USAGE: &str = "usage: prorp-trace <trace.jsonl> <command> [args]\n\
commands:\n\
  summary [--json]     record counts by kind and the covered time range\n\
  timeline <db> [n]    chronological records of one database (default all)\n\
  slowest-stages [n]   slowest successful workflow stages (default 10)\n\
  breaker [--json]     circuit-breaker open/close episodes\n\
  qos-misses [n]       unavailable logins with predictor attribution\n\
  why <db> <t>         the decision the engine took for the database at\n\
                       or before second t, with its recorded inputs\n\
                       (needs a trace recorded with explain enabled)\n\
  time-travel <db> <t> [knob=value ...]\n\
                       replay the database's history into an LSM store,\n\
                       snapshot it as of second t, and re-run Algorithm 4.\n\
                       knobs (over the Table 1 defaults): confidence=<0..1>,\n\
                       window=<s>, slide=<s>, history=<s>, horizon=<s>,\n\
                       logical-pause=<s>, seasonality=daily|weekly";

fn describe(kind: &SpanKind) -> String {
    match kind {
        SpanKind::Lifecycle { from, to } => format!("lifecycle {from} -> {to}"),
        SpanKind::Login { available: true } => "login served".into(),
        SpanKind::Login { available: false } => "login UNAVAILABLE".into(),
        SpanKind::Predict { outcome } => format!("predict {}", outcome.label()),
        SpanKind::Breaker { transition } => format!("breaker {}", transition.label()),
        SpanKind::WorkflowStage {
            stage,
            attempt,
            result,
        } => format!("stage {stage} attempt {attempt} {}", result.label()),
        SpanKind::Workflow { outcome } => format!("workflow {}", outcome.label()),
        SpanKind::ProactiveResume => "proactive resume scheduled".into(),
        SpanKind::Mitigation { escalated: false } => "mitigated stuck workflow".into(),
        SpanKind::Mitigation { escalated: true } => "mitigated stuck workflow (escalated)".into(),
        SpanKind::Checkpoint { bytes } => format!("checkpoint {bytes}B"),
        SpanKind::Recover { bytes } => format!("recover {bytes}B"),
        SpanKind::Decision { explain } => format!("decision {}", explain.action.label()),
    }
}

fn print_summary(records: &[TraceRecord], json: bool) {
    let s = query::summary(records);
    if json {
        let by_kind = s
            .by_kind
            .iter()
            .map(|(k, v)| (k.to_string(), JsonValue::UInt(*v)))
            .collect();
        let opt_ts = |t: Option<Timestamp>| match t {
            Some(t) => JsonValue::Int(t.as_secs()),
            None => JsonValue::Float(f64::NAN), // renders as null
        };
        let v = JsonValue::object(vec![
            ("records", JsonValue::UInt(s.records as u64)),
            ("databases", JsonValue::UInt(s.databases as u64)),
            ("start", opt_ts(s.start)),
            ("end", opt_ts(s.end)),
            ("by_kind", JsonValue::Object(by_kind)),
        ]);
        println!("{}", v.render());
        return;
    }
    println!("records:   {}", s.records);
    println!("databases: {}", s.databases);
    match (s.start, s.end) {
        (Some(start), Some(end)) => println!("range:     {start} .. {end}"),
        _ => println!("range:     (empty trace)"),
    }
    for (kind, count) in &s.by_kind {
        println!("  {kind:<16} {count}");
    }
}

fn print_timeline(records: &[TraceRecord], db: DatabaseId, limit: usize) {
    let timeline = query::timeline(records, db);
    if timeline.is_empty() {
        println!("no records for {db}");
        return;
    }
    for r in timeline.iter().take(limit) {
        if r.start == r.end {
            println!("{}  {}", r.start, describe(&r.kind));
        } else {
            println!(
                "{}  {} ({}s)",
                r.start,
                describe(&r.kind),
                r.duration().as_secs()
            );
        }
    }
    if timeline.len() > limit {
        println!("... {} more records", timeline.len() - limit);
    }
}

fn print_slowest(records: &[TraceRecord], n: usize) {
    let stages = query::slowest_stages(records, n);
    if stages.is_empty() {
        println!("no completed workflow stages in trace");
        return;
    }
    for s in stages {
        println!(
            "{:>6}s  {:<14} {}  at {}",
            s.duration.as_secs(),
            s.stage.label(),
            s.db,
            s.start
        );
    }
}

fn print_breaker(records: &[TraceRecord], json: bool) {
    let episodes = query::breaker_episodes(records);
    if json {
        let rows = episodes
            .iter()
            .map(|e| {
                JsonValue::object(vec![
                    ("db", JsonValue::UInt(e.db.raw())),
                    ("opened", JsonValue::Int(e.opened.as_secs())),
                    (
                        "closed",
                        match e.closed {
                            Some(t) => JsonValue::Int(t.as_secs()),
                            None => JsonValue::Float(f64::NAN), // renders as null
                        },
                    ),
                    ("fallbacks", JsonValue::UInt(e.fallbacks)),
                ])
            })
            .collect();
        println!("{}", JsonValue::Array(rows).render());
        return;
    }
    if episodes.is_empty() {
        println!("no breaker episodes in trace");
        return;
    }
    for e in episodes {
        match e.closed {
            Some(closed) => println!(
                "{}  opened {} closed {} ({} fallbacks)",
                e.db, e.opened, closed, e.fallbacks
            ),
            None => println!(
                "{}  opened {} STILL OPEN ({} fallbacks)",
                e.db, e.opened, e.fallbacks
            ),
        }
    }
}

fn print_qos_misses(records: &[TraceRecord], limit: usize) {
    let misses = query::qos_misses(records);
    if misses.is_empty() {
        println!("no QoS misses in trace");
        return;
    }
    for m in misses.iter().take(limit) {
        match m.last_predict {
            Some(at) => println!(
                "{}  {} cause={} (last predict {})",
                m.at,
                m.db,
                m.cause.label(),
                at
            ),
            None => println!("{}  {} cause={}", m.at, m.db, m.cause.label()),
        }
    }
    if misses.len() > limit {
        println!("... {} more misses", misses.len() - limit);
    }
}

fn parse_policy(overrides: &[String]) -> Result<PolicyConfig, String> {
    let mut b = PolicyConfig::builder();
    for kv in overrides {
        let Some((key, value)) = kv.split_once('=') else {
            return Err(format!("bad override {kv:?}, expected knob=value"));
        };
        let secs = |v: &str| -> Result<Seconds, String> {
            v.parse::<i64>()
                .map(Seconds)
                .map_err(|_| format!("bad value for {key}: {v:?} (want seconds)"))
        };
        b = match key {
            "confidence" => b.confidence(
                value
                    .parse()
                    .map_err(|_| format!("bad confidence {value:?}"))?,
            ),
            "window" => b.window(secs(value)?),
            "slide" => b.slide(secs(value)?),
            "history" => b.history_len(secs(value)?),
            "horizon" => b.horizon(secs(value)?),
            "logical-pause" => b.logical_pause(secs(value)?),
            "seasonality" => b.seasonality(match value {
                "daily" => Seasonality::Daily,
                "weekly" => Seasonality::Weekly,
                other => return Err(format!("bad seasonality {other:?} (daily|weekly)")),
            }),
            other => return Err(format!("unknown knob {other:?}")),
        };
    }
    b.build().map_err(|e| e.to_string())
}

fn print_time_travel(report: &timetravel::TimeTravelReport) {
    println!("database:        {}", report.db);
    println!("as of:           {}", report.as_of);
    println!("logins replayed: {}", report.logins_replayed);
    println!(
        "snapshot:        {} tuples at seqno {}",
        report.snapshot_len, report.snapshot_seqno
    );
    match &report.prediction {
        Some(p) => println!("prediction:      {p}"),
        None => println!("prediction:      none (no pattern clears the confidence bar)"),
    }
    match report.recorded {
        Some((at, outcome)) => {
            println!("recorded run:    {} ({})", at, outcome.label());
            if report.reproduces_recorded_run() {
                println!("replay instant matches the recorded run: this is the forecast the engine acted on");
            }
        }
        None => println!("recorded run:    none at or before the replay instant"),
    }
}

fn print_why(
    records: &[TraceRecord],
    db: DatabaseId,
    at: Timestamp,
    config: PolicyConfig,
) -> Result<(), String> {
    let Some(decision) = query::why(records, db, at) else {
        return Err(format!(
            "no decision recorded for {db} at or before {at} \
             (was the trace recorded with explain enabled?)"
        ));
    };
    let e = decision.explain;
    println!("database:   {db}");
    println!("decided at: {}", decision.at);
    println!("action:     {}", e.action.label());
    match e.predicted {
        Some(p) => println!("predicted:  next login at {p}"),
        None => println!("predicted:  nothing (no pattern cleared the confidence bar)"),
    }
    println!(
        "inputs:     history={} logins, confidence {}/{} windows, breaker {}, cache {}",
        e.history_len,
        e.confidence_hits,
        e.confidence_total,
        if e.breaker_open { "OPEN" } else { "closed" },
        if e.cache_hit { "warm" } else { "cold" },
    );
    match e.action {
        DecisionAction::PhysicalPause => {
            println!(
                "meaning:    idle ran out with no imminent predicted login; resources released"
            )
        }
        DecisionAction::DeferPause => {
            println!(
                "meaning:    a predicted login is imminent; pause deferred to avoid a QoS miss"
            )
        }
        DecisionAction::ProactiveResume => {
            println!("meaning:    resources pre-warmed ahead of the predicted login")
        }
    }
    // Re-derive the forecast from the trace itself: freeze the history at
    // the decision instant and re-run Algorithm 4 on it.
    let replay =
        timetravel::replay_as_of(records, db, decision.at, config).map_err(|e| e.to_string())?;
    let replayed = replay.prediction.as_ref().map(|p| p.start);
    match (e.predicted, replayed) {
        (Some(recorded), Some(rep)) if recorded == rep => {
            println!(
                "replay:     time-travel replay at {} reproduces the recorded forecast ({rep})",
                decision.at
            );
        }
        (None, None) => {
            println!(
                "replay:     time-travel replay at {} agrees: no prediction",
                decision.at
            );
        }
        (recorded, _) => {
            println!(
                "replay:     time-travel replay differs (recorded {}, replayed {}) — \
                 check the policy knobs match the run",
                match recorded {
                    Some(t) => t.to_string(),
                    None => "none".into(),
                },
                match replayed {
                    Some(t) => t.to_string(),
                    None => "none".into(),
                }
            );
        }
    }
    Ok(())
}

fn parse_count(arg: Option<&String>, default: usize) -> Result<usize, String> {
    match arg {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad count {s:?}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let [path, command, rest @ ..] = args else {
        return Err(USAGE.into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let records = prorp_obs::parse_trace_jsonl(&text).map_err(|e| e.to_string())?;
    let json = rest.iter().any(|a| a == "--json");
    match command.as_str() {
        "summary" => print_summary(&records, json),
        "timeline" => {
            let Some(db) = rest.first() else {
                return Err("timeline needs a numeric database id".into());
            };
            let db: u64 = db
                .trim_start_matches("db-")
                .parse()
                .map_err(|_| format!("bad database id {db:?}"))?;
            let limit = parse_count(rest.get(1), usize::MAX)?;
            print_timeline(&records, DatabaseId(db), limit);
        }
        "slowest-stages" => print_slowest(&records, parse_count(rest.first(), 10)?),
        "breaker" => print_breaker(&records, json),
        "qos-misses" => print_qos_misses(&records, parse_count(rest.first(), usize::MAX)?),
        "why" => {
            let [db, t, overrides @ ..] = rest else {
                return Err("why needs a database id and a timestamp".into());
            };
            let db: u64 = db
                .trim_start_matches("db-")
                .parse()
                .map_err(|_| format!("bad database id {db:?}"))?;
            let at: i64 = t.parse().map_err(|_| format!("bad timestamp {t:?}"))?;
            let config = parse_policy(overrides)?;
            print_why(&records, DatabaseId(db), Timestamp(at), config)?;
        }
        "time-travel" => {
            let [db, t, overrides @ ..] = rest else {
                return Err("time-travel needs a database id and a timestamp".into());
            };
            let db: u64 = db
                .trim_start_matches("db-")
                .parse()
                .map_err(|_| format!("bad database id {db:?}"))?;
            let at: i64 = t.parse().map_err(|_| format!("bad timestamp {t:?}"))?;
            let config = parse_policy(overrides)?;
            let report = timetravel::replay_as_of(&records, DatabaseId(db), Timestamp(at), config)
                .map_err(|e| e.to_string())?;
            print_time_travel(&report);
        }
        other => return Err(format!("unknown command {other:?}\n{USAGE}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
