//! Deterministic runtime observability for the ProRP reproduction.
//!
//! The simulator's original instrumentation was purely *offline*: KPIs
//! aggregated into a `SimReport` after the run.  This crate adds the
//! *online* substrate a production control plane needs — per-database
//! span traces and a live metrics registry — while keeping the
//! reproduction's core promise: **bit-identical output for identical
//! `(seed, config)` at any shard count**.
//!
//! Three rules make that work:
//!
//! 1. **Simulated clocks only.**  Spans and snapshots are stamped with
//!    simulated timestamps; wall-clock readings are allowed only in
//!    metrics prefixed `sim_self_*`, which every determinism surface
//!    filters out (see [`is_volatile`]).
//! 2. **Canonical merge order.**  Trace records carry a per-database
//!    sequence number; the merged trace is sorted by
//!    `(start, database, seq)`.  Each database lives on exactly one
//!    shard, so the result is independent of the shard layout — the same
//!    discipline `TelemetryLog::merge` uses for telemetry.
//! 3. **Snapshots before events.**  Mid-run metrics snapshots are taken
//!    *before* any simulation event at the same instant, so a snapshot at
//!    `T` covers exactly the events strictly before `T` on every shard.
//!
//! The pieces:
//!
//! * [`span`] — the [`TraceSink`] trait, the [`SpanKind`] taxonomy
//!   (lifecycle transitions per Algorithm 1, staged resume workflows per
//!   Algorithm 5, predictor invocations per Algorithm 4, B-tree
//!   checkpoint/recover), and the deterministic [`TraceBuffer`];
//! * [`metrics`] — [`Counter`]/[`Gauge`]/[`Histogram`] handles, the
//!   [`MetricsRegistry`], and mergeable [`MetricsSnapshot`]s;
//! * [`sketch`] — the deterministic mergeable [`QuantileSketch`]
//!   (log-linear integer buckets; shard merges are exact bucket-count
//!   sums, so fleet percentiles are bit-identical at any shard count);
//! * [`slo`] — per-region [`SloSeries`] rollups, derived [`SloRow`]s,
//!   and multi-window burn-rate [`evaluate_alerts`];
//! * [`config`] — the [`ObsConfig`] knob carried by `SimConfig`;
//! * [`report`] — the merged [`ObsReport`] attached to a `SimReport`;
//! * [`export`] — JSONL and Prometheus text exporters plus the JSONL
//!   parser the CLI uses;
//! * [`json`] — the hand-rolled [`JsonValue`] builder shared by
//!   `prorp-trace --json` and the experiment binaries;
//! * [`query`] — operator queries (timelines, slowest stages, breaker
//!   episodes, QoS-miss attribution, decision provenance) backing the
//!   `prorp-trace` binary;
//! * [`timetravel`] — trace-driven time travel: replay a database's
//!   Login spans into an LSM history, freeze a
//!   [`snapshot_as_of(T)`](prorp_storage::TimeTravel::snapshot_as_of),
//!   and re-run Algorithm 4 exactly as the engine saw it
//!   (the `prorp-trace time-travel` subcommand).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod export;
pub mod json;
pub mod metrics;
pub mod query;
pub mod report;
pub mod sketch;
pub mod slo;
pub mod span;
pub mod timetravel;

pub use config::ObsConfig;
pub use export::{
    alerts_jsonl, parse_trace_jsonl, prometheus_text, record_json, slo_jsonl, snapshots_jsonl,
    trace_jsonl,
};
pub use json::JsonValue;
pub use metrics::{
    is_volatile, Counter, Gauge, Histogram, MetricEntry, MetricValue, MetricsRegistry,
    MetricsSnapshot, Sketch, HISTOGRAM_BUCKETS,
};
pub use query::{
    breaker_episodes, decisions, qos_misses, slowest_stages, summary, timeline, why,
    BreakerEpisode, Decision, QosMiss, QosMissCause, StageLatency, TraceSummary,
};
pub use report::ObsReport;
pub use sketch::QuantileSketch;
pub use slo::{
    evaluate_alerts, Alert, AlertKind, SloConfig, SloRow, SloSeries, SloWindowStats, PPM,
};
pub use span::{
    BreakerTransition, DecisionAction, DecisionExplain, NullSink, PredictOutcome, SpanKind,
    StageResult, TraceBuffer, TraceRecord, TraceSink, WorkflowOutcome,
};
pub use timetravel::{replay_as_of, TimeTravelReport};
