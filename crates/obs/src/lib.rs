//! Deterministic runtime observability for the ProRP reproduction.
//!
//! The simulator's original instrumentation was purely *offline*: KPIs
//! aggregated into a `SimReport` after the run.  This crate adds the
//! *online* substrate a production control plane needs — per-database
//! span traces and a live metrics registry — while keeping the
//! reproduction's core promise: **bit-identical output for identical
//! `(seed, config)` at any shard count**.
//!
//! Three rules make that work:
//!
//! 1. **Simulated clocks only.**  Spans and snapshots are stamped with
//!    simulated timestamps; wall-clock readings are allowed only in
//!    metrics prefixed `sim_self_*`, which every determinism surface
//!    filters out (see [`is_volatile`]).
//! 2. **Canonical merge order.**  Trace records carry a per-database
//!    sequence number; the merged trace is sorted by
//!    `(start, database, seq)`.  Each database lives on exactly one
//!    shard, so the result is independent of the shard layout — the same
//!    discipline `TelemetryLog::merge` uses for telemetry.
//! 3. **Snapshots before events.**  Mid-run metrics snapshots are taken
//!    *before* any simulation event at the same instant, so a snapshot at
//!    `T` covers exactly the events strictly before `T` on every shard.
//!
//! The pieces:
//!
//! * [`span`] — the [`TraceSink`] trait, the [`SpanKind`] taxonomy
//!   (lifecycle transitions per Algorithm 1, staged resume workflows per
//!   Algorithm 5, predictor invocations per Algorithm 4, B-tree
//!   checkpoint/recover), and the deterministic [`TraceBuffer`];
//! * [`metrics`] — [`Counter`]/[`Gauge`]/[`Histogram`] handles, the
//!   [`MetricsRegistry`], and mergeable [`MetricsSnapshot`]s;
//! * [`config`] — the [`ObsConfig`] knob carried by `SimConfig`;
//! * [`report`] — the merged [`ObsReport`] attached to a `SimReport`;
//! * [`export`] — JSONL and Prometheus text exporters plus the JSONL
//!   parser the CLI uses;
//! * [`query`] — operator queries (timelines, slowest stages, breaker
//!   episodes, QoS-miss attribution) backing the `prorp-trace` binary;
//! * [`timetravel`] — trace-driven time travel: replay a database's
//!   Login spans into an LSM history, freeze a
//!   [`snapshot_as_of(T)`](prorp_storage::TimeTravel::snapshot_as_of),
//!   and re-run Algorithm 4 exactly as the engine saw it
//!   (the `prorp-trace time-travel` subcommand).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod export;
pub mod metrics;
pub mod query;
pub mod report;
pub mod span;
pub mod timetravel;

pub use config::ObsConfig;
pub use export::{parse_trace_jsonl, prometheus_text, record_json, snapshots_jsonl, trace_jsonl};
pub use metrics::{
    is_volatile, Counter, Gauge, Histogram, MetricEntry, MetricValue, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use query::{
    breaker_episodes, qos_misses, slowest_stages, summary, timeline, BreakerEpisode, QosMiss,
    QosMissCause, StageLatency, TraceSummary,
};
pub use report::ObsReport;
pub use span::{
    BreakerTransition, NullSink, PredictOutcome, SpanKind, StageResult, TraceBuffer, TraceRecord,
    TraceSink, WorkflowOutcome,
};
pub use timetravel::{replay_as_of, TimeTravelReport};
