//! Per-region SLO rollups and multi-window burn-rate alerting.
//!
//! The paper judges policies by fleet-wide aggregates; operating the
//! fleet needs the layer the paper assumes — per-region availability and
//! resume-latency percentiles per time window, plus alerts when the
//! error budget burns too fast.  This module keeps that layer inside the
//! reproduction's determinism contract:
//!
//! * **Rollups, never logs.**  Each shard folds its events into an
//!   [`SloSeries`] — integer counters plus a [`QuantileSketch`] per
//!   `(region, window)` — so memory scales with `regions × windows`,
//!   not with the event count.  At a million databases the per-event
//!   log is never materialised.
//! * **Integer merges.**  Series merge by elementwise sums (and sketch
//!   bucket sums), so the fleet series is bit-identical at any shard
//!   count, and identical between the DES and the live driver.
//! * **Derived alerts.**  [`evaluate_alerts`] is a pure function of the
//!   merged series and the [`SloConfig`], evaluated after the merge —
//!   two runs with equal series produce equal alert logs by
//!   construction.
//!
//! Regions are a deterministic partition of the id space
//! (`db.raw() % regions`): stable across shard layouts, which is what
//! the bit-identity contract needs.  A production deployment would key
//! on real placement metadata carried by the same rollup path.
//!
//! The alert rule is the classic multi-window burn rate: a fast window
//! (one rollup window) and a slow window (`slow_windows` trailing rollup
//! windows) must *both* exceed their burn-rate multiple of the
//! objective.  The fast window makes the alert responsive during a
//! resume storm; the slow window keeps one noisy window from paging.

use crate::sketch::QuantileSketch;
use prorp_types::{DatabaseId, ProrpError, Result, Seconds, Timestamp};
use std::collections::BTreeMap;

/// Parts-per-million denominator used by every ratio in this module.
pub const PPM: u64 = 1_000_000;

/// SLO rollup and alerting knobs, carried inside `ObsConfig`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SloConfig {
    /// Rollup window length in simulated time.
    pub window: Seconds,
    /// Number of deterministic region partitions (`db.raw() % regions`).
    pub regions: u16,
    /// Slow burn window, as a count of trailing rollup windows (the fast
    /// window is always one rollup window) — the 5m/1h fast+slow pairing
    /// scaled to simulated time.
    pub slow_windows: u32,
    /// The SLO objective: allowed QoS-miss ratio in parts-per-million
    /// (e.g. `10_000` = 1 % of logins may miss).
    pub objective_ppm: u32,
    /// Fast-window burn-rate multiple of the objective.
    pub fast_burn: u32,
    /// Slow-window burn-rate multiple of the objective.
    pub slow_burn: u32,
    /// Breaker-storm threshold: a region-window with at least this many
    /// breaker opens raises a [`AlertKind::BreakerStorm`] alert.
    pub breaker_storm_opens: u32,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window: Seconds::hours(1),
            regions: 4,
            slow_windows: 12,
            objective_ppm: 10_000,
            fast_burn: 14,
            slow_burn: 6,
            breaker_storm_opens: 10,
        }
    }
}

impl SloConfig {
    /// Validate the knobs.
    ///
    /// # Errors
    ///
    /// Rejects non-positive windows, zero regions, zero burn multiples,
    /// an empty slow window, and an objective above 100 %.
    pub fn check(&self) -> Result<()> {
        if self.window <= Seconds::ZERO {
            return Err(ProrpError::InvalidConfig(format!(
                "slo window must be positive, got {}s",
                self.window.as_secs()
            )));
        }
        if self.regions == 0 {
            return Err(ProrpError::InvalidConfig(
                "slo needs at least one region".into(),
            ));
        }
        if self.slow_windows == 0 {
            return Err(ProrpError::InvalidConfig(
                "slo slow window must cover at least one rollup window".into(),
            ));
        }
        if self.fast_burn == 0 || self.slow_burn == 0 {
            return Err(ProrpError::InvalidConfig(
                "slo burn-rate multiples must be positive".into(),
            ));
        }
        if u64::from(self.objective_ppm) > PPM {
            return Err(ProrpError::InvalidConfig(format!(
                "slo objective {} ppm exceeds 100%",
                self.objective_ppm
            )));
        }
        Ok(())
    }

    /// The deterministic region of one database.
    pub fn region_of(&self, db: DatabaseId) -> u16 {
        (db.raw() % u64::from(self.regions)) as u16
    }

    /// The rollup window index containing `at`.
    pub fn window_of(&self, at: Timestamp) -> i64 {
        at.as_secs().div_euclid(self.window.as_secs())
    }
}

/// Integer aggregates of one `(region, window)` cell.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SloWindowStats {
    /// Logins that arrived in the window.
    pub logins: u64,
    /// Logins that found their database unavailable (QoS misses).
    pub misses: u64,
    /// Proactive resumes scheduled in the window.
    pub proactive_resumes: u64,
    /// Predictor circuit-breaker opens in the window.
    pub breaker_opens: u64,
    /// Resume latency (staged-workflow duration) sketch.
    pub resume_latency: QuantileSketch,
}

impl SloWindowStats {
    fn merge_from(&mut self, other: &SloWindowStats) {
        self.logins += other.logins;
        self.misses += other.misses;
        self.proactive_resumes += other.proactive_resumes;
        self.breaker_opens += other.breaker_opens;
        self.resume_latency.merge_from(&other.resume_latency);
    }
}

/// The windowed per-region rollup series of one run (or one shard of a
/// run, before merging).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SloSeries {
    /// The knobs the series was rolled up under.
    pub config: SloConfig,
    /// Sparse `(region, window index) → stats` cells.
    pub windows: BTreeMap<(u16, i64), SloWindowStats>,
}

impl SloSeries {
    /// An empty series under `config`.
    pub fn new(config: SloConfig) -> Self {
        SloSeries {
            config,
            windows: BTreeMap::new(),
        }
    }

    fn cell(&mut self, db: DatabaseId, at: Timestamp) -> &mut SloWindowStats {
        let key = (self.config.region_of(db), self.config.window_of(at));
        self.windows.entry(key).or_default()
    }

    /// Fold one login into the rollup.
    pub fn on_login(&mut self, at: Timestamp, db: DatabaseId, available: bool) {
        let cell = self.cell(db, at);
        cell.logins += 1;
        if !available {
            cell.misses += 1;
        }
    }

    /// Fold one scheduled proactive resume into the rollup.
    pub fn on_proactive_resume(&mut self, at: Timestamp, db: DatabaseId) {
        self.cell(db, at).proactive_resumes += 1;
    }

    /// Fold one breaker open into the rollup.
    pub fn on_breaker_open(&mut self, at: Timestamp, db: DatabaseId) {
        self.cell(db, at).breaker_opens += 1;
    }

    /// Fold one completed resume workflow (its total duration in
    /// simulated seconds) into the rollup, attributed to the window the
    /// workflow *completed* in.
    pub fn on_resume_completed(&mut self, at: Timestamp, db: DatabaseId, duration: Seconds) {
        self.cell(db, at).resume_latency.observe(duration.as_secs());
    }

    /// Merge per-shard series into the fleet series (elementwise integer
    /// sums; bit-identical at any shard count).
    ///
    /// # Errors
    ///
    /// Fails when the shards rolled up under different configs.
    pub fn merge(parts: Vec<SloSeries>) -> Result<Option<SloSeries>> {
        let mut parts = parts.into_iter();
        let Some(mut merged) = parts.next() else {
            return Ok(None);
        };
        for part in parts {
            if part.config != merged.config {
                return Err(ProrpError::Observability(
                    "slo configs differ across shards".into(),
                ));
            }
            for (key, stats) in &part.windows {
                merged.windows.entry(*key).or_default().merge_from(stats);
            }
        }
        Ok(Some(merged))
    }

    /// The derived per-window rows, in `(window, region)` order.
    pub fn rows(&self) -> Vec<SloRow> {
        let mut rows: Vec<SloRow> = self
            .windows
            .iter()
            .map(|((region, window), stats)| {
                let miss_ppm = ratio_ppm(stats.misses, stats.logins);
                SloRow {
                    region: *region,
                    window: *window,
                    window_start: Timestamp(window * self.config.window.as_secs()),
                    logins: stats.logins,
                    misses: stats.misses,
                    availability_ppm: PPM - miss_ppm,
                    miss_ppm,
                    resume_p50: stats.resume_latency.quantile(50, 100),
                    resume_p95: stats.resume_latency.quantile(95, 100),
                    resume_p99: stats.resume_latency.quantile(99, 100),
                    resumes: stats.resume_latency.count(),
                    proactive_resumes: stats.proactive_resumes,
                    breaker_opens: stats.breaker_opens,
                }
            })
            .collect();
        rows.sort_by_key(|r| (r.window, r.region));
        rows
    }
}

/// `num/den` in parts-per-million (0 when `den == 0`).
fn ratio_ppm(num: u64, den: u64) -> u64 {
    num.saturating_mul(PPM).checked_div(den).unwrap_or(0)
}

/// One derived `(region, window)` SLO row: the operator-facing surface
/// of the rollup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SloRow {
    /// The region.
    pub region: u16,
    /// The rollup window index.
    pub window: i64,
    /// Simulated start of the window.
    pub window_start: Timestamp,
    /// Logins in the window.
    pub logins: u64,
    /// QoS misses in the window.
    pub misses: u64,
    /// Availability in parts-per-million (`PPM` when no logins arrived).
    pub availability_ppm: u64,
    /// Miss ratio in parts-per-million.
    pub miss_ppm: u64,
    /// p50 resume latency in seconds (`None` with no completed resumes).
    pub resume_p50: Option<u64>,
    /// p95 resume latency in seconds.
    pub resume_p95: Option<u64>,
    /// p99 resume latency in seconds.
    pub resume_p99: Option<u64>,
    /// Completed resume workflows in the window.
    pub resumes: u64,
    /// Proactive resumes scheduled in the window.
    pub proactive_resumes: u64,
    /// Breaker opens in the window.
    pub breaker_opens: u64,
}

/// Why an alert fired.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum AlertKind {
    /// Fast *and* slow QoS-miss ratios exceeded their burn-rate
    /// multiples of the objective.
    QosBurnRate,
    /// Breaker opens in one region-window reached the storm threshold.
    BreakerStorm,
}

impl AlertKind {
    /// Stable lowercase label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            AlertKind::QosBurnRate => "qos-burn-rate",
            AlertKind::BreakerStorm => "breaker-storm",
        }
    }
}

/// One deterministic alert record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Alert {
    /// The region the alert fired for.
    pub region: u16,
    /// The rollup window index the alert fired in.
    pub window: i64,
    /// Simulated start of the firing window.
    pub at: Timestamp,
    /// The rule that fired.
    pub kind: AlertKind,
    /// Fast-window miss ratio (ppm); breaker opens for a breaker storm.
    pub fast_ppm: u64,
    /// Slow-window miss ratio (ppm); 0 for a breaker storm.
    pub slow_ppm: u64,
    /// The threshold the fast window exceeded (ppm, or opens).
    pub threshold: u64,
}

/// Evaluate the multi-window burn-rate rules over a merged series.
///
/// Pure and deterministic: equal series and configs produce equal alert
/// logs, so the DES and the live driver agree bit for bit.  Alerts sort
/// by `(window, region, kind)`.
pub fn evaluate_alerts(series: &SloSeries) -> Vec<Alert> {
    let cfg = &series.config;
    let mut alerts = Vec::new();
    // Trailing sums need the per-region window history in order.
    let mut per_region: BTreeMap<u16, Vec<(i64, u64, u64)>> = BTreeMap::new();
    for ((region, window), stats) in &series.windows {
        per_region
            .entry(*region)
            .or_default()
            .push((*window, stats.logins, stats.misses));
    }
    for ((region, window), stats) in &series.windows {
        // Fast window: this rollup window alone.
        let fast_ppm = ratio_ppm(stats.misses, stats.logins);
        let fast_threshold = u64::from(cfg.fast_burn) * u64::from(cfg.objective_ppm);
        // Slow window: the trailing `slow_windows` rollup windows
        // (absent windows contribute zero — no traffic, no burn).
        let lo = window - i64::from(cfg.slow_windows) + 1;
        let (mut slow_logins, mut slow_misses) = (0u64, 0u64);
        for &(w, logins, misses) in &per_region[region] {
            if w >= lo && w <= *window {
                slow_logins += logins;
                slow_misses += misses;
            }
        }
        let slow_ppm = ratio_ppm(slow_misses, slow_logins);
        let slow_threshold = u64::from(cfg.slow_burn) * u64::from(cfg.objective_ppm);
        if stats.logins > 0 && fast_ppm >= fast_threshold && slow_ppm >= slow_threshold {
            alerts.push(Alert {
                region: *region,
                window: *window,
                at: Timestamp(window * cfg.window.as_secs()),
                kind: AlertKind::QosBurnRate,
                fast_ppm,
                slow_ppm,
                threshold: fast_threshold,
            });
        }
        if stats.breaker_opens >= u64::from(cfg.breaker_storm_opens) {
            alerts.push(Alert {
                region: *region,
                window: *window,
                at: Timestamp(window * cfg.window.as_secs()),
                kind: AlertKind::BreakerStorm,
                fast_ppm: stats.breaker_opens,
                slow_ppm: 0,
                threshold: u64::from(cfg.breaker_storm_opens),
            });
        }
    }
    alerts.sort_by_key(|a| (a.window, a.region, a.kind));
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            window: Seconds(100),
            regions: 2,
            slow_windows: 3,
            objective_ppm: 10_000, // 1%
            fast_burn: 10,         // fast fires at ≥ 10%
            slow_burn: 2,          // slow fires at ≥ 2%
            breaker_storm_opens: 2,
        }
    }

    #[test]
    fn config_check_rejects_bad_knobs() {
        assert!(SloConfig::default().check().is_ok());
        let mut bad = cfg();
        bad.window = Seconds::ZERO;
        assert!(bad.check().is_err());
        let mut bad = cfg();
        bad.regions = 0;
        assert!(bad.check().is_err());
        let mut bad = cfg();
        bad.slow_windows = 0;
        assert!(bad.check().is_err());
        let mut bad = cfg();
        bad.fast_burn = 0;
        assert!(bad.check().is_err());
        let mut bad = cfg();
        bad.objective_ppm = 2_000_000;
        assert!(bad.check().is_err());
    }

    #[test]
    fn rollup_rows_derive_ratios_and_quantiles() {
        let mut s = SloSeries::new(cfg());
        // Region 0 = even ids, region 1 = odd ids.
        s.on_login(Timestamp(10), DatabaseId(0), true);
        s.on_login(Timestamp(20), DatabaseId(2), false);
        s.on_login(Timestamp(150), DatabaseId(1), true);
        s.on_resume_completed(Timestamp(30), DatabaseId(0), Seconds(40));
        s.on_proactive_resume(Timestamp(40), DatabaseId(0));
        s.on_breaker_open(Timestamp(50), DatabaseId(0));
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        let r0 = &rows[0];
        assert_eq!((r0.region, r0.window), (0, 0));
        assert_eq!(r0.logins, 2);
        assert_eq!(r0.misses, 1);
        assert_eq!(r0.miss_ppm, PPM / 2);
        assert_eq!(r0.availability_ppm, PPM / 2);
        assert_eq!(r0.resumes, 1);
        assert!(r0.resume_p50.is_some());
        assert_eq!(r0.proactive_resumes, 1);
        assert_eq!(r0.breaker_opens, 1);
        let r1 = &rows[1];
        assert_eq!((r1.region, r1.window), (1, 1));
        assert_eq!(r1.window_start, Timestamp(100));
        assert_eq!(r1.miss_ppm, 0);
        assert_eq!(r1.resume_p50, None);
    }

    #[test]
    fn merge_is_shard_layout_invariant() {
        let events: Vec<(i64, u64, bool)> = (0..40)
            .map(|i| (i * 37 % 350, (i % 7) as u64, i % 5 == 0))
            .collect();
        let whole = {
            let mut s = SloSeries::new(cfg());
            for &(at, db, miss) in &events {
                s.on_login(Timestamp(at), DatabaseId(db), !miss);
            }
            s
        };
        for shards in [1u64, 2, 8] {
            let parts: Vec<SloSeries> = (0..shards)
                .map(|shard| {
                    let mut s = SloSeries::new(cfg());
                    for &(at, db, miss) in &events {
                        if db % shards == shard {
                            s.on_login(Timestamp(at), DatabaseId(db), !miss);
                        }
                    }
                    s
                })
                .collect();
            let merged = SloSeries::merge(parts).unwrap().unwrap();
            assert_eq!(merged, whole, "{shards} shards");
            assert_eq!(evaluate_alerts(&merged), evaluate_alerts(&whole));
        }
    }

    #[test]
    fn merge_rejects_mismatched_configs() {
        let a = SloSeries::new(cfg());
        let mut other = cfg();
        other.regions = 3;
        let b = SloSeries::new(other);
        assert!(SloSeries::merge(vec![a, b]).is_err());
        assert_eq!(SloSeries::merge(Vec::new()).unwrap(), None);
    }

    #[test]
    fn burn_rate_needs_fast_and_slow_windows() {
        let mut s = SloSeries::new(cfg());
        // Window 0: clean traffic in region 0.
        for i in 0..100 {
            s.on_login(Timestamp(i % 100), DatabaseId(0), true);
        }
        // Window 1: a storm — 50% of logins miss.
        for i in 0..40 {
            s.on_login(Timestamp(100 + i % 100), DatabaseId(0), i % 2 == 0);
        }
        let alerts = evaluate_alerts(&s);
        // Fast window 1 is at 500_000 ppm ≥ 100_000 (fast), and the slow
        // window (140 logins, 20 misses ≈ 142_857 ppm) ≥ 20_000 (slow).
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::QosBurnRate);
        assert_eq!(alerts[0].region, 0);
        assert_eq!(alerts[0].window, 1);
        assert_eq!(alerts[0].at, Timestamp(100));
        assert_eq!(alerts[0].fast_ppm, 500_000);

        // A lone miss in otherwise clean traffic trips the fast window
        // (1/1 = 100%) but the slow window absorbs it: no alert.
        let mut quiet = SloSeries::new(cfg());
        for i in 0..100 {
            quiet.on_login(Timestamp(i % 100), DatabaseId(0), true);
        }
        quiet.on_login(Timestamp(150), DatabaseId(0), false);
        assert!(evaluate_alerts(&quiet).is_empty());
    }

    #[test]
    fn breaker_storms_alert_per_window() {
        let mut s = SloSeries::new(cfg());
        s.on_breaker_open(Timestamp(10), DatabaseId(0));
        assert!(evaluate_alerts(&s).is_empty(), "below the storm threshold");
        s.on_breaker_open(Timestamp(20), DatabaseId(2));
        let alerts = evaluate_alerts(&s);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::BreakerStorm);
        assert_eq!(alerts[0].fast_ppm, 2);
        assert_eq!(alerts[0].threshold, 2);
    }
}
