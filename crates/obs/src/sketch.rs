//! A deterministic, mergeable quantile sketch.
//!
//! DDSketch-style relative-error buckets with a *fixed* gamma: values are
//! binned log-linearly — one octave per power of two, each octave split
//! into [`SKETCH_SUBBUCKETS`] equal sub-buckets (γ = 2^(1/16), so a
//! reported quantile sits within one sub-bucket, < 6.25 % relative
//! error, of the true value).  Bucket indices and counts are integers
//! only, bucketing uses `leading_zeros` and shifts (no floats anywhere),
//! and merging is an elementwise count sum — so per-shard sketches merge
//! into a fleet sketch that is **bit-identical at any shard count**, the
//! same discipline the rest of the observability layer follows.
//!
//! The sketch is sparse: a `BTreeMap` from bucket index to count, which
//! keeps per-(region, window) rollup sketches cheap at million-database
//! scale where most windows see a handful of distinct magnitudes.

use std::collections::BTreeMap;

/// Sub-buckets per power-of-two octave.  16 sub-buckets give a worst-case
/// relative error of 1/16 ≈ 6.25 % when quantiles report the bucket's
/// lower bound.
pub const SKETCH_SUBBUCKETS: u64 = 16;

const SUB_BITS: u32 = 4; // log2(SKETCH_SUBBUCKETS)

/// A mergeable log-linear quantile sketch over non-negative integers
/// (typically seconds of simulated time).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct QuantileSketch {
    /// Sparse per-bucket counts, keyed by bucket index.
    buckets: BTreeMap<u16, u64>,
    /// Total observations.
    count: u64,
    /// Sum of all (clamped) observations.
    sum: i64,
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index of one value.  Bucket 0 holds zero (and clamped
    /// negative) values; bucket `1 + 16k + s` holds values in the `s`-th
    /// sixteenth of the octave `[2^k, 2^(k+1))`.
    pub fn bucket_of(value: i64) -> u16 {
        let v = value.max(0) as u64;
        if v == 0 {
            return 0;
        }
        let k = 63 - v.leading_zeros() as u64; // floor(log2 v)
        let sub = ((v - (1 << k)) << SUB_BITS) >> k;
        (1 + SKETCH_SUBBUCKETS * k + sub) as u16
    }

    /// The smallest value that lands in `bucket` — the deterministic
    /// representative a quantile query reports.
    pub fn bucket_lower_bound(bucket: u16) -> u64 {
        if bucket == 0 {
            return 0;
        }
        let i = (bucket - 1) as u64;
        let k = i / SKETCH_SUBBUCKETS;
        let sub = i % SKETCH_SUBBUCKETS;
        (1u64 << k) + ((sub << k) >> SUB_BITS)
    }

    /// Record one observation (negative values clamp to zero).
    pub fn observe(&mut self, value: i64) {
        let clamped = value.max(0);
        *self.buckets.entry(Self::bucket_of(clamped)).or_insert(0) += 1;
        self.count += 1;
        self.sum += clamped;
    }

    /// Fold another sketch into this one by elementwise count sums.
    /// Associative and commutative, so shard merges are layout-invariant.
    pub fn merge_from(&mut self, other: &QuantileSketch) {
        for (bucket, n) in &other.buckets {
            *self.buckets.entry(*bucket).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> i64 {
        self.sum
    }

    /// `true` when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The value at quantile `num/den` (e.g. `quantile(95, 100)` for
    /// p95), as the lower bound of the bucket holding that rank.  `None`
    /// on an empty sketch.  Pure integer arithmetic: the reported value
    /// is a deterministic function of the bucket counts alone.
    pub fn quantile(&self, num: u64, den: u64) -> Option<u64> {
        if self.count == 0 || den == 0 {
            return None;
        }
        // rank = ceil(q * count), clamped into [1, count].
        let rank = ((num.saturating_mul(self.count)).div_ceil(den)).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (bucket, n) in &self.buckets {
            cumulative += n;
            if cumulative >= rank {
                return Some(Self::bucket_lower_bound(*bucket));
            }
        }
        None // unreachable: cumulative ends at self.count >= rank
    }

    /// The non-empty `(bucket index, count)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, u64)> + '_ {
        self.buckets.iter().map(|(b, n)| (*b, *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log_linear_and_inverse_consistent() {
        assert_eq!(QuantileSketch::bucket_of(0), 0);
        assert_eq!(QuantileSketch::bucket_of(-7), 0);
        assert_eq!(QuantileSketch::bucket_of(1), 1);
        // Every value is at or above its bucket's lower bound, bucketing
        // is monotone, and the lower bound maps back to the same bucket.
        let mut prev_bucket = 0u16;
        for v in [1i64, 2, 3, 15, 16, 17, 100, 1023, 1024, 1 << 40] {
            let b = QuantileSketch::bucket_of(v);
            let lo = QuantileSketch::bucket_lower_bound(b);
            assert!(lo <= v as u64, "{v}");
            assert_eq!(QuantileSketch::bucket_of(lo as i64), b, "{v}");
            assert!(b >= prev_bucket, "monotone at {v}");
            prev_bucket = b;
        }
        // From 2^4 up each octave has at least one integer per sub-bucket,
        // so the next bucket's lower bound is strictly above the value.
        for v in [16i64, 17, 100, 1023, 1024, 1 << 40] {
            let b = QuantileSketch::bucket_of(v);
            assert!(
                QuantileSketch::bucket_lower_bound(b + 1) > v as u64,
                "{v} bucket {b}"
            );
        }
        // Relative error of the lower bound stays under one sub-bucket.
        for v in [100i64, 1000, 86_400, 1 << 30] {
            let rep = QuantileSketch::bucket_lower_bound(QuantileSketch::bucket_of(v)) as f64;
            let err = (v as f64 - rep) / v as f64;
            assert!(err < 1.0 / SKETCH_SUBBUCKETS as f64, "{v}: {err}");
        }
    }

    #[test]
    fn quantiles_walk_cumulative_counts() {
        let mut s = QuantileSketch::new();
        assert_eq!(s.quantile(50, 100), None);
        for v in 1..=100 {
            s.observe(v);
        }
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 5050);
        let p50 = s.quantile(50, 100).unwrap();
        let p99 = s.quantile(99, 100).unwrap();
        assert!((47..=50).contains(&p50), "p50 = {p50}");
        assert!((93..=99).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        // q=0 clamps to rank 1 (the minimum's bucket), q=1 to the max.
        assert_eq!(s.quantile(0, 100), Some(1));
        assert_eq!(
            s.quantile(100, 100).unwrap(),
            QuantileSketch::bucket_lower_bound(QuantileSketch::bucket_of(100))
        );
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let sketch_of = |values: &[i64]| {
            let mut s = QuantileSketch::new();
            for &v in values {
                s.observe(v);
            }
            s
        };
        let a = sketch_of(&[1, 5, 9000]);
        let b = sketch_of(&[0, 0, 77]);
        let c = sketch_of(&[123_456]);

        let mut ab_c = a.clone();
        ab_c.merge_from(&b);
        ab_c.merge_from(&c);

        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut a_bc = a.clone();
        a_bc.merge_from(&bc);
        assert_eq!(ab_c, a_bc, "associative");

        let mut ba = b.clone();
        ba.merge_from(&a);
        let mut ab = a.clone();
        ab.merge_from(&b);
        assert_eq!(ab, ba, "commutative");

        assert_eq!(ab_c, sketch_of(&[1, 5, 9000, 0, 0, 77, 123_456]));
    }
}
