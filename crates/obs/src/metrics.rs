//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! Handles are cheap `Rc` clones over shard-local cells — each simulation
//! shard owns one [`MetricsRegistry`] and runs single-threaded, so no
//! atomics are needed and registration/update cost is a pointer chase.
//! Snapshots taken at the same *simulated* instant on every shard merge
//! into one fleet-wide snapshot by elementwise integer sums, the same
//! discipline `TelemetryLog::merge` uses.
//!
//! Two metric families exist, distinguished by name prefix:
//!
//! * `prorp_*` — **deterministic**: pure functions of the simulated event
//!   stream, bit-identical at any shard count;
//! * `sim_self_*` — **volatile**: self-observations of the simulator
//!   process (wall-clock micros, per-shard scan counts).  Included in the
//!   Prometheus export for operators but excluded from the JSONL export
//!   and from every determinism assertion — see [`is_volatile`].

use crate::sketch::QuantileSketch;
use prorp_types::{ProrpError, Timestamp};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Number of histogram buckets; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`, bucket 0 holds zero (and negative) values, and the
/// last bucket absorbs everything above — the same layout as the
/// telemetry crate's `LatencyHistogram`.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A monotonically-increasing counter handle.
#[derive(Clone, Default, Debug)]
pub struct Counter(Rc<Cell<u64>>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A gauge handle: a signed value that can move both ways.
#[derive(Clone, Default, Debug)]
pub struct Gauge(Rc<Cell<i64>>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.get()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
struct HistogramData {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: i64,
}

/// A fixed-bucket power-of-two histogram handle (integer observations,
/// typically seconds of simulated time).
#[derive(Clone, Default, Debug)]
pub struct Histogram(Rc<RefCell<HistogramData>>);

impl Histogram {
    fn bucket_of(value: i64) -> usize {
        let v = value.max(0) as u64;
        if v == 0 {
            return 0;
        }
        let idx = 64 - v.leading_zeros() as usize; // floor(log2) + 1
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Record one observation (negative values clamp to zero).
    #[inline]
    pub fn observe(&self, value: i64) {
        let clamped = value.max(0);
        let mut data = self.0.borrow_mut();
        data.buckets[Self::bucket_of(clamped)] += 1;
        data.count += 1;
        data.sum += clamped;
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.borrow().count
    }
}

/// A mergeable quantile-sketch handle (log-linear relative-error
/// buckets; see [`QuantileSketch`]).
#[derive(Clone, Default, Debug)]
pub struct Sketch(Rc<RefCell<QuantileSketch>>);

impl Sketch {
    /// Record one observation (negative values clamp to zero).
    #[inline]
    pub fn observe(&self, value: i64) {
        self.0.borrow_mut().observe(value);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.0.borrow().count()
    }
}

/// The value of one metric at snapshot time.
///
/// Not `Copy`: sketch readings carry their sparse bucket list.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram reading.
    Histogram {
        /// Per-bucket counts (see [`HISTOGRAM_BUCKETS`]).
        buckets: [u64; HISTOGRAM_BUCKETS],
        /// Total number of observations.
        count: u64,
        /// Sum of all observations.
        sum: i64,
    },
    /// A quantile-sketch reading.
    Sketch(QuantileSketch),
}

impl MetricValue {
    /// The Prometheus type name of this value.
    pub const fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
            // Sketches render as Prometheus summaries (quantile series).
            MetricValue::Sketch(_) => "summary",
        }
    }

    /// Counter reading, if this is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Gauge reading, if this is a gauge.
    pub fn as_gauge(&self) -> Option<i64> {
        match self {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// `(count, sum)` of a histogram reading, if this is a histogram.
    pub fn as_histogram(&self) -> Option<(u64, i64)> {
        match self {
            MetricValue::Histogram { count, sum, .. } => Some((*count, *sum)),
            _ => None,
        }
    }

    /// The sketch reading, if this is a quantile sketch.
    pub fn as_sketch(&self) -> Option<&QuantileSketch> {
        match self {
            MetricValue::Sketch(s) => Some(s),
            _ => None,
        }
    }

    fn merge_from(&mut self, other: &MetricValue, name: &str) -> Result<(), ProrpError> {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                *a += b;
                Ok(())
            }
            // Our gauges are per-shard sub-totals of fleet quantities
            // (e.g. workflows in flight), so the fleet reading is the sum.
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                *a += b;
                Ok(())
            }
            (
                MetricValue::Histogram {
                    buckets: ab,
                    count: ac,
                    sum: asum,
                },
                MetricValue::Histogram {
                    buckets: bb,
                    count: bc,
                    sum: bsum,
                },
            ) => {
                for (slot, b) in ab.iter_mut().zip(bb) {
                    *slot += b;
                }
                *ac += bc;
                *asum += bsum;
                Ok(())
            }
            (MetricValue::Sketch(a), MetricValue::Sketch(b)) => {
                a.merge_from(b);
                Ok(())
            }
            _ => Err(ProrpError::Observability(format!(
                "metric {name} changed kind between shards"
            ))),
        }
    }
}

/// One named metric reading inside a snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetricEntry {
    /// The metric name (`prorp_*` deterministic, `sim_self_*` volatile).
    pub name: &'static str,
    /// The reading.
    pub value: MetricValue,
}

/// `true` for self-observations of the simulator process (`sim_self_*`),
/// which vary with shard count and wall clocks and are therefore excluded
/// from determinism assertions and the JSONL export.
#[inline]
pub fn is_volatile(name: &str) -> bool {
    name.starts_with("sim_self_")
}

/// All metric readings of one registry at one simulated instant,
/// sorted by metric name.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MetricsSnapshot {
    /// The simulated instant the snapshot was taken.
    pub at: Timestamp,
    /// The readings, sorted by name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Look up one reading by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// A copy with the volatile (`sim_self_*`) readings removed — the
    /// deterministic surface that must be bit-identical across shard
    /// layouts.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            at: self.at,
            entries: self
                .entries
                .iter()
                .filter(|e| !is_volatile(e.name))
                .cloned()
                .collect(),
        }
    }

    /// Merge per-shard snapshot *series* into one fleet-wide series.
    ///
    /// Every shard snapshots at the same simulated instants (the schedule
    /// comes from the shared configuration), so the series are zipped
    /// elementwise and each position merged by integer sums.
    ///
    /// # Errors
    ///
    /// Fails if the series disagree on length, instants, metric names, or
    /// metric kinds — any of which means the shards were configured
    /// inconsistently.
    pub fn merge(parts: Vec<Vec<MetricsSnapshot>>) -> Result<Vec<MetricsSnapshot>, ProrpError> {
        let mut parts = parts.into_iter();
        let Some(mut merged) = parts.next() else {
            return Ok(Vec::new());
        };
        for series in parts {
            if series.len() != merged.len() {
                return Err(ProrpError::Observability(format!(
                    "snapshot series length mismatch across shards: {} vs {}",
                    merged.len(),
                    series.len()
                )));
            }
            for (acc, snap) in merged.iter_mut().zip(series) {
                acc.merge_from(&snap)?;
            }
        }
        Ok(merged)
    }

    fn merge_from(&mut self, other: &MetricsSnapshot) -> Result<(), ProrpError> {
        if self.at != other.at {
            return Err(ProrpError::Observability(format!(
                "snapshot instants differ across shards: {:?} vs {:?}",
                self.at, other.at
            )));
        }
        if self.entries.len() != other.entries.len() {
            return Err(ProrpError::Observability(format!(
                "snapshot at {:?} has {} metrics on one shard, {} on another",
                self.at,
                self.entries.len(),
                other.entries.len()
            )));
        }
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            if a.name != b.name {
                return Err(ProrpError::Observability(format!(
                    "snapshot metric name mismatch: {} vs {}",
                    a.name, b.name
                )));
            }
            a.value.merge_from(&b.value, a.name)?;
        }
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Sketch(Sketch),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
            Slot::Sketch(_) => "summary",
        }
    }
}

/// A shard-local registry of named metrics.
///
/// Cloning shares the underlying slots, so components can hold their own
/// copy and register handles independently; registering the same name
/// twice with the same kind returns the existing handle (idempotent).
///
/// # Panics
///
/// Registration panics when a name is re-registered with a different
/// kind — that is a programming error, not a runtime condition.
#[derive(Clone, Default, Debug)]
pub struct MetricsRegistry {
    slots: Rc<RefCell<Vec<(&'static str, Slot)>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &'static str, make: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.borrow_mut();
        if let Some((_, slot)) = slots.iter().find(|(n, _)| *n == name) {
            return slot.clone();
        }
        let slot = make();
        slots.push((name, slot.clone()));
        slot
    }

    /// Register (or fetch) a counter.
    pub fn counter(&self, name: &'static str) -> Counter {
        match self.register(name, || Slot::Counter(Counter::default())) {
            Slot::Counter(c) => c,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self.register(name, || Slot::Gauge(Gauge::default())) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or fetch) a histogram.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match self.register(name, || Slot::Histogram(Histogram::default())) {
            Slot::Histogram(h) => h,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Register (or fetch) a quantile sketch.
    pub fn sketch(&self, name: &'static str) -> Sketch {
        match self.register(name, || Slot::Sketch(Sketch::default())) {
            Slot::Sketch(s) => s,
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Read every registered metric at simulated instant `at`, sorted by
    /// name.
    pub fn snapshot(&self, at: Timestamp) -> MetricsSnapshot {
        let slots = self.slots.borrow();
        let mut entries: Vec<MetricEntry> = slots
            .iter()
            .map(|(name, slot)| MetricEntry {
                name,
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get()),
                    Slot::Histogram(h) => {
                        let data = h.0.borrow();
                        MetricValue::Histogram {
                            buckets: data.buckets,
                            count: data.count,
                            sum: data.sum,
                        }
                    }
                    Slot::Sketch(s) => MetricValue::Sketch(s.0.borrow().clone()),
                },
            })
            .collect();
        entries.sort_by(|a, b| a.name.cmp(b.name));
        MetricsSnapshot { at, entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("prorp_logins_available_total");
        let b = reg.counter("prorp_logins_available_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "both handles hit the same cell");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("prorp_thing");
        let _ = reg.gauge("prorp_thing");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = MetricsRegistry::new();
        reg.gauge("prorp_z").set(-4);
        reg.counter("prorp_a").add(7);
        let h = reg.histogram("prorp_m_seconds");
        h.observe(3);
        h.observe(300);
        let snap = reg.snapshot(Timestamp(60));
        let names: Vec<_> = snap.entries.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["prorp_a", "prorp_m_seconds", "prorp_z"]);
        assert_eq!(snap.get("prorp_a"), Some(&MetricValue::Counter(7)));
        assert_eq!(snap.get("prorp_z").unwrap().as_gauge(), Some(-4));
        assert_eq!(
            snap.get("prorp_m_seconds").unwrap().as_histogram(),
            Some((2, 303))
        );
        assert!(snap.get("missing").is_none());
    }

    #[test]
    fn merge_sums_elementwise() {
        let mk = |n: u64| {
            let reg = MetricsRegistry::new();
            reg.counter("prorp_c").add(n);
            reg.histogram("prorp_h_seconds").observe(n as i64);
            reg.gauge("sim_self_databases").set(n as i64);
            vec![reg.snapshot(Timestamp(10)), reg.snapshot(Timestamp(20))]
        };
        let merged = MetricsSnapshot::merge(vec![mk(1), mk(2), mk(4)]).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].get("prorp_c").unwrap().as_counter(), Some(7));
        assert_eq!(
            merged[0].get("sim_self_databases").unwrap().as_gauge(),
            Some(7)
        );
        assert_eq!(
            merged[1].get("prorp_h_seconds").unwrap().as_histogram(),
            Some((3, 7))
        );
    }

    #[test]
    fn merge_rejects_mismatched_series() {
        let reg = MetricsRegistry::new();
        reg.counter("prorp_c");
        let one = vec![reg.snapshot(Timestamp(10))];
        let err = MetricsSnapshot::merge(vec![one.clone(), Vec::new()]).unwrap_err();
        assert_eq!(err.category(), "observability");

        let other = MetricsRegistry::new();
        other.counter("prorp_d");
        let err = MetricsSnapshot::merge(vec![one.clone(), vec![other.snapshot(Timestamp(10))]])
            .unwrap_err();
        assert!(err.to_string().contains("name mismatch"));

        let late = MetricsRegistry::new();
        late.counter("prorp_c");
        let err =
            MetricsSnapshot::merge(vec![one, vec![late.snapshot(Timestamp(11))]]).unwrap_err();
        assert!(err.to_string().contains("instants differ"));
    }

    #[test]
    fn deterministic_filter_drops_volatile_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("prorp_c").inc();
        reg.counter("sim_self_events_processed_total").inc();
        let snap = reg.snapshot(Timestamp(0));
        assert_eq!(snap.entries.len(), 2);
        let det = snap.deterministic();
        assert_eq!(det.entries.len(), 1);
        assert_eq!(det.entries[0].name, "prorp_c");
        assert!(is_volatile("sim_self_wall_clock_micros"));
        assert!(!is_volatile("prorp_logins_available_total"));
    }

    #[test]
    fn sketches_register_snapshot_and_merge() {
        let mk = |values: &[i64]| {
            let reg = MetricsRegistry::new();
            let s = reg.sketch("prorp_resume_latency_seconds");
            for &v in values {
                s.observe(v);
            }
            assert_eq!(s.count(), values.len() as u64);
            vec![reg.snapshot(Timestamp(9))]
        };
        let merged = MetricsSnapshot::merge(vec![mk(&[1, 60, 3600]), mk(&[7]), mk(&[])]).unwrap();
        let sketch = merged[0]
            .get("prorp_resume_latency_seconds")
            .unwrap()
            .as_sketch()
            .expect("sketch survives the merge");
        assert_eq!(sketch.count(), 4);
        assert_eq!(sketch.sum(), 1 + 60 + 3600 + 7);
        // And a whole-fleet sketch built in one registry agrees bit for bit.
        let whole = mk(&[1, 60, 3600, 7]);
        assert_eq!(
            whole[0].get("prorp_resume_latency_seconds"),
            merged[0].get("prorp_resume_latency_seconds")
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn sketch_kind_clash_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.sketch("prorp_thing");
        let _ = reg.counter("prorp_thing");
    }

    #[test]
    fn histogram_buckets_match_telemetry_layout() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(-5);
        h.observe(1);
        h.observe(3);
        h.observe(1 << 40);
        let data = h.0.borrow();
        assert_eq!(data.buckets[0], 2);
        assert_eq!(data.buckets[1], 1);
        assert_eq!(data.buckets[2], 1);
        assert_eq!(data.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(data.count, 5);
        assert_eq!(data.sum, 4 + (1 << 40));
    }
}
