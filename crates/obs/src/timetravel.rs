//! Trace-driven time travel: re-run Algorithm 4 "as of T".
//!
//! A span trace records every customer login of every database
//! ([`SpanKind::Login`] events carry the simulated login instant), which
//! is exactly the input Algorithm 2 feeds into the history store: one
//! tuple per login second.  Replaying a database's login events into the
//! LSM backend therefore reconstructs the *full versioned history* the
//! predictor consumed over the run — and because the LSM store maps
//! applied-at timestamps to sequence numbers
//! ([`prorp_storage::TimeTravel`]), a frozen
//! [`snapshot_as_of(T)`](prorp_storage::TimeTravel::snapshot_as_of)
//! yields the history exactly as the predictor saw it at any recorded
//! prediction instant `T`.
//!
//! Algorithm 4 reads only login tuples inside windows that never reach
//! behind the retention horizon (`lo >= now - h`), so a replay of the
//! Login events alone — no logout tuples, no Algorithm 3 trims —
//! produces bit-identical predictions to the live engine's: trims only
//! remove tuples the sweep never probes, and logout tuples are never
//! counted by `login_window_stats`.
//!
//! This is the post-mortem loop the storage redesign exists for: pick a
//! QoS miss from the trace, replay the database's history, and ask "what
//! would Algorithm 4 have said as of the prediction instant before the
//! miss?" — with the answer attributable to the exact tuples the
//! predictor saw, not a reconstruction-by-eye.

use crate::span::{PredictOutcome, SpanKind, TraceRecord};
use prorp_forecast::ProbabilisticPredictor;
use prorp_storage::{HistoryRead, LsmHistory, TimeTravel};
use prorp_types::{DatabaseId, EventKind, PolicyConfig, Prediction, ProrpError, Timestamp};

/// Outcome of one time-travel replay.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TimeTravelReport {
    /// The database that was replayed.
    pub db: DatabaseId,
    /// The instant the snapshot was frozen at.
    pub as_of: Timestamp,
    /// Login events replayed into the LSM store (the whole trace, not
    /// just those before `as_of` — the snapshot does the cut-off).
    pub logins_replayed: usize,
    /// Tuples visible in the frozen snapshot.
    pub snapshot_len: usize,
    /// The sequence number the snapshot reads at.
    pub snapshot_seqno: u64,
    /// What Algorithm 4 predicts over the snapshot at `as_of`.
    pub prediction: Option<Prediction>,
    /// The last recorded predictor run at or before `as_of`, if the
    /// trace holds one: `(instant, outcome)`.
    pub recorded: Option<(Timestamp, PredictOutcome)>,
}

impl TimeTravelReport {
    /// Whether the replay ran at the exact instant of a recorded
    /// successful predictor run — in that case
    /// [`prediction`](TimeTravelReport::prediction) *is* the forecast
    /// the engine acted on.
    pub fn reproduces_recorded_run(&self) -> bool {
        matches!(
            self.recorded,
            Some((at, PredictOutcome::Predicted)) if at == self.as_of
        )
    }
}

/// Replay `db`'s login events from `records` into a fresh LSM history,
/// freeze a snapshot as of `at`, and re-run the Algorithm 4 sweep over
/// it with `config`'s knobs.
///
/// `records` may hold the whole fleet's trace; only `db`'s Login events
/// are replayed (in canonical trace order, which is chronological per
/// database).  Pass the same `config` the engine ran with to reproduce
/// its predictions bit-for-bit.
///
/// # Errors
///
/// Propagates [`PolicyConfig`] validation failures and LSM write
/// failures.
pub fn replay_as_of(
    records: &[TraceRecord],
    db: DatabaseId,
    at: Timestamp,
    config: PolicyConfig,
) -> Result<TimeTravelReport, ProrpError> {
    let predictor = ProbabilisticPredictor::new(config)?;
    let mut history = LsmHistory::new();
    let mut timeline: Vec<&TraceRecord> = records.iter().filter(|r| r.db == db).collect();
    timeline.sort_by_key(|r| r.sort_key());
    let mut logins_replayed = 0;
    let mut recorded = None;
    for r in &timeline {
        match r.kind {
            SpanKind::Login { .. } => {
                // Algorithm 2: insert-if-not-exists, one tuple per login
                // second.  The insert is logged at its event timestamp,
                // so the seqno timeline mirrors the simulated clock.
                history.insert_history(r.start, EventKind::Start);
                logins_replayed += 1;
            }
            SpanKind::Predict { outcome } if r.start <= at => {
                recorded = Some((r.start, outcome));
            }
            _ => {}
        }
    }
    let snapshot = history.snapshot_as_of(at);
    let prediction = predictor.predict_at(&snapshot, at);
    Ok(TimeTravelReport {
        db,
        as_of: at,
        logins_replayed,
        snapshot_len: snapshot.len(),
        snapshot_seqno: snapshot.seqno(),
        prediction,
        recorded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{TraceBuffer, TraceSink};
    use prorp_storage::HistoryTable;
    use prorp_types::Seconds;

    const DAY: i64 = 86_400;
    const HOUR: i64 = 3_600;

    fn config() -> PolicyConfig {
        PolicyConfig::builder()
            .history_len(Seconds::days(5))
            .confidence(0.5)
            .window(Seconds::hours(2))
            .build()
            .unwrap()
    }

    /// Six days of 09:00 logins for db 1, noise on db 2, plus a recorded
    /// predictor run after the last logout.
    fn trace() -> Vec<TraceRecord> {
        let mut buf = TraceBuffer::new();
        for d in 0..6 {
            buf.event(
                Timestamp(d * DAY + 9 * HOUR),
                DatabaseId(1),
                SpanKind::Login { available: true },
            );
            buf.event(
                Timestamp(d * DAY + 13 * HOUR),
                DatabaseId(2),
                SpanKind::Login { available: false },
            );
        }
        buf.event(
            Timestamp(5 * DAY + 10 * HOUR),
            DatabaseId(1),
            SpanKind::Predict {
                outcome: PredictOutcome::Predicted,
            },
        );
        buf.into_records()
    }

    #[test]
    fn replay_matches_a_directly_built_history() {
        let at = Timestamp(5 * DAY + 10 * HOUR);
        let report = replay_as_of(&trace(), DatabaseId(1), at, config()).unwrap();
        assert_eq!(report.logins_replayed, 6);
        assert_eq!(report.snapshot_len, 6, "all logins precede the cut-off");
        // Reference: the same logins in a B+Tree table, predicted directly.
        let mut table = HistoryTable::new();
        for d in 0..6 {
            table.insert_history(Timestamp(d * DAY + 9 * HOUR), EventKind::Start);
        }
        let expected = ProbabilisticPredictor::new(config())
            .unwrap()
            .predict_at(&table, at);
        assert_eq!(report.prediction, expected);
        assert!(expected.is_some(), "six daily logins form a pattern");
        assert!(report.reproduces_recorded_run());
    }

    #[test]
    fn snapshot_cut_off_hides_later_logins() {
        // As of day 2 the pattern is too thin for confidence 0.5 over a
        // 5-day history; the replay must not see the later logins.
        let at = Timestamp(2 * DAY);
        let report = replay_as_of(&trace(), DatabaseId(1), at, config()).unwrap();
        assert_eq!(report.logins_replayed, 6, "replay loads the whole trace");
        assert_eq!(report.snapshot_len, 2, "snapshot ends at the cut-off");
        assert!(report.snapshot_seqno < 6);
        assert!(report.recorded.is_none(), "no predict span before day 2");
    }

    #[test]
    fn other_databases_do_not_leak_into_the_replay() {
        let at = Timestamp(5 * DAY + 10 * HOUR);
        let report = replay_as_of(&trace(), DatabaseId(2), at, config()).unwrap();
        assert_eq!(report.logins_replayed, 6);
        assert!(
            report.recorded.is_none(),
            "the predict span belongs to db 1"
        );
        assert!(!report.reproduces_recorded_run());
    }
}
