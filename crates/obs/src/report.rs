//! The merged observability output of one simulation run.

use crate::metrics::MetricsSnapshot;
use crate::slo::{evaluate_alerts, Alert, SloSeries};
use crate::span::{TraceBuffer, TraceRecord};
use prorp_types::{ProrpError, Result};

/// Everything the observability layer collected during one run: the
/// canonical trace, the metrics-snapshot series (periodic snapshots,
/// if configured, plus the end-of-run snapshot last), and — when SLO
/// rollups are enabled — the merged per-region [`SloSeries`].
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ObsReport {
    /// The merged trace, in canonical `(start, db, seq)` order.
    pub trace: Vec<TraceRecord>,
    /// Fleet-wide metrics snapshots in chronological order; the last one
    /// is always the end-of-run snapshot.
    pub snapshots: Vec<MetricsSnapshot>,
    /// Merged per-region SLO rollup series (`None` unless the run was
    /// configured with [`SloConfig`](crate::slo::SloConfig)).
    pub slo: Option<SloSeries>,
}

impl ObsReport {
    /// Merge per-shard reports into the fleet-wide report.
    ///
    /// # Errors
    ///
    /// Fails when the per-shard snapshot series are inconsistent (see
    /// [`MetricsSnapshot::merge`]) or the SLO configs differ across
    /// shards.
    pub fn merge(parts: Vec<ObsReport>) -> Result<ObsReport, ProrpError> {
        let mut traces = Vec::with_capacity(parts.len());
        let mut snapshots = Vec::with_capacity(parts.len());
        let mut slo_parts = Vec::new();
        for part in parts {
            traces.push(part.trace);
            snapshots.push(part.snapshots);
            if let Some(slo) = part.slo {
                slo_parts.push(slo);
            }
        }
        Ok(ObsReport {
            trace: TraceBuffer::merge(traces),
            snapshots: MetricsSnapshot::merge(snapshots)?,
            slo: SloSeries::merge(slo_parts)?,
        })
    }

    /// The end-of-run snapshot, if any snapshot was taken.
    pub fn final_snapshot(&self) -> Option<&MetricsSnapshot> {
        self.snapshots.last()
    }

    /// The deterministic alert log derived from the merged SLO series
    /// (empty when rollups are off).
    pub fn alerts(&self) -> Vec<Alert> {
        self.slo.as_ref().map(evaluate_alerts).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::slo::SloConfig;
    use crate::span::{SpanKind, TraceSink};
    use prorp_types::{DatabaseId, Timestamp};

    fn part(db: u64, count: u64) -> ObsReport {
        let mut buf = TraceBuffer::new();
        buf.event(
            Timestamp(db as i64),
            DatabaseId(db),
            SpanKind::ProactiveResume,
        );
        let reg = MetricsRegistry::new();
        reg.counter("prorp_c").add(count);
        let mut slo = SloSeries::new(SloConfig::default());
        slo.on_login(Timestamp(10), DatabaseId(db), false);
        ObsReport {
            trace: buf.into_records(),
            snapshots: vec![reg.snapshot(Timestamp(100))],
            slo: Some(slo),
        }
    }

    #[test]
    fn merge_combines_traces_snapshots_and_slo() {
        let merged = ObsReport::merge(vec![part(2, 3), part(1, 4)]).unwrap();
        assert_eq!(merged.trace.len(), 2);
        assert!(merged.trace[0].db < merged.trace[1].db, "canonical order");
        let last = merged.final_snapshot().unwrap();
        assert_eq!(last.get("prorp_c").unwrap().as_counter(), Some(7));
        let slo = merged.slo.as_ref().unwrap();
        let total: u64 = slo.windows.values().map(|w| w.logins).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn empty_merge_is_empty() {
        let merged = ObsReport::merge(Vec::new()).unwrap();
        assert!(merged.trace.is_empty());
        assert!(merged.final_snapshot().is_none());
        assert!(merged.slo.is_none());
        assert!(merged.alerts().is_empty());
    }
}
