//! The merged observability output of one simulation run.

use crate::metrics::MetricsSnapshot;
use crate::span::{TraceBuffer, TraceRecord};
use prorp_types::{ProrpError, Result};

/// Everything the observability layer collected during one run: the
/// canonical trace and the metrics-snapshot series (periodic snapshots,
/// if configured, plus the end-of-run snapshot last).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ObsReport {
    /// The merged trace, in canonical `(start, db, seq)` order.
    pub trace: Vec<TraceRecord>,
    /// Fleet-wide metrics snapshots in chronological order; the last one
    /// is always the end-of-run snapshot.
    pub snapshots: Vec<MetricsSnapshot>,
}

impl ObsReport {
    /// Merge per-shard reports into the fleet-wide report.
    ///
    /// # Errors
    ///
    /// Fails when the per-shard snapshot series are inconsistent (see
    /// [`MetricsSnapshot::merge`]).
    pub fn merge(parts: Vec<ObsReport>) -> Result<ObsReport, ProrpError> {
        let mut traces = Vec::with_capacity(parts.len());
        let mut snapshots = Vec::with_capacity(parts.len());
        for part in parts {
            traces.push(part.trace);
            snapshots.push(part.snapshots);
        }
        Ok(ObsReport {
            trace: TraceBuffer::merge(traces),
            snapshots: MetricsSnapshot::merge(snapshots)?,
        })
    }

    /// The end-of-run snapshot, if any snapshot was taken.
    pub fn final_snapshot(&self) -> Option<&MetricsSnapshot> {
        self.snapshots.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::{SpanKind, TraceSink};
    use prorp_types::{DatabaseId, Timestamp};

    fn part(db: u64, count: u64) -> ObsReport {
        let mut buf = TraceBuffer::new();
        buf.event(
            Timestamp(db as i64),
            DatabaseId(db),
            SpanKind::ProactiveResume,
        );
        let reg = MetricsRegistry::new();
        reg.counter("prorp_c").add(count);
        ObsReport {
            trace: buf.into_records(),
            snapshots: vec![reg.snapshot(Timestamp(100))],
        }
    }

    #[test]
    fn merge_combines_traces_and_snapshots() {
        let merged = ObsReport::merge(vec![part(2, 3), part(1, 4)]).unwrap();
        assert_eq!(merged.trace.len(), 2);
        assert!(merged.trace[0].db < merged.trace[1].db, "canonical order");
        let last = merged.final_snapshot().unwrap();
        assert_eq!(last.get("prorp_c").unwrap().as_counter(), Some(7));
    }

    #[test]
    fn empty_merge_is_empty() {
        let merged = ObsReport::merge(Vec::new()).unwrap();
        assert!(merged.trace.is_empty());
        assert!(merged.final_snapshot().is_none());
    }
}
