//! Operator queries over a loaded trace.
//!
//! These are the questions an on-call engineer asks of a fleet trace: what
//! happened to *this* database, which workflow stages were slowest, when
//! did circuit breakers open and close, and — for every QoS miss — what
//! was the predictor doing beforehand?  All results are deterministic
//! functions of the canonical trace order, so query output over a golden
//! trace is itself golden-testable.

use crate::span::{
    BreakerTransition, DecisionExplain, PredictOutcome, SpanKind, StageResult, TraceRecord,
};
use prorp_types::{DatabaseId, Seconds, Timestamp, WorkflowStage};
use std::collections::BTreeMap;

/// Headline facts about one trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceSummary {
    /// Total records.
    pub records: usize,
    /// Distinct databases appearing in the trace.
    pub databases: usize,
    /// Record counts per span-kind label, sorted by label.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// Earliest span start (`None` on an empty trace).
    pub start: Option<Timestamp>,
    /// Latest span end.
    pub end: Option<Timestamp>,
}

/// Summarise a trace: record counts by kind and the covered time range.
pub fn summary(records: &[TraceRecord]) -> TraceSummary {
    let mut by_kind = BTreeMap::new();
    let mut dbs: Vec<DatabaseId> = Vec::new();
    let mut start: Option<Timestamp> = None;
    let mut end: Option<Timestamp> = None;
    for r in records {
        *by_kind.entry(r.kind.label()).or_insert(0u64) += 1;
        dbs.push(r.db);
        start = Some(start.map_or(r.start, |s| s.min(r.start)));
        end = Some(end.map_or(r.end, |e| e.max(r.end)));
    }
    dbs.sort_unstable();
    dbs.dedup();
    TraceSummary {
        records: records.len(),
        databases: dbs.len(),
        by_kind,
        start,
        end,
    }
}

/// Every record of one database, in canonical (chronological) order.
pub fn timeline(records: &[TraceRecord], db: DatabaseId) -> Vec<&TraceRecord> {
    records.iter().filter(|r| r.db == db).collect()
}

/// One completed workflow-stage attempt, ranked by duration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StageLatency {
    /// The stage.
    pub stage: WorkflowStage,
    /// The database whose workflow ran the stage.
    pub db: DatabaseId,
    /// Simulated start of the attempt.
    pub start: Timestamp,
    /// How long the attempt took.
    pub duration: Seconds,
}

/// The `n` slowest *successful* workflow-stage attempts, longest first.
///
/// Ties break on `(start, db, stage order)` so the ranking is a pure
/// function of the trace.
pub fn slowest_stages(records: &[TraceRecord], n: usize) -> Vec<StageLatency> {
    let mut stages: Vec<StageLatency> = records
        .iter()
        .filter_map(|r| match r.kind {
            SpanKind::WorkflowStage {
                stage,
                result: StageResult::Ok,
                ..
            } => Some(StageLatency {
                stage,
                db: r.db,
                start: r.start,
                duration: r.duration(),
            }),
            _ => None,
        })
        .collect();
    stages.sort_by_key(|s| {
        (
            -s.duration.as_secs(),
            s.start.as_secs(),
            s.db.raw(),
            s.stage.index(),
        )
    });
    stages.truncate(n);
    stages
}

/// One open(→close) episode of a database's predictor circuit breaker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BreakerEpisode {
    /// The database whose breaker tripped.
    pub db: DatabaseId,
    /// When the breaker opened.
    pub opened: Timestamp,
    /// When it closed again (`None` if still open at end of trace).
    pub closed: Option<Timestamp>,
    /// Reactive fallbacks served while the episode was open.
    pub fallbacks: u64,
}

/// All breaker episodes, ordered by `(opened, db)`.
pub fn breaker_episodes(records: &[TraceRecord]) -> Vec<BreakerEpisode> {
    let mut open: BTreeMap<DatabaseId, BreakerEpisode> = BTreeMap::new();
    let mut episodes = Vec::new();
    for r in records {
        match r.kind {
            SpanKind::Breaker {
                transition: BreakerTransition::Opened,
            } => {
                open.insert(
                    r.db,
                    BreakerEpisode {
                        db: r.db,
                        opened: r.start,
                        closed: None,
                        fallbacks: 0,
                    },
                );
            }
            SpanKind::Predict {
                outcome: PredictOutcome::BreakerFallback,
            } => {
                if let Some(ep) = open.get_mut(&r.db) {
                    ep.fallbacks += 1;
                }
            }
            SpanKind::Breaker {
                transition: BreakerTransition::Closed,
            } => {
                if let Some(mut ep) = open.remove(&r.db) {
                    ep.closed = Some(r.start);
                    episodes.push(ep);
                }
            }
            _ => {}
        }
    }
    episodes.extend(open.into_values());
    episodes.sort_by_key(|e| (e.opened.as_secs(), e.db.raw()));
    episodes
}

/// Why a login found its database unavailable (Definition 2.2's QoS cost),
/// attributed from the predictor activity preceding the miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QosMissCause {
    /// No predictor invocation precedes the miss: the database was paused
    /// reactively with no forecast to proact on.
    NeverPredicted,
    /// The most recent invocation failed outright.
    ForecastFailure,
    /// The breaker was open and the engine was running reactively.
    BreakerOpen,
    /// A prediction existed but its resume window missed this login.
    MissedWindow,
}

impl QosMissCause {
    /// Stable lowercase label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            QosMissCause::NeverPredicted => "never-predicted",
            QosMissCause::ForecastFailure => "forecast-failure",
            QosMissCause::BreakerOpen => "breaker-open",
            QosMissCause::MissedWindow => "missed-window",
        }
    }
}

/// One unavailable login with its attributed cause.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QosMiss {
    /// The database that missed.
    pub db: DatabaseId,
    /// When the login arrived.
    pub at: Timestamp,
    /// The attributed cause.
    pub cause: QosMissCause,
    /// When the predictor last ran before the miss, if ever.
    pub last_predict: Option<Timestamp>,
}

/// Every QoS miss in the trace with hit/miss attribution, in trace order.
///
/// For each `login{available:false}` record the most recent `predict`
/// record of the same database at or before the login decides the cause —
/// the exact question an operator asks when a customer reports a slow
/// login.
pub fn qos_misses(records: &[TraceRecord]) -> Vec<QosMiss> {
    // The trace is in canonical chronological order, so one forward walk
    // carrying "last predict outcome per database" suffices.
    let mut last: BTreeMap<DatabaseId, (Timestamp, PredictOutcome)> = BTreeMap::new();
    let mut misses = Vec::new();
    for r in records {
        match r.kind {
            SpanKind::Predict { outcome } => {
                last.insert(r.db, (r.start, outcome));
            }
            SpanKind::Login { available: false } => {
                let (cause, last_predict) = match last.get(&r.db) {
                    None => (QosMissCause::NeverPredicted, None),
                    Some((at, PredictOutcome::Failed)) => {
                        (QosMissCause::ForecastFailure, Some(*at))
                    }
                    Some((at, PredictOutcome::BreakerFallback)) => {
                        (QosMissCause::BreakerOpen, Some(*at))
                    }
                    Some((at, PredictOutcome::Predicted)) => {
                        (QosMissCause::MissedWindow, Some(*at))
                    }
                };
                misses.push(QosMiss {
                    db: r.db,
                    at: r.start,
                    cause,
                    last_predict,
                });
            }
            _ => {}
        }
    }
    misses
}

/// One decision-provenance record of a database: when the engine decided,
/// and the full [`DecisionExplain`] it recorded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Decision {
    /// When the engine took the decision.
    pub at: Timestamp,
    /// The recorded provenance.
    pub explain: DecisionExplain,
}

/// All decision-provenance records of one database, in chronological
/// order (requires a run with `ObsConfig::with_explain()`).
pub fn decisions(records: &[TraceRecord], db: DatabaseId) -> Vec<Decision> {
    records
        .iter()
        .filter(|r| r.db == db)
        .filter_map(|r| match r.kind {
            SpanKind::Decision { explain } => Some(Decision {
                at: r.start,
                explain,
            }),
            _ => None,
        })
        .collect()
}

/// The most recent decision the engine took for `db` at or before `at` —
/// the `prorp-trace why` question: *why is this database (not) running
/// right now?*
pub fn why(records: &[TraceRecord], db: DatabaseId, at: Timestamp) -> Option<Decision> {
    decisions(records, db)
        .into_iter()
        .take_while(|d| d.at <= at)
        .last()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{DecisionAction, TraceBuffer, TraceSink};

    fn trace() -> Vec<TraceRecord> {
        let mut buf = TraceBuffer::new();
        let db1 = DatabaseId(1);
        let db2 = DatabaseId(2);
        // db-1: a failed forecast, a breaker episode with one fallback,
        // then a close and a predicted-but-missed login.
        buf.event(
            Timestamp(10),
            db1,
            SpanKind::Predict {
                outcome: PredictOutcome::Failed,
            },
        );
        buf.event(Timestamp(11), db1, SpanKind::Login { available: false });
        buf.event(
            Timestamp(12),
            db1,
            SpanKind::Breaker {
                transition: BreakerTransition::Opened,
            },
        );
        buf.event(
            Timestamp(13),
            db1,
            SpanKind::Predict {
                outcome: PredictOutcome::BreakerFallback,
            },
        );
        buf.event(Timestamp(14), db1, SpanKind::Login { available: false });
        buf.event(
            Timestamp(20),
            db1,
            SpanKind::Breaker {
                transition: BreakerTransition::Closed,
            },
        );
        buf.event(
            Timestamp(25),
            db1,
            SpanKind::Predict {
                outcome: PredictOutcome::Predicted,
            },
        );
        buf.event(Timestamp(30), db1, SpanKind::Login { available: false });
        // db-2: never predicted; two stage spans of different lengths and
        // one failed attempt that must not appear in the ranking.
        buf.event(Timestamp(5), db2, SpanKind::Login { available: false });
        buf.span(
            Timestamp(40),
            Timestamp(100),
            db2,
            SpanKind::WorkflowStage {
                stage: WorkflowStage::WarmCache,
                attempt: 1,
                result: StageResult::Ok,
            },
        );
        buf.span(
            Timestamp(40),
            Timestamp(55),
            db1,
            SpanKind::WorkflowStage {
                stage: WorkflowStage::AllocateNode,
                attempt: 1,
                result: StageResult::Ok,
            },
        );
        buf.span(
            Timestamp(40),
            Timestamp(90),
            db2,
            SpanKind::WorkflowStage {
                stage: WorkflowStage::AttachStorage,
                attempt: 1,
                result: StageResult::Retry,
            },
        );
        TraceBuffer::merge(vec![buf.into_records()])
    }

    #[test]
    fn summary_counts_kinds_and_range() {
        let t = trace();
        let s = summary(&t);
        assert_eq!(s.records, t.len());
        assert_eq!(s.databases, 2);
        assert_eq!(s.by_kind["login"], 4);
        assert_eq!(s.by_kind["predict"], 3);
        assert_eq!(s.start, Some(Timestamp(5)));
        assert_eq!(s.end, Some(Timestamp(100)));
        assert_eq!(summary(&[]).start, None);
    }

    #[test]
    fn timeline_filters_one_database() {
        let t = trace();
        let tl = timeline(&t, DatabaseId(2));
        assert_eq!(tl.len(), 3);
        assert!(tl.iter().all(|r| r.db == DatabaseId(2)));
        assert!(tl.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn slowest_stages_ranks_successful_attempts_only() {
        let t = trace();
        let top = slowest_stages(&t, 10);
        assert_eq!(top.len(), 2, "the retry attempt is excluded");
        assert_eq!(top[0].stage, WorkflowStage::WarmCache);
        assert_eq!(top[0].duration, Seconds(60));
        assert_eq!(top[1].duration, Seconds(15));
        assert_eq!(slowest_stages(&t, 1).len(), 1);
    }

    #[test]
    fn breaker_episodes_pair_opens_and_closes() {
        let t = trace();
        let eps = breaker_episodes(&t);
        assert_eq!(eps.len(), 1);
        assert_eq!(eps[0].db, DatabaseId(1));
        assert_eq!(eps[0].opened, Timestamp(12));
        assert_eq!(eps[0].closed, Some(Timestamp(20)));
        assert_eq!(eps[0].fallbacks, 1);
    }

    #[test]
    fn why_returns_the_latest_decision_at_or_before_t() {
        let mut buf = TraceBuffer::new();
        let db = DatabaseId(9);
        let pause = DecisionExplain {
            action: DecisionAction::PhysicalPause,
            predicted: Some(Timestamp(500)),
            history_len: 6,
            confidence_hits: 4,
            confidence_total: 5,
            breaker_open: false,
            cache_hit: false,
        };
        let resume = DecisionExplain {
            action: DecisionAction::ProactiveResume,
            predicted: Some(Timestamp(500)),
            history_len: 6,
            confidence_hits: 4,
            confidence_total: 5,
            breaker_open: false,
            cache_hit: true,
        };
        buf.event(Timestamp(100), db, SpanKind::Decision { explain: pause });
        buf.event(Timestamp(400), db, SpanKind::Decision { explain: resume });
        buf.event(Timestamp(400), DatabaseId(8), SpanKind::ProactiveResume);
        let t = TraceBuffer::merge(vec![buf.into_records()]);
        assert_eq!(decisions(&t, db).len(), 2);
        assert!(why(&t, db, Timestamp(99)).is_none());
        assert_eq!(why(&t, db, Timestamp(100)).unwrap().explain, pause);
        assert_eq!(why(&t, db, Timestamp(999)).unwrap().explain, resume);
        assert!(why(&t, DatabaseId(7), Timestamp(999)).is_none());
    }

    #[test]
    fn qos_misses_attribute_causes() {
        let t = trace();
        let misses = qos_misses(&t);
        let causes: Vec<(u64, QosMissCause)> =
            misses.iter().map(|m| (m.db.raw(), m.cause)).collect();
        assert_eq!(
            causes,
            vec![
                (2, QosMissCause::NeverPredicted),
                (1, QosMissCause::ForecastFailure),
                (1, QosMissCause::BreakerOpen),
                (1, QosMissCause::MissedWindow),
            ]
        );
        assert_eq!(misses[0].last_predict, None);
        assert_eq!(misses[3].last_predict, Some(Timestamp(25)));
    }
}
