//! Observability configuration carried by the simulator config.

use crate::slo::SloConfig;
use prorp_types::{ProrpError, Result, Seconds};

/// Observability knobs, set through `SimConfig::builder().observe(..)`.
///
/// The default is **off**: no sinks are built, no handles registered, and
/// the instrumentation sites in the shard runner reduce to one branch on
/// an `Option` — the zero-overhead-when-disabled fast path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ObsConfig {
    /// Master switch: when `false` the simulator allocates no
    /// observability state at all.
    pub enabled: bool,
    /// Take a metrics snapshot every this much simulated time (`None` =
    /// only the final end-of-run snapshot).  Snapshots land *before* any
    /// simulation event at the same instant, so a snapshot at `T` covers
    /// exactly the events strictly before `T` on every shard.
    pub snapshot_every: Option<Seconds>,
    /// Record per-database span traces (on by default when observability
    /// is enabled).  Turn off for million-database rollup-only runs,
    /// where the per-event trace is the memory that matters: metrics,
    /// sketches, and SLO rollups keep working without it.
    pub trace_spans: bool,
    /// Record a [`SpanKind::Decision`](crate::span::SpanKind::Decision)
    /// provenance record for every proactive resume/pause/skip decision
    /// (requires `trace_spans`).  Queryable with `prorp-trace why`.
    pub explain: bool,
    /// Per-region SLO rollups and burn-rate alerting (`None` = off).
    pub slo: Option<SloConfig>,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            snapshot_every: None,
            trace_spans: true,
            explain: false,
            slo: None,
        }
    }
}

impl ObsConfig {
    /// Observability disabled (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Tracing and metrics enabled, with only the end-of-run snapshot.
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            ..Self::default()
        }
    }

    /// Tracing and metrics enabled with periodic mid-run snapshots.
    pub fn with_snapshots(every: Seconds) -> Self {
        ObsConfig {
            enabled: true,
            snapshot_every: Some(every),
            ..Self::default()
        }
    }

    /// This config with per-region SLO rollups and alerting enabled.
    #[must_use]
    pub fn with_slo(mut self, slo: SloConfig) -> Self {
        self.slo = Some(slo);
        self
    }

    /// This config with decision-provenance records enabled.
    #[must_use]
    pub fn with_explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// This config with span tracing disabled (rollup-only mode for
    /// million-database fleets).
    #[must_use]
    pub fn without_trace(mut self) -> Self {
        self.trace_spans = false;
        self
    }

    /// Validate the knobs.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive snapshot period, any feature requested
    /// while observability is disabled, explain records without span
    /// tracing, and invalid SLO knobs.
    pub fn check(&self) -> Result<()> {
        if let Some(every) = self.snapshot_every {
            if every <= Seconds::ZERO {
                return Err(ProrpError::InvalidConfig(format!(
                    "obs snapshot period must be positive, got {}s",
                    every.as_secs()
                )));
            }
            if !self.enabled {
                return Err(ProrpError::InvalidConfig(
                    "obs snapshots require observability to be enabled".into(),
                ));
            }
        }
        if !self.enabled && (self.explain || self.slo.is_some()) {
            return Err(ProrpError::InvalidConfig(
                "obs explain/slo require observability to be enabled".into(),
            ));
        }
        if self.explain && !self.trace_spans {
            return Err(ProrpError::InvalidConfig(
                "obs explain records require span tracing".into(),
            ));
        }
        if let Some(slo) = &self.slo {
            slo.check()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_valid() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.trace_spans, "tracing defaults on once enabled");
        assert!(!cfg.explain);
        assert!(cfg.slo.is_none());
        assert!(cfg.check().is_ok());
        assert_eq!(cfg, ObsConfig::off());
    }

    #[test]
    fn constructors_enable_the_right_knobs() {
        assert!(ObsConfig::on().enabled);
        assert_eq!(ObsConfig::on().snapshot_every, None);
        let periodic = ObsConfig::with_snapshots(Seconds::hours(6));
        assert!(periodic.enabled);
        assert_eq!(periodic.snapshot_every, Some(Seconds::hours(6)));
        assert!(periodic.check().is_ok());
        let full = ObsConfig::on()
            .with_slo(SloConfig::default())
            .with_explain();
        assert!(full.explain);
        assert!(full.slo.is_some());
        assert!(full.check().is_ok());
        let rollup_only = ObsConfig::on()
            .without_trace()
            .with_slo(SloConfig::default());
        assert!(!rollup_only.trace_spans);
        assert!(rollup_only.check().is_ok());
    }

    #[test]
    fn check_rejects_bad_knobs() {
        let zero = ObsConfig::with_snapshots(Seconds::ZERO);
        assert_eq!(zero.check().unwrap_err().category(), "invalid_config");
        let disabled_with_period = ObsConfig {
            enabled: false,
            snapshot_every: Some(Seconds::hours(1)),
            ..ObsConfig::default()
        };
        assert!(disabled_with_period.check().is_err());
        let disabled_with_slo = ObsConfig::off().with_slo(SloConfig::default());
        assert!(disabled_with_slo.check().is_err());
        let explain_without_trace = ObsConfig::on().without_trace().with_explain();
        assert!(explain_without_trace.check().is_err());
        let bad_slo = ObsConfig::on().with_slo(SloConfig {
            regions: 0,
            ..SloConfig::default()
        });
        assert!(bad_slo.check().is_err());
    }
}
