//! Observability configuration carried by the simulator config.

use prorp_types::{ProrpError, Result, Seconds};

/// Observability knobs, set through `SimConfig::builder().observe(..)`.
///
/// The default is **off**: no sinks are built, no handles registered, and
/// the instrumentation sites in the shard runner reduce to one branch on
/// an `Option` — the zero-overhead-when-disabled fast path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ObsConfig {
    /// Master switch: when `false` the simulator allocates no
    /// observability state at all.
    pub enabled: bool,
    /// Take a metrics snapshot every this much simulated time (`None` =
    /// only the final end-of-run snapshot).  Snapshots land *before* any
    /// simulation event at the same instant, so a snapshot at `T` covers
    /// exactly the events strictly before `T` on every shard.
    pub snapshot_every: Option<Seconds>,
}

impl ObsConfig {
    /// Observability disabled (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Tracing and metrics enabled, with only the end-of-run snapshot.
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            snapshot_every: None,
        }
    }

    /// Tracing and metrics enabled with periodic mid-run snapshots.
    pub fn with_snapshots(every: Seconds) -> Self {
        ObsConfig {
            enabled: true,
            snapshot_every: Some(every),
        }
    }

    /// Validate the knobs.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive snapshot period and snapshots requested
    /// while observability is disabled.
    pub fn check(&self) -> Result<()> {
        if let Some(every) = self.snapshot_every {
            if every <= Seconds::ZERO {
                return Err(ProrpError::InvalidConfig(format!(
                    "obs snapshot period must be positive, got {}s",
                    every.as_secs()
                )));
            }
            if !self.enabled {
                return Err(ProrpError::InvalidConfig(
                    "obs snapshots require observability to be enabled".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_valid() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.check().is_ok());
        assert_eq!(cfg, ObsConfig::off());
    }

    #[test]
    fn constructors_enable_the_right_knobs() {
        assert!(ObsConfig::on().enabled);
        assert_eq!(ObsConfig::on().snapshot_every, None);
        let periodic = ObsConfig::with_snapshots(Seconds::hours(6));
        assert!(periodic.enabled);
        assert_eq!(periodic.snapshot_every, Some(Seconds::hours(6)));
        assert!(periodic.check().is_ok());
    }

    #[test]
    fn check_rejects_bad_knobs() {
        let zero = ObsConfig::with_snapshots(Seconds::ZERO);
        assert_eq!(zero.check().unwrap_err().category(), "invalid_config");
        let disabled_with_period = ObsConfig {
            enabled: false,
            snapshot_every: Some(Seconds::hours(1)),
        };
        assert!(disabled_with_period.check().is_err());
    }
}
