//! Exporters: JSONL trace streams and Prometheus text format.
//!
//! Everything here is hand-rolled canonical JSON in the style of the
//! testkit goldens — fixed key order, no whitespace, one record per line —
//! so exports are byte-comparable without a JSON library, and the
//! determinism promise ("identical bytes for identical `(seed, config)`")
//! can be asserted with `assert_eq!` on strings.
//!
//! * [`trace_jsonl`] / [`parse_trace_jsonl`] — the trace stream, one span
//!   per line, losslessly round-trippable (the `prorp-trace` CLI reads
//!   this format);
//! * [`snapshots_jsonl`] — the metrics-snapshot series, **deterministic
//!   metrics only** (volatile `sim_self_*` readings are dropped so the
//!   stream is shard-layout invariant);
//! * [`prometheus_text`] — one snapshot in Prometheus exposition format,
//!   **including** the volatile `sim_self_*` self-observations, which is
//!   what an operator scraping a live fleet wants to see.

use crate::metrics::{is_volatile, MetricValue, MetricsSnapshot, HISTOGRAM_BUCKETS};
use crate::slo::{Alert, SloSeries};
use crate::span::{
    BreakerTransition, DecisionAction, DecisionExplain, PredictOutcome, SpanKind, StageResult,
    TraceRecord, WorkflowOutcome,
};
use prorp_types::{DatabaseId, DbState, ProrpError, Result, Timestamp, WorkflowStage};
use std::fmt::Write as _;

/// Render one trace record as a single JSON line (no trailing newline).
///
/// Key order is fixed: `start`, `end`, `db`, `seq`, `kind`, then the
/// kind-specific fields in declaration order.
pub fn record_json(r: &TraceRecord) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"start\":{},\"end\":{},\"db\":{},\"seq\":{},\"kind\":\"{}\"",
        r.start.as_secs(),
        r.end.as_secs(),
        r.db.raw(),
        r.seq,
        r.kind.label()
    );
    match r.kind {
        SpanKind::Lifecycle { from, to } => {
            let _ = write!(out, ",\"from\":\"{from}\",\"to\":\"{to}\"");
        }
        SpanKind::Login { available } => {
            let _ = write!(out, ",\"available\":{available}");
        }
        SpanKind::Predict { outcome } => {
            let _ = write!(out, ",\"outcome\":\"{}\"", outcome.label());
        }
        SpanKind::Breaker { transition } => {
            let _ = write!(out, ",\"transition\":\"{}\"", transition.label());
        }
        SpanKind::WorkflowStage {
            stage,
            attempt,
            result,
        } => {
            let _ = write!(
                out,
                ",\"stage\":\"{}\",\"attempt\":{attempt},\"result\":\"{}\"",
                stage.label(),
                result.label()
            );
        }
        SpanKind::Workflow { outcome } => {
            let _ = write!(out, ",\"outcome\":\"{}\"", outcome.label());
        }
        SpanKind::ProactiveResume => {}
        SpanKind::Mitigation { escalated } => {
            let _ = write!(out, ",\"escalated\":{escalated}");
        }
        SpanKind::Checkpoint { bytes } => {
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        SpanKind::Recover { bytes } => {
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        SpanKind::Decision { explain } => {
            let _ = write!(out, ",\"action\":\"{}\"", explain.action.label());
            if let Some(predicted) = explain.predicted {
                let _ = write!(out, ",\"predicted\":{}", predicted.as_secs());
            }
            let _ = write!(
                out,
                ",\"history_len\":{},\"hits\":{},\"basis\":{},\"breaker_open\":{},\"cache_hit\":{}",
                explain.history_len,
                explain.confidence_hits,
                explain.confidence_total,
                explain.breaker_open,
                explain.cache_hit
            );
        }
    }
    out.push('}');
    out
}

/// Render a whole trace as JSONL (one record per line, trailing newline
/// after every line).
pub fn trace_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for r in records {
        out.push_str(&record_json(r));
        out.push('\n');
    }
    out
}

/// Render a metrics-snapshot series as JSONL, deterministic metrics only.
///
/// Each line is `{"at":T,"metrics":{...}}` with metric names in sorted
/// order; counters and gauges render as bare integers, histograms as
/// `{"count":..,"sum":..,"buckets":[..]}`.
pub fn snapshots_jsonl(snaps: &[MetricsSnapshot]) -> String {
    let mut out = String::new();
    for snap in snaps {
        let _ = write!(out, "{{\"at\":{},\"metrics\":{{", snap.at.as_secs());
        let mut first = true;
        for entry in snap.entries.iter().filter(|e| !is_volatile(e.name)) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":", entry.name);
            match &entry.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Histogram {
                    buckets,
                    count,
                    sum,
                } => {
                    let _ = write!(out, "{{\"count\":{count},\"sum\":{sum},\"buckets\":[");
                    for (i, b) in buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("]}");
                }
                MetricValue::Sketch(sketch) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"sketch\":[",
                        sketch.count(),
                        sketch.sum()
                    );
                    for (i, (bucket, n)) in sketch.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{bucket},{n}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("}}\n");
    }
    out
}

/// Render one snapshot in Prometheus text exposition format.
///
/// Volatile `sim_self_*` metrics are included — this is the operator-facing
/// export.  Histograms emit cumulative `_bucket{le="..."}` series with
/// upper bounds `2^i - 1` (observations are whole seconds, so bucket `i`'s
/// half-open `[2^(i-1), 2^i)` range is exactly "≤ 2^i − 1"), plus `_sum`
/// and `_count`.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for entry in &snap.entries {
        let name = entry.name;
        let _ = writeln!(out, "# TYPE {name} {}", entry.value.kind());
        match &entry.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Histogram {
                buckets,
                count,
                sum,
            } => {
                let mut cumulative = 0u64;
                for (i, b) in buckets.iter().enumerate() {
                    cumulative += b;
                    if i + 1 == HISTOGRAM_BUCKETS {
                        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
                    } else {
                        let le = (1u64 << i) - 1;
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                }
                let _ = writeln!(out, "{name}_sum {sum}");
                let _ = writeln!(out, "{name}_count {count}");
            }
            MetricValue::Sketch(sketch) => {
                for (q_num, q_label) in [(50u64, "0.5"), (95, "0.95"), (99, "0.99")] {
                    if let Some(v) = sketch.quantile(q_num, 100) {
                        let _ = writeln!(out, "{name}{{quantile=\"{q_label}\"}} {v}");
                    }
                }
                let _ = writeln!(out, "{name}_sum {}", sketch.sum());
                let _ = writeln!(out, "{name}_count {}", sketch.count());
            }
        }
    }
    out
}

/// Render a merged [`SloSeries`] as JSONL, one `(region, window)` row per
/// line in `(window, region)` order — the golden/report surface of the
/// rollup.  Empty quantiles (no completed resumes in the window) omit
/// their keys, matching the trace format's no-null convention.
pub fn slo_jsonl(series: &SloSeries) -> String {
    let mut out = String::new();
    for row in series.rows() {
        let _ = write!(
            out,
            "{{\"window\":{},\"region\":{},\"start\":{},\"logins\":{},\"misses\":{},\
             \"availability_ppm\":{},\"miss_ppm\":{}",
            row.window,
            row.region,
            row.window_start.as_secs(),
            row.logins,
            row.misses,
            row.availability_ppm,
            row.miss_ppm
        );
        for (key, value) in [
            ("resume_p50", row.resume_p50),
            ("resume_p95", row.resume_p95),
            ("resume_p99", row.resume_p99),
        ] {
            if let Some(v) = value {
                let _ = write!(out, ",\"{key}\":{v}");
            }
        }
        let _ = writeln!(
            out,
            ",\"resumes\":{},\"proactive_resumes\":{},\"breaker_opens\":{}}}",
            row.resumes, row.proactive_resumes, row.breaker_opens
        );
    }
    out
}

/// Render an alert log as JSONL, one alert per line in the deterministic
/// `(window, region, kind)` order produced by
/// [`evaluate_alerts`](crate::slo::evaluate_alerts).
pub fn alerts_jsonl(alerts: &[Alert]) -> String {
    let mut out = String::new();
    for a in alerts {
        let _ = writeln!(
            out,
            "{{\"window\":{},\"region\":{},\"at\":{},\"kind\":\"{}\",\"fast_ppm\":{},\
             \"slow_ppm\":{},\"threshold\":{}}}",
            a.window,
            a.region,
            a.at.as_secs(),
            a.kind.label(),
            a.fast_ppm,
            a.slow_ppm,
            a.threshold
        );
    }
    out
}

/// One scalar value inside a flat JSON object.
#[derive(Clone, PartialEq, Debug)]
enum Scalar {
    Int(i64),
    Bool(bool),
    Str(String),
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(line: &'a str) -> Self {
        Scanner {
            bytes: line.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> ProrpError {
        ProrpError::Observability(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", expected as char)))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return Err(self.err("escape sequences are not used by this format"));
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn scalar(&mut self) -> Result<Scalar> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b't') | Some(b'f') => {
                let rest = &self.bytes[self.pos..];
                if rest.starts_with(b"true") {
                    self.pos += 4;
                    Ok(Scalar::Bool(true))
                } else if rest.starts_with(b"false") {
                    self.pos += 5;
                    Ok(Scalar::Bool(false))
                } else {
                    Err(self.err("expected true/false"))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => {
                let start = self.pos;
                if self.bytes[self.pos] == b'-' {
                    self.pos += 1;
                }
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
                text.parse::<i64>()
                    .map(Scalar::Int)
                    .map_err(|_| self.err("integer out of range"))
            }
            _ => Err(self.err("expected a scalar value")),
        }
    }

    /// Parse one flat `{"key":scalar,...}` object, rejecting trailing
    /// garbage.
    fn flat_object(&mut self) -> Result<Vec<(String, Scalar)>> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
        } else {
            loop {
                let key = self.string()?;
                self.eat(b':')?;
                let value = self.scalar()?;
                fields.push((key, value));
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after object"));
        }
        Ok(fields)
    }
}

struct Fields {
    fields: Vec<(String, Scalar)>,
    line: usize,
}

impl Fields {
    fn err(&self, what: &str) -> ProrpError {
        ProrpError::Observability(format!("trace line {}: {what}", self.line))
    }

    fn get(&self, key: &str) -> Result<&Scalar> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| self.err(&format!("missing field {key:?}")))
    }

    fn int(&self, key: &str) -> Result<i64> {
        match self.get(key)? {
            Scalar::Int(v) => Ok(*v),
            _ => Err(self.err(&format!("field {key:?} is not an integer"))),
        }
    }

    fn uint(&self, key: &str) -> Result<u64> {
        u64::try_from(self.int(key)?).map_err(|_| self.err(&format!("field {key:?} is negative")))
    }

    /// An integer field that may be absent (the format omits optional
    /// fields instead of writing `null`).
    fn opt_int(&self, key: &str) -> Result<Option<i64>> {
        if self.fields.iter().any(|(k, _)| k == key) {
            self.int(key).map(Some)
        } else {
            Ok(None)
        }
    }

    fn boolean(&self, key: &str) -> Result<bool> {
        match self.get(key)? {
            Scalar::Bool(v) => Ok(*v),
            _ => Err(self.err(&format!("field {key:?} is not a boolean"))),
        }
    }

    fn str(&self, key: &str) -> Result<&str> {
        match self.get(key)? {
            Scalar::Str(v) => Ok(v),
            _ => Err(self.err(&format!("field {key:?} is not a string"))),
        }
    }
}

fn db_state(fields: &Fields, key: &str) -> Result<DbState> {
    match fields.str(key)? {
        "resumed" => Ok(DbState::Resumed),
        "logically-paused" => Ok(DbState::LogicallyPaused),
        "physically-paused" => Ok(DbState::PhysicallyPaused),
        other => Err(fields.err(&format!("unknown lifecycle state {other:?}"))),
    }
}

fn stage(fields: &Fields) -> Result<WorkflowStage> {
    let label = fields.str("stage")?;
    WorkflowStage::ALL
        .into_iter()
        .find(|s| s.label() == label)
        .ok_or_else(|| fields.err(&format!("unknown workflow stage {label:?}")))
}

fn span_kind(fields: &Fields) -> Result<SpanKind> {
    Ok(match fields.str("kind")? {
        "lifecycle" => SpanKind::Lifecycle {
            from: db_state(fields, "from")?,
            to: db_state(fields, "to")?,
        },
        "login" => SpanKind::Login {
            available: fields.boolean("available")?,
        },
        "predict" => SpanKind::Predict {
            outcome: match fields.str("outcome")? {
                "predicted" => PredictOutcome::Predicted,
                "failed" => PredictOutcome::Failed,
                "breaker-fallback" => PredictOutcome::BreakerFallback,
                other => return Err(fields.err(&format!("unknown predict outcome {other:?}"))),
            },
        },
        "breaker" => SpanKind::Breaker {
            transition: match fields.str("transition")? {
                "opened" => BreakerTransition::Opened,
                "closed" => BreakerTransition::Closed,
                other => return Err(fields.err(&format!("unknown breaker transition {other:?}"))),
            },
        },
        "workflow-stage" => SpanKind::WorkflowStage {
            stage: stage(fields)?,
            attempt: u32::try_from(fields.uint("attempt")?)
                .map_err(|_| fields.err("attempt out of range"))?,
            result: match fields.str("result")? {
                "ok" => StageResult::Ok,
                "retry" => StageResult::Retry,
                "exhausted" => StageResult::Exhausted,
                other => return Err(fields.err(&format!("unknown stage result {other:?}"))),
            },
        },
        "workflow" => SpanKind::Workflow {
            outcome: match fields.str("outcome")? {
                "completed" => WorkflowOutcome::Completed,
                "gave-up" => WorkflowOutcome::GaveUp,
                other => return Err(fields.err(&format!("unknown workflow outcome {other:?}"))),
            },
        },
        "proactive-resume" => SpanKind::ProactiveResume,
        "mitigation" => SpanKind::Mitigation {
            escalated: fields.boolean("escalated")?,
        },
        "checkpoint" => SpanKind::Checkpoint {
            bytes: fields.uint("bytes")?,
        },
        "recover" => SpanKind::Recover {
            bytes: fields.uint("bytes")?,
        },
        "decision" => SpanKind::Decision {
            explain: DecisionExplain {
                action: match fields.str("action")? {
                    "physical-pause" => DecisionAction::PhysicalPause,
                    "defer-pause" => DecisionAction::DeferPause,
                    "proactive-resume" => DecisionAction::ProactiveResume,
                    other => return Err(fields.err(&format!("unknown decision action {other:?}"))),
                },
                predicted: fields.opt_int("predicted")?.map(Timestamp),
                history_len: u32::try_from(fields.uint("history_len")?)
                    .map_err(|_| fields.err("history_len out of range"))?,
                confidence_hits: u32::try_from(fields.uint("hits")?)
                    .map_err(|_| fields.err("hits out of range"))?,
                confidence_total: u32::try_from(fields.uint("basis")?)
                    .map_err(|_| fields.err("basis out of range"))?,
                breaker_open: fields.boolean("breaker_open")?,
                cache_hit: fields.boolean("cache_hit")?,
            },
        },
        other => return Err(fields.err(&format!("unknown span kind {other:?}"))),
    })
}

/// Parse a JSONL trace produced by [`trace_jsonl`] (blank lines are
/// skipped, so concatenated or hand-edited streams still load).
///
/// # Errors
///
/// Returns [`ProrpError::Observability`] naming the offending line for any
/// malformed record.
pub fn parse_trace_jsonl(input: &str) -> Result<Vec<TraceRecord>> {
    let mut records = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = Fields {
            fields: Scanner::new(line)
                .flat_object()
                .map_err(|e| ProrpError::Observability(format!("trace line {}: {e}", idx + 1)))?,
            line: idx + 1,
        };
        records.push(TraceRecord {
            start: Timestamp(fields.int("start")?),
            end: Timestamp(fields.int("end")?),
            db: DatabaseId(fields.uint("db")?),
            seq: fields.uint("seq")?,
            kind: span_kind(&fields)?,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_records() -> Vec<TraceRecord> {
        let mut seq = 0..;
        let mut mk = |start: i64, end: i64, kind: SpanKind| TraceRecord {
            start: Timestamp(start),
            end: Timestamp(end),
            db: DatabaseId(7),
            seq: seq.next().unwrap(),
            kind,
        };
        vec![
            mk(
                0,
                0,
                SpanKind::Lifecycle {
                    from: DbState::Resumed,
                    to: DbState::LogicallyPaused,
                },
            ),
            mk(5, 5, SpanKind::Login { available: false }),
            mk(
                6,
                6,
                SpanKind::Predict {
                    outcome: PredictOutcome::Failed,
                },
            ),
            mk(
                7,
                7,
                SpanKind::Breaker {
                    transition: BreakerTransition::Opened,
                },
            ),
            mk(
                10,
                40,
                SpanKind::WorkflowStage {
                    stage: WorkflowStage::AttachStorage,
                    attempt: 2,
                    result: StageResult::Retry,
                },
            ),
            mk(
                10,
                90,
                SpanKind::Workflow {
                    outcome: WorkflowOutcome::Completed,
                },
            ),
            mk(95, 95, SpanKind::ProactiveResume),
            mk(99, 99, SpanKind::Mitigation { escalated: true }),
            mk(100, 103, SpanKind::Checkpoint { bytes: 4096 }),
            mk(104, 106, SpanKind::Recover { bytes: 4096 }),
            mk(
                110,
                110,
                SpanKind::Decision {
                    explain: DecisionExplain {
                        action: DecisionAction::ProactiveResume,
                        predicted: Some(Timestamp(470_400)),
                        history_len: 12,
                        confidence_hits: 3,
                        confidence_total: 4,
                        breaker_open: false,
                        cache_hit: true,
                    },
                },
            ),
            mk(
                115,
                115,
                SpanKind::Decision {
                    explain: DecisionExplain {
                        action: DecisionAction::PhysicalPause,
                        predicted: None,
                        history_len: 1,
                        confidence_hits: 0,
                        confidence_total: 0,
                        breaker_open: true,
                        cache_hit: false,
                    },
                },
            ),
        ]
    }

    #[test]
    fn jsonl_roundtrips_every_kind() {
        let records = sample_records();
        let text = trace_jsonl(&records);
        assert_eq!(text.lines().count(), records.len());
        let parsed = parse_trace_jsonl(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn record_json_has_fixed_key_order() {
        let r = sample_records().remove(4);
        assert_eq!(
            record_json(&r),
            "{\"start\":10,\"end\":40,\"db\":7,\"seq\":4,\"kind\":\"workflow-stage\",\
             \"stage\":\"attach-storage\",\"attempt\":2,\"result\":\"retry\"}"
        );
    }

    #[test]
    fn decision_json_omits_absent_prediction() {
        let records = sample_records();
        let with_prediction = record_json(&records[10]);
        assert_eq!(
            with_prediction,
            "{\"start\":110,\"end\":110,\"db\":7,\"seq\":10,\"kind\":\"decision\",\
             \"action\":\"proactive-resume\",\"predicted\":470400,\"history_len\":12,\
             \"hits\":3,\"basis\":4,\"breaker_open\":false,\"cache_hit\":true}"
        );
        let without = record_json(&records[11]);
        assert!(!without.contains("predicted"));
        assert!(without.contains("\"action\":\"physical-pause\""));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "not json",
            "{\"start\":1}",
            "{\"start\":1,\"end\":1,\"db\":1,\"seq\":0,\"kind\":\"nope\"}",
            "{\"start\":1,\"end\":1,\"db\":-1,\"seq\":0,\"kind\":\"proactive-resume\"}",
            "{\"start\":1,\"end\":1,\"db\":1,\"seq\":0,\"kind\":\"login\",\"available\":7}",
            "{\"start\":1,\"end\":1,\"db\":1,\"seq\":0,\"kind\":\"proactive-resume\"} extra",
        ] {
            let err = parse_trace_jsonl(bad).unwrap_err();
            assert_eq!(err.category(), "observability", "input: {bad}");
            assert!(err.to_string().contains("line 1"), "input: {bad}");
        }
    }

    #[test]
    fn parser_skips_blank_lines() {
        let text = format!("\n{}\n\n", record_json(&sample_records()[6]));
        assert_eq!(parse_trace_jsonl(&text).unwrap().len(), 1);
    }

    #[test]
    fn snapshots_jsonl_drops_volatile_metrics() {
        let reg = MetricsRegistry::new();
        reg.counter("prorp_c").add(3);
        reg.gauge("prorp_g").set(-2);
        reg.counter("sim_self_events_processed_total").add(99);
        let h = reg.histogram("prorp_h_seconds");
        h.observe(1);
        let text = snapshots_jsonl(&[reg.snapshot(Timestamp(3600))]);
        assert!(text.starts_with("{\"at\":3600,\"metrics\":{"));
        assert!(text.contains("\"prorp_c\":3"));
        assert!(text.contains("\"prorp_g\":-2"));
        assert!(text.contains("\"prorp_h_seconds\":{\"count\":1,\"sum\":1,\"buckets\":[0,1,0"));
        assert!(!text.contains("sim_self"), "volatile metrics excluded");
    }

    #[test]
    fn prometheus_text_includes_volatile_and_histogram_series() {
        let reg = MetricsRegistry::new();
        reg.counter("prorp_logins_available_total").add(5);
        reg.gauge("sim_self_databases").set(64);
        let h = reg.histogram("prorp_workflow_seconds");
        h.observe(0);
        h.observe(3);
        h.observe(1 << 30);
        let text = prometheus_text(&reg.snapshot(Timestamp(0)));
        assert!(text.contains("# TYPE prorp_logins_available_total counter"));
        assert!(text.contains("prorp_logins_available_total 5"));
        assert!(text.contains("# TYPE sim_self_databases gauge"));
        assert!(text.contains("sim_self_databases 64"));
        assert!(text.contains("prorp_workflow_seconds_bucket{le=\"0\"} 1"));
        assert!(text.contains("prorp_workflow_seconds_bucket{le=\"3\"} 2"));
        assert!(text.contains("prorp_workflow_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains(&format!("prorp_workflow_seconds_sum {}", 3 + (1 << 30))));
        assert!(text.contains("prorp_workflow_seconds_count 3"));
    }

    #[test]
    fn sketches_render_as_summaries_in_both_exports() {
        let reg = MetricsRegistry::new();
        let s = reg.sketch("prorp_resume_latency_seconds");
        for v in [10, 20, 30, 40, 1000] {
            s.observe(v);
        }
        let snap = reg.snapshot(Timestamp(60));
        let jsonl = snapshots_jsonl(std::slice::from_ref(&snap));
        assert!(jsonl
            .contains("\"prorp_resume_latency_seconds\":{\"count\":5,\"sum\":1100,\"sketch\":[["));
        let prom = prometheus_text(&snap);
        assert!(prom.contains("# TYPE prorp_resume_latency_seconds summary"));
        assert!(prom.contains("prorp_resume_latency_seconds{quantile=\"0.5\"} "));
        assert!(prom.contains("prorp_resume_latency_seconds{quantile=\"0.99\"} "));
        assert!(prom.contains("prorp_resume_latency_seconds_sum 1100"));
        assert!(prom.contains("prorp_resume_latency_seconds_count 5"));

        // An empty sketch still exports _sum/_count but no quantiles.
        let reg = MetricsRegistry::new();
        reg.sketch("prorp_empty_seconds");
        let prom = prometheus_text(&reg.snapshot(Timestamp(0)));
        assert!(!prom.contains("quantile"));
        assert!(prom.contains("prorp_empty_seconds_count 0"));
    }

    #[test]
    fn slo_and_alert_jsonl_render_rows_in_order() {
        use crate::slo::{evaluate_alerts, SloConfig, SloSeries};
        use prorp_types::Seconds;
        let mut series = SloSeries::new(SloConfig {
            window: Seconds(100),
            regions: 2,
            slow_windows: 2,
            objective_ppm: 10_000,
            fast_burn: 10,
            slow_burn: 2,
            breaker_storm_opens: 2,
        });
        series.on_login(Timestamp(10), DatabaseId(0), true);
        series.on_login(Timestamp(20), DatabaseId(0), false);
        series.on_login(Timestamp(30), DatabaseId(1), true);
        series.on_resume_completed(Timestamp(40), DatabaseId(0), Seconds(25));
        series.on_breaker_open(Timestamp(50), DatabaseId(1));
        series.on_breaker_open(Timestamp(60), DatabaseId(3));
        let text = slo_jsonl(&series);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with(
            "{\"window\":0,\"region\":0,\"start\":0,\"logins\":2,\"misses\":1,\
             \"availability_ppm\":500000,\"miss_ppm\":500000,\"resume_p50\":"
        ));
        assert!(lines[1].contains("\"region\":1"));
        assert!(
            !lines[1].contains("resume_p50"),
            "no resumes -> quantile keys omitted"
        );
        let alerts = evaluate_alerts(&series);
        let log = alerts_jsonl(&alerts);
        assert!(log.contains("\"kind\":\"qos-burn-rate\""));
        assert!(log.contains("\"kind\":\"breaker-storm\""));
        assert_eq!(log.lines().count(), alerts.len());
    }
}
