//! Minimal JSON rendering shared by the CLI and the experiment binaries.
//!
//! The workspace deliberately vendors no serde; this mirrors the
//! hand-rolled canonical-JSON discipline of the exporters in
//! [`export`](crate::export): keys render in insertion order, floats use
//! Rust's shortest round-trip formatting (non-finite values become
//! `null`), and strings escape the JSON control set, so outputs are
//! stable across runs and machines.  `prorp-trace --json` and the
//! `prorp-bench` binaries both build their output with this type.

use std::fmt::Write as _;

/// A JSON value assembled by the CLI and experiment binaries.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (`NaN`/`±inf` render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys render in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Build an object from `(key, value)` pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values_compactly() {
        let v = JsonValue::object(vec![
            ("n", JsonValue::UInt(3)),
            ("qos", JsonValue::Float(99.5)),
            ("label", JsonValue::Str("eu\"1\"".into())),
            (
                "rows",
                JsonValue::Array(vec![JsonValue::Int(-1), JsonValue::Bool(true)]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"n":3,"qos":99.5,"label":"eu\"1\"","rows":[-1,true]}"#
        );
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::Float(0.25).render(), "0.25");
    }

    #[test]
    fn control_characters_are_escaped() {
        let v = JsonValue::Str("a\nb\u{1}".into());
        assert_eq!(v.render(), "\"a\\nb\\u0001\"");
    }
}
