//! The LSM write buffer: an in-memory table of MVCC version chains.
//!
//! Every mutation (insert or range-trim tombstone) lands here first,
//! stamped with its sequence number; when the buffer reaches the
//! configured capacity it is drained into an immutable sorted run
//! (see [`super::run`]).  Version chains are kept per key, newest
//! last, so a `seqno`-bounded read picks the newest version at or
//! below the read point.

use super::run::Entry;
use std::collections::BTreeMap;
use std::ops::Bound;

/// One stored version: `(seqno, event value, tombstone?)`.
type Version = (u64, i64, bool);

/// Visibility verdict for a key at a read point: `None` when the source
/// holds no version at or below the read seqno, `Some(None)` when the
/// newest visible version is a tombstone, `Some(Some(v))` when it is a
/// live value.
pub type Visible = Option<Option<i64>>;

/// The in-memory write buffer.
#[derive(Clone, Debug)]
pub struct MemTable {
    /// Version chains per key; each chain is append-ordered, and seqnos
    /// are assigned monotonically, so chains are sorted by seqno.
    chains: BTreeMap<i64, Vec<Version>>,
    /// Total stored versions (the flush-trigger size).
    entries: usize,
    /// Smallest seqno buffered, `u64::MAX` when empty.
    min_seqno: u64,
    /// Largest seqno buffered, 0 when empty.
    max_seqno: u64,
}

/// Pick the newest version at or below `at` from a seqno-sorted chain.
pub(crate) fn visible_in_chain(chain: &[Version], at: u64) -> Visible {
    visible_in_chain_seq(chain, at).map(|(_, v)| v)
}

/// Like [`visible_in_chain`], but also yields the winning version's
/// seqno — range-tombstone resolution compares it against the newest
/// covering trim.
pub(crate) fn visible_in_chain_seq(chain: &[Version], at: u64) -> Option<(u64, Option<i64>)> {
    let cut = chain.partition_point(|&(s, _, _)| s <= at);
    chain[..cut]
        .last()
        .map(|&(s, v, dead)| (s, (!dead).then_some(v)))
}

impl Default for MemTable {
    fn default() -> Self {
        MemTable {
            chains: BTreeMap::new(),
            entries: 0,
            min_seqno: u64::MAX,
            max_seqno: 0,
        }
    }
}

impl MemTable {
    /// An empty buffer.
    pub fn new() -> Self {
        MemTable::default()
    }

    /// Buffer one version.  Seqnos must be appended in non-decreasing
    /// order (the store assigns them monotonically).
    pub fn add(&mut self, key: i64, seqno: u64, value: i64, tombstone: bool) {
        let chain = self.chains.entry(key).or_default();
        debug_assert!(
            chain.last().map_or(true, |&(s, _, _)| s <= seqno),
            "memtable chains must stay seqno-sorted"
        );
        chain.push((seqno, value, tombstone));
        self.entries += 1;
        self.min_seqno = self.min_seqno.min(seqno);
        self.max_seqno = self.max_seqno.max(seqno);
    }

    /// Newest version of `key` at or below `at`, when buffered.
    pub fn visible(&self, key: i64, at: u64) -> Visible {
        self.chains
            .get(&key)
            .and_then(|chain| visible_in_chain(chain, at))
    }

    /// Number of buffered versions.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Smallest buffered seqno (`u64::MAX` when empty) — the flush path
    /// asserts buffered seqnos stay above every on-run seqno.
    pub fn min_seqno(&self) -> u64 {
        self.min_seqno
    }

    /// Largest buffered seqno (0 when empty).
    pub fn max_seqno(&self) -> u64 {
        self.max_seqno
    }

    /// Drain every buffered version into `(key, seqno)`-sorted entries,
    /// leaving the buffer empty — the flush path.
    pub fn drain_sorted(&mut self) -> Vec<Entry> {
        let mut out = Vec::with_capacity(self.entries);
        for (key, chain) in std::mem::take(&mut self.chains) {
            for (seqno, value, tombstone) in chain {
                out.push(Entry {
                    key,
                    seqno,
                    value,
                    tombstone,
                });
            }
        }
        self.entries = 0;
        self.min_seqno = u64::MAX;
        self.max_seqno = 0;
        out
    }

    /// Iterate the version chains whose keys fall in `[lo, hi]`, in key
    /// order — the memtable leg of a merged range scan.
    pub fn range(&self, lo: i64, hi: i64) -> impl Iterator<Item = (i64, &[Version])> {
        self.chains
            .range((Bound::Included(lo), Bound::Included(hi)))
            .map(|(&k, chain)| (k, chain.as_slice()))
    }

    /// Iterate all chains in key order (double-ended: the reverse walk
    /// serves `max_timestamp`).
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = (i64, &[Version])> {
        self.chains.iter().map(|(&k, chain)| (k, chain.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_respects_the_read_point() {
        let mut m = MemTable::new();
        m.add(100, 1, 1, false);
        m.add(100, 3, 0, true); // tombstoned at seqno 3
        m.add(100, 5, 1, false); // re-inserted at seqno 5
        assert_eq!(m.visible(100, 0), None);
        assert_eq!(m.visible(100, 1), Some(Some(1)));
        assert_eq!(m.visible(100, 2), Some(Some(1)));
        assert_eq!(m.visible(100, 3), Some(None));
        assert_eq!(m.visible(100, 4), Some(None));
        assert_eq!(m.visible(100, 5), Some(Some(1)));
        assert_eq!(m.visible(999, 5), None);
    }

    #[test]
    fn drain_yields_key_then_seqno_order() {
        let mut m = MemTable::new();
        m.add(200, 2, 0, false);
        m.add(100, 1, 1, false);
        m.add(100, 3, 0, true);
        assert_eq!(m.len(), 3);
        assert_eq!(m.min_seqno(), 1);
        assert_eq!(m.max_seqno(), 3);
        let drained = m.drain_sorted();
        assert!(m.is_empty());
        let keys: Vec<(i64, u64)> = drained.iter().map(|e| (e.key, e.seqno)).collect();
        assert_eq!(keys, vec![(100, 1), (100, 3), (200, 2)]);
    }

    #[test]
    fn range_covers_closed_bounds() {
        let mut m = MemTable::new();
        for k in [10, 20, 30] {
            m.add(k, k as u64, 1, false);
        }
        let keys: Vec<i64> = m.range(10, 20).map(|(k, _)| k).collect();
        assert_eq!(keys, vec![10, 20]);
    }
}
