//! Per-run bloom filters for LSM point lookups.
//!
//! Every immutable run can carry a filter over its keys so the
//! insert-if-not-exists probe (Algorithm 2's `IF NOT EXISTS` guard)
//! skips runs that certainly do not hold the timestamp.  Sized at
//! ~10 bits/key with `k = 4` probes (double hashing off one 64-bit
//! `splitmix64` mix), giving a false-positive rate of roughly 1–2 % —
//! a false positive merely costs one binary search in the run.

/// The `splitmix64` finaliser — a full-avalanche 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Bits allocated per key.
const BITS_PER_KEY: usize = 10;

/// Number of probes per key.
const PROBES: u32 = 4;

/// A fixed-size bloom filter over a run's key set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Bloom {
    words: Vec<u64>,
    nbits: u64,
}

impl Bloom {
    /// Build a filter sized for `n` keys and populate it from `keys`.
    pub fn build<I: IntoIterator<Item = i64>>(n: usize, keys: I) -> Bloom {
        let nbits = (n.max(1) * BITS_PER_KEY).next_multiple_of(64) as u64;
        let mut bloom = Bloom {
            words: vec![0; (nbits / 64) as usize],
            nbits,
        };
        for key in keys {
            bloom.insert(key);
        }
        bloom
    }

    /// The two double-hashing bases for a key.
    fn bases(key: i64) -> (u64, u64) {
        let h = splitmix64(key as u64);
        // Derive the second base from a re-mix so the pair is
        // independent; force it odd to cycle the whole bit space.
        (h, splitmix64(h) | 1)
    }

    fn insert(&mut self, key: i64) {
        let (h1, h2) = Bloom::bases(key);
        for i in 0..PROBES {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.nbits;
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// `false` guarantees the key is absent from the run; `true` says it
    /// *may* be present.
    pub fn may_contain(&self, key: i64) -> bool {
        let (h1, h2) = Bloom::bases(key);
        (0..PROBES).all(|i| {
            let bit = h1.wrapping_add(h2.wrapping_mul(u64::from(i))) % self.nbits;
            self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Filter size in bytes (for storage-overhead accounting).
    pub fn byte_len(&self) -> usize {
        self.words.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let keys: Vec<i64> = (0..1_000).map(|i| i * 37 - 500).collect();
        let bloom = Bloom::build(keys.len(), keys.iter().copied());
        for &k in &keys {
            assert!(bloom.may_contain(k), "false negative for {k}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<i64> = (0..10_000).map(|i| i * 3).collect();
        let bloom = Bloom::build(keys.len(), keys.iter().copied());
        // Probe 10_000 keys known to be absent.
        let fp = (0..10_000)
            .map(|i| i * 3 + 1)
            .filter(|&k| bloom.may_contain(k))
            .count();
        assert!(fp < 500, "false-positive rate too high: {fp}/10000");
    }

    #[test]
    fn empty_filter_rejects_everything_probed() {
        let bloom = Bloom::build(0, std::iter::empty());
        // An empty filter has no bits set, so every probe must miss.
        assert!(!bloom.may_contain(42));
        assert!(!bloom.may_contain(-1));
    }
}
