//! Key-range tombstones — Algorithm 3 trims as `O(1)` logical deletes.
//!
//! A `DeleteOldHistory` pass used to materialise one point tombstone per
//! doomed tuple (`O(k)` memtable writes, later `O(k)` merge work).  A
//! [`RangeTombstone`] replaces the whole pass with a single record: it
//! covers every key in `[lo, hi)` and logically deletes every version
//! written *before* the tombstone's own seqno.  Visibility resolution
//! compares the newest point version of a key against the newest
//! covering tombstone — whichever carries the higher seqno wins, so a
//! key re-inserted after a trim is alive again without any special
//! casing.
//!
//! Tombstones live at the store level (not inside runs): Algorithm 3
//! always trims a prefix of the key space, so a store accumulates one
//! small record per retention pass, consulted by binary search on the
//! seqno axis.  Compaction uses them to garbage-collect covered
//! versions ([`super::compaction`]), dropping whole runs when a
//! tombstone covers a run's entire key range.

/// One key-range tombstone: deletes every version of every key in
/// `[lo, hi)` whose seqno is below [`seqno`](RangeTombstone::seqno).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RangeTombstone {
    /// Inclusive lower key bound.
    pub lo: i64,
    /// Exclusive upper key bound.
    pub hi: i64,
    /// The mutation seqno of the trim itself; versions with a seqno
    /// at or above it (re-inserts) are *not* deleted.
    pub seqno: u64,
}

impl RangeTombstone {
    /// Whether `key` falls inside the covered range.
    pub fn covers(&self, key: i64) -> bool {
        self.lo <= key && key < self.hi
    }

    /// Whether this tombstone logically deletes the version of `key`
    /// written at `version_seqno`.
    pub fn deletes(&self, key: i64, version_seqno: u64) -> bool {
        version_seqno < self.seqno && self.covers(key)
    }
}

/// Seqno of the newest tombstone at or below `at` covering `key`, over
/// a seqno-ascending tombstone list (the store's append order).
pub(crate) fn newest_covering(trims: &[RangeTombstone], key: i64, at: u64) -> Option<u64> {
    let cut = trims.partition_point(|t| t.seqno <= at);
    trims[..cut]
        .iter()
        .rev()
        .find(|t| t.covers(key))
        .map(|t| t.seqno)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tomb(lo: i64, hi: i64, seqno: u64) -> RangeTombstone {
        RangeTombstone { lo, hi, seqno }
    }

    #[test]
    fn coverage_is_half_open() {
        let t = tomb(10, 20, 5);
        assert!(t.covers(10));
        assert!(t.covers(19));
        assert!(!t.covers(20));
        assert!(!t.covers(9));
    }

    #[test]
    fn deletes_only_older_versions() {
        let t = tomb(10, 20, 5);
        assert!(t.deletes(15, 4));
        assert!(!t.deletes(15, 5), "the trim's own seqno is not covered");
        assert!(!t.deletes(15, 6), "re-inserts survive");
        assert!(!t.deletes(25, 1), "outside the range");
    }

    #[test]
    fn newest_covering_respects_the_read_point() {
        let trims = [tomb(1, 10, 3), tomb(1, 20, 7)];
        assert_eq!(newest_covering(&trims, 5, 2), None);
        assert_eq!(newest_covering(&trims, 5, 3), Some(3));
        assert_eq!(newest_covering(&trims, 5, 7), Some(7));
        assert_eq!(newest_covering(&trims, 15, 6), None);
        assert_eq!(newest_covering(&trims, 15, u64::MAX), Some(7));
        assert_eq!(newest_covering(&trims, 25, u64::MAX), None);
    }
}
