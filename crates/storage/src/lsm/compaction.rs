//! Size-tiered → leveled compaction over the run hierarchy.
//!
//! Level 0 is size-tiered: memtable flushes stack up as whole runs,
//! newest first, and once [`L0_RUN_LIMIT`] runs accumulate they are
//! merged into level 1.  Levels 1 and beyond are leveled — one run per
//! level, each allowed [`LEVEL_FANOUT`]× the entries of the previous —
//! and an over-full level cascades its run into the next.
//!
//! Runs are held behind [`Arc`] so three parties can share them without
//! copies: the live store's read path, frozen [`super::LsmSnapshot`]s
//! (which pin the runs they were built over), and the background
//! compaction worker ([`super::scheduler`]) merging them off the event
//! loop.  A run replaced by a merge stays alive for exactly as long as
//! someone still holds a pin.
//!
//! Merges garbage-collect against the store's [`RangeTombstone`] list:
//! a version covered by a newer tombstone is dropped instead of
//! re-written, and a run whose whole key range is covered by one
//! tombstone newer than all its entries is dropped without being read.
//! GC is the one deliberate loss of MVCC history: after a merge drops
//! versions below tombstone seqno `s`, reconstructing a *new* snapshot
//! at a seqno below `s` is best-effort (the [`Levels::gc_floor`] records
//! the boundary) — snapshots pinned *before* the merge keep reading the
//! dropped runs through their own [`Arc`]s and stay exact.
//!
//! The seqno-range discipline falls out of the merge order: every flush
//! carries strictly newer seqnos than all on-level entries, and merges
//! only ever combine *adjacent* sources, so at all times
//! `memtable > L0[0] > L0[1] > … > L1 > L2 > …` holds over seqno
//! ranges, and a point lookup can stop at the first source holding any
//! version at or below the read point.

use super::run::{Entry, Run};
use super::tombstone::RangeTombstone;
use prorp_types::ProrpError;
use std::sync::Arc;

/// Size-tiered trigger: merge L0 into L1 once this many runs stack up.
pub const L0_RUN_LIMIT: usize = 4;

/// Leveled growth factor: level `i ≥ 1` holds up to
/// `base × LEVEL_FANOUT^i` entries before cascading.
pub const LEVEL_FANOUT: usize = 4;

/// Bytes written by one compaction round (the write-amp ledger's input).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CompactionEffort {
    /// Physical bytes written re-encoding merged runs.
    pub bytes_written: usize,
    /// Number of merge operations performed.
    pub merges: usize,
    /// Versions dropped by tombstone garbage collection.
    pub gc_dropped: usize,
    /// Whole runs dropped because one tombstone covered them entirely.
    pub runs_dropped: usize,
}

impl CompactionEffort {
    /// Fold another round's effort into this cumulative total.
    pub fn absorb(&mut self, other: CompactionEffort) {
        self.bytes_written += other.bytes_written;
        self.merges += other.merges;
        self.gc_dropped += other.gc_dropped;
        self.runs_dropped += other.runs_dropped;
    }
}

/// The immutable-run hierarchy: a size-tiered L0 stack over leveled
/// single-run levels.  Cloning is cheap (the runs are shared `Arc`s) —
/// the background scheduler publishes clones as read images.
#[derive(Clone, Debug, Default)]
pub struct Levels {
    /// Level-0 runs, newest first.
    l0: Vec<Arc<Run>>,
    /// Levels 1…, one run each (index 0 is L1).
    leveled: Vec<Arc<Run>>,
    /// Whether newly built runs carry bloom filters.
    bloom: bool,
    /// Leveled capacity base: L`i` holds `base × LEVEL_FANOUT^(i-1)`.
    base: usize,
    /// Largest tombstone seqno whose covered versions were dropped by a
    /// merge (0 before any GC).  Snapshots *reconstructed* below this
    /// seqno are best-effort; snapshots pinned earlier are unaffected.
    gc_floor: u64,
}

impl Levels {
    /// An empty hierarchy.  `base` is the L1 entry capacity (typically
    /// the memtable capacity × [`L0_RUN_LIMIT`]); `bloom` enables
    /// per-run filters on every run built from here on.
    pub fn new(base: usize, bloom: bool) -> Self {
        Levels {
            l0: Vec::new(),
            leveled: Vec::new(),
            bloom,
            base: base.max(1),
            gc_floor: 0,
        }
    }

    /// Accept a freshly flushed run at the front of L0, then restore the
    /// shape invariants (L0 size-tiered trigger, leveled cascades),
    /// garbage-collecting against `trims` wherever a merge re-writes
    /// entries anyway.
    pub fn push_flush(
        &mut self,
        run: Arc<Run>,
        trims: &[RangeTombstone],
    ) -> Result<CompactionEffort, ProrpError> {
        debug_assert!(
            self.newest_seqno_bound() < run.min_seqno() || run.is_empty(),
            "flushed run must carry strictly newer seqnos than every level"
        );
        self.l0.insert(0, run);
        self.maintain(trims)
    }

    /// Install a base run (restore path): becomes level 1, cascading
    /// deeper as later flushes arrive.
    pub fn install_base(&mut self, run: Run) {
        debug_assert!(self.l0.is_empty() && self.leveled.is_empty());
        if !run.is_empty() {
            self.leveled.push(Arc::new(run));
        }
    }

    /// Non-empty runs in newest→oldest seqno order — the point-lookup
    /// probe order (vacated levels are skipped).
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &Arc<Run>> {
        self.l0
            .iter()
            .chain(self.leveled.iter())
            .filter(|r| !r.is_empty())
    }

    /// Number of non-empty runs across all levels.
    pub fn run_count(&self) -> usize {
        self.iter_newest_first().count()
    }

    /// Number of occupied levels (L0 counts once when non-empty).
    pub fn depth(&self) -> usize {
        usize::from(!self.l0.is_empty()) + self.leveled.iter().filter(|r| !r.is_empty()).count()
    }

    /// Total entries across all runs (all versions, dead included).
    pub fn entry_count(&self) -> usize {
        self.iter_newest_first().map(|r| r.len()).sum()
    }

    /// Total physical bytes across all runs.
    pub fn page_bytes(&self) -> usize {
        self.iter_newest_first().map(|r| r.page_bytes()).sum()
    }

    /// Largest tombstone seqno whose effects have been garbage-collected
    /// (0 before any GC).
    pub fn gc_floor(&self) -> u64 {
        self.gc_floor
    }

    /// Largest seqno stored in any run (0 when empty).
    fn newest_seqno_bound(&self) -> u64 {
        self.iter_newest_first()
            .map(|r| r.max_seqno())
            .max()
            .unwrap_or(0)
    }

    /// Restore the shape invariants after a flush.
    fn maintain(&mut self, trims: &[RangeTombstone]) -> Result<CompactionEffort, ProrpError> {
        let mut effort = CompactionEffort::default();
        // Size-tiered: collapse L0 into level 1 once the stack is full.
        if self.l0.len() >= L0_RUN_LIMIT {
            let mut sources: Vec<Arc<Run>> = self.l0.drain(..).collect();
            if let Some(l1) = self.leveled.first_mut() {
                sources.push(std::mem::take(l1));
            }
            let merged = self.merge(&sources, trims, &mut effort)?;
            match self.leveled.first_mut() {
                Some(l1) => *l1 = merged,
                None => self.leveled.push(merged),
            }
        }
        // Leveled: cascade any over-full level down into the next,
        // vacating it.  A demotion into an empty or missing level is a
        // free move (no rewrite); a demotion into an occupied level is
        // a merge charged to the write-amp ledger.
        let mut i = 0;
        while i < self.leveled.len() {
            let cap = self
                .base
                .saturating_mul(LEVEL_FANOUT.saturating_pow(i as u32));
            if self.leveled[i].len() > cap {
                let upper = std::mem::take(&mut self.leveled[i]);
                if i + 1 >= self.leveled.len() {
                    self.leveled.push(upper);
                } else if self.leveled[i + 1].is_empty() {
                    self.leveled[i + 1] = upper;
                } else {
                    let lower = std::mem::take(&mut self.leveled[i + 1]);
                    let merged = self.merge(&[upper, lower], trims, &mut effort)?;
                    self.leveled[i + 1] = merged;
                }
            }
            i += 1;
        }
        Ok(effort)
    }

    /// Merge `sources` into one freshly built run, garbage-collecting
    /// tombstone-covered versions and charging the effort ledger.
    fn merge(
        &mut self,
        sources: &[Arc<Run>],
        trims: &[RangeTombstone],
        effort: &mut CompactionEffort,
    ) -> Result<Arc<Run>, ProrpError> {
        let before: usize = sources.iter().map(|r| r.len()).sum();
        let (merged, runs_dropped) = merge_runs_gc(sources, trims);
        let dropped = before - merged.len();
        if dropped > 0 {
            // Some version below the newest applicable tombstone is gone:
            // raise the floor under which snapshot reconstruction is
            // best-effort.
            let floor = trims
                .iter()
                .map(|t| t.seqno)
                .max()
                .expect("GC dropped entries, so a tombstone exists");
            self.gc_floor = self.gc_floor.max(floor);
        }
        let (run, bytes) = Run::build(merged, self.bloom)?;
        effort.bytes_written += bytes;
        effort.merges += 1;
        effort.gc_dropped += dropped;
        effort.runs_dropped += runs_dropped;
        Ok(Arc::new(run))
    }

    /// Audit the hierarchy's structural invariants (strict-invariants
    /// builds and property tests).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        assert!(self.l0.len() < L0_RUN_LIMIT, "L0 stack over the trigger");
        let mut prev_min = u64::MAX;
        for (i, run) in self.iter_newest_first().enumerate() {
            assert!(
                run.entries()
                    .windows(2)
                    .all(|w| (w[0].key, w[0].seqno) < (w[1].key, w[1].seqno)),
                "run {i} not (key, seqno)-sorted"
            );
            if run.is_empty() {
                continue;
            }
            assert!(
                run.max_seqno() < prev_min,
                "seqno ranges must be strictly ordered newest→oldest \
                 (run {i}: max {} !< previous min {prev_min})",
                run.max_seqno()
            );
            prev_min = run.min_seqno();
        }
    }
}

/// Merge runs into one `(key, seqno)`-sorted entry vector, dropping
/// versions a tombstone newer than them covers.  A run whose entire key
/// range sits under one tombstone newer than all its entries is skipped
/// wholesale (the second return value counts those).  Versions *not*
/// under any newer tombstone are all kept (MVCC retention above the GC
/// floor).
fn merge_runs_gc(runs: &[Arc<Run>], trims: &[RangeTombstone]) -> (Vec<Entry>, usize) {
    let total = runs.iter().map(|r| r.len()).sum();
    let mut out: Vec<Entry> = Vec::with_capacity(total);
    let mut runs_dropped = 0usize;
    for run in runs {
        if run.is_empty() {
            continue;
        }
        if trims
            .iter()
            .any(|t| t.seqno > run.max_seqno() && t.lo <= run.min_key() && run.max_key() < t.hi)
        {
            runs_dropped += 1;
            continue;
        }
        out.extend(
            run.entries()
                .iter()
                .filter(|e| !trims.iter().any(|t| t.deletes(e.key, e.seqno)))
                .copied(),
        );
    }
    // Each source is sorted; the concatenation is not.  A stable
    // comparison sort on (key, seqno) restores the global order
    // deterministically.
    out.sort_unstable_by_key(|e| (e.key, e.seqno));
    (out, runs_dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_TRIMS: &[RangeTombstone] = &[];

    fn run_of(range: std::ops::Range<i64>, seqno_base: u64) -> Arc<Run> {
        let entries: Vec<Entry> = range
            .clone()
            .map(|k| Entry {
                key: k,
                seqno: seqno_base + (k - range.start) as u64,
                value: 1,
                tombstone: false,
            })
            .collect();
        Arc::new(Run::build(entries, false).unwrap().0)
    }

    #[test]
    fn l0_collapses_at_the_trigger() {
        let mut levels = Levels::new(64, false);
        let mut seqno = 1;
        for i in 0..L0_RUN_LIMIT {
            let run = run_of((i as i64) * 10..(i as i64) * 10 + 5, seqno);
            seqno += 5;
            levels.push_flush(run, NO_TRIMS).unwrap();
        }
        // The 4th flush triggered the size-tiered merge: L0 empty, one
        // leveled run holding all 20 entries.
        assert_eq!(levels.run_count(), 1);
        assert_eq!(levels.entry_count(), 20);
        levels.check_invariants();
    }

    #[test]
    fn cascade_keeps_seqno_ranges_ordered() {
        let mut levels = Levels::new(8, true);
        let mut seqno = 1;
        for i in 0..20 {
            let run = run_of(i * 4..i * 4 + 4, seqno);
            seqno += 4;
            levels.push_flush(run, NO_TRIMS).unwrap();
            levels.check_invariants();
        }
        assert_eq!(levels.entry_count(), 80);
        assert!(levels.depth() >= 2, "80 entries over base 8 must cascade");
    }

    #[test]
    fn merge_keeps_all_versions_above_the_floor() {
        let a = Arc::new(
            Run::build(
                vec![Entry {
                    key: 5,
                    seqno: 10,
                    value: 1,
                    tombstone: true,
                }],
                false,
            )
            .unwrap()
            .0,
        );
        let b = Arc::new(
            Run::build(
                vec![Entry {
                    key: 5,
                    seqno: 2,
                    value: 1,
                    tombstone: false,
                }],
                false,
            )
            .unwrap()
            .0,
        );
        let (merged, dropped) = merge_runs_gc(&[a, b], NO_TRIMS);
        assert_eq!(
            merged.len(),
            2,
            "compaction must not drop shadowed versions without a tombstone"
        );
        assert_eq!(dropped, 0);
        assert_eq!((merged[0].seqno, merged[1].seqno), (2, 10));
    }

    #[test]
    fn gc_drops_covered_versions_and_whole_runs() {
        let covered = run_of(0..4, 1); // seqnos 1..=4, keys 0..=3
        let partial = run_of(2..8, 5); // seqnos 5..=10, keys 2..=7
        let trims = [RangeTombstone {
            lo: 0,
            hi: 5,
            seqno: 20,
        }];
        let (merged, dropped_runs) = merge_runs_gc(&[partial, covered], &trims);
        assert_eq!(dropped_runs, 1, "the fully covered run is skipped");
        let keys: Vec<i64> = merged.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![5, 6, 7], "covered keys 2..=4 are dropped");
    }

    #[test]
    fn gc_keeps_versions_newer_than_the_tombstone() {
        let reinserted = run_of(1..3, 30); // seqnos 30, 31 > trim seqno
        let trims = [RangeTombstone {
            lo: 0,
            hi: 10,
            seqno: 20,
        }];
        let (merged, dropped_runs) = merge_runs_gc(&[reinserted], &trims);
        assert_eq!(dropped_runs, 0);
        assert_eq!(merged.len(), 2, "re-inserts after the trim survive GC");
    }

    #[test]
    fn gc_floor_rises_when_a_merge_drops_versions() {
        let mut levels = Levels::new(4, false);
        let mut seqno = 1;
        // Fill L0 to the trigger with keys under one big tombstone.
        let trims = [RangeTombstone {
            lo: 0,
            hi: 1_000,
            seqno: 500,
        }];
        for i in 0..L0_RUN_LIMIT {
            let run = run_of((i as i64) * 10..(i as i64) * 10 + 4, seqno);
            seqno += 4;
            let effort = levels.push_flush(run, &trims).unwrap();
            if i + 1 == L0_RUN_LIMIT {
                assert!(effort.gc_dropped > 0 || effort.runs_dropped > 0);
            }
        }
        assert_eq!(levels.gc_floor(), 500);
        assert_eq!(levels.entry_count(), 0, "everything was covered");
        levels.check_invariants();
    }
}
