//! Size-tiered → leveled compaction over the run hierarchy.
//!
//! Level 0 is size-tiered: memtable flushes stack up as whole runs,
//! newest first, and once [`L0_RUN_LIMIT`] runs accumulate they are
//! merged into level 1.  Levels 1 and beyond are leveled — one run per
//! level, each allowed [`LEVEL_FANOUT`]× the entries of the previous —
//! and an over-full level cascades its run into the next.  Compaction
//! merges *all* versions (full MVCC retention: a frozen snapshot must
//! keep resolving against the merged runs), so the only growth beyond
//! the live set is tombstones plus their shadowed versions — bounded at
//! roughly two versions per trimmed tuple under the Algorithm-2/3
//! workload.
//!
//! The seqno-range discipline falls out of the merge order: every flush
//! carries strictly newer seqnos than all on-level entries, and merges
//! only ever combine *adjacent* sources, so at all times
//! `memtable > L0[0] > L0[1] > … > L1 > L2 > …` holds over seqno
//! ranges, and a point lookup can stop at the first source holding any
//! version at or below the read point.

use super::run::{Entry, Run};
use prorp_types::ProrpError;

/// Size-tiered trigger: merge L0 into L1 once this many runs stack up.
pub const L0_RUN_LIMIT: usize = 4;

/// Leveled growth factor: level `i ≥ 1` holds up to
/// `base × LEVEL_FANOUT^i` entries before cascading.
pub const LEVEL_FANOUT: usize = 4;

/// Bytes written by one compaction round (the write-amp ledger's input).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CompactionEffort {
    /// Physical bytes written re-encoding merged runs.
    pub bytes_written: usize,
    /// Number of merge operations performed.
    pub merges: usize,
}

/// The immutable-run hierarchy: a size-tiered L0 stack over leveled
/// single-run levels.
#[derive(Clone, Debug, Default)]
pub struct Levels {
    /// Level-0 runs, newest first.
    l0: Vec<Run>,
    /// Levels 1…, one run each (index 0 is L1).
    leveled: Vec<Run>,
    /// Whether newly built runs carry bloom filters.
    bloom: bool,
    /// Leveled capacity base: L`i` holds `base × LEVEL_FANOUT^(i-1)`.
    base: usize,
}

impl Levels {
    /// An empty hierarchy.  `base` is the L1 entry capacity (typically
    /// the memtable capacity × [`L0_RUN_LIMIT`]); `bloom` enables
    /// per-run filters on every run built from here on.
    pub fn new(base: usize, bloom: bool) -> Self {
        Levels {
            l0: Vec::new(),
            leveled: Vec::new(),
            bloom,
            base: base.max(1),
        }
    }

    /// Accept a freshly flushed run at the front of L0, then restore the
    /// shape invariants (L0 size-tiered trigger, leveled cascades).
    pub fn push_flush(&mut self, run: Run) -> Result<CompactionEffort, ProrpError> {
        debug_assert!(
            self.newest_seqno_bound() < run.min_seqno() || run.is_empty(),
            "flushed run must carry strictly newer seqnos than every level"
        );
        self.l0.insert(0, run);
        self.maintain()
    }

    /// Install a base run (restore path): becomes level 1, cascading
    /// deeper as later flushes arrive.
    pub fn install_base(&mut self, run: Run) {
        debug_assert!(self.l0.is_empty() && self.leveled.is_empty());
        if !run.is_empty() {
            self.leveled.push(run);
        }
    }

    /// Non-empty runs in newest→oldest seqno order — the point-lookup
    /// probe order (vacated levels are skipped).
    pub fn iter_newest_first(&self) -> impl Iterator<Item = &Run> {
        self.l0
            .iter()
            .chain(self.leveled.iter())
            .filter(|r| !r.is_empty())
    }

    /// Number of non-empty runs across all levels.
    pub fn run_count(&self) -> usize {
        self.iter_newest_first().count()
    }

    /// Number of occupied levels (L0 counts once when non-empty).
    pub fn depth(&self) -> usize {
        usize::from(!self.l0.is_empty()) + self.leveled.iter().filter(|r| !r.is_empty()).count()
    }

    /// Total entries across all runs (all versions, dead included).
    pub fn entry_count(&self) -> usize {
        self.iter_newest_first().map(Run::len).sum()
    }

    /// Total physical bytes across all runs.
    pub fn page_bytes(&self) -> usize {
        self.iter_newest_first().map(Run::page_bytes).sum()
    }

    /// Largest seqno stored in any run (0 when empty).
    fn newest_seqno_bound(&self) -> u64 {
        self.iter_newest_first()
            .map(Run::max_seqno)
            .max()
            .unwrap_or(0)
    }

    /// Restore the shape invariants after a flush.
    fn maintain(&mut self) -> Result<CompactionEffort, ProrpError> {
        let mut effort = CompactionEffort::default();
        // Size-tiered: collapse L0 into level 1 once the stack is full.
        if self.l0.len() >= L0_RUN_LIMIT {
            let mut sources: Vec<Run> = self.l0.drain(..).collect();
            if let Some(l1) = self.leveled.first_mut() {
                sources.push(std::mem::take(l1));
            }
            let merged = merge_runs(&sources);
            let (run, bytes) = Run::build(merged, self.bloom)?;
            effort.bytes_written += bytes;
            effort.merges += 1;
            match self.leveled.first_mut() {
                Some(l1) => *l1 = run,
                None => self.leveled.push(run),
            }
        }
        // Leveled: cascade any over-full level down into the next,
        // vacating it.  A demotion into an empty or missing level is a
        // free move (no rewrite); a demotion into an occupied level is
        // a merge charged to the write-amp ledger.
        let mut i = 0;
        while i < self.leveled.len() {
            let cap = self
                .base
                .saturating_mul(LEVEL_FANOUT.saturating_pow(i as u32));
            if self.leveled[i].len() > cap {
                let upper = std::mem::take(&mut self.leveled[i]);
                if i + 1 >= self.leveled.len() {
                    self.leveled.push(upper);
                } else if self.leveled[i + 1].is_empty() {
                    self.leveled[i + 1] = upper;
                } else {
                    let lower = std::mem::take(&mut self.leveled[i + 1]);
                    let merged = merge_runs(&[upper, lower]);
                    let (run, bytes) = Run::build(merged, self.bloom)?;
                    effort.bytes_written += bytes;
                    effort.merges += 1;
                    self.leveled[i + 1] = run;
                }
            }
            i += 1;
        }
        Ok(effort)
    }

    /// Audit the hierarchy's structural invariants (strict-invariants
    /// builds and property tests).
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        assert!(self.l0.len() < L0_RUN_LIMIT, "L0 stack over the trigger");
        let mut prev_min = u64::MAX;
        for (i, run) in self.iter_newest_first().enumerate() {
            assert!(
                run.entries()
                    .windows(2)
                    .all(|w| (w[0].key, w[0].seqno) < (w[1].key, w[1].seqno)),
                "run {i} not (key, seqno)-sorted"
            );
            if run.is_empty() {
                continue;
            }
            assert!(
                run.max_seqno() < prev_min,
                "seqno ranges must be strictly ordered newest→oldest \
                 (run {i}: max {} !< previous min {prev_min})",
                run.max_seqno()
            );
            prev_min = run.min_seqno();
        }
    }
}

/// Merge runs into one `(key, seqno)`-sorted entry vector, keeping
/// every version (full MVCC retention).
fn merge_runs(runs: &[Run]) -> Vec<Entry> {
    let total = runs.iter().map(Run::len).sum();
    let mut out: Vec<Entry> = Vec::with_capacity(total);
    for run in runs {
        out.extend_from_slice(run.entries());
    }
    // Each source is sorted; the concatenation is not.  A stable
    // comparison sort on (key, seqno) restores the global order
    // deterministically.
    out.sort_unstable_by_key(|e| (e.key, e.seqno));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_of(range: std::ops::Range<i64>, seqno_base: u64) -> Run {
        let entries: Vec<Entry> = range
            .clone()
            .map(|k| Entry {
                key: k,
                seqno: seqno_base + (k - range.start) as u64,
                value: 1,
                tombstone: false,
            })
            .collect();
        Run::build(entries, false).unwrap().0
    }

    #[test]
    fn l0_collapses_at_the_trigger() {
        let mut levels = Levels::new(64, false);
        let mut seqno = 1;
        for i in 0..L0_RUN_LIMIT {
            let run = run_of((i as i64) * 10..(i as i64) * 10 + 5, seqno);
            seqno += 5;
            levels.push_flush(run).unwrap();
        }
        // The 4th flush triggered the size-tiered merge: L0 empty, one
        // leveled run holding all 20 entries.
        assert_eq!(levels.run_count(), 1);
        assert_eq!(levels.entry_count(), 20);
        levels.check_invariants();
    }

    #[test]
    fn cascade_keeps_seqno_ranges_ordered() {
        let mut levels = Levels::new(8, true);
        let mut seqno = 1;
        for i in 0..20 {
            let run = run_of(i * 4..i * 4 + 4, seqno);
            seqno += 4;
            levels.push_flush(run).unwrap();
            levels.check_invariants();
        }
        assert_eq!(levels.entry_count(), 80);
        assert!(levels.depth() >= 2, "80 entries over base 8 must cascade");
    }

    #[test]
    fn merge_keeps_all_versions() {
        let a = Run::build(
            vec![Entry {
                key: 5,
                seqno: 10,
                value: 1,
                tombstone: true,
            }],
            false,
        )
        .unwrap()
        .0;
        let b = Run::build(
            vec![Entry {
                key: 5,
                seqno: 2,
                value: 1,
                tombstone: false,
            }],
            false,
        )
        .unwrap()
        .0;
        let merged = merge_runs(&[a, b]);
        assert_eq!(
            merged.len(),
            2,
            "compaction must not drop shadowed versions"
        );
        assert_eq!((merged[0].seqno, merged[1].seqno), (2, 10));
    }
}
