//! Immutable sorted runs — the on-"disk" leg of the LSM tree.
//!
//! A run is a `(key, seqno)`-sorted vector of MVCC entries produced by
//! a memtable flush or a compaction merge.  At build time the entries
//! are serialised through the existing slotted-page machinery
//! ([`crate::page`]) — the same 8-KiB pages the B+Tree backend and the
//! backup stream use — and the encoded size is charged to the write-
//! amplification ledger.  The decoded entries stay resident (the run's
//! "page cache"); an optional bloom filter short-circuits point
//! lookups.

use super::bloom::Bloom;
use super::memtable::Visible;
use crate::page::{self, Record};
use prorp_types::ProrpError;

/// How many low bits of the packed page value carry flags: bit 0 is the
/// event type, bit 1 the tombstone marker; the seqno lives above them.
const FLAG_BITS: u32 = 2;

/// One MVCC version of one history tuple.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Entry {
    /// `time_snapshot` — the tuple key.
    pub key: i64,
    /// Mutation sequence number that wrote this version.
    pub seqno: u64,
    /// `event_type` (1 = start, 0 = end); meaningless for tombstones.
    pub value: i64,
    /// Whether this version deletes the key.
    pub tombstone: bool,
}

impl Entry {
    /// Pack this entry into a slotted-page record:
    /// `value = seqno << 2 | tombstone << 1 | event_type`.
    fn to_record(self) -> Record {
        debug_assert!(self.seqno < 1 << (63 - FLAG_BITS), "seqno overflow");
        let packed = ((self.seqno as i64) << FLAG_BITS)
            | (i64::from(self.tombstone) << 1)
            | (self.value & 1);
        Record {
            key: self.key,
            value: packed,
        }
    }

    /// Unpack a slotted-page record written by
    /// [`to_record`](Entry::to_record).
    fn from_record(r: Record) -> Entry {
        Entry {
            key: r.key,
            seqno: (r.value >> FLAG_BITS) as u64,
            value: r.value & 1,
            tombstone: r.value & 0b10 != 0,
        }
    }
}

/// An immutable sorted run.
#[derive(Clone, Debug)]
pub struct Run {
    /// `(key, seqno)`-sorted entries (the resident page cache).
    entries: Vec<Entry>,
    /// Smallest seqno in the run.
    min_seqno: u64,
    /// Largest seqno in the run.
    max_seqno: u64,
    /// Optional per-run bloom filter over the key set.
    bloom: Option<Bloom>,
    /// Physical size when serialised to 8-KiB slotted pages.
    page_bytes: usize,
}

impl Default for Run {
    /// An empty run — the placeholder for a vacated level.
    fn default() -> Run {
        Run {
            entries: Vec::new(),
            min_seqno: u64::MAX,
            max_seqno: 0,
            bloom: None,
            page_bytes: 0,
        }
    }
}

impl Run {
    /// Smallest key in the run (`i64::MAX` when empty) — the whole-run
    /// drop check during garbage-collecting compaction.
    pub fn min_key(&self) -> i64 {
        self.entries.first().map_or(i64::MAX, |e| e.key)
    }

    /// Largest key in the run (`i64::MIN` when empty).
    pub fn max_key(&self) -> i64 {
        self.entries.last().map_or(i64::MIN, |e| e.key)
    }
}

impl Run {
    /// Build a run from `(key, seqno)`-sorted entries, serialising them
    /// through the page machinery.  Returns the run and the number of
    /// physical bytes written (for the write-amplification ledger).
    pub fn build(entries: Vec<Entry>, with_bloom: bool) -> Result<(Run, usize), ProrpError> {
        debug_assert!(
            entries
                .windows(2)
                .all(|w| (w[0].key, w[0].seqno) < (w[1].key, w[1].seqno)),
            "run entries must be strictly (key, seqno)-sorted"
        );
        let records: Vec<Record> = entries.iter().map(|e| e.to_record()).collect();
        let pages = page::encode_pages(&records)?;
        let page_bytes: usize = pages.iter().map(|p| p.len()).sum();
        // Round-trip through the decoder in debug builds: the page
        // format, not the resident vector, is the source of truth.
        debug_assert_eq!(
            page::decode_pages(pages.iter().map(|p| p.as_ref()))
                .expect("pages we just encoded must decode")
                .into_iter()
                .map(Entry::from_record)
                .collect::<Vec<_>>(),
            entries,
            "page round-trip changed the run"
        );
        let bloom = with_bloom.then(|| Bloom::build(entries.len(), entries.iter().map(|e| e.key)));
        let (min_seqno, max_seqno) = entries.iter().fold((u64::MAX, 0), |(lo, hi), e| {
            (lo.min(e.seqno), hi.max(e.seqno))
        });
        Ok((
            Run {
                entries,
                min_seqno,
                max_seqno,
                bloom,
                page_bytes,
            },
            page_bytes,
        ))
    }

    /// Newest version of `key` at or below `at`, when present: bloom
    /// probe, then binary search on the sorted entries.
    pub fn visible(&self, key: i64, at: u64) -> Visible {
        self.visible_seq(key, at).map(|(_, v)| v)
    }

    /// Like [`visible`](Run::visible), but also yields the winning
    /// version's seqno — range-tombstone resolution compares it against
    /// the newest covering trim.
    pub fn visible_seq(&self, key: i64, at: u64) -> Option<(u64, Option<i64>)> {
        if let Some(bloom) = &self.bloom {
            if !bloom.may_contain(key) {
                return None;
            }
        }
        let lo = self.entries.partition_point(|e| e.key < key);
        let hi = self.entries[lo..].partition_point(|e| e.key == key && e.seqno <= at) + lo;
        if hi > lo {
            let e = &self.entries[hi - 1];
            Some((e.seqno, (!e.tombstone).then_some(e.value)))
        } else {
            None
        }
    }

    /// The `(key, seqno)`-sorted entries.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Index of the first entry with `key >= lo`.
    pub fn lower_bound(&self, lo: i64) -> usize {
        self.entries.partition_point(|e| e.key < lo)
    }

    /// Number of entries (all versions, dead included).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the run holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Smallest seqno in the run (`u64::MAX` when empty).
    pub fn min_seqno(&self) -> u64 {
        self.min_seqno
    }

    /// Largest seqno in the run (0 when empty).
    pub fn max_seqno(&self) -> u64 {
        self.max_seqno
    }

    /// Physical serialised size in bytes.
    pub fn page_bytes(&self) -> usize {
        self.page_bytes
    }

    /// Bloom-filter size in bytes (0 when the run carries none).
    pub fn bloom_bytes(&self) -> usize {
        self.bloom.as_ref().map_or(0, Bloom::byte_len)
    }

    /// Whether the run carries a bloom filter.
    pub fn has_bloom(&self) -> bool {
        self.bloom.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: i64, seqno: u64, value: i64, tombstone: bool) -> Entry {
        Entry {
            key,
            seqno,
            value,
            tombstone,
        }
    }

    #[test]
    fn record_packing_round_trips() {
        for e in [
            entry(0, 0, 0, false),
            entry(-5_000, 7, 1, false),
            entry(86_400, 123_456, 0, true),
            entry(i64::MAX / 4, 1 << 40, 1, true),
        ] {
            assert_eq!(Entry::from_record(e.to_record()), e);
        }
    }

    #[test]
    fn visible_picks_newest_version_at_or_below() {
        let entries = vec![
            entry(100, 1, 1, false),
            entry(100, 4, 0, true),
            entry(200, 2, 0, false),
        ];
        let (run, bytes) = Run::build(entries, true).unwrap();
        assert_eq!(bytes, page::PAGE_SIZE);
        assert_eq!(run.visible(100, 0), None);
        assert_eq!(run.visible(100, 1), Some(Some(1)));
        assert_eq!(run.visible(100, 3), Some(Some(1)));
        assert_eq!(run.visible(100, 4), Some(None));
        assert_eq!(run.visible(200, 9), Some(Some(0)));
        assert_eq!(run.visible(150, 9), None);
        assert_eq!(run.min_seqno(), 1);
        assert_eq!(run.max_seqno(), 4);
        assert!(run.has_bloom());
        assert!(run.bloom_bytes() > 0);
    }

    #[test]
    fn bloomless_run_still_answers_lookups() {
        let (run, _) = Run::build(vec![entry(10, 1, 1, false)], false).unwrap();
        assert!(!run.has_bloom());
        assert_eq!(run.bloom_bytes(), 0);
        assert_eq!(run.visible(10, 1), Some(Some(1)));
        assert_eq!(run.visible(11, 1), None);
    }

    #[test]
    fn empty_run_is_legal() {
        let (run, bytes) = Run::build(Vec::new(), true).unwrap();
        assert!(run.is_empty());
        assert_eq!(bytes, 0);
        assert_eq!(run.visible(1, u64::MAX), None);
    }
}
