//! The LSM/MVCC history engine — `sys.pause_resume_history` on a
//! log-structured merge tree with snapshot time-travel.
//!
//! [`LsmHistory`] is a drop-in alternative to the B+Tree-backed
//! [`crate::HistoryTable`]: same Algorithm 2/3 semantics, same window
//! aggregates, same mutation-version discipline — the testkit's
//! `btree ≡ lsm` differential oracles hold both to bit-identical
//! observable behaviour.  What the LSM shape buys on top:
//!
//! * **MVCC versions + monotonic seqnos** — every mutation (insert or
//!   trim) is stamped with the store's sequence number, which *is* the
//!   mutation version engines already key prediction caches on.
//!   Nothing is overwritten in place, so [`LsmHistory::snapshot`] can
//!   freeze the tuple set visible at any past seqno, and the
//!   [`TimeTravel`] mapping resolves simulated timestamps to seqnos for
//!   "as of T" post-mortems (fjall-style `snapshot(seqno)`,
//!   oxibase-style `AS OF`).
//! * **Write path**: mutations append to an embedded write-ahead log
//!   and an in-memory [`memtable`]; at [`LsmConfig::memtable_cap`]
//!   buffered versions the memtable flushes into an immutable sorted
//!   [`run`] serialised through the existing 8-KiB slotted-page
//!   machinery, and the WAL truncates (its coverage is exactly the
//!   unflushed tail).  Runs compact size-tiered at level 0 and leveled
//!   below ([`compaction`]) — inline in
//!   [`CompactionMode::Deterministic`], or on a shared
//!   [`CompactionScheduler`] worker in
//!   [`CompactionMode::Background`], where the event-loop path only
//!   enqueues ([`scheduler`]).  Every physical byte written is charged
//!   to a write-amplification ledger ([`LsmMetrics`]).
//! * **Trim path**: an Algorithm 3 retention pass records one
//!   [`RangeTombstone`] — `O(1)` logical work per pass instead of one
//!   point tombstone per doomed tuple ([`tombstone`]).  Compaction
//!   garbage-collects covered versions lazily, dropping whole runs
//!   when one tombstone covers a run's entire key range.
//! * **Read path**: the hot [`window aggregates`](LsmHistory::login_window_stats)
//!   are served from sorted visible-set caches (`keys`/`vals`/`logins`)
//!   maintained incrementally on every mutation — the same
//!   partition-point arithmetic the B+Tree backend's login cache uses,
//!   so live predictions never pay a multi-run merge.  Only snapshot
//!   reconstruction and the invariant audit still k-way-merge the
//!   memtable and runs, resolving per-key visibility (point versions
//!   *and* range tombstones) at the read seqno.

pub mod bloom;
pub mod compaction;
pub mod memtable;
pub mod run;
pub mod scheduler;
pub mod snapshot;
pub mod tombstone;

pub use scheduler::{CompactionMode, CompactionScheduler};
pub use snapshot::{LsmSnapshot, TimeTravel};
pub use tombstone::RangeTombstone;

use crate::history::{DeleteOutcome, SlotIndex, StorageStats};
use crate::page::{self, Record};
use crate::wal::{WalRecord, WriteAheadLog};
use compaction::{CompactionEffort, Levels};
use memtable::{visible_in_chain_seq, MemTable};
use prorp_types::{ActivityEvent, EventKind, ProrpError, Seconds, Timestamp};
use run::{Entry, Run};
use scheduler::StoreHandle;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Tuning knobs for one [`LsmHistory`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LsmConfig {
    /// Memtable flush trigger, in buffered versions.  Small by default
    /// (32) so a 35-day simulated history (~600 mutations) exercises
    /// flushes and several compaction rounds.
    pub memtable_cap: usize,
    /// Whether runs carry per-run bloom filters.
    pub bloom_filters: bool,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_cap: 32,
            bloom_filters: true,
        }
    }
}

/// Cumulative write/compaction accounting for one store.
///
/// Deterministic across compaction modes once a barrier has drained the
/// background worker — wall-clock figures live outside this struct
/// ([`LsmHistory::compaction_stall_ns`],
/// [`LsmHistory::offloaded_compaction_ns`]) precisely so this one can
/// stay `Eq`-comparable.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LsmMetrics {
    /// Logical bytes written: 16 B per insert and 16 B per trimmed
    /// tuple — the workload the caller requested, independent of how
    /// the store encodes it (a trim pass *physically* writes only one
    /// range-tombstone record, however many tuples it covers).
    pub logical_write_bytes: usize,
    /// Physical bytes written by memtable flushes.
    pub flushed_bytes: usize,
    /// Physical bytes re-written by compaction merges.
    pub compacted_bytes: usize,
    /// Bytes appended to the write-ahead log (before truncations).
    pub wal_appended_bytes: usize,
    /// Number of memtable flushes.
    pub flushes: usize,
    /// Number of compaction merges.
    pub compactions: usize,
    /// Range tombstones recorded by Algorithm 3 passes.
    pub range_tombstones: usize,
    /// Versions dropped by tombstone garbage collection at merges.
    pub gc_dropped: usize,
    /// Whole runs dropped because one tombstone covered them entirely.
    pub runs_dropped: usize,
}

impl LsmMetrics {
    /// Write amplification: physical bytes written (flush + compaction)
    /// per logical byte.  `0.0` before any write.
    pub fn write_amplification(&self) -> f64 {
        if self.logical_write_bytes == 0 {
            0.0
        } else {
            (self.flushed_bytes + self.compacted_bytes) as f64 / self.logical_write_bytes as f64
        }
    }

    fn absorb_effort(&mut self, effort: CompactionEffort) {
        self.compacted_bytes += effort.bytes_written;
        self.compactions += effort.merges;
        self.gc_dropped += effort.gc_dropped;
        self.runs_dropped += effort.runs_dropped;
    }
}

/// Where a store's run hierarchy is maintained.
#[derive(Debug)]
enum RunStore {
    /// Compaction runs inline at each flush (the deterministic mode).
    Inline(Levels),
    /// Flushes enqueue to a [`CompactionScheduler`] worker; the
    /// foreground keeps not-yet-applied runs readable in `pending`.
    Background(BackgroundStore),
}

/// Foreground state of a background-compacted store.
#[derive(Debug)]
struct BackgroundStore {
    handle: StoreHandle,
    /// `(flush index, run)` pairs sent but possibly not yet applied by
    /// the worker, oldest first.  Lazily pruned against the published
    /// applied count.
    pending: VecDeque<(u64, Arc<Run>)>,
    /// Flush messages sent so far.
    sent: u64,
}

impl BackgroundStore {
    /// Drop pending runs the worker has already incorporated.
    fn prune(&mut self) {
        let applied = self.handle.applied();
        while self.pending.front().is_some_and(|&(idx, _)| idx < applied) {
            self.pending.pop_front();
        }
    }

    /// Barrier + adopt: wait for the worker, returning the final
    /// hierarchy and the effort/time to fold into the store's ledgers.
    /// If the scheduler died first, the remaining pending flushes are
    /// replayed inline over the last published image.
    fn drain(&mut self, trims: &[RangeTombstone]) -> (Levels, CompactionEffort, u64) {
        let (mut levels, mut effort, ns, dead) = self.handle.wait_applied(self.sent);
        if dead {
            let (applied, ..) = self.handle.published();
            for &(idx, ref run) in &self.pending {
                if idx >= applied {
                    let extra = levels
                        .push_flush(Arc::clone(run), trims)
                        .expect("page encoding of a sorted run cannot fail");
                    effort.absorb(extra);
                }
            }
        }
        self.pending.clear();
        (levels, effort, ns)
    }
}

impl RunStore {
    /// The readable run sources, newest→oldest: unapplied pending runs
    /// (background mode), then the maintained hierarchy.
    fn view(&self) -> Vec<Arc<Run>> {
        match self {
            RunStore::Inline(levels) => levels.iter_newest_first().cloned().collect(),
            RunStore::Background(b) => {
                let (applied, image, ..) = b.handle.published();
                b.pending
                    .iter()
                    .rev()
                    .filter(|&&(idx, _)| idx >= applied)
                    .map(|(_, run)| Arc::clone(run))
                    .chain(image.iter_newest_first().cloned())
                    .filter(|r| !r.is_empty())
                    .collect()
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            RunStore::Inline(levels) => levels.depth(),
            RunStore::Background(b) => {
                let (applied, image, ..) = b.handle.published();
                let unapplied = b.pending.iter().filter(|&&(idx, _)| idx >= applied).count();
                unapplied + image.depth()
            }
        }
    }

    fn gc_floor(&self) -> u64 {
        match self {
            RunStore::Inline(levels) => levels.gc_floor(),
            RunStore::Background(b) => b.handle.published().1.gc_floor(),
        }
    }
}

/// The LSM/MVCC implementation of the history store.
#[derive(Debug)]
pub struct LsmHistory {
    config: LsmConfig,
    /// The write buffer (newest versions).
    memtable: MemTable,
    /// The immutable-run hierarchy (older versions) — inline or
    /// background-maintained.
    runs: RunStore,
    /// Embedded write-ahead log covering exactly the memtable.
    wal: WriteAheadLog,
    /// Mutation sequence counter — equals the observable
    /// [`version`](LsmHistory::version), so seqnos and the engines'
    /// prediction-cache keys are the same number.
    seqno: u64,
    /// Sorted visible tuple keys at the latest seqno — the hot-read
    /// substrate (every window aggregate is partition-point arithmetic
    /// over this and `logins`).
    keys: Vec<i64>,
    /// Parallel `event_type` values (1 = start, 0 = end).
    vals: Vec<i64>,
    /// Sorted cache of visible login timestamps (mirrors
    /// [`crate::HistoryTable`]'s cache, same maintenance rules).
    logins: Vec<i64>,
    /// Optional slot-occupancy index (see [`SlotIndex`]).
    slots: Option<SlotIndex>,
    /// Range tombstones recorded by Algorithm 3 passes, seqno-ascending.
    trims: Vec<RangeTombstone>,
    /// `(applied_at, seqno)` pairs, both monotone — the
    /// [`TimeTravel::seqno_as_of`] substrate.  Inserts are applied at
    /// their event timestamp (clamped monotone for stragglers), trims
    /// at the trim's `now`.
    timeline: Vec<(i64, u64)>,
    /// Write/compaction accounting (deterministic, `Eq`-comparable).
    metrics: LsmMetrics,
    /// Wall-clock nanoseconds the *mutation path* spent blocked on
    /// compaction work (volatile; 0 by construction in background mode).
    stall_ns: u64,
    /// Wall-clock nanoseconds of compaction performed off the hot path
    /// by a scheduler worker, folded in at detach (volatile).
    offloaded_ns: u64,
}

impl Default for LsmHistory {
    fn default() -> Self {
        LsmHistory::new()
    }
}

impl Clone for LsmHistory {
    /// Cloning a background-compacted store barriers the worker and
    /// yields a *detached* (inline-mode) clone: two stores sharing one
    /// scheduler registration would interleave their flush streams.
    fn clone(&self) -> Self {
        let (runs, extra_effort, extra_ns) = match &self.runs {
            RunStore::Inline(levels) => (RunStore::Inline(levels.clone()), None, 0),
            RunStore::Background(b) => {
                let (levels, effort, ns, _dead) = b.handle.wait_applied(b.sent);
                // `wait_applied` leaves pending flushes unapplied only if
                // the scheduler died; replay them inline for the clone.
                let mut levels = levels;
                let mut effort = effort;
                let (applied, ..) = b.handle.published();
                for &(idx, ref run) in &b.pending {
                    if idx >= applied {
                        let extra = levels
                            .push_flush(Arc::clone(run), &self.trims)
                            .expect("page encoding of a sorted run cannot fail");
                        effort.absorb(extra);
                    }
                }
                (RunStore::Inline(levels), Some(effort), ns)
            }
        };
        let mut metrics = self.metrics;
        if let Some(effort) = extra_effort {
            metrics.absorb_effort(effort);
        }
        LsmHistory {
            config: self.config,
            memtable: self.memtable.clone(),
            runs,
            wal: self.wal.clone(),
            seqno: self.seqno,
            keys: self.keys.clone(),
            vals: self.vals.clone(),
            logins: self.logins.clone(),
            slots: self.slots.clone(),
            trims: self.trims.clone(),
            timeline: self.timeline.clone(),
            metrics,
            stall_ns: self.stall_ns,
            offloaded_ns: self.offloaded_ns + extra_ns,
        }
    }
}

impl LsmHistory {
    /// An empty store with default tuning.
    pub fn new() -> Self {
        LsmHistory::with_config(LsmConfig::default())
    }

    /// An empty store with explicit tuning knobs.
    pub fn with_config(config: LsmConfig) -> Self {
        let cap = config.memtable_cap.max(1);
        LsmHistory {
            config: LsmConfig {
                memtable_cap: cap,
                ..config
            },
            memtable: MemTable::new(),
            runs: RunStore::Inline(Levels::new(
                cap * compaction::L0_RUN_LIMIT,
                config.bloom_filters,
            )),
            wal: WriteAheadLog::new(),
            seqno: 0,
            keys: Vec::new(),
            vals: Vec::new(),
            logins: Vec::new(),
            slots: None,
            trims: Vec::new(),
            timeline: Vec::new(),
            metrics: LsmMetrics::default(),
            stall_ns: 0,
            offloaded_ns: 0,
        }
    }

    /// The store's tuning knobs.
    pub fn config(&self) -> LsmConfig {
        self.config
    }

    /// Cumulative write/compaction accounting.  In background mode the
    /// worker's effort so far is folded into the returned copy.
    pub fn metrics(&self) -> LsmMetrics {
        let mut m = self.metrics;
        if let RunStore::Background(b) = &self.runs {
            let (_, _, effort, _, _) = b.handle.published();
            m.absorb_effort(effort);
        }
        m
    }

    /// Wall-clock nanoseconds the mutation path spent blocked on
    /// compaction work.  Inline mode accumulates every merge here; in
    /// background mode flushes only enqueue, so this stays 0 — the
    /// `storage_bench` stall metric.
    pub fn compaction_stall_ns(&self) -> u64 {
        self.stall_ns
    }

    /// Wall-clock nanoseconds of compaction performed off the hot path
    /// by a scheduler worker (0 in inline mode).
    pub fn offloaded_compaction_ns(&self) -> u64 {
        let mut ns = self.offloaded_ns;
        if let RunStore::Background(b) = &self.runs {
            ns += b.handle.published().3;
        }
        ns
    }

    /// Whether this store currently runs in background-compaction mode.
    pub fn compaction_mode(&self) -> CompactionMode {
        match self.runs {
            RunStore::Inline(_) => CompactionMode::Deterministic,
            RunStore::Background(_) => CompactionMode::Background,
        }
    }

    /// The embedded write-ahead log (covers the unflushed memtable).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// Number of immutable runs readable right now (pending + applied).
    pub fn run_count(&self) -> usize {
        self.runs.view().len()
    }

    /// The range tombstones recorded so far, seqno-ascending.
    pub fn trims(&self) -> &[RangeTombstone] {
        &self.trims
    }

    /// Largest tombstone seqno whose covered versions were dropped by a
    /// garbage-collecting merge (0 before any GC).  Snapshots
    /// *reconstructed* at seqnos below this are best-effort; snapshots
    /// pinned before the merge stay exact.
    pub fn gc_floor(&self) -> u64 {
        self.runs.gc_floor()
    }

    /// Hand this store's compaction to a scheduler worker: the worker
    /// adopts the current hierarchy and all subsequent flushes enqueue
    /// instead of compacting inline.  No-op if already attached.
    pub fn attach_scheduler(&mut self, sched: &CompactionScheduler) {
        let RunStore::Inline(levels) = &self.runs else {
            return;
        };
        let handle = sched.register(levels.clone(), self.trims.clone());
        self.runs = RunStore::Background(BackgroundStore {
            handle,
            pending: VecDeque::new(),
            sent: 0,
        });
    }

    /// Barrier: block until every enqueued flush has been compacted.
    /// No-op in inline mode.  The store stays attached.
    pub fn compaction_barrier(&mut self) {
        if let RunStore::Background(b) = &mut self.runs {
            let _ = b.handle.wait_applied(b.sent);
            b.prune();
        }
    }

    /// Barrier, fold the worker's effort into this store's ledgers, and
    /// return to inline mode.  Call before collecting final stats (the
    /// shard drivers do this in `finish()`).  No-op in inline mode.
    pub fn detach_compaction(&mut self) {
        let RunStore::Background(b) = &mut self.runs else {
            return;
        };
        let (levels, effort, ns) = b.drain(&self.trims);
        b.handle.retire();
        self.metrics.absorb_effort(effort);
        self.offloaded_ns += ns;
        self.runs = RunStore::Inline(levels);
    }

    /// Walk visible `(key, value)` pairs with `lo <= key <= hi` at
    /// seqno `at`, ascending; stop early when `f` returns `false`.
    /// Visibility is the newest of (point version, covering range
    /// tombstone) at or below `at` — the cold path behind snapshot
    /// reconstruction and the invariant audit.
    fn scan_visible<F: FnMut(i64, i64) -> bool>(&self, lo: i64, hi: i64, at: u64, mut f: F) {
        if lo > hi {
            return; // e.g. an empty range between adjacent keys
        }
        let runs = self.runs.view();
        let mut mem = self.memtable.range(lo, hi).peekable();
        let mut cursors: Vec<usize> = runs.iter().map(|r| r.lower_bound(lo)).collect();
        loop {
            // Smallest head key across all sources, bounded by `hi`.
            let mut key = mem.peek().map(|&(k, _)| k);
            for (run, &cur) in runs.iter().zip(&cursors) {
                if let Some(e) = run.entries().get(cur) {
                    if e.key <= hi {
                        key = Some(key.map_or(e.key, |k: i64| k.min(e.key)));
                    }
                }
            }
            let Some(key) = key else { break };
            // Resolve point visibility: first source (newest-first)
            // holding a version of `key` at or below `at` wins.
            let mut verdict: Option<(u64, Option<i64>)> = None;
            if let Some(&(k, chain)) = mem.peek() {
                if k == key {
                    verdict = visible_in_chain_seq(chain, at);
                    mem.next();
                }
            }
            for (run, cur) in runs.iter().zip(&mut cursors) {
                let entries = run.entries();
                let mut hit: Option<(u64, Option<i64>)> = None;
                while let Some(e) = entries.get(*cur) {
                    if e.key != key {
                        break;
                    }
                    if e.seqno <= at {
                        hit = Some((e.seqno, (!e.tombstone).then_some(e.value)));
                    }
                    *cur += 1;
                }
                if verdict.is_none() {
                    verdict = hit;
                }
            }
            // A range tombstone newer than the winning point version
            // deletes the key; a point version newer than every
            // covering tombstone (a re-insert) survives.
            if let Some((win_seq, Some(value))) = verdict {
                let trimmed =
                    tombstone::newest_covering(&self.trims, key, at).is_some_and(|t| t > win_seq);
                if !trimmed && !f(key, value) {
                    return;
                }
            }
        }
    }

    /// Flush the memtable into a fresh L0 run and truncate the WAL.
    /// Inline mode compacts here (charging the stall ledger);
    /// background mode only enqueues.
    fn flush(&mut self) -> Result<(), ProrpError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let entries = self.memtable.drain_sorted();
        let (run, bytes) = Run::build(entries, self.config.bloom_filters)?;
        self.metrics.flushed_bytes += bytes;
        self.metrics.flushes += 1;
        let run = Arc::new(run);
        match &mut self.runs {
            RunStore::Inline(levels) => {
                let t0 = Instant::now();
                let effort = levels.push_flush(run, &self.trims)?;
                self.stall_ns += t0.elapsed().as_nanos() as u64;
                self.metrics.absorb_effort(effort);
            }
            RunStore::Background(b) => {
                b.prune();
                b.pending.push_back((b.sent, Arc::clone(&run)));
                b.handle.send_flush(run);
                b.sent += 1;
            }
        }
        // The flushed versions are durable in runs now; the WAL only
        // needs to cover the (empty) memtable.
        self.wal.checkpoint();
        Ok(())
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.config.memtable_cap {
            self.flush()
                .expect("page encoding of a sorted run cannot fail");
        }
    }

    /// Log one mutation to the WAL and stamp the timeline.
    fn log_mutation(&mut self, record: WalRecord, applied_at: i64) {
        let before = self.wal.byte_len();
        self.wal.append(record);
        self.metrics.wal_appended_bytes += self.wal.byte_len() - before;
        // Clamp monotone: an out-of-order insert is *applied* now, even
        // though its key is older.
        let clamped = self
            .timeline
            .last()
            .map_or(applied_at, |&(t, _)| t.max(applied_at));
        self.timeline.push((clamped, self.seqno));
    }

    /// Algorithm 2 — `sys.InsertHistory(@time, @type)`; `true` when a
    /// tuple was stored (see [`crate::HistoryTable::insert_history`]).
    /// The IF-NOT-EXISTS probe is one binary search on the visible-key
    /// cache — no bloom filters, no run probes.
    pub fn insert_history(&mut self, ts: Timestamp, kind: EventKind) -> bool {
        let key = ts.as_secs();
        let pos = self.keys.partition_point(|&k| k < key);
        if self.keys.get(pos).copied() == Some(key) {
            return false; // IF NOT EXISTS
        }
        self.seqno += 1;
        self.log_mutation(
            WalRecord::Insert {
                ts: key,
                event_type: i64::from(kind.as_i32()),
            },
            key,
        );
        let value = i64::from(kind.as_i32());
        self.memtable.add(key, self.seqno, value, false);
        self.metrics.logical_write_bytes += page::RECORD_SIZE;
        self.keys.insert(pos, key);
        self.vals.insert(pos, value);
        if kind == EventKind::Start {
            match self.logins.last() {
                Some(&newest) if newest > key => {
                    let lp = self.logins.partition_point(|&x| x < key);
                    self.logins.insert(lp, key);
                }
                _ => self.logins.push(key),
            }
            if let Some(ix) = self.slots.as_mut() {
                ix.add(key);
            }
        }
        self.maybe_flush();
        true
    }

    /// Convenience wrapper over [`insert_history`](Self::insert_history).
    pub fn insert_event(&mut self, ev: ActivityEvent) -> bool {
        self.insert_history(ev.ts, ev.kind)
    }

    /// Algorithm 3 — `sys.DeleteOldHistory(@h, @now, @old OUTPUT)` as a
    /// single [`RangeTombstone`]: `O(1)` logical work per pass (plus the
    /// cache drains), however many tuples the pass covers.  Compare
    /// [`crate::HistoryTable::delete_old_history`], which walks the
    /// doomed keys.
    pub fn delete_old_history(&mut self, h: Seconds, now: Timestamp) -> DeleteOutcome {
        let history_start = (now - h).as_secs();
        let Some(&min_ts) = self.keys.first() else {
            return DeleteOutcome {
                old: false,
                deleted: 0,
            };
        };
        if min_ts >= history_start {
            return DeleteOutcome {
                old: false,
                deleted: 0,
            };
        }
        // Keys strictly inside (min_ts, history_start) die; the oldest
        // tuple survives to preserve the lifespan.  Counting them is two
        // binary searches on the visible-key cache.
        let lo = self.keys.partition_point(|&k| k <= min_ts);
        let hi = self.keys.partition_point(|&k| k < history_start);
        let deleted = hi - lo;
        if deleted > 0 {
            self.seqno += 1;
            self.log_mutation(
                WalRecord::DeleteRange {
                    min: min_ts,
                    history_start,
                },
                now.as_secs(),
            );
            let tomb = RangeTombstone {
                lo: min_ts + 1,
                hi: history_start,
                seqno: self.seqno,
            };
            self.trims.push(tomb);
            if let RunStore::Background(b) = &self.runs {
                b.handle.send_trim(tomb);
            }
            // Logical accounting stays per tuple — the pass logically
            // deletes `deleted` records, so write amplification remains
            // comparable across backends and across the per-tuple →
            // range-tombstone change.  Physically only the single
            // tombstone record hits the WAL and the flush path.
            self.metrics.logical_write_bytes += deleted * page::RECORD_SIZE;
            self.metrics.range_tombstones += 1;
            self.keys.drain(lo..hi);
            self.vals.drain(lo..hi);
            let llo = self.logins.partition_point(|&t| t <= min_ts);
            let lhi = self.logins.partition_point(|&t| t < history_start);
            if llo < lhi {
                if let Some(ix) = self.slots.as_mut() {
                    for &t in &self.logins[llo..lhi] {
                        ix.remove(t);
                    }
                }
                self.logins.drain(llo..lhi);
            }
        }
        DeleteOutcome { old: true, deleted }
    }

    /// `MIN`/`MAX` of login timestamps inside `[lo, hi]` (see
    /// [`crate::HistoryTable::first_last_login_in`]).
    pub fn first_last_login_in(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp)> {
        self.login_window_stats(lo, hi).map(|(f, l, _)| (f, l))
    }

    /// Number of logins inside the closed window `[lo, hi]`.
    pub fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64 {
        let a = self.logins.partition_point(|&k| k < lo.as_secs());
        let b = self.logins.partition_point(|&k| k <= hi.as_secs());
        (b - a) as i64
    }

    /// `MIN`, `MAX` and `COUNT` of login timestamps inside `[lo, hi]` —
    /// partition-point arithmetic on the sorted login cache, no run
    /// merge (see [`crate::HistoryTable::login_window_stats`]).
    pub fn login_window_stats(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp, i64)> {
        let a = self.logins.partition_point(|&k| k < lo.as_secs());
        let b = self.logins.partition_point(|&k| k <= hi.as_secs());
        if a == b {
            return None;
        }
        Some((
            Timestamp(self.logins[a]),
            Timestamp(self.logins[b - 1]),
            (b - a) as i64,
        ))
    }

    /// Whether any event falls inside the closed window `[lo, hi]`.
    pub fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        let a = self.keys.partition_point(|&k| k < lo.as_secs());
        let b = self.keys.partition_point(|&k| k <= hi.as_secs());
        a < b
    }

    /// Oldest visible timestamp.
    pub fn min_timestamp(&self) -> Option<Timestamp> {
        self.keys.first().map(|&k| Timestamp(k))
    }

    /// Newest visible timestamp.
    pub fn max_timestamp(&self) -> Option<Timestamp> {
        self.keys.last().map(|&k| Timestamp(k))
    }

    /// Number of visible tuples (the visible-key cache length).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store holds no visible tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The mutation version — *equal to the latest seqno by
    /// construction*, so prediction-cache keys and snapshot seqnos are
    /// the same number (see [`crate::HistoryTable::version`]).
    pub fn version(&self) -> u64 {
        self.seqno
    }

    /// The sorted visible login timestamps.
    pub fn logins(&self) -> &[i64] {
        &self.logins
    }

    /// The slot-occupancy index, when one has been configured.
    pub fn slot_index(&self) -> Option<&SlotIndex> {
        self.slots.as_ref()
    }

    /// (Re)build the slot-occupancy index (see
    /// [`crate::HistoryTable::configure_slot_index`]).
    pub fn configure_slot_index(&mut self, period: Seconds, slot_len: Seconds) {
        self.slots = SlotIndex::rebuilt(period, slot_len, &self.logins);
    }

    /// All visible events in timestamp order — zipped straight off the
    /// visible-set caches.
    pub fn events(&self) -> Vec<ActivityEvent> {
        self.keys
            .iter()
            .zip(&self.vals)
            .map(|(&k, &v)| ActivityEvent {
                ts: Timestamp(k),
                kind: if v == 1 {
                    EventKind::Start
                } else {
                    EventKind::End
                },
            })
            .collect()
    }

    /// Rebuild from backup page records: the tuples become one base run
    /// at seqno 0, matching the B+Tree restore contract (version resets
    /// to 0, slot index unconfigured, no time-travel past the restore).
    pub(crate) fn from_records(records: &[Record]) -> Result<Self, ProrpError> {
        let mut store = LsmHistory::new();
        let entries: Vec<Entry> = records
            .iter()
            .map(|r| Entry {
                key: r.key,
                seqno: 0,
                value: r.value,
                tombstone: false,
            })
            .collect();
        let (run, _) = Run::build(entries, store.config.bloom_filters)?;
        let RunStore::Inline(levels) = &mut store.runs else {
            unreachable!("a fresh store is always inline");
        };
        levels.install_base(run);
        store.keys = records.iter().map(|r| r.key).collect();
        store.vals = records.iter().map(|r| r.value).collect();
        store.logins = records
            .iter()
            .filter(|r| r.value == 1)
            .map(|r| r.key)
            .collect();
        Ok(store)
    }

    /// Audit the store's structural invariants: run shape and seqno
    /// discipline (including the pending-run ordering in background
    /// mode), the visible-set caches against a from-scratch merged
    /// rebuild, the slot index, and the timeline's monotonicity.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        match &self.runs {
            RunStore::Inline(levels) => levels.check_invariants(),
            RunStore::Background(b) => {
                let (applied, image, ..) = b.handle.published();
                image.check_invariants();
                // Pending (unapplied) runs must sit strictly above the
                // image's seqno range, ascending by flush order.
                let mut prev_max = image
                    .iter_newest_first()
                    .map(|r| r.max_seqno())
                    .max()
                    .unwrap_or(0);
                for &(idx, ref run) in &b.pending {
                    if idx < applied || run.is_empty() {
                        continue;
                    }
                    assert!(
                        run.min_seqno() > prev_max,
                        "pending runs must carry strictly ascending seqno ranges"
                    );
                    prev_max = run.max_seqno();
                }
            }
        }
        if !self.memtable.is_empty() {
            let newest_on_runs = self
                .runs
                .view()
                .iter()
                .map(|r| r.max_seqno())
                .max()
                .unwrap_or(0);
            assert!(
                self.memtable.min_seqno() > newest_on_runs,
                "memtable seqnos must be strictly newer than every run"
            );
            assert!(self.memtable.max_seqno() <= self.seqno);
        }
        assert!(
            self.trims.windows(2).all(|w| w[0].seqno < w[1].seqno),
            "range tombstones must be seqno-ascending"
        );
        let mut visible_keys = Vec::new();
        let mut visible_vals = Vec::new();
        let mut visible_logins = Vec::new();
        self.scan_visible(i64::MIN, i64::MAX, self.seqno, |k, v| {
            visible_keys.push(k);
            visible_vals.push(v);
            if v == 1 {
                visible_logins.push(k);
            }
            true
        });
        assert_eq!(
            self.keys, visible_keys,
            "visible-key cache diverged from the merged scan"
        );
        assert_eq!(
            self.vals, visible_vals,
            "visible-value cache diverged from the merged scan"
        );
        assert_eq!(
            self.logins, visible_logins,
            "login cache diverged from the visible set"
        );
        if let Some(ix) = &self.slots {
            let rebuilt = SlotIndex::rebuilt(ix.period(), ix.slot_len(), &self.logins)
                .expect("a configured slot index has valid parameters");
            assert_eq!(*ix, rebuilt, "slot index diverged from a rebuild");
        }
        assert!(
            self.timeline
                .windows(2)
                .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1),
            "timeline must be monotone in both time and seqno"
        );
        if let Some(&(_, last)) = self.timeline.last() {
            assert_eq!(last, self.seqno, "timeline must end at the latest seqno");
        }
    }

    /// Storage-overhead statistics.  All figures are *logical*
    /// (post-tombstone): `tuples` counts visible tuples, and the page
    /// figures describe the pages those tuples would occupy — identical
    /// to the B+Tree backend's accounting for the same visible set, so
    /// `prorp-trace summary` and the invariant audit agree across
    /// backends.  Physical LSM shape (runs, write amplification, GC
    /// counters) lives in [`metrics`](Self::metrics) and
    /// [`run_count`](Self::run_count); `index_depth` reports the read
    /// path's source count (memtable + occupied levels).
    pub fn stats(&self) -> StorageStats {
        let tuples = self.keys.len();
        let pages = page::pages_for(tuples);
        StorageStats {
            tuples,
            logical_bytes: tuples * page::RECORD_SIZE,
            page_bytes: pages * page::PAGE_SIZE,
            pages,
            index_depth: usize::from(!self.memtable.is_empty()) + self.runs.depth(),
        }
    }
}

impl TimeTravel for LsmHistory {
    fn latest_seqno(&self) -> u64 {
        self.seqno
    }

    fn seqno_as_of(&self, at: Timestamp) -> u64 {
        let cut = self.timeline.partition_point(|&(t, _)| t <= at.as_secs());
        if cut == 0 {
            0
        } else {
            self.timeline[cut - 1].1
        }
    }

    fn snapshot(&self, seqno: u64) -> LsmSnapshot {
        let at = seqno.min(self.seqno);
        let pins = self.runs.view();
        let overlay: Vec<Entry> = self
            .memtable
            .iter()
            .flat_map(|(k, chain)| {
                chain
                    .iter()
                    .filter(|&&(s, _, _)| s <= at)
                    .map(move |&(s, v, dead)| Entry {
                        key: k,
                        seqno: s,
                        value: v,
                        tombstone: dead,
                    })
            })
            .collect();
        let trims: Vec<RangeTombstone> = self
            .trims
            .iter()
            .take_while(|t| t.seqno <= at)
            .copied()
            .collect();
        if at == self.seqno {
            // Fast path: the visible set at the latest seqno *is* the
            // maintained cache — no merged scan.
            return LsmSnapshot::with_pins(
                at,
                self.keys.clone(),
                self.vals.clone(),
                self.logins.clone(),
                pins,
                overlay,
                trims,
            );
        }
        let mut keys = Vec::new();
        let mut vals = Vec::new();
        self.scan_visible(i64::MIN, i64::MAX, at, |k, v| {
            keys.push(k);
            vals.push(v);
            true
        });
        let logins = keys
            .iter()
            .zip(&vals)
            .filter(|&(_, &v)| v == 1)
            .map(|(&k, _)| k)
            .collect();
        LsmSnapshot::with_pins(at, keys, vals, logins, pins, overlay, trims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::HistoryRead;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn tiny() -> LsmHistory {
        // Cap 4 so a handful of inserts exercises flush + compaction.
        LsmHistory::with_config(LsmConfig {
            memtable_cap: 4,
            bloom_filters: true,
        })
    }

    #[test]
    fn insert_is_idempotent_per_timestamp() {
        let mut h = tiny();
        assert!(h.insert_history(t(100), EventKind::Start));
        assert!(!h.insert_history(t(100), EventKind::End));
        assert_eq!(h.len(), 1);
        assert_eq!(h.events()[0].kind, EventKind::Start);
        h.check_invariants();
    }

    #[test]
    fn flush_and_compaction_preserve_reads() {
        let mut h = tiny();
        for d in 0..=40 {
            h.insert_history(t(d * 86_400), EventKind::Start);
        }
        assert!(h.metrics().flushes >= 8, "cap 4 must have flushed");
        assert!(h.run_count() >= 1);
        assert_eq!(h.len(), 41);
        assert_eq!(h.min_timestamp(), Some(t(0)));
        assert_eq!(h.max_timestamp(), Some(t(40 * 86_400)));
        assert_eq!(
            h.login_window_stats(t(0), t(40 * 86_400)),
            Some((t(0), t(40 * 86_400), 41))
        );
        h.check_invariants();
    }

    #[test]
    fn delete_old_history_matches_btree_semantics() {
        let mut h = tiny();
        let mut b = crate::HistoryTable::new();
        for d in 0..=40 {
            h.insert_history(t(d * 86_400), EventKind::Start);
            b.insert_history(t(d * 86_400), EventKind::Start);
        }
        let now = t(40 * 86_400);
        let ours = h.delete_old_history(Seconds::days(28), now);
        let theirs = b.delete_old_history(Seconds::days(28), now);
        assert_eq!(ours, theirs);
        assert_eq!(h.len(), b.len());
        assert_eq!(h.logins(), b.logins());
        assert_eq!(h.version(), b.version());
        assert_eq!(h.min_timestamp(), b.min_timestamp());
        assert_eq!(h.events(), b.events());
        h.check_invariants();
    }

    #[test]
    fn a_trim_pass_is_one_range_tombstone() {
        let mut h = tiny();
        for d in 0..=40 {
            h.insert_history(t(d * 86_400), EventKind::Start);
        }
        let logical_before = h.metrics().logical_write_bytes;
        let wal_before = h.metrics().wal_appended_bytes;
        let out = h.delete_old_history(Seconds::days(28), t(40 * 86_400));
        assert_eq!(out.deleted, 11, "days 1..=11 die; day 0 is the lifespan");
        assert_eq!(h.trims().len(), 1, "one tombstone, not 11");
        assert_eq!(h.metrics().range_tombstones, 1);
        assert_eq!(
            h.metrics().logical_write_bytes - logical_before,
            11 * crate::page::RECORD_SIZE,
            "logical accounting stays per trimmed tuple"
        );
        // Physically, the pass appended one WAL record — not eleven.
        let wal_delta = h.metrics().wal_appended_bytes - wal_before;
        assert!(
            wal_delta < 100,
            "a trim pass writes one physical record regardless of coverage \
             (appended {wal_delta} bytes)"
        );
        h.check_invariants();
    }

    #[test]
    fn tombstoned_key_can_be_reinserted() {
        let mut h = tiny();
        for ts in [0, 100, 200, 300] {
            h.insert_history(t(ts), EventKind::Start);
        }
        // Trim to the last 50 s at now=300: keys 100, 200 die.
        let out = h.delete_old_history(Seconds(50), t(300));
        assert_eq!(out.deleted, 2);
        assert_eq!(h.len(), 2);
        // The dead key no longer "exists": a re-insert must succeed.
        assert!(h.insert_history(t(100), EventKind::End));
        assert_eq!(h.len(), 3);
        assert_eq!(h.logins(), &[0, 300]);
        assert_eq!(
            h.events(),
            vec![
                ActivityEvent::start(t(0)),
                ActivityEvent::end(t(100)),
                ActivityEvent::start(t(300)),
            ]
        );
        h.check_invariants();
    }

    #[test]
    fn snapshots_freeze_past_states() {
        let mut h = tiny();
        let mut seen: Vec<(u64, usize)> = Vec::new();
        for ts in [10, 20, 30, 40, 50, 60, 70] {
            h.insert_history(t(ts), EventKind::Start);
            seen.push((h.version(), h.len()));
        }
        h.delete_old_history(Seconds(15), t(70));
        seen.push((h.version(), h.len()));
        for &(seqno, live) in &seen {
            let snap = h.snapshot(seqno);
            assert_eq!(snap.seqno(), seqno);
            assert_eq!(snap.len(), live, "snapshot at seqno {seqno}");
        }
        // Seqno 0 is the empty store; clamping applies past the end.
        assert_eq!(h.snapshot(0).len(), 0);
        assert_eq!(h.snapshot(u64::MAX).len(), h.len());
    }

    #[test]
    fn time_travel_resolves_applied_timestamps() {
        let mut h = tiny();
        h.insert_history(t(100), EventKind::Start);
        h.insert_history(t(200), EventKind::End);
        // Straggler applied out of order: clamped onto the timeline at
        // its application point (after t=200).
        h.insert_history(t(150), EventKind::Start);
        assert_eq!(h.seqno_as_of(t(99)), 0);
        assert_eq!(h.seqno_as_of(t(100)), 1);
        assert_eq!(h.seqno_as_of(t(199)), 1);
        assert_eq!(h.seqno_as_of(t(200)), 3, "straggler clamps to t=200");
        let as_of_150 = h.snapshot_as_of(t(150));
        assert_eq!(as_of_150.len(), 1, "only the t=100 insert had applied");
        let now = h.snapshot_as_of(t(10_000));
        assert_eq!(now.len(), 3);
    }

    #[test]
    fn restore_resets_version_like_the_btree() {
        let mut h = tiny();
        for ts in [100, 200, 300] {
            h.insert_history(t(ts), EventKind::Start);
        }
        let records: Vec<Record> = h
            .events()
            .iter()
            .map(|e| Record {
                key: e.ts.as_secs(),
                value: i64::from(e.kind.as_i32()),
            })
            .collect();
        let restored = LsmHistory::from_records(&records).unwrap();
        assert_eq!(restored.version(), 0);
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.logins(), h.logins());
        assert!(restored.slot_index().is_none());
        restored.check_invariants();
    }

    #[test]
    fn write_amplification_is_accounted() {
        let mut h = tiny();
        for ts in 0..200 {
            h.insert_history(t(ts * 60), EventKind::Start);
        }
        let m = h.metrics();
        assert_eq!(m.logical_write_bytes, 200 * 16);
        assert!(m.flushed_bytes > 0);
        assert!(m.compactions > 0, "200 inserts at cap 4 must compact");
        assert!(m.write_amplification() > 1.0);
        assert!(m.wal_appended_bytes > 0);
        // The WAL only covers the unflushed memtable tail.
        assert!(h.wal().byte_len() < m.wal_appended_bytes);
        // Inline mode charges compaction time to the stall ledger.
        assert!(h.compaction_stall_ns() > 0);
        assert_eq!(h.offloaded_compaction_ns(), 0);
    }

    #[test]
    fn slot_index_and_login_cache_survive_trims() {
        let mut h = tiny();
        h.configure_slot_index(Seconds::days(1), Seconds::minutes(5));
        for &ts in &[500, 100, 300, 200, 400] {
            h.insert_history(t(ts), EventKind::Start);
            h.insert_history(t(ts + 50), EventKind::End);
        }
        assert_eq!(h.logins(), &[100, 200, 300, 400, 500]);
        h.check_invariants();
        let outcome = h.delete_old_history(Seconds(150), t(500));
        assert!(outcome.old);
        assert_eq!(h.logins(), &[100, 400, 500]);
        assert_eq!(h.slot_index().unwrap().total_logins(), 3);
        h.check_invariants();
    }

    #[test]
    fn compaction_gcs_trimmed_versions() {
        let mut h = tiny();
        for ts in 0..40 {
            h.insert_history(t(ts * 100), EventKind::Start);
        }
        let before = {
            let m = h.metrics();
            (m.gc_dropped, m.runs_dropped)
        };
        assert_eq!(before, (0, 0), "no GC without a tombstone");
        let out = h.delete_old_history(Seconds(500), t(3_900));
        assert!(out.deleted > 30);
        // Later inserts trigger flushes and merges that GC the covered
        // versions out of the runs.
        for ts in 40..80 {
            h.insert_history(t(ts * 100), EventKind::Start);
        }
        let m = h.metrics();
        assert!(
            m.gc_dropped > 0 || m.runs_dropped > 0,
            "merges after a trim must garbage-collect: {m:?}"
        );
        assert!(h.gc_floor() > 0);
        h.check_invariants();
    }

    #[test]
    fn background_mode_matches_inline_mode_bit_for_bit() {
        let sched = CompactionScheduler::new();
        let mut bg = tiny();
        bg.attach_scheduler(&sched);
        assert_eq!(bg.compaction_mode(), CompactionMode::Background);
        let mut inline = tiny();
        for day in 0..35 {
            for slot in 0..10 {
                let ts = t(day * 86_400 + slot * 600);
                let kind = if slot % 2 == 0 {
                    EventKind::Start
                } else {
                    EventKind::End
                };
                assert_eq!(bg.insert_history(ts, kind), inline.insert_history(ts, kind));
            }
            let now = t(day * 86_400 + 86_399);
            assert_eq!(
                bg.delete_old_history(Seconds::days(7), now),
                inline.delete_old_history(Seconds::days(7), now)
            );
        }
        // Background mode never compacted on the mutation path.
        assert_eq!(bg.compaction_stall_ns(), 0);
        bg.detach_compaction();
        assert_eq!(bg.compaction_mode(), CompactionMode::Deterministic);
        assert!(bg.offloaded_compaction_ns() > 0);
        // Observable state and the physical ledgers agree exactly.
        assert_eq!(bg.events(), inline.events());
        assert_eq!(bg.logins(), inline.logins());
        assert_eq!(bg.version(), inline.version());
        assert_eq!(bg.stats(), inline.stats());
        assert_eq!(bg.metrics(), inline.metrics());
        assert_eq!(bg.run_count(), inline.run_count());
        assert_eq!(bg.gc_floor(), inline.gc_floor());
        bg.check_invariants();
        inline.check_invariants();
    }

    #[test]
    fn background_reads_are_exact_before_the_barrier() {
        let sched = CompactionScheduler::new();
        let mut bg = tiny();
        bg.attach_scheduler(&sched);
        let mut model = crate::HistoryTable::new();
        for ts in 0..200 {
            bg.insert_history(t(ts * 60), EventKind::Start);
            model.insert_history(t(ts * 60), EventKind::Start);
            // No barrier: reads must still see every version through the
            // pending list + published image.
            if ts % 37 == 0 {
                assert_eq!(bg.len(), model.len());
                assert_eq!(
                    bg.login_window_stats(t(0), t(ts * 60)),
                    model.login_window_stats(t(0), t(ts * 60))
                );
                bg.check_invariants();
            }
        }
        bg.detach_compaction();
        assert_eq!(bg.events(), model.events());
    }

    #[test]
    fn cloning_a_background_store_detaches_the_clone() {
        let sched = CompactionScheduler::new();
        let mut bg = tiny();
        bg.attach_scheduler(&sched);
        for ts in 0..100 {
            bg.insert_history(t(ts * 60), EventKind::Start);
        }
        let clone = bg.clone();
        assert_eq!(clone.compaction_mode(), CompactionMode::Deterministic);
        assert_eq!(clone.events(), bg.events());
        bg.detach_compaction();
        assert_eq!(clone.metrics(), bg.metrics());
        assert_eq!(clone.run_count(), bg.run_count());
        clone.check_invariants();
    }

    #[test]
    fn stats_are_logical_after_trims() {
        let mut h = tiny();
        let mut b = crate::HistoryTable::new();
        for ts in 0..60 {
            h.insert_history(t(ts * 100), EventKind::Start);
            b.insert_history(t(ts * 100), EventKind::Start);
        }
        h.delete_old_history(Seconds(1_000), t(5_900));
        b.delete_old_history(Seconds(1_000), t(5_900));
        let (hs, bs) = (h.stats(), b.stats());
        assert_eq!(hs.tuples, bs.tuples, "logical tuple counts agree");
        assert_eq!(hs.logical_bytes, bs.logical_bytes);
        assert_eq!(hs.pages, bs.pages, "page figures are logical");
        assert_eq!(hs.page_bytes, bs.page_bytes);
    }
}
