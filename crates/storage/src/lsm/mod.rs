//! The LSM/MVCC history engine — `sys.pause_resume_history` on a
//! log-structured merge tree with snapshot time-travel.
//!
//! [`LsmHistory`] is a drop-in alternative to the B+Tree-backed
//! [`crate::HistoryTable`]: same Algorithm 2/3 semantics, same window
//! aggregates, same mutation-version discipline — the testkit's
//! `btree ≡ lsm` differential oracles hold both to bit-identical
//! observable behaviour.  What the LSM shape buys on top:
//!
//! * **MVCC versions + monotonic seqnos** — every mutation (insert or
//!   trim tombstone) is stamped with the store's sequence number, which
//!   *is* the mutation version engines already key prediction caches
//!   on.  Nothing is overwritten in place, so
//!   [`LsmHistory::snapshot`] can freeze the tuple set visible at any
//!   past seqno, and the [`TimeTravel`] mapping resolves simulated
//!   timestamps to seqnos for "as of T" post-mortems (fjall-style
//!   `snapshot(seqno)`, oxibase-style `AS OF`).
//! * **Write path**: mutations append to an embedded write-ahead log
//!   and an in-memory [`memtable`]; at [`LsmConfig::memtable_cap`]
//!   buffered versions the memtable flushes into an immutable sorted
//!   [`run`] serialised through the existing 8-KiB slotted-page
//!   machinery, and the WAL truncates (its coverage is exactly the
//!   unflushed tail).  Runs compact size-tiered at level 0 and leveled
//!   below ([`compaction`]); every physical byte written is charged to
//!   a write-amplification ledger ([`LsmMetrics`]).
//! * **Read path**: point lookups probe bloom filters and stop at the
//!   first source holding a version at or below the read point (the
//!   seqno-range discipline makes that sound); range scans k-way merge
//!   the memtable and all runs, resolving per-key visibility at the
//!   read seqno.

pub mod bloom;
pub mod compaction;
pub mod memtable;
pub mod run;
pub mod snapshot;

pub use snapshot::{LsmSnapshot, TimeTravel};

use crate::history::{DeleteOutcome, SlotIndex, StorageStats};
use crate::page::{self, Record};
use crate::wal::{WalRecord, WriteAheadLog};
use compaction::Levels;
use memtable::{visible_in_chain, MemTable, Visible};
use prorp_types::{ActivityEvent, EventKind, ProrpError, Seconds, Timestamp};
use run::{Entry, Run};

/// Tuning knobs for one [`LsmHistory`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LsmConfig {
    /// Memtable flush trigger, in buffered versions.  Small by default
    /// (32) so a 35-day simulated history (~600 mutations) exercises
    /// flushes and several compaction rounds.
    pub memtable_cap: usize,
    /// Whether runs carry per-run bloom filters.
    pub bloom_filters: bool,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_cap: 32,
            bloom_filters: true,
        }
    }
}

/// Cumulative write/compaction accounting for one store.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LsmMetrics {
    /// Logical bytes written: 16 B per mutation (insert or tombstone).
    pub logical_write_bytes: usize,
    /// Physical bytes written by memtable flushes.
    pub flushed_bytes: usize,
    /// Physical bytes re-written by compaction merges.
    pub compacted_bytes: usize,
    /// Bytes appended to the write-ahead log (before truncations).
    pub wal_appended_bytes: usize,
    /// Number of memtable flushes.
    pub flushes: usize,
    /// Number of compaction merges.
    pub compactions: usize,
}

impl LsmMetrics {
    /// Write amplification: physical bytes written (flush + compaction)
    /// per logical byte.  `0.0` before any write.
    pub fn write_amplification(&self) -> f64 {
        if self.logical_write_bytes == 0 {
            0.0
        } else {
            (self.flushed_bytes + self.compacted_bytes) as f64 / self.logical_write_bytes as f64
        }
    }
}

/// The LSM/MVCC implementation of the history store.
#[derive(Clone, Debug)]
pub struct LsmHistory {
    config: LsmConfig,
    /// The write buffer (newest versions).
    memtable: MemTable,
    /// The immutable-run hierarchy (older versions).
    levels: Levels,
    /// Embedded write-ahead log covering exactly the memtable.
    wal: WriteAheadLog,
    /// Mutation sequence counter — equals the observable
    /// [`version`](LsmHistory::version), so seqnos and the engines'
    /// prediction-cache keys are the same number.
    seqno: u64,
    /// Tuples visible at the latest seqno (kept in `O(1)`).
    live: usize,
    /// Sorted cache of visible login timestamps (mirrors
    /// [`crate::HistoryTable`]'s cache, same maintenance rules).
    logins: Vec<i64>,
    /// Optional slot-occupancy index (see [`SlotIndex`]).
    slots: Option<SlotIndex>,
    /// `(applied_at, seqno)` pairs, both monotone — the
    /// [`TimeTravel::seqno_as_of`] substrate.  Inserts are applied at
    /// their event timestamp (clamped monotone for stragglers), trims
    /// at the trim's `now`.
    timeline: Vec<(i64, u64)>,
    /// Write/compaction accounting.
    metrics: LsmMetrics,
}

impl Default for LsmHistory {
    fn default() -> Self {
        LsmHistory::new()
    }
}

impl LsmHistory {
    /// An empty store with default tuning.
    pub fn new() -> Self {
        LsmHistory::with_config(LsmConfig::default())
    }

    /// An empty store with explicit tuning knobs.
    pub fn with_config(config: LsmConfig) -> Self {
        let cap = config.memtable_cap.max(1);
        LsmHistory {
            config: LsmConfig {
                memtable_cap: cap,
                ..config
            },
            memtable: MemTable::new(),
            levels: Levels::new(cap * compaction::L0_RUN_LIMIT, config.bloom_filters),
            wal: WriteAheadLog::new(),
            seqno: 0,
            live: 0,
            logins: Vec::new(),
            slots: None,
            timeline: Vec::new(),
            metrics: LsmMetrics::default(),
        }
    }

    /// The store's tuning knobs.
    pub fn config(&self) -> LsmConfig {
        self.config
    }

    /// Cumulative write/compaction accounting.
    pub fn metrics(&self) -> LsmMetrics {
        self.metrics
    }

    /// The embedded write-ahead log (covers the unflushed memtable).
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// Number of immutable runs across all levels.
    pub fn run_count(&self) -> usize {
        self.levels.run_count()
    }

    /// Newest visible value of `key` at seqno `at`:
    /// memtable first, then runs newest→oldest; the seqno-range
    /// discipline guarantees the first source holding a version at or
    /// below `at` holds the newest such version overall.
    fn visible_at(&self, key: i64, at: u64) -> Visible {
        if let Some(v) = self.memtable.visible(key, at) {
            return Some(v);
        }
        self.levels
            .iter_newest_first()
            .find_map(|run| run.visible(key, at))
    }

    /// Walk visible `(key, value)` pairs with `lo <= key <= hi` at
    /// seqno `at`, ascending; stop early when `f` returns `false`.
    fn scan_visible<F: FnMut(i64, i64) -> bool>(&self, lo: i64, hi: i64, at: u64, mut f: F) {
        if lo > hi {
            return; // e.g. an empty trim range between adjacent keys
        }
        let mut mem = self.memtable.range(lo, hi).peekable();
        let runs: Vec<&Run> = self.levels.iter_newest_first().collect();
        let mut cursors: Vec<usize> = runs.iter().map(|r| r.lower_bound(lo)).collect();
        loop {
            // Smallest head key across all sources, bounded by `hi`.
            let mut key = mem.peek().map(|&(k, _)| k);
            for (run, &cur) in runs.iter().zip(&cursors) {
                if let Some(e) = run.entries().get(cur) {
                    if e.key <= hi {
                        key = Some(key.map_or(e.key, |k: i64| k.min(e.key)));
                    }
                }
            }
            let Some(key) = key else { break };
            // Resolve visibility: first source (newest-first) holding a
            // version of `key` at or below `at` wins.
            let mut verdict: Visible = None;
            if let Some(&(k, chain)) = mem.peek() {
                if k == key {
                    verdict = visible_in_chain(chain, at);
                    mem.next();
                }
            }
            for (run, cur) in runs.iter().zip(&mut cursors) {
                let entries = run.entries();
                let mut hit: Visible = None;
                while let Some(e) = entries.get(*cur) {
                    if e.key != key {
                        break;
                    }
                    if e.seqno <= at {
                        hit = Some((!e.tombstone).then_some(e.value));
                    }
                    *cur += 1;
                }
                if verdict.is_none() {
                    verdict = hit;
                }
            }
            if let Some(Some(value)) = verdict {
                if !f(key, value) {
                    return;
                }
            }
        }
    }

    /// Flush the memtable into a fresh L0 run and truncate the WAL.
    fn flush(&mut self) -> Result<(), ProrpError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let entries = self.memtable.drain_sorted();
        let (run, bytes) = Run::build(entries, self.config.bloom_filters)?;
        self.metrics.flushed_bytes += bytes;
        self.metrics.flushes += 1;
        let effort = self.levels.push_flush(run)?;
        self.metrics.compacted_bytes += effort.bytes_written;
        self.metrics.compactions += effort.merges;
        // The flushed versions are durable in runs now; the WAL only
        // needs to cover the (empty) memtable.
        self.wal.checkpoint();
        Ok(())
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.config.memtable_cap {
            self.flush()
                .expect("page encoding of a sorted run cannot fail");
        }
    }

    /// Log one mutation to the WAL and stamp the timeline.
    fn log_mutation(&mut self, record: WalRecord, applied_at: i64) {
        let before = self.wal.byte_len();
        self.wal.append(record);
        self.metrics.wal_appended_bytes += self.wal.byte_len() - before;
        // Clamp monotone: an out-of-order insert is *applied* now, even
        // though its key is older.
        let clamped = self
            .timeline
            .last()
            .map_or(applied_at, |&(t, _)| t.max(applied_at));
        self.timeline.push((clamped, self.seqno));
    }

    /// Algorithm 2 — `sys.InsertHistory(@time, @type)`; `true` when a
    /// tuple was stored (see [`crate::HistoryTable::insert_history`]).
    pub fn insert_history(&mut self, ts: Timestamp, kind: EventKind) -> bool {
        let key = ts.as_secs();
        if matches!(self.visible_at(key, self.seqno), Some(Some(_))) {
            return false; // IF NOT EXISTS
        }
        self.seqno += 1;
        self.log_mutation(
            WalRecord::Insert {
                ts: key,
                event_type: i64::from(kind.as_i32()),
            },
            key,
        );
        self.memtable
            .add(key, self.seqno, i64::from(kind.as_i32()), false);
        self.metrics.logical_write_bytes += page::RECORD_SIZE;
        self.live += 1;
        if kind == EventKind::Start {
            match self.logins.last() {
                Some(&newest) if newest > key => {
                    let pos = self.logins.partition_point(|&x| x < key);
                    self.logins.insert(pos, key);
                }
                _ => self.logins.push(key),
            }
            if let Some(ix) = self.slots.as_mut() {
                ix.add(key);
            }
        }
        self.maybe_flush();
        true
    }

    /// Convenience wrapper over [`insert_history`](Self::insert_history).
    pub fn insert_event(&mut self, ev: ActivityEvent) -> bool {
        self.insert_history(ev.ts, ev.kind)
    }

    /// Algorithm 3 — `sys.DeleteOldHistory(@h, @now, @old OUTPUT)`,
    /// tombstone-based (see
    /// [`crate::HistoryTable::delete_old_history`]).
    pub fn delete_old_history(&mut self, h: Seconds, now: Timestamp) -> DeleteOutcome {
        let history_start = (now - h).as_secs();
        let Some(min_ts) = self.min_timestamp().map(Timestamp::as_secs) else {
            return DeleteOutcome {
                old: false,
                deleted: 0,
            };
        };
        if min_ts >= history_start {
            return DeleteOutcome {
                old: false,
                deleted: 0,
            };
        }
        // Keys strictly inside (min_ts, history_start) that are visible
        // now get tombstoned; the oldest tuple survives to preserve the
        // lifespan.
        let mut doomed: Vec<i64> = Vec::new();
        self.scan_visible(min_ts + 1, history_start - 1, self.seqno, |k, _| {
            doomed.push(k);
            true
        });
        let deleted = doomed.len();
        if deleted > 0 {
            self.seqno += 1;
            self.log_mutation(
                WalRecord::DeleteRange {
                    min: min_ts,
                    history_start,
                },
                now.as_secs(),
            );
            for &k in &doomed {
                self.memtable.add(k, self.seqno, 0, true);
            }
            self.metrics.logical_write_bytes += deleted * page::RECORD_SIZE;
            self.live -= deleted;
            let lo = self.logins.partition_point(|&t| t <= min_ts);
            let hi = self.logins.partition_point(|&t| t < history_start);
            if lo < hi {
                if let Some(ix) = self.slots.as_mut() {
                    for &t in &self.logins[lo..hi] {
                        ix.remove(t);
                    }
                }
                self.logins.drain(lo..hi);
            }
            self.maybe_flush();
        }
        DeleteOutcome { old: true, deleted }
    }

    /// `MIN`/`MAX` of login timestamps inside `[lo, hi]` (see
    /// [`crate::HistoryTable::first_last_login_in`]).
    pub fn first_last_login_in(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp)> {
        self.login_window_stats(lo, hi).map(|(f, l, _)| (f, l))
    }

    /// Number of logins inside the closed window `[lo, hi]`.
    pub fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64 {
        self.login_window_stats(lo, hi).map_or(0, |(_, _, c)| c)
    }

    /// `MIN`, `MAX` and `COUNT` of login timestamps inside `[lo, hi]`
    /// in one merged range scan (see
    /// [`crate::HistoryTable::login_window_stats`]).
    pub fn login_window_stats(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp, i64)> {
        let mut first = None;
        let mut last = None;
        let mut count = 0i64;
        self.scan_visible(lo.as_secs(), hi.as_secs(), self.seqno, |k, v| {
            if v == 1 {
                if first.is_none() {
                    first = Some(Timestamp(k));
                }
                last = Some(Timestamp(k));
                count += 1;
            }
            true
        });
        Some((first?, last?, count))
    }

    /// Whether any event falls inside the closed window `[lo, hi]`.
    pub fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        let mut any = false;
        self.scan_visible(lo.as_secs(), hi.as_secs(), self.seqno, |_, _| {
            any = true;
            false
        });
        any
    }

    /// Oldest visible timestamp.  The merged scan's first key decides:
    /// Algorithm 3 never tombstones the oldest tuple, so this
    /// early-exits without walking dead keys.
    pub fn min_timestamp(&self) -> Option<Timestamp> {
        let mut min = None;
        self.scan_visible(i64::MIN, i64::MAX, self.seqno, |k, _| {
            min = Some(Timestamp(k));
            false
        });
        min
    }

    /// Newest visible timestamp — a descending walk over merged keys,
    /// skipping any tombstoned suffix.
    pub fn max_timestamp(&self) -> Option<Timestamp> {
        let mut mem = self.memtable.iter().rev().peekable();
        let runs: Vec<&Run> = self.levels.iter_newest_first().collect();
        let mut tails: Vec<usize> = runs.iter().map(|r| r.entries().len()).collect();
        loop {
            let mut key = mem.peek().map(|&(k, _)| k);
            for (run, &tail) in runs.iter().zip(&tails) {
                if tail > 0 {
                    let k = run.entries()[tail - 1].key;
                    key = Some(key.map_or(k, |best: i64| best.max(k)));
                }
            }
            let key = key?;
            if matches!(self.visible_at(key, self.seqno), Some(Some(_))) {
                return Some(Timestamp(key));
            }
            // Dead key: step every source past it (descending).
            while mem.peek().is_some_and(|&(k, _)| k == key) {
                mem.next();
            }
            for (run, tail) in runs.iter().zip(&mut tails) {
                while *tail > 0 && run.entries()[*tail - 1].key == key {
                    *tail -= 1;
                }
            }
        }
    }

    /// Number of visible tuples (maintained in `O(1)`).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the store holds no visible tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The mutation version — *equal to the latest seqno by
    /// construction*, so prediction-cache keys and snapshot seqnos are
    /// the same number (see [`crate::HistoryTable::version`]).
    pub fn version(&self) -> u64 {
        self.seqno
    }

    /// The sorted visible login timestamps.
    pub fn logins(&self) -> &[i64] {
        &self.logins
    }

    /// The slot-occupancy index, when one has been configured.
    pub fn slot_index(&self) -> Option<&SlotIndex> {
        self.slots.as_ref()
    }

    /// (Re)build the slot-occupancy index (see
    /// [`crate::HistoryTable::configure_slot_index`]).
    pub fn configure_slot_index(&mut self, period: Seconds, slot_len: Seconds) {
        self.slots = SlotIndex::rebuilt(period, slot_len, &self.logins);
    }

    /// All visible events in timestamp order.
    pub fn events(&self) -> Vec<ActivityEvent> {
        let mut out = Vec::with_capacity(self.live);
        self.scan_visible(i64::MIN, i64::MAX, self.seqno, |k, v| {
            out.push(ActivityEvent {
                ts: Timestamp(k),
                kind: if v == 1 {
                    EventKind::Start
                } else {
                    EventKind::End
                },
            });
            true
        });
        out
    }

    /// Rebuild from backup page records: the tuples become one base run
    /// at seqno 0, matching the B+Tree restore contract (version resets
    /// to 0, slot index unconfigured, no time-travel past the restore).
    pub(crate) fn from_records(records: &[Record]) -> Result<Self, ProrpError> {
        let mut store = LsmHistory::new();
        let entries: Vec<Entry> = records
            .iter()
            .map(|r| Entry {
                key: r.key,
                seqno: 0,
                value: r.value,
                tombstone: false,
            })
            .collect();
        let (run, _) = Run::build(entries, store.config.bloom_filters)?;
        store.levels.install_base(run);
        store.live = records.len();
        store.logins = records
            .iter()
            .filter(|r| r.value == 1)
            .map(|r| r.key)
            .collect();
        Ok(store)
    }

    /// Audit the store's structural invariants: run shape and seqno
    /// discipline, the `O(1)` live counter, the login cache and slot
    /// index against a from-scratch rebuild of the visible set, and the
    /// timeline's monotonicity.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        self.levels.check_invariants();
        if !self.memtable.is_empty() {
            let newest_on_runs = self
                .levels
                .iter_newest_first()
                .map(Run::max_seqno)
                .max()
                .unwrap_or(0);
            assert!(
                self.memtable.min_seqno() > newest_on_runs,
                "memtable seqnos must be strictly newer than every run"
            );
            assert!(self.memtable.max_seqno() <= self.seqno);
        }
        let mut visible_logins = Vec::new();
        let mut visible_count = 0usize;
        self.scan_visible(i64::MIN, i64::MAX, self.seqno, |k, v| {
            visible_count += 1;
            if v == 1 {
                visible_logins.push(k);
            }
            true
        });
        assert_eq!(self.live, visible_count, "live counter diverged");
        assert_eq!(
            self.logins, visible_logins,
            "login cache diverged from the visible set"
        );
        if let Some(ix) = &self.slots {
            let rebuilt = SlotIndex::rebuilt(ix.period(), ix.slot_len(), &self.logins)
                .expect("a configured slot index has valid parameters");
            assert_eq!(*ix, rebuilt, "slot index diverged from a rebuild");
        }
        assert!(
            self.timeline
                .windows(2)
                .all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1),
            "timeline must be monotone in both time and seqno"
        );
        if let Some(&(_, last)) = self.timeline.last() {
            assert_eq!(last, self.seqno, "timeline must end at the latest seqno");
        }
    }

    /// Storage-overhead statistics.  Logical figures match the B+Tree
    /// backend exactly; physical figures reflect the LSM shape (run
    /// pages plus the memtable's would-be pages; depth = occupied
    /// levels plus the memtable).
    pub fn stats(&self) -> StorageStats {
        let run_pages = self.levels.page_bytes() / page::PAGE_SIZE;
        let mem_pages = page::pages_for(self.memtable.len());
        let pages = run_pages + mem_pages;
        StorageStats {
            tuples: self.live,
            logical_bytes: self.live * page::RECORD_SIZE,
            page_bytes: pages * page::PAGE_SIZE,
            pages,
            index_depth: usize::from(!self.memtable.is_empty()) + self.levels.depth(),
        }
    }
}

impl TimeTravel for LsmHistory {
    fn latest_seqno(&self) -> u64 {
        self.seqno
    }

    fn seqno_as_of(&self, at: Timestamp) -> u64 {
        let cut = self.timeline.partition_point(|&(t, _)| t <= at.as_secs());
        if cut == 0 {
            0
        } else {
            self.timeline[cut - 1].1
        }
    }

    fn snapshot(&self, seqno: u64) -> LsmSnapshot {
        let at = seqno.min(self.seqno);
        let mut pairs = Vec::new();
        self.scan_visible(i64::MIN, i64::MAX, at, |k, v| {
            pairs.push((k, v));
            true
        });
        LsmSnapshot::from_visible(at, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::HistoryRead;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn tiny() -> LsmHistory {
        // Cap 4 so a handful of inserts exercises flush + compaction.
        LsmHistory::with_config(LsmConfig {
            memtable_cap: 4,
            bloom_filters: true,
        })
    }

    #[test]
    fn insert_is_idempotent_per_timestamp() {
        let mut h = tiny();
        assert!(h.insert_history(t(100), EventKind::Start));
        assert!(!h.insert_history(t(100), EventKind::End));
        assert_eq!(h.len(), 1);
        assert_eq!(h.events()[0].kind, EventKind::Start);
        h.check_invariants();
    }

    #[test]
    fn flush_and_compaction_preserve_reads() {
        let mut h = tiny();
        for d in 0..=40 {
            h.insert_history(t(d * 86_400), EventKind::Start);
        }
        assert!(h.metrics().flushes >= 8, "cap 4 must have flushed");
        assert!(h.run_count() >= 1);
        assert_eq!(h.len(), 41);
        assert_eq!(h.min_timestamp(), Some(t(0)));
        assert_eq!(h.max_timestamp(), Some(t(40 * 86_400)));
        assert_eq!(
            h.login_window_stats(t(0), t(40 * 86_400)),
            Some((t(0), t(40 * 86_400), 41))
        );
        h.check_invariants();
    }

    #[test]
    fn delete_old_history_matches_btree_semantics() {
        let mut h = tiny();
        let mut b = crate::HistoryTable::new();
        for d in 0..=40 {
            h.insert_history(t(d * 86_400), EventKind::Start);
            b.insert_history(t(d * 86_400), EventKind::Start);
        }
        let now = t(40 * 86_400);
        let ours = h.delete_old_history(Seconds::days(28), now);
        let theirs = b.delete_old_history(Seconds::days(28), now);
        assert_eq!(ours, theirs);
        assert_eq!(h.len(), b.len());
        assert_eq!(h.logins(), b.logins());
        assert_eq!(h.version(), b.version());
        assert_eq!(h.min_timestamp(), b.min_timestamp());
        assert_eq!(h.events(), b.events());
        h.check_invariants();
    }

    #[test]
    fn tombstoned_key_can_be_reinserted() {
        let mut h = tiny();
        for ts in [0, 100, 200, 300] {
            h.insert_history(t(ts), EventKind::Start);
        }
        // Trim to the last 50 s at now=300: keys 100, 200 die.
        let out = h.delete_old_history(Seconds(50), t(300));
        assert_eq!(out.deleted, 2);
        assert_eq!(h.len(), 2);
        // The dead key no longer "exists": a re-insert must succeed.
        assert!(h.insert_history(t(100), EventKind::End));
        assert_eq!(h.len(), 3);
        assert_eq!(h.logins(), &[0, 300]);
        assert_eq!(
            h.events(),
            vec![
                ActivityEvent::start(t(0)),
                ActivityEvent::end(t(100)),
                ActivityEvent::start(t(300)),
            ]
        );
        h.check_invariants();
    }

    #[test]
    fn snapshots_freeze_past_states() {
        let mut h = tiny();
        let mut seen: Vec<(u64, usize)> = Vec::new();
        for ts in [10, 20, 30, 40, 50, 60, 70] {
            h.insert_history(t(ts), EventKind::Start);
            seen.push((h.version(), h.len()));
        }
        h.delete_old_history(Seconds(15), t(70));
        seen.push((h.version(), h.len()));
        for &(seqno, live) in &seen {
            let snap = h.snapshot(seqno);
            assert_eq!(snap.seqno(), seqno);
            assert_eq!(snap.len(), live, "snapshot at seqno {seqno}");
        }
        // Seqno 0 is the empty store; clamping applies past the end.
        assert_eq!(h.snapshot(0).len(), 0);
        assert_eq!(h.snapshot(u64::MAX).len(), h.len());
    }

    #[test]
    fn time_travel_resolves_applied_timestamps() {
        let mut h = tiny();
        h.insert_history(t(100), EventKind::Start);
        h.insert_history(t(200), EventKind::End);
        // Straggler applied out of order: clamped onto the timeline at
        // its application point (after t=200).
        h.insert_history(t(150), EventKind::Start);
        assert_eq!(h.seqno_as_of(t(99)), 0);
        assert_eq!(h.seqno_as_of(t(100)), 1);
        assert_eq!(h.seqno_as_of(t(199)), 1);
        assert_eq!(h.seqno_as_of(t(200)), 3, "straggler clamps to t=200");
        let as_of_150 = h.snapshot_as_of(t(150));
        assert_eq!(as_of_150.len(), 1, "only the t=100 insert had applied");
        let now = h.snapshot_as_of(t(10_000));
        assert_eq!(now.len(), 3);
    }

    #[test]
    fn restore_resets_version_like_the_btree() {
        let mut h = tiny();
        for ts in [100, 200, 300] {
            h.insert_history(t(ts), EventKind::Start);
        }
        let records: Vec<Record> = h
            .events()
            .iter()
            .map(|e| Record {
                key: e.ts.as_secs(),
                value: i64::from(e.kind.as_i32()),
            })
            .collect();
        let restored = LsmHistory::from_records(&records).unwrap();
        assert_eq!(restored.version(), 0);
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.logins(), h.logins());
        assert!(restored.slot_index().is_none());
        restored.check_invariants();
    }

    #[test]
    fn write_amplification_is_accounted() {
        let mut h = tiny();
        for ts in 0..200 {
            h.insert_history(t(ts * 60), EventKind::Start);
        }
        let m = h.metrics();
        assert_eq!(m.logical_write_bytes, 200 * 16);
        assert!(m.flushed_bytes > 0);
        assert!(m.compactions > 0, "200 inserts at cap 4 must compact");
        assert!(m.write_amplification() > 1.0);
        assert!(m.wal_appended_bytes > 0);
        // The WAL only covers the unflushed memtable tail.
        assert!(h.wal().byte_len() < m.wal_appended_bytes);
    }

    #[test]
    fn slot_index_and_login_cache_survive_trims() {
        let mut h = tiny();
        h.configure_slot_index(Seconds::days(1), Seconds::minutes(5));
        for &ts in &[500, 100, 300, 200, 400] {
            h.insert_history(t(ts), EventKind::Start);
            h.insert_history(t(ts + 50), EventKind::End);
        }
        assert_eq!(h.logins(), &[100, 200, 300, 400, 500]);
        h.check_invariants();
        let outcome = h.delete_old_history(Seconds(150), t(500));
        assert!(outcome.old);
        assert_eq!(h.logins(), &[100, 400, 500]);
        assert_eq!(h.slot_index().unwrap().total_logins(), 3);
        h.check_invariants();
    }
}
