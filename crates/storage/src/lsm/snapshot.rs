//! Frozen read views and the timestamp → seqno time-travel mapping.
//!
//! `snapshot(seqno)` materialises the tuple set visible at a mutation
//! sequence number into an owned, immutable [`LsmSnapshot`]; the
//! [`TimeTravel`] trait maps *simulated timestamps* onto seqnos so a
//! post-mortem can ask "what history did the predictor see as of T?"
//! and re-run Algorithm 4 against exactly that state — the oxibase
//! `AS OF` idiom over fjall-style sequence numbers.
//!
//! A snapshot also *pins* the run hierarchy it was cut from: every run
//! readable at freeze time is held by `Arc`, so a later garbage-
//! collecting compaction can drop those runs from the live store
//! without invalidating the snapshot's version-level reads
//! ([`LsmSnapshot::resolve`]).  The materialised tuple set answers the
//! aggregate surface; the pins answer point-in-time version probes even
//! below the store's GC floor.

use super::run::{Entry, Run};
use super::tombstone::{self, RangeTombstone};
use crate::history::{SlotIndex, StorageStats};
use crate::page;
use crate::store::HistoryRead;
use prorp_types::{ActivityEvent, EventKind, Timestamp};
use std::sync::Arc;

/// An owned, immutable view of the history as of one seqno.
///
/// Implements only the read half of the storage seam
/// ([`HistoryRead`]): predictors run against a snapshot exactly as
/// they run against the live store, but nothing can mutate it.  The
/// view is materialised (not a reference into the tree) *and* pins the
/// runs it was cut from, so it stays valid — and stays exact — however
/// the live store compacts or garbage-collects afterwards.
///
/// Equality compares the observable frozen state (seqno + visible tuple
/// set) only; two snapshots of the same logical state are equal even if
/// they pin physically different run hierarchies.
#[derive(Clone, Debug)]
pub struct LsmSnapshot {
    /// The seqno this view is frozen at.
    seqno: u64,
    /// Visible tuple keys (`time_snapshot`), ascending.
    keys: Vec<i64>,
    /// Parallel `event_type` values (1 = start, 0 = end).
    values: Vec<i64>,
    /// Visible login keys, ascending (`values[i] == 1` subset).
    logins: Vec<i64>,
    /// Runs readable at freeze time, newest first, held alive by `Arc`
    /// refcounts so compaction can retire them from the live store.
    pins: Vec<Arc<Run>>,
    /// Memtable versions at or below `seqno`, `(key, seqno)`-sorted —
    /// the write-buffer leg the pinned runs don't cover.
    overlay: Vec<Entry>,
    /// Range tombstones with `seqno <=` the freeze point, ascending.
    trims: Vec<RangeTombstone>,
}

impl PartialEq for LsmSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.seqno == other.seqno
            && self.keys == other.keys
            && self.values == other.values
            && self.logins == other.logins
    }
}

impl Eq for LsmSnapshot {}

impl LsmSnapshot {
    /// Freeze a visible tuple set *and* pin the run hierarchy it was
    /// cut from.  `pins` must be newest-first; `overlay` holds the
    /// memtable versions at or below `seqno`, `(key, seqno)`-sorted.
    pub(crate) fn with_pins(
        seqno: u64,
        keys: Vec<i64>,
        values: Vec<i64>,
        logins: Vec<i64>,
        pins: Vec<Arc<Run>>,
        mut overlay: Vec<Entry>,
        trims: Vec<RangeTombstone>,
    ) -> LsmSnapshot {
        overlay.sort_unstable_by_key(|e| (e.key, e.seqno));
        LsmSnapshot {
            seqno,
            keys,
            values,
            logins,
            pins,
            overlay,
            trims,
        }
    }

    /// The seqno this view is frozen at.
    pub fn seqno(&self) -> u64 {
        self.seqno
    }

    /// The runs this snapshot holds alive (newest first; empty for
    /// views constructed without pins).
    pub fn pinned_runs(&self) -> &[Arc<Run>] {
        &self.pins
    }

    /// Version-level point probe: the value visible for `key` at the
    /// freeze seqno, resolved through the pinned sources exactly as the
    /// live store would have at freeze time — overlay (memtable leg),
    /// then runs newest-first, then the frozen tombstone set.  Falls
    /// back to the materialised tuple set when the view carries no
    /// pins.  `None` means the key was not visible.
    pub fn resolve(&self, key: i64) -> Option<i64> {
        if self.pins.is_empty() && self.overlay.is_empty() {
            let pos = self.keys.partition_point(|&k| k < key);
            return (self.keys.get(pos).copied() == Some(key)).then(|| self.values[pos]);
        }
        let at = self.seqno;
        let mut verdict: Option<(u64, Option<i64>)> = None;
        let lo = self.overlay.partition_point(|e| e.key < key);
        let hi = lo + self.overlay[lo..].partition_point(|e| e.key == key && e.seqno <= at);
        if hi > lo {
            let e = &self.overlay[hi - 1];
            verdict = Some((e.seqno, (!e.tombstone).then_some(e.value)));
        }
        if verdict.is_none() {
            for run in &self.pins {
                if let Some(hit) = run.visible_seq(key, at) {
                    verdict = Some(hit);
                    break;
                }
            }
        }
        let (win_seq, value) = verdict?;
        let trimmed = tombstone::newest_covering(&self.trims, key, at).is_some_and(|t| t > win_seq);
        if trimmed {
            None
        } else {
            value
        }
    }

    /// Index range of `keys` covered by the closed window `[lo, hi]`.
    fn key_range(&self, lo: Timestamp, hi: Timestamp) -> (usize, usize) {
        let a = self.keys.partition_point(|&k| k < lo.as_secs());
        let b = self.keys.partition_point(|&k| k <= hi.as_secs());
        (a, b)
    }
}

impl HistoryRead for LsmSnapshot {
    fn first_last_login_in(&self, lo: Timestamp, hi: Timestamp) -> Option<(Timestamp, Timestamp)> {
        self.login_window_stats(lo, hi).map(|(f, l, _)| (f, l))
    }

    fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64 {
        let a = self.logins.partition_point(|&k| k < lo.as_secs());
        let b = self.logins.partition_point(|&k| k <= hi.as_secs());
        (b - a) as i64
    }

    fn login_window_stats(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp, i64)> {
        let a = self.logins.partition_point(|&k| k < lo.as_secs());
        let b = self.logins.partition_point(|&k| k <= hi.as_secs());
        if a == b {
            return None;
        }
        Some((
            Timestamp(self.logins[a]),
            Timestamp(self.logins[b - 1]),
            (b - a) as i64,
        ))
    }

    fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        let (a, b) = self.key_range(lo, hi);
        a < b
    }

    fn min_timestamp(&self) -> Option<Timestamp> {
        self.keys.first().map(|&k| Timestamp(k))
    }

    fn max_timestamp(&self) -> Option<Timestamp> {
        self.keys.last().map(|&k| Timestamp(k))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn version(&self) -> u64 {
        self.seqno
    }

    fn logins(&self) -> &[i64] {
        &self.logins
    }

    fn slot_index(&self) -> Option<&SlotIndex> {
        None
    }

    fn events(&self) -> Vec<ActivityEvent> {
        self.keys
            .iter()
            .zip(&self.values)
            .map(|(&k, &v)| ActivityEvent {
                ts: Timestamp(k),
                kind: if v == 1 {
                    EventKind::Start
                } else {
                    EventKind::End
                },
            })
            .collect()
    }

    fn stats(&self) -> StorageStats {
        let tuples = self.keys.len();
        let pages = page::pages_for(tuples);
        StorageStats {
            tuples,
            logical_bytes: tuples * page::RECORD_SIZE,
            page_bytes: pages * page::PAGE_SIZE,
            pages,
            index_depth: 0,
        }
    }
}

/// Timestamp-indexed access to frozen views of an MVCC store.
///
/// `seqno_as_of(T)` resolves a *simulated* timestamp to the newest
/// seqno whose mutation was applied at or before `T`; `snapshot` then
/// freezes the visible tuple set at that seqno.  Together they let
/// `prorp-trace` re-run Algorithm 4 against the history exactly as the
/// predictor saw it at any past instant.
pub trait TimeTravel {
    /// The newest seqno in the store (its current [`HistoryRead::version`]).
    fn latest_seqno(&self) -> u64;

    /// Newest seqno applied at or before `at` (0 when nothing was).
    fn seqno_as_of(&self, at: Timestamp) -> u64;

    /// Freeze the tuple set visible at `seqno`.  Seqnos newer than
    /// [`latest_seqno`](TimeTravel::latest_seqno) clamp to the present.
    fn snapshot(&self, seqno: u64) -> LsmSnapshot;

    /// Freeze the tuple set as the store stood at simulated time `at`.
    fn snapshot_as_of(&self, at: Timestamp) -> LsmSnapshot {
        self.snapshot(self.seqno_as_of(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> LsmSnapshot {
        LsmSnapshot::with_pins(
            7,
            vec![10, 20, 30, 40],
            vec![1, 0, 1, 0],
            vec![10, 30],
            Vec::new(),
            Vec::new(),
            Vec::new(),
        )
    }

    #[test]
    fn read_surface_matches_the_materialised_set() {
        let s = snap();
        assert_eq!(s.seqno(), 7);
        assert_eq!(s.version(), 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.logins(), &[10, 30]);
        assert_eq!(s.min_timestamp(), Some(Timestamp(10)));
        assert_eq!(s.max_timestamp(), Some(Timestamp(40)));
        assert_eq!(
            s.login_window_stats(Timestamp(10), Timestamp(40)),
            Some((Timestamp(10), Timestamp(30), 2))
        );
        assert_eq!(
            s.first_last_login_in(Timestamp(11), Timestamp(40)),
            Some((Timestamp(30), Timestamp(30)))
        );
        assert_eq!(s.count_logins_in(Timestamp(0), Timestamp(100)), 2);
        assert_eq!(s.login_window_stats(Timestamp(11), Timestamp(29)), None);
        assert!(s.any_event_in(Timestamp(20), Timestamp(20)));
        assert!(!s.any_event_in(Timestamp(21), Timestamp(29)));
        assert!(s.slot_index().is_none());
        assert_eq!(s.events().len(), 4);
        assert_eq!(s.stats().tuples, 4);
    }

    #[test]
    fn unpinned_resolve_falls_back_to_the_materialised_set() {
        let s = snap();
        assert!(s.pinned_runs().is_empty());
        assert_eq!(s.resolve(10), Some(1));
        assert_eq!(s.resolve(20), Some(0));
        assert_eq!(s.resolve(15), None);
    }

    #[test]
    fn pinned_resolve_reads_through_runs_and_tombstones() {
        let entries = vec![
            Entry {
                key: 10,
                seqno: 1,
                value: 1,
                tombstone: false,
            },
            Entry {
                key: 20,
                seqno: 2,
                value: 0,
                tombstone: false,
            },
            Entry {
                key: 30,
                seqno: 3,
                value: 1,
                tombstone: false,
            },
        ];
        let run = Arc::new(Run::build(entries, true).unwrap().0);
        // Trim at seqno 4 covers [11, 30): key 20 is deleted, 10 and 30
        // survive.  A newer memtable version of 20 (seqno 5) wins back.
        let trims = vec![RangeTombstone {
            lo: 11,
            hi: 30,
            seqno: 4,
        }];
        let overlay = vec![Entry {
            key: 20,
            seqno: 5,
            value: 1,
            tombstone: false,
        }];
        let s = LsmSnapshot::with_pins(
            5,
            vec![10, 20, 30],
            vec![1, 1, 1],
            vec![10, 20, 30],
            vec![run],
            overlay,
            trims,
        );
        assert_eq!(s.pinned_runs().len(), 1);
        assert_eq!(s.resolve(10), Some(1));
        assert_eq!(
            s.resolve(20),
            Some(1),
            "overlay re-insert outranks the trim"
        );
        assert_eq!(s.resolve(30), Some(1));
        assert_eq!(s.resolve(25), None);
        // At an earlier freeze point the trim wins over the run version.
        let s4 = LsmSnapshot::with_pins(
            4,
            vec![10, 30],
            vec![1, 1],
            vec![10, 30],
            s.pinned_runs().to_vec(),
            Vec::new(),
            vec![RangeTombstone {
                lo: 11,
                hi: 30,
                seqno: 4,
            }],
        );
        assert_eq!(s4.resolve(20), None, "trim deletes the run version");
        assert_eq!(s4.resolve(10), Some(1));
    }

    #[test]
    fn equality_ignores_the_pinned_hierarchy() {
        let a = snap();
        let b = LsmSnapshot::with_pins(
            7,
            a.keys.clone(),
            a.values.clone(),
            a.logins.clone(),
            vec![Arc::new(Run::default())],
            Vec::new(),
            Vec::new(),
        );
        assert_eq!(a, b);
    }
}
