//! Frozen read views and the timestamp → seqno time-travel mapping.
//!
//! `snapshot(seqno)` materialises the tuple set visible at a mutation
//! sequence number into an owned, immutable [`LsmSnapshot`]; the
//! [`TimeTravel`] trait maps *simulated timestamps* onto seqnos so a
//! post-mortem can ask "what history did the predictor see as of T?"
//! and re-run Algorithm 4 against exactly that state — the oxibase
//! `AS OF` idiom over fjall-style sequence numbers.

use crate::history::{SlotIndex, StorageStats};
use crate::page;
use crate::store::HistoryRead;
use prorp_types::{ActivityEvent, EventKind, Timestamp};

/// An owned, immutable view of the history as of one seqno.
///
/// Implements only the read half of the storage seam
/// ([`HistoryRead`]): predictors run against a snapshot exactly as
/// they run against the live store, but nothing can mutate it.  The
/// view is materialised (not a reference into the tree), so it stays
/// valid however the live store compacts afterwards.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LsmSnapshot {
    /// The seqno this view is frozen at.
    seqno: u64,
    /// Visible tuple keys (`time_snapshot`), ascending.
    keys: Vec<i64>,
    /// Parallel `event_type` values (1 = start, 0 = end).
    values: Vec<i64>,
    /// Visible login keys, ascending (`values[i] == 1` subset).
    logins: Vec<i64>,
}

impl LsmSnapshot {
    /// Freeze a visible tuple set.  `pairs` must be key-ascending.
    pub(crate) fn from_visible(seqno: u64, pairs: Vec<(i64, i64)>) -> LsmSnapshot {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        let mut keys = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        let mut logins = Vec::new();
        for (k, v) in pairs {
            keys.push(k);
            values.push(v);
            if v == 1 {
                logins.push(k);
            }
        }
        LsmSnapshot {
            seqno,
            keys,
            values,
            logins,
        }
    }

    /// The seqno this view is frozen at.
    pub fn seqno(&self) -> u64 {
        self.seqno
    }

    /// Index range of `keys` covered by the closed window `[lo, hi]`.
    fn key_range(&self, lo: Timestamp, hi: Timestamp) -> (usize, usize) {
        let a = self.keys.partition_point(|&k| k < lo.as_secs());
        let b = self.keys.partition_point(|&k| k <= hi.as_secs());
        (a, b)
    }
}

impl HistoryRead for LsmSnapshot {
    fn first_last_login_in(&self, lo: Timestamp, hi: Timestamp) -> Option<(Timestamp, Timestamp)> {
        self.login_window_stats(lo, hi).map(|(f, l, _)| (f, l))
    }

    fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64 {
        let a = self.logins.partition_point(|&k| k < lo.as_secs());
        let b = self.logins.partition_point(|&k| k <= hi.as_secs());
        (b - a) as i64
    }

    fn login_window_stats(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp, i64)> {
        let a = self.logins.partition_point(|&k| k < lo.as_secs());
        let b = self.logins.partition_point(|&k| k <= hi.as_secs());
        if a == b {
            return None;
        }
        Some((
            Timestamp(self.logins[a]),
            Timestamp(self.logins[b - 1]),
            (b - a) as i64,
        ))
    }

    fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        let (a, b) = self.key_range(lo, hi);
        a < b
    }

    fn min_timestamp(&self) -> Option<Timestamp> {
        self.keys.first().map(|&k| Timestamp(k))
    }

    fn max_timestamp(&self) -> Option<Timestamp> {
        self.keys.last().map(|&k| Timestamp(k))
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn version(&self) -> u64 {
        self.seqno
    }

    fn logins(&self) -> &[i64] {
        &self.logins
    }

    fn slot_index(&self) -> Option<&SlotIndex> {
        None
    }

    fn events(&self) -> Vec<ActivityEvent> {
        self.keys
            .iter()
            .zip(&self.values)
            .map(|(&k, &v)| ActivityEvent {
                ts: Timestamp(k),
                kind: if v == 1 {
                    EventKind::Start
                } else {
                    EventKind::End
                },
            })
            .collect()
    }

    fn stats(&self) -> StorageStats {
        let tuples = self.keys.len();
        let pages = page::pages_for(tuples);
        StorageStats {
            tuples,
            logical_bytes: tuples * page::RECORD_SIZE,
            page_bytes: pages * page::PAGE_SIZE,
            pages,
            index_depth: 0,
        }
    }
}

/// Timestamp-indexed access to frozen views of an MVCC store.
///
/// `seqno_as_of(T)` resolves a *simulated* timestamp to the newest
/// seqno whose mutation was applied at or before `T`; `snapshot` then
/// freezes the visible tuple set at that seqno.  Together they let
/// `prorp-trace` re-run Algorithm 4 against the history exactly as the
/// predictor saw it at any past instant.
pub trait TimeTravel {
    /// The newest seqno in the store (its current [`HistoryRead::version`]).
    fn latest_seqno(&self) -> u64;

    /// Newest seqno applied at or before `at` (0 when nothing was).
    fn seqno_as_of(&self, at: Timestamp) -> u64;

    /// Freeze the tuple set visible at `seqno`.  Seqnos newer than
    /// [`latest_seqno`](TimeTravel::latest_seqno) clamp to the present.
    fn snapshot(&self, seqno: u64) -> LsmSnapshot;

    /// Freeze the tuple set as the store stood at simulated time `at`.
    fn snapshot_as_of(&self, at: Timestamp) -> LsmSnapshot {
        self.snapshot(self.seqno_as_of(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> LsmSnapshot {
        LsmSnapshot::from_visible(7, vec![(10, 1), (20, 0), (30, 1), (40, 0)])
    }

    #[test]
    fn read_surface_matches_the_materialised_set() {
        let s = snap();
        assert_eq!(s.seqno(), 7);
        assert_eq!(s.version(), 7);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.logins(), &[10, 30]);
        assert_eq!(s.min_timestamp(), Some(Timestamp(10)));
        assert_eq!(s.max_timestamp(), Some(Timestamp(40)));
        assert_eq!(
            s.login_window_stats(Timestamp(10), Timestamp(40)),
            Some((Timestamp(10), Timestamp(30), 2))
        );
        assert_eq!(
            s.first_last_login_in(Timestamp(11), Timestamp(40)),
            Some((Timestamp(30), Timestamp(30)))
        );
        assert_eq!(s.count_logins_in(Timestamp(0), Timestamp(100)), 2);
        assert_eq!(s.login_window_stats(Timestamp(11), Timestamp(29)), None);
        assert!(s.any_event_in(Timestamp(20), Timestamp(20)));
        assert!(!s.any_event_in(Timestamp(21), Timestamp(29)));
        assert!(s.slot_index().is_none());
        assert_eq!(s.events().len(), 4);
        assert_eq!(s.stats().tuples, 4);
    }
}
