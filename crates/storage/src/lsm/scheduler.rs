//! The off-hot-path compaction scheduler.
//!
//! In [`CompactionMode::Deterministic`] (the default) every flush runs
//! its compaction work inline, exactly where the mutation happened — no
//! threads, and the run hierarchy is always fully maintained.  In
//! [`CompactionMode::Background`] the event-loop path only *enqueues*:
//! a flush sends its freshly built run to a [`CompactionScheduler`]
//! worker thread, which owns the authoritative [`Levels`] for every
//! registered store, applies the same `push_flush` maintenance the
//! inline mode would, and publishes an immutable image (cheap `Arc`
//! clones of the runs) after every step.  The foreground keeps the
//! not-yet-applied runs readable in a pending list, so reads never wait
//! on the worker and never miss data.
//!
//! # The determinism argument
//!
//! The worker consumes one FIFO channel per scheduler.  A store's
//! messages (flushes, range-tombstone trims) arrive in exactly its
//! mutation order, and the worker applies exactly the maintenance the
//! deterministic mode applies inline, with exactly the tombstone set
//! that mode would have seen at the same flush — so after a barrier the
//! physical run hierarchy, the compaction effort ledger, and the GC
//! floor are *bit-identical* across the two modes.  Timing moves;
//! state does not.  The conformance suite holds both modes to the same
//! `btree ≡ lsm` oracle, and `storage_bench` records the stall removed
//! from the event loop (`compaction_stall_ns == 0` in background mode).

use super::compaction::{CompactionEffort, Levels};
use super::run::Run;
use super::tombstone::RangeTombstone;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Where compaction work runs — the `SimConfig` / `storage_bench` knob.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CompactionMode {
    /// Compaction runs inline at each flush (no threads; the
    /// conformance suite's explicit-barrier mode).
    #[default]
    Deterministic,
    /// Flushes enqueue; a per-scheduler worker thread compacts.
    Background,
}

impl CompactionMode {
    /// Stable lowercase label for experiment tables and JSON output.
    pub const fn label(self) -> &'static str {
        match self {
            CompactionMode::Deterministic => "deterministic",
            CompactionMode::Background => "background",
        }
    }
}

/// The worker-published view of one store's run hierarchy.
#[derive(Debug)]
pub(crate) struct Published {
    /// Flush messages incorporated so far.
    pub applied: u64,
    /// The maintained hierarchy (immutable image; runs are shared).
    pub levels: Levels,
    /// Cumulative compaction effort performed by the worker.
    pub effort: CompactionEffort,
    /// Wall-clock nanoseconds the worker spent compacting this store.
    pub compaction_ns: u64,
    /// Set when the scheduler shut down with this store still attached;
    /// the store then falls back to finishing its compaction inline.
    pub dead: bool,
}

/// Shared slot between one store's foreground handle and the worker.
#[derive(Debug)]
pub(crate) struct StoreShared {
    pub state: Mutex<Published>,
    pub cv: Condvar,
}

enum Msg {
    Register {
        id: u64,
        levels: Levels,
        trims: Vec<RangeTombstone>,
        shared: Arc<StoreShared>,
    },
    Flush {
        id: u64,
        run: Arc<Run>,
    },
    Trim {
        id: u64,
        tomb: RangeTombstone,
    },
    Retire {
        id: u64,
    },
    Shutdown,
}

/// One store's channel to the scheduler (held inside the store while it
/// runs in background mode).
#[derive(Debug)]
pub(crate) struct StoreHandle {
    tx: Sender<Msg>,
    shared: Arc<StoreShared>,
    id: u64,
}

impl StoreHandle {
    /// Enqueue a flushed run (never blocks on compaction work).
    pub fn send_flush(&self, run: Arc<Run>) {
        // A send error means the scheduler shut down; the worker marked
        // the store dead and the detach path finishes inline.
        let _ = self.tx.send(Msg::Flush { id: self.id, run });
    }

    /// Enqueue a range-tombstone trim (GC input for later merges).
    pub fn send_trim(&self, tomb: RangeTombstone) {
        let _ = self.tx.send(Msg::Trim { id: self.id, tomb });
    }

    /// Snapshot the published state (applied count, image, effort).
    pub fn published(&self) -> (u64, Levels, CompactionEffort, u64, bool) {
        let s = self.shared.state.lock().expect("scheduler state poisoned");
        (
            s.applied,
            s.levels.clone(),
            s.effort,
            s.compaction_ns,
            s.dead,
        )
    }

    /// Block until the worker has applied `sent` flushes (or died).
    /// Returns the final published state.
    pub fn wait_applied(&self, sent: u64) -> (Levels, CompactionEffort, u64, bool) {
        let mut s = self.shared.state.lock().expect("scheduler state poisoned");
        while s.applied < sent && !s.dead {
            s = self
                .shared
                .cv
                .wait(s)
                .expect("scheduler state poisoned while waiting");
        }
        (s.levels.clone(), s.effort, s.compaction_ns, s.dead)
    }

    /// How many flushes the worker has incorporated into the image.
    pub fn applied(&self) -> u64 {
        self.shared
            .state
            .lock()
            .expect("scheduler state poisoned")
            .applied
    }

    /// Tell the worker to forget this store (detach/drop path).
    pub fn retire(&self) {
        let _ = self.tx.send(Msg::Retire { id: self.id });
    }
}

/// A background compaction worker shared by every LSM store on one
/// simulation shard (or one live driver).
///
/// Create one per shard, attach stores with
/// [`LsmHistory::attach_scheduler`](super::LsmHistory::attach_scheduler),
/// and detach them (barrier + fold) before collecting final stats.
/// Dropping the scheduler joins the worker; stores still attached at
/// that point finish their pending compaction inline on next access.
#[derive(Debug)]
pub struct CompactionScheduler {
    tx: Sender<Msg>,
    worker: Option<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl Default for CompactionScheduler {
    fn default() -> Self {
        CompactionScheduler::new()
    }
}

impl CompactionScheduler {
    /// Spawn the worker thread and return the scheduler.
    pub fn new() -> Self {
        let (tx, rx) = channel::<Msg>();
        let worker = std::thread::Builder::new()
            .name("prorp-compaction".into())
            .spawn(move || {
                let mut stores: HashMap<u64, WorkerStore> = HashMap::new();
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Register {
                            id,
                            levels,
                            trims,
                            shared,
                        } => {
                            stores.insert(
                                id,
                                WorkerStore {
                                    levels,
                                    trims,
                                    shared,
                                },
                            );
                        }
                        Msg::Flush { id, run } => {
                            if let Some(s) = stores.get_mut(&id) {
                                s.apply_flush(run);
                            }
                        }
                        Msg::Trim { id, tomb } => {
                            if let Some(s) = stores.get_mut(&id) {
                                s.trims.push(tomb);
                            }
                        }
                        Msg::Retire { id } => {
                            stores.remove(&id);
                        }
                        Msg::Shutdown => break,
                    }
                }
                // Anything still attached falls back to inline finishing.
                for s in stores.values() {
                    let mut st = s.shared.state.lock().expect("state poisoned");
                    st.dead = true;
                    s.shared.cv.notify_all();
                }
            })
            .expect("spawning the compaction worker cannot fail");
        CompactionScheduler {
            tx,
            worker: Some(worker),
            next_id: AtomicU64::new(0),
        }
    }

    /// Register a store: the worker adopts `levels` as the authoritative
    /// hierarchy and `trims` as the GC input seen so far.
    pub(crate) fn register(&self, levels: Levels, trims: Vec<RangeTombstone>) -> StoreHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(StoreShared {
            state: Mutex::new(Published {
                applied: 0,
                levels: levels.clone(),
                effort: CompactionEffort::default(),
                compaction_ns: 0,
                dead: false,
            }),
            cv: Condvar::new(),
        });
        let _ = self.tx.send(Msg::Register {
            id,
            levels,
            trims,
            shared: Arc::clone(&shared),
        });
        StoreHandle {
            tx: self.tx.clone(),
            shared,
            id,
        }
    }
}

impl Drop for CompactionScheduler {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Worker-side state for one registered store.
struct WorkerStore {
    levels: Levels,
    trims: Vec<RangeTombstone>,
    shared: Arc<StoreShared>,
}

impl WorkerStore {
    fn apply_flush(&mut self, run: Arc<Run>) {
        let t0 = Instant::now();
        let effort = self
            .levels
            .push_flush(run, &self.trims)
            .expect("page encoding of a sorted run cannot fail");
        let ns = t0.elapsed().as_nanos() as u64;
        let mut st = self.shared.state.lock().expect("state poisoned");
        st.applied += 1;
        st.levels = self.levels.clone();
        st.effort.absorb(effort);
        st.compaction_ns += ns;
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsm::run::Entry;

    fn run_of(keys: std::ops::Range<i64>, seqno_base: u64) -> Arc<Run> {
        let entries: Vec<Entry> = keys
            .clone()
            .map(|k| Entry {
                key: k,
                seqno: seqno_base + (k - keys.start) as u64,
                value: 1,
                tombstone: false,
            })
            .collect();
        Arc::new(Run::build(entries, false).unwrap().0)
    }

    #[test]
    fn worker_matches_inline_maintenance() {
        let sched = CompactionScheduler::new();
        let handle = sched.register(Levels::new(4, false), Vec::new());
        let mut inline = Levels::new(4, false);
        let mut seqno = 1;
        for i in 0..12 {
            let run = run_of(i * 4..i * 4 + 4, seqno);
            seqno += 4;
            handle.send_flush(Arc::clone(&run));
            inline.push_flush(run, &[]).unwrap();
        }
        let (levels, effort, _ns, dead) = handle.wait_applied(12);
        assert!(!dead);
        assert_eq!(levels.entry_count(), inline.entry_count());
        assert_eq!(levels.run_count(), inline.run_count());
        assert_eq!(levels.depth(), inline.depth());
        assert!(effort.merges > 0);
        levels.check_invariants();
        handle.retire();
    }

    #[test]
    fn shutdown_marks_attached_stores_dead() {
        let sched = CompactionScheduler::new();
        let handle = sched.register(Levels::new(4, false), Vec::new());
        drop(sched);
        let (_levels, _effort, _ns, dead) = handle.wait_applied(u64::MAX);
        assert!(dead, "worker must flag attached stores on shutdown");
    }
}
