//! Slotted-page encoding of history tuples.
//!
//! The paper sizes the history store in kilobytes ("the size of database
//! history stays within 7 KB on average", Figure 10b) with 16-byte tuples
//! ("each tuple consists of two integer values of size 64 bits", §9.3).
//! This module serialises tuple runs into fixed 8-KiB slotted pages — the
//! on-disk unit the backup/restore path (§3.3) ships when a database moves
//! between nodes — and accounts sizes for the overhead experiments.
//!
//! Layout of a page:
//!
//! ```text
//! +--------+-------+----------+---------------------+---------+-----------+
//! | magic  | count | reserved | slot dir (2B/slot)  | free    | records   |
//! | 4B     | 2B    | 2B       | grows →             | space   | ← grow    |
//! +--------+-------+----------+---------------------+---------+-----------+
//! | trailing 8B FNV-1a checksum of bytes [0, PAGE_SIZE-8)                 |
//! +-----------------------------------------------------------------------+
//! ```
//!
//! Records are written backwards from the checksum; each slot stores the
//! record's byte offset.  With fixed 16-byte records the directory is
//! strictly redundant, but it keeps the format honest for variable-length
//! extensions and exercises the classic layout.

use bytes::{Buf, Bytes, BytesMut};
use prorp_types::ProrpError;

/// Fixed page size in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Bytes of header before the slot directory.
pub const HEADER_SIZE: usize = 8;
/// Trailing checksum size.
pub const CHECKSUM_SIZE: usize = 8;
/// Encoded size of one tuple: `(time_snapshot BIGINT, event_type BIGINT)`.
pub const RECORD_SIZE: usize = 16;
/// Bytes per slot-directory entry.
pub const SLOT_SIZE: usize = 2;
/// Magic number identifying a history page ("PRP1").
pub const PAGE_MAGIC: u32 = 0x5052_5031;

/// Maximum number of records one page holds.
pub const fn records_per_page() -> usize {
    (PAGE_SIZE - HEADER_SIZE - CHECKSUM_SIZE) / (RECORD_SIZE + SLOT_SIZE)
}

/// One history tuple: key (`time_snapshot`) and value (`event_type`,
/// widened to 64 bits per §9.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Record {
    /// Epoch-second timestamp (clustered-index key).
    pub key: i64,
    /// Event type: 1 = start of activity, 0 = end.
    pub value: i64,
}

/// FNV-1a over a byte slice; a cheap, dependency-free page checksum.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Encode up to [`records_per_page()`] records into one page image.
///
/// # Errors
///
/// Returns [`ProrpError::Storage`] if `records` exceeds page capacity.
pub fn encode_page(records: &[Record]) -> Result<Bytes, ProrpError> {
    if records.len() > records_per_page() {
        return Err(ProrpError::Storage(format!(
            "{} records exceed page capacity {}",
            records.len(),
            records_per_page()
        )));
    }
    let mut page = BytesMut::zeroed(PAGE_SIZE);
    {
        let buf = &mut page[..];
        buf[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        buf[4..6].copy_from_slice(&(records.len() as u16).to_le_bytes());
        // buf[6..8] reserved, stays zero.
        let mut record_off = PAGE_SIZE - CHECKSUM_SIZE;
        for (i, rec) in records.iter().enumerate() {
            record_off -= RECORD_SIZE;
            let slot_off = HEADER_SIZE + i * SLOT_SIZE;
            buf[slot_off..slot_off + 2].copy_from_slice(&(record_off as u16).to_le_bytes());
            buf[record_off..record_off + 8].copy_from_slice(&rec.key.to_le_bytes());
            buf[record_off + 8..record_off + 16].copy_from_slice(&rec.value.to_le_bytes());
        }
        let checksum = fnv1a(&buf[..PAGE_SIZE - CHECKSUM_SIZE]);
        buf[PAGE_SIZE - CHECKSUM_SIZE..].copy_from_slice(&checksum.to_le_bytes());
    }
    Ok(page.freeze())
}

/// Decode a page image produced by [`encode_page`], verifying magic and
/// checksum.
///
/// # Errors
///
/// Returns [`ProrpError::Storage`] on wrong length, bad magic, corrupt
/// checksum, or an out-of-bounds slot.
pub fn decode_page(page: &[u8]) -> Result<Vec<Record>, ProrpError> {
    if page.len() != PAGE_SIZE {
        return Err(ProrpError::Storage(format!(
            "page must be {PAGE_SIZE} bytes, got {}",
            page.len()
        )));
    }
    let stored_checksum = {
        let mut tail = &page[PAGE_SIZE - CHECKSUM_SIZE..];
        tail.get_u64_le()
    };
    let actual = fnv1a(&page[..PAGE_SIZE - CHECKSUM_SIZE]);
    if stored_checksum != actual {
        return Err(ProrpError::Storage(format!(
            "page checksum mismatch: stored {stored_checksum:#x}, computed {actual:#x}"
        )));
    }
    let mut header = &page[..HEADER_SIZE];
    let magic = header.get_u32_le();
    if magic != PAGE_MAGIC {
        return Err(ProrpError::Storage(format!(
            "bad page magic {magic:#x}, expected {PAGE_MAGIC:#x}"
        )));
    }
    let count = header.get_u16_le() as usize;
    if count > records_per_page() {
        return Err(ProrpError::Storage(format!(
            "page claims {count} records, capacity is {}",
            records_per_page()
        )));
    }
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let slot_off = HEADER_SIZE + i * SLOT_SIZE;
        let mut slot = &page[slot_off..slot_off + SLOT_SIZE];
        let record_off = slot.get_u16_le() as usize;
        if record_off + RECORD_SIZE > PAGE_SIZE - CHECKSUM_SIZE || record_off < HEADER_SIZE {
            return Err(ProrpError::Storage(format!(
                "slot {i} points outside the record area ({record_off})"
            )));
        }
        let mut rec = &page[record_off..record_off + RECORD_SIZE];
        records.push(Record {
            key: rec.get_i64_le(),
            value: rec.get_i64_le(),
        });
    }
    Ok(records)
}

/// Number of pages needed to hold `n` records.
pub const fn pages_for(n: usize) -> usize {
    n.div_ceil(records_per_page())
}

/// Serialise an arbitrary-length record run into page images.
pub fn encode_pages(records: &[Record]) -> Result<Vec<Bytes>, ProrpError> {
    records
        .chunks(records_per_page())
        .map(encode_page)
        .collect()
}

/// Decode a sequence of page images back into one record run.
pub fn decode_pages<'a>(
    pages: impl IntoIterator<Item = &'a [u8]>,
) -> Result<Vec<Record>, ProrpError> {
    let mut out = Vec::new();
    for page in pages {
        out.extend(decode_page(page)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Record> {
        (0..n as i64)
            .map(|i| Record {
                key: i * 60,
                value: i % 2,
            })
            .collect()
    }

    #[test]
    fn capacity_is_sane() {
        // (8192 - 8 - 8) / 18 = 454 records per page.
        assert_eq!(records_per_page(), 454);
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(454), 1);
        assert_eq!(pages_for(455), 2);
    }

    #[test]
    fn roundtrip_empty_full_and_partial() {
        for n in [0, 1, 7, records_per_page()] {
            let records = sample(n);
            let page = encode_page(&records).unwrap();
            assert_eq!(page.len(), PAGE_SIZE);
            assert_eq!(decode_page(&page).unwrap(), records, "n = {n}");
        }
    }

    #[test]
    fn overfull_page_is_rejected() {
        let records = sample(records_per_page() + 1);
        assert!(encode_page(&records).is_err());
    }

    #[test]
    fn negative_keys_roundtrip() {
        let records = vec![
            Record {
                key: i64::MIN,
                value: 1,
            },
            Record { key: -1, value: 0 },
            Record {
                key: i64::MAX,
                value: 1,
            },
        ];
        let page = encode_page(&records).unwrap();
        assert_eq!(decode_page(&page).unwrap(), records);
    }

    #[test]
    fn corruption_is_detected() {
        let page = encode_page(&sample(5)).unwrap();
        let mut corrupt = page.to_vec();
        corrupt[100] ^= 0xff;
        let err = decode_page(&corrupt).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn bad_magic_is_detected() {
        let page = encode_page(&sample(1)).unwrap();
        let mut bad = page.to_vec();
        bad[0] ^= 0xff;
        // Fix up the checksum so only the magic is wrong.
        let checksum = super::fnv1a(&bad[..PAGE_SIZE - CHECKSUM_SIZE]);
        bad[PAGE_SIZE - CHECKSUM_SIZE..].copy_from_slice(&checksum.to_le_bytes());
        let err = decode_page(&bad).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn wrong_length_is_rejected() {
        assert!(decode_page(&[0u8; 16]).is_err());
    }

    #[test]
    fn multi_page_roundtrip() {
        let records = sample(records_per_page() * 2 + 13);
        let pages = encode_pages(&records).unwrap();
        assert_eq!(pages.len(), 3);
        let decoded = decode_pages(pages.iter().map(|p| p.as_ref())).unwrap();
        assert_eq!(decoded, records);
    }
}
