//! The control-plane metadata store — `sys.databases`.
//!
//! Before a database is physically paused, Algorithm 1 (line 31) records
//! the start of its next predicted activity in the metadata store; the
//! proactive resume operation (Algorithm 5) then selects all physically
//! paused databases whose predicted activity starts inside the upcoming
//! pre-warm slot:
//!
//! ```sql
//! SELECT database_id FROM sys.databases
//! WHERE state = 'physical_pause'
//!   AND @now + @k <= start_of_pred_activity
//!   AND start_of_pred_activity <= @now + @k + 1
//! ```
//!
//! A secondary ordered index on `start_of_pred_activity` makes that scan a
//! range lookup (`O(log n + m)`) instead of a full table scan — essential
//! when one region holds hundreds of thousands of databases and the scan
//! runs every minute (§9.3, Figure 11).

use prorp_types::{DatabaseId, DbState, Seconds, Timestamp};
use std::collections::{BTreeSet, HashMap};

/// One row of `sys.databases`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DbMeta {
    /// Current lifecycle state.
    pub state: DbState,
    /// `start_of_pred_activity`: when the next customer activity is
    /// predicted to begin, if a prediction exists.
    pub pred_start: Option<Timestamp>,
}

impl Default for DbMeta {
    fn default() -> Self {
        DbMeta {
            state: DbState::Resumed,
            pred_start: None,
        }
    }
}

/// Region-wide metadata for all serverless databases.
#[derive(Clone, Debug, Default)]
pub struct MetadataStore {
    rows: HashMap<DatabaseId, DbMeta>,
    /// `(start_of_pred_activity, database_id)` for rows that are
    /// physically paused *and* carry a prediction — exactly the rows
    /// Algorithm 5 may select.
    by_pred_start: BTreeSet<(Timestamp, DatabaseId)>,
}

impl MetadataStore {
    /// An empty store.
    pub fn new() -> Self {
        MetadataStore::default()
    }

    /// Number of registered databases.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Current row for `db`, if registered.
    pub fn get(&self, db: DatabaseId) -> Option<DbMeta> {
        self.rows.get(&db).copied()
    }

    /// Register or update a database row, keeping the secondary index
    /// consistent.
    pub fn upsert(&mut self, db: DatabaseId, meta: DbMeta) {
        if let Some(old) = self.rows.insert(db, meta) {
            if let Some(ps) = Self::indexable(&old) {
                self.by_pred_start.remove(&(ps, db));
            }
        }
        if let Some(ps) = Self::indexable(&meta) {
            self.by_pred_start.insert((ps, db));
        }
    }

    /// Update the lifecycle state of `db` (registering it if new).
    ///
    /// Resuming consumes the stored prediction: a database that went
    /// through `Resumed` must publish a fresh `start_of_pred_activity`
    /// (Algorithm 1 line 31) before the next physical pause can enter the
    /// proactive-resume queue.
    pub fn set_state(&mut self, db: DatabaseId, state: DbState) {
        let mut meta = self.get(db).unwrap_or_default();
        meta.state = state;
        if state == DbState::Resumed {
            meta.pred_start = None;
        }
        self.upsert(db, meta);
    }

    /// Record `start_of_pred_activity` for `db` — the `InsertMetadata`
    /// call of Algorithm 1 line 31 (registering the database if new).
    pub fn set_prediction(&mut self, db: DatabaseId, pred_start: Option<Timestamp>) {
        let mut meta = self.get(db).unwrap_or_default();
        meta.pred_start = pred_start;
        self.upsert(db, meta);
    }

    /// Drop a database (deletion / move away from this region).
    pub fn remove(&mut self, db: DatabaseId) -> Option<DbMeta> {
        let old = self.rows.remove(&db);
        if let Some(meta) = old {
            if let Some(ps) = Self::indexable(&meta) {
                self.by_pred_start.remove(&(ps, db));
            }
        }
        old
    }

    /// The Algorithm 5 selection: physically paused databases whose
    /// predicted activity starts within `[now + k, now + k + width]`
    /// (closed interval, as in the paper's `<=` bounds; `width` is the
    /// scan period — 1 minute in production).
    ///
    /// The scan streams straight off the secondary index in
    /// `start_of_pred_activity` order without materialising a `Vec` —
    /// the per-minute fleet scan visits `m` matches in `O(log n + m)`
    /// with zero allocation.
    pub fn databases_to_resume_iter(
        &self,
        now: Timestamp,
        prewarm: Seconds,
        width: Seconds,
    ) -> impl Iterator<Item = DatabaseId> + '_ {
        let lo = now + prewarm;
        let hi = lo + width;
        self.by_pred_start
            .range((lo, DatabaseId(u64::MIN))..=(hi, DatabaseId(u64::MAX)))
            .map(|(_, db)| *db)
    }

    /// Databases whose predicted start has already been missed (it is in
    /// the past but they are still physically paused).  The diagnostics
    /// runner (§7) monitors this queue for stuck databases.
    ///
    /// Streams off the secondary index in `start_of_pred_activity`
    /// order, like [`databases_to_resume_iter`](Self::databases_to_resume_iter).
    pub fn overdue_resumes_iter(&self, now: Timestamp) -> impl Iterator<Item = DatabaseId> + '_ {
        self.by_pred_start
            .range(..(now, DatabaseId(u64::MIN)))
            .map(|(_, db)| *db)
    }

    /// Split the store into `shard_count` shard-local stores by id-hash
    /// ([`DatabaseId::shard_of`]), each with its own secondary
    /// `start_of_pred_activity` index.
    ///
    /// Every row lands in exactly one partition, so the union of the
    /// partitions' [`databases_to_resume_iter`](Self::databases_to_resume_iter)
    /// results equals the global scan — this is what lets the Algorithm 5
    /// scan run shard-parallel (one worker per partition) without any
    /// cross-shard coordination.
    ///
    /// # Panics
    ///
    /// Panics when `shard_count` is zero.
    pub fn partition(&self, shard_count: usize) -> Vec<MetadataStore> {
        assert!(shard_count > 0, "shard_count must be positive");
        let mut out = vec![MetadataStore::new(); shard_count];
        for (db, meta) in &self.rows {
            out[db.shard_of(shard_count)].upsert(*db, *meta);
        }
        out
    }

    /// Count of rows in each lifecycle state (diagnostics, Figure 11/12).
    pub fn state_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for meta in self.rows.values() {
            match meta.state {
                DbState::Resumed => counts.0 += 1,
                DbState::LogicallyPaused => counts.1 += 1,
                DbState::PhysicallyPaused => counts.2 += 1,
            }
        }
        counts
    }

    fn indexable(meta: &DbMeta) -> Option<Timestamp> {
        if meta.state == DbState::PhysicallyPaused {
            meta.pred_start
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(id: u64) -> DatabaseId {
        DatabaseId(id)
    }

    fn paused_at(store: &mut MetadataStore, id: u64, pred: i64) {
        store.upsert(
            db(id),
            DbMeta {
                state: DbState::PhysicallyPaused,
                pred_start: Some(Timestamp(pred)),
            },
        );
    }

    #[test]
    fn upsert_and_get_roundtrip() {
        let mut store = MetadataStore::new();
        assert!(store.get(db(1)).is_none());
        store.set_state(db(1), DbState::LogicallyPaused);
        assert_eq!(store.get(db(1)).unwrap().state, DbState::LogicallyPaused);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn algorithm_5_selects_the_prewarm_slot() {
        let mut store = MetadataStore::new();
        let now = Timestamp(1_000);
        let k = Seconds(300);
        let width = Seconds(60);
        paused_at(&mut store, 1, 1_299); // just before the slot
        paused_at(&mut store, 2, 1_300); // slot start (now + k)
        paused_at(&mut store, 3, 1_330); // inside
        paused_at(&mut store, 4, 1_360); // slot end (now + k + width)
        paused_at(&mut store, 5, 1_361); // just after
        let selected: Vec<_> = store.databases_to_resume_iter(now, k, width).collect();
        assert_eq!(selected, vec![db(2), db(3), db(4)]);
    }

    #[test]
    fn only_physically_paused_databases_are_selected() {
        let mut store = MetadataStore::new();
        let now = Timestamp(0);
        store.upsert(
            db(1),
            DbMeta {
                state: DbState::LogicallyPaused,
                pred_start: Some(Timestamp(300)),
            },
        );
        paused_at(&mut store, 2, 300);
        let selected: Vec<_> = store
            .databases_to_resume_iter(now, Seconds(300), Seconds(60))
            .collect();
        assert_eq!(selected, vec![db(2)]);
    }

    #[test]
    fn state_change_updates_secondary_index() {
        let mut store = MetadataStore::new();
        paused_at(&mut store, 1, 300);
        // Database resumes: must leave the resume queue.
        store.set_state(db(1), DbState::Resumed);
        assert!(store
            .databases_to_resume_iter(Timestamp(0), Seconds(300), Seconds(60))
            .next()
            .is_none());
        // And pausing again re-registers it only with a fresh prediction.
        store.set_state(db(1), DbState::PhysicallyPaused);
        assert!(store
            .databases_to_resume_iter(Timestamp(0), Seconds(300), Seconds(60))
            .next()
            .is_none());
        store.set_prediction(db(1), Some(Timestamp(320)));
        assert!(store
            .databases_to_resume_iter(Timestamp(0), Seconds(300), Seconds(60))
            .eq([db(1)]));
    }

    #[test]
    fn remove_clears_both_structures() {
        let mut store = MetadataStore::new();
        paused_at(&mut store, 7, 500);
        assert!(store.remove(db(7)).is_some());
        assert!(store.is_empty());
        assert!(store
            .databases_to_resume_iter(Timestamp(0), Seconds(400), Seconds(200))
            .next()
            .is_none());
        assert!(store.remove(db(7)).is_none());
    }

    #[test]
    fn overdue_resumes_reports_missed_predictions() {
        let mut store = MetadataStore::new();
        paused_at(&mut store, 1, 100);
        paused_at(&mut store, 2, 900);
        assert!(store.overdue_resumes_iter(Timestamp(500)).eq([db(1)]));
        assert!(store.overdue_resumes_iter(Timestamp(50)).next().is_none());
    }

    #[test]
    fn partition_covers_every_row_exactly_once() {
        let mut store = MetadataStore::new();
        for id in 0..200 {
            paused_at(&mut store, id, 1_000 + id as i64);
        }
        let parts = store.partition(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(MetadataStore::len).sum::<usize>(), 200);
        for id in 0..200 {
            let owners = parts.iter().filter(|p| p.get(db(id)).is_some()).count();
            assert_eq!(owners, 1, "db {id} must live in exactly one partition");
        }
        // Shard-local scans union to the global scan.
        let (now, k, width) = (Timestamp(0), Seconds(1_000), Seconds(60));
        let mut local: Vec<DatabaseId> = parts
            .iter()
            .flat_map(|p| p.databases_to_resume_iter(now, k, width))
            .collect();
        local.sort_unstable();
        let mut global: Vec<DatabaseId> = store.databases_to_resume_iter(now, k, width).collect();
        global.sort_unstable();
        assert_eq!(local, global);
    }

    #[test]
    fn state_counts_tally_by_lifecycle() {
        let mut store = MetadataStore::new();
        store.set_state(db(1), DbState::Resumed);
        store.set_state(db(2), DbState::LogicallyPaused);
        store.set_state(db(3), DbState::PhysicallyPaused);
        store.set_state(db(4), DbState::PhysicallyPaused);
        assert_eq!(store.state_counts(), (1, 1, 2));
    }
}
