//! The per-database activity history table — `sys.pause_resume_history`.
//!
//! Schema (§5): `time_snapshot BIGINT` (unique, clustered B-tree index) and
//! `event_type INT` (1 = start of activity, 0 = end).  The two maintenance
//! procedures are transliterated here:
//!
//! * [`HistoryTable::insert_history`] — Algorithm 2: insert-if-not-exists;
//! * [`HistoryTable::delete_old_history`] — Algorithm 3: trim to the last
//!   `h` time units while *keeping the oldest tuple* so the database's
//!   lifespan remains computable, and report whether the database is "old"
//!   (existed for at least `h`).
//!
//! The prediction procedure's range aggregation (Algorithm 4 lines 19–24:
//! `MIN`/`MAX` of login timestamps within a window) is served by
//! [`HistoryTable::first_last_login_in`] and its one-pass combined form
//! [`HistoryTable::login_window_stats`].
//!
//! # Prediction-index support
//!
//! Alongside the clustered B-tree the table maintains, at every mutation
//! site (`InsertHistory`, `DeleteOldHistory`, restore), two auxiliary
//! structures the incremental predictor builds on:
//!
//! * a sorted cache of login timestamps ([`HistoryTable::logins`]) kept
//!   in lockstep with the index — `O(1)` amortised for the in-order
//!   appends the tracker produces, and drained by range on trims;
//! * an optional [`SlotIndex`]: a per-seasonal-period occupancy bitmap
//!   (plus per-slot login counts) over `slide`-granularity clock slots,
//!   enabled with [`HistoryTable::configure_slot_index`] and updated
//!   `O(1)` per login insert/delete.
//!
//! A monotonically increasing mutation [`version`](HistoryTable::version)
//! is bumped on every content change so engines can key prediction
//! caches on `(version, now)`.

use crate::btree::BTree;
use crate::page::{self, Record};
use prorp_types::{ActivityEvent, EventKind, Seconds, Timestamp};
use std::ops::Bound;

/// Occupancy index over login *clock offsets* within one seasonal period.
///
/// Each login timestamp `t` lands in slot `(t mod period) / slot_len`;
/// the index keeps a bitmap of occupied slots plus a per-slot login
/// count.  Because Algorithm 4 compares the *same* clock window against
/// every previous period (`winStart − period·prev ≡ winStart (mod
/// period)`), one bitmap probe answers "could any period-row of this
/// window position contain a login?" for all rows at once — a false
/// positive merely costs the exact sweep, while a false negative is
/// impossible since the probed slot range covers the window's whole
/// clock interval.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SlotIndex {
    /// Seasonal period in seconds (positive).
    period: i64,
    /// Slot granularity in seconds (positive, at most `period`).
    slot_len: i64,
    /// Number of slots: `ceil(period / slot_len)`.
    slots: usize,
    /// Occupancy bitmap, one bit per slot.
    words: Vec<u64>,
    /// Logins currently indexed per slot.
    counts: Vec<u32>,
    /// Total logins indexed.
    total: u64,
}

impl SlotIndex {
    /// An empty index; `None` when the parameters are degenerate.
    fn new(period: Seconds, slot_len: Seconds) -> Option<SlotIndex> {
        let p = period.as_secs();
        let g = slot_len.as_secs();
        if p <= 0 || g <= 0 {
            return None;
        }
        let g = g.min(p);
        let slots = ((p + g - 1) / g) as usize;
        Some(SlotIndex {
            period: p,
            slot_len: g,
            slots,
            words: vec![0; slots.div_ceil(64)],
            counts: vec![0; slots],
            total: 0,
        })
    }

    /// Rebuild from a sorted login cache (shared with the LSM backend).
    pub(crate) fn rebuilt(period: Seconds, slot_len: Seconds, logins: &[i64]) -> Option<SlotIndex> {
        let mut ix = SlotIndex::new(period, slot_len)?;
        for &t in logins {
            ix.add(t);
        }
        Some(ix)
    }

    /// The seasonal period this index is bucketed over.
    pub fn period(&self) -> Seconds {
        Seconds(self.period)
    }

    /// The slot granularity.
    pub fn slot_len(&self) -> Seconds {
        Seconds(self.slot_len)
    }

    /// Total logins currently indexed.
    pub fn total_logins(&self) -> u64 {
        self.total
    }

    fn slot_of(&self, ts: i64) -> usize {
        (ts.rem_euclid(self.period) / self.slot_len) as usize
    }

    pub(crate) fn add(&mut self, ts: i64) {
        let s = self.slot_of(ts);
        self.counts[s] += 1;
        self.words[s / 64] |= 1 << (s % 64);
        self.total += 1;
    }

    pub(crate) fn remove(&mut self, ts: i64) {
        let s = self.slot_of(ts);
        self.counts[s] = self.counts[s]
            .checked_sub(1)
            .expect("slot index decrement without a matching insert");
        if self.counts[s] == 0 {
            self.words[s / 64] &= !(1 << (s % 64));
        }
        self.total -= 1;
    }

    /// Any occupied slot in the inclusive slot range `[a, b]`?
    fn any_in_slots(&self, a: usize, b: usize) -> bool {
        let (wa, wb) = (a / 64, b / 64);
        let lo_mask = !0u64 << (a % 64);
        let hi_mask = !0u64 >> (63 - (b % 64));
        if wa == wb {
            return self.words[wa] & lo_mask & hi_mask != 0;
        }
        if self.words[wa] & lo_mask != 0 {
            return true;
        }
        if self.words[wa + 1..wb].iter().any(|&w| w != 0) {
            return true;
        }
        self.words[wb] & hi_mask != 0
    }

    /// Conservative occupancy probe for the clock window
    /// `[win_start mod period, win_start mod period + w]`: `false`
    /// guarantees no login of *any* seasonal period falls inside a
    /// window of length `w` starting at `win_start − period·prev` for
    /// any `prev`; `true` says some covered slot holds a login (which
    /// may still fall outside the exact window bounds).
    pub fn any_login_in_clock_window(&self, win_start: Timestamp, w: Seconds) -> bool {
        if self.total == 0 {
            return false;
        }
        if w.as_secs() >= self.period {
            return true; // the window covers the whole period
        }
        let clock_lo = win_start.as_secs().rem_euclid(self.period);
        let clock_hi = clock_lo + w.as_secs();
        let a = (clock_lo / self.slot_len) as usize;
        if clock_hi >= self.period {
            // The clock interval wraps past the period boundary.
            self.any_in_slots(a, self.slots - 1)
                || self.any_in_slots(0, ((clock_hi - self.period) / self.slot_len) as usize)
        } else {
            self.any_in_slots(a, (clock_hi / self.slot_len) as usize)
        }
    }
}

/// Result of one [`HistoryTable::delete_old_history`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeleteOutcome {
    /// Whether the database existed before the start of recent history —
    /// the `@old` output parameter of Algorithm 3 that gates reliable
    /// prediction in Algorithm 1 (lines 10, 19, 26).
    pub old: bool,
    /// Number of tuples permanently deleted.
    pub deleted: usize,
}

/// Storage-overhead figures for one history table (Figure 10a–b).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StorageStats {
    /// Number of tuples currently stored.
    pub tuples: usize,
    /// Logical size: tuples × 16 bytes (two 64-bit integers, §9.3).
    pub logical_bytes: usize,
    /// Physical size when serialised to 8-KiB slotted pages.
    pub page_bytes: usize,
    /// Number of pages the table serialises to.
    pub pages: usize,
    /// Depth of the clustered index.
    pub index_depth: usize,
}

/// The `sys.pause_resume_history` table of one database.
#[derive(Clone, Debug, Default)]
pub struct HistoryTable {
    index: BTree<i64>,
    /// Sorted cache of login (`event_type = 1`) timestamps, maintained in
    /// lockstep with the clustered index.
    logins: Vec<i64>,
    /// Monotonically increasing mutation version: bumped whenever the
    /// stored tuple set actually changes.
    version: u64,
    /// Optional slot-occupancy index (see [`SlotIndex`]).
    slots: Option<SlotIndex>,
}

impl HistoryTable {
    /// An empty history.
    pub fn new() -> Self {
        HistoryTable::default()
    }

    /// Algorithm 2 — `sys.InsertHistory(@time, @type)`.
    ///
    /// Inserts the event unless a tuple with the same `time_snapshot`
    /// already exists (the `IF NOT EXISTS` guard).  Returns `true` when a
    /// tuple was inserted.  `O(log n)` via the clustered index; the login
    /// cache and slot index are updated `O(1)` amortised for the in-order
    /// appends the activity tracker produces.
    pub fn insert_history(&mut self, ts: Timestamp, kind: EventKind) -> bool {
        if self.index.contains_key(ts.as_secs()) {
            return false;
        }
        self.index
            .insert(ts.as_secs(), i64::from(kind.as_i32()))
            .expect("contains_key checked; insert cannot collide");
        if kind == EventKind::Start {
            let t = ts.as_secs();
            match self.logins.last() {
                Some(&newest) if newest > t => {
                    let pos = self.logins.partition_point(|&x| x < t);
                    self.logins.insert(pos, t);
                }
                _ => self.logins.push(t),
            }
            if let Some(ix) = self.slots.as_mut() {
                ix.add(t);
            }
        }
        self.version += 1;
        true
    }

    /// Convenience wrapper over [`insert_history`](Self::insert_history)
    /// for an [`ActivityEvent`].
    pub fn insert_event(&mut self, ev: ActivityEvent) -> bool {
        self.insert_history(ev.ts, ev.kind)
    }

    /// Algorithm 3 — `sys.DeleteOldHistory(@h, @now, @old OUTPUT)`.
    ///
    /// Computes `historyStart = now − h`.  If the oldest tuple predates it,
    /// the database is old and every tuple strictly between the oldest
    /// tuple and `historyStart` is deleted (the oldest tuple itself is kept
    /// to preserve the lifespan).  Otherwise the database is new and
    /// nothing is deleted.
    pub fn delete_old_history(&mut self, h: Seconds, now: Timestamp) -> DeleteOutcome {
        let history_start = (now - h).as_secs();
        let Some((min_ts, _)) = self.index.min_entry() else {
            return DeleteOutcome {
                old: false,
                deleted: 0,
            };
        };
        if min_ts < history_start {
            let deleted = self.index.delete_exclusive_range(min_ts, history_start);
            if deleted > 0 {
                // Mirror the trim on the login cache and slot index: the
                // deleted keys are exactly those strictly inside
                // `(min_ts, history_start)`.
                let lo = self.logins.partition_point(|&t| t <= min_ts);
                let hi = self.logins.partition_point(|&t| t < history_start);
                if lo < hi {
                    if let Some(ix) = self.slots.as_mut() {
                        for &t in &self.logins[lo..hi] {
                            ix.remove(t);
                        }
                    }
                    self.logins.drain(lo..hi);
                }
                self.version += 1;
            }
            DeleteOutcome { old: true, deleted }
        } else {
            DeleteOutcome {
                old: false,
                deleted: 0,
            }
        }
    }

    /// `SELECT MIN(time_snapshot), MAX(time_snapshot) WHERE event_type = 1
    /// AND lo <= time_snapshot AND time_snapshot <= hi`
    /// (Algorithm 4 lines 19–24).
    ///
    /// Returns `None` when no login falls inside the closed window.
    pub fn first_last_login_in(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp)> {
        let mut first = None;
        let mut last = None;
        for (k, v) in self
            .index
            .range(Bound::Included(lo.as_secs()), Bound::Included(hi.as_secs()))
        {
            if *v == 1 {
                if first.is_none() {
                    first = Some(Timestamp(k));
                }
                last = Some(Timestamp(k));
            }
        }
        first.zip(last)
    }

    /// Number of logins (`event_type = 1`) inside the closed window
    /// `[lo, hi]` — used by the login-count confidence ablation.
    pub fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64 {
        self.index
            .range(Bound::Included(lo.as_secs()), Bound::Included(hi.as_secs()))
            .filter(|(_, v)| **v == 1)
            .count() as i64
    }

    /// `MIN`, `MAX` *and* `COUNT` of login timestamps inside the closed
    /// window `[lo, hi]`, in one index range scan — the combined form of
    /// [`first_last_login_in`](Self::first_last_login_in) +
    /// [`count_logins_in`](Self::count_logins_in) that lets Algorithm 4's
    /// Logins-basis ablation stop double-scanning every window.
    ///
    /// Returns `None` when no login falls inside the window.
    pub fn login_window_stats(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp, i64)> {
        let mut first = None;
        let mut last = None;
        let mut count = 0i64;
        for (k, v) in self
            .index
            .range(Bound::Included(lo.as_secs()), Bound::Included(hi.as_secs()))
        {
            if *v == 1 {
                if first.is_none() {
                    first = Some(Timestamp(k));
                }
                last = Some(Timestamp(k));
                count += 1;
            }
        }
        Some((first?, last?, count))
    }

    /// Whether any event (login *or* logout) falls inside `[lo, hi]`.
    pub fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        self.index
            .range(Bound::Included(lo.as_secs()), Bound::Included(hi.as_secs()))
            .next()
            .is_some()
    }

    /// Oldest tuple's timestamp — the database's observable lifespan start.
    pub fn min_timestamp(&self) -> Option<Timestamp> {
        self.index.min_entry().map(|(k, _)| Timestamp(k))
    }

    /// Newest tuple's timestamp.
    pub fn max_timestamp(&self) -> Option<Timestamp> {
        self.index.max_entry().map(|(k, _)| Timestamp(k))
    }

    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the history holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The table's mutation version: bumped on every insert that stored a
    /// tuple and every trim that deleted at least one.  A prediction whose
    /// inputs are `(version, now)` can be cached until either changes.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The sorted login (`event_type = 1`) timestamps, maintained in
    /// lockstep with the clustered index — the incremental predictor's
    /// cursor-sweep substrate.
    pub fn logins(&self) -> &[i64] {
        &self.logins
    }

    /// The slot-occupancy index, when one has been configured.
    pub fn slot_index(&self) -> Option<&SlotIndex> {
        self.slots.as_ref()
    }

    /// (Re)build the slot-occupancy index bucketing login clock offsets
    /// into `slot_len`-granularity slots over one `period`.  Degenerate
    /// parameters (non-positive period or slot length) disable the index.
    /// Subsequent mutations keep it current in `O(1)` per login.
    pub fn configure_slot_index(&mut self, period: Seconds, slot_len: Seconds) {
        self.slots = SlotIndex::rebuilt(period, slot_len, &self.logins);
    }

    /// All events in timestamp order — the materialised read-only view §5
    /// plans to publish to customers.
    pub fn events(&self) -> Vec<ActivityEvent> {
        self.index
            .iter()
            .map(|(k, v)| ActivityEvent {
                ts: Timestamp(k),
                kind: if *v == 1 {
                    EventKind::Start
                } else {
                    EventKind::End
                },
            })
            .collect()
    }

    /// Events as page records (the backup stream now serialises through
    /// [`events`](HistoryTable::events); this remains for round-trip
    /// tests of the bulk-load path).
    #[cfg(test)]
    pub(crate) fn records(&self) -> Vec<Record> {
        self.index
            .iter()
            .map(|(k, v)| Record { key: k, value: *v })
            .collect()
    }

    /// Rebuild from page records (backup restore path).  Backup streams
    /// are written in key order, so the clustered index is bulk-loaded in
    /// one `O(n)` bottom-up pass.
    pub(crate) fn from_records(records: &[Record]) -> Result<Self, prorp_types::ProrpError> {
        let pairs: Vec<(i64, i64)> = records.iter().map(|r| (r.key, r.value)).collect();
        // Key order is a bulk-load precondition, so the filtered login
        // cache comes out sorted for free.  The slot index is left
        // unconfigured: the restoring engine re-enables it with its own
        // knobs (they do not travel in the backup stream).
        let logins = records
            .iter()
            .filter(|r| r.value == 1)
            .map(|r| r.key)
            .collect();
        Ok(HistoryTable {
            index: BTree::bulk_load(pairs)?,
            logins,
            version: 0,
            slots: None,
        })
    }

    /// Verify the table's structural invariants: the clustered index's
    /// B-tree properties (key ordering, node occupancy, depth balance),
    /// the login cache being exactly the index's `event_type = 1` keys in
    /// order, and — when configured — the slot index matching a
    /// from-scratch rebuild.  Used by the strict-invariants checker and
    /// property tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        self.index.check_invariants();
        let expected: Vec<i64> = self
            .index
            .iter()
            .filter(|(_, v)| **v == 1)
            .map(|(k, _)| k)
            .collect();
        assert_eq!(
            self.logins, expected,
            "login cache diverged from the clustered index"
        );
        if let Some(ix) = &self.slots {
            let rebuilt = SlotIndex::rebuilt(ix.period(), ix.slot_len(), &self.logins)
                .expect("a configured slot index has valid parameters");
            assert_eq!(*ix, rebuilt, "slot index diverged from a rebuild");
        }
    }

    /// Storage-overhead statistics (Figure 10a–b).
    pub fn stats(&self) -> StorageStats {
        let tuples = self.len();
        let pages = page::pages_for(tuples);
        StorageStats {
            tuples,
            logical_bytes: tuples * page::RECORD_SIZE,
            page_bytes: pages * page::PAGE_SIZE,
            pages,
            index_depth: self.index.depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn insert_is_idempotent_per_timestamp() {
        let mut h = HistoryTable::new();
        assert!(h.insert_history(t(100), EventKind::Start));
        assert!(!h.insert_history(t(100), EventKind::End));
        assert_eq!(h.len(), 1);
        // The original event type wins (IF NOT EXISTS semantics).
        assert_eq!(h.events()[0].kind, EventKind::Start);
    }

    #[test]
    fn delete_old_history_keeps_oldest_tuple() {
        let mut h = HistoryTable::new();
        // Events at days 0, 1, 2, ..., 40 (start events).
        for d in 0..=40 {
            h.insert_history(t(d * 86_400), EventKind::Start);
        }
        let now = t(40 * 86_400);
        let outcome = h.delete_old_history(Seconds::days(28), now);
        assert!(outcome.old);
        // historyStart = day 12. Tuples strictly between day 0 and day 12
        // are deleted: days 1..=11 → 11 tuples.
        assert_eq!(outcome.deleted, 11);
        assert_eq!(h.min_timestamp(), Some(t(0)), "oldest tuple preserved");
        assert!(h.any_event_in(t(12 * 86_400), now));
        assert!(!h.any_event_in(t(1), t(12 * 86_400 - 1)));
    }

    #[test]
    fn young_database_is_not_old() {
        let mut h = HistoryTable::new();
        h.insert_history(t(1_000), EventKind::Start);
        let outcome = h.delete_old_history(Seconds::days(28), t(2_000));
        assert!(!outcome.old);
        assert_eq!(outcome.deleted, 0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn delete_on_empty_history_is_noop() {
        let mut h = HistoryTable::new();
        let outcome = h.delete_old_history(Seconds::days(28), t(1_000_000));
        assert_eq!(
            outcome,
            DeleteOutcome {
                old: false,
                deleted: 0
            }
        );
    }

    #[test]
    fn boundary_tuple_at_history_start_survives() {
        let mut h = HistoryTable::new();
        let now = t(100_000);
        let hist = Seconds(10_000);
        let start = (now - hist).as_secs(); // 90_000
        h.insert_history(t(50_000), EventKind::Start); // oldest, kept
        h.insert_history(t(start), EventKind::Start); // exactly at boundary
        h.insert_history(t(95_000), EventKind::End);
        let outcome = h.delete_old_history(hist, now);
        assert!(outcome.old);
        assert_eq!(outcome.deleted, 0, "boundary tuple is not strictly inside");
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn first_last_login_filters_event_type() {
        let mut h = HistoryTable::new();
        h.insert_history(t(10), EventKind::End); // not a login
        h.insert_history(t(20), EventKind::Start);
        h.insert_history(t(30), EventKind::End);
        h.insert_history(t(40), EventKind::Start);
        h.insert_history(t(50), EventKind::End);
        assert_eq!(h.first_last_login_in(t(0), t(100)), Some((t(20), t(40))));
        assert_eq!(h.first_last_login_in(t(25), t(100)), Some((t(40), t(40))));
        assert_eq!(h.first_last_login_in(t(41), t(100)), None);
        // Closed bounds include both ends.
        assert_eq!(h.first_last_login_in(t(20), t(20)), Some((t(20), t(20))));
    }

    #[test]
    fn events_view_is_ordered_and_typed() {
        let mut h = HistoryTable::new();
        h.insert_history(t(30), EventKind::End);
        h.insert_history(t(10), EventKind::Start);
        let evs = h.events();
        assert_eq!(
            evs,
            vec![ActivityEvent::start(t(10)), ActivityEvent::end(t(30))]
        );
    }

    #[test]
    fn login_window_stats_combines_min_max_count() {
        let mut h = HistoryTable::new();
        h.insert_history(t(10), EventKind::End);
        h.insert_history(t(20), EventKind::Start);
        h.insert_history(t(30), EventKind::End);
        h.insert_history(t(40), EventKind::Start);
        h.insert_history(t(50), EventKind::Start);
        for (lo, hi) in [(0, 100), (25, 100), (41, 100), (20, 20), (0, 5)] {
            let combined = h.login_window_stats(t(lo), t(hi));
            let split = h
                .first_last_login_in(t(lo), t(hi))
                .map(|(f, l)| (f, l, h.count_logins_in(t(lo), t(hi))));
            assert_eq!(combined, split, "window [{lo}, {hi}]");
        }
        assert_eq!(h.login_window_stats(t(0), t(100)), Some((t(20), t(50), 3)));
    }

    #[test]
    fn version_bumps_only_on_content_change() {
        let mut h = HistoryTable::new();
        assert_eq!(h.version(), 0);
        h.insert_history(t(100), EventKind::Start);
        assert_eq!(h.version(), 1);
        h.insert_history(t(100), EventKind::End); // duplicate: no change
        assert_eq!(h.version(), 1);
        h.insert_history(t(200_000), EventKind::End);
        assert_eq!(h.version(), 2);
        // Trim that deletes nothing (boundary tuple kept) must not bump.
        h.delete_old_history(Seconds(150_000), t(250_000));
        assert_eq!(h.version(), 2);
        h.insert_history(t(150), EventKind::Start);
        assert_eq!(h.version(), 3);
        let outcome = h.delete_old_history(Seconds(10_000), t(200_000));
        assert_eq!(outcome.deleted, 1);
        assert_eq!(h.version(), 4);
    }

    #[test]
    fn login_cache_tracks_out_of_order_inserts_and_trims() {
        let mut h = HistoryTable::new();
        h.configure_slot_index(Seconds::days(1), Seconds::minutes(5));
        for &ts in &[500, 100, 300, 200, 400] {
            h.insert_history(t(ts), EventKind::Start);
            h.insert_history(t(ts + 50), EventKind::End);
        }
        assert_eq!(h.logins(), &[100, 200, 300, 400, 500]);
        h.check_invariants();
        // Trim to the last 150 s: keeps the oldest tuple (100) and
        // everything >= 350.
        let outcome = h.delete_old_history(Seconds(150), t(500));
        assert!(outcome.old);
        assert_eq!(h.logins(), &[100, 400, 500]);
        h.check_invariants();
        assert_eq!(h.slot_index().unwrap().total_logins(), 3);
    }

    #[test]
    fn slot_index_probe_is_conservative_and_never_misses() {
        let mut h = HistoryTable::new();
        let day = Seconds::days(1);
        h.configure_slot_index(day, Seconds::minutes(5));
        // Logins at 09:00 across three days, plus one at 23:59 (exercises
        // windows that wrap the period boundary).
        for d in 0..3 {
            h.insert_history(t(d * 86_400 + 9 * 3_600), EventKind::Start);
        }
        h.insert_history(t(86_400 - 60), EventKind::Start);
        let ix = h.slot_index().unwrap();
        let w = Seconds::hours(1);
        // Every real login must be covered at every window that contains
        // it: probe windows starting at each login minus a sub-window lag.
        for &login in h.logins() {
            for lag in [0, 1, 1_800, 3_599] {
                assert!(
                    ix.any_login_in_clock_window(t(login - lag), w),
                    "probe missed login {login} at lag {lag}"
                );
            }
        }
        // A clock window with no logins anywhere near it reports empty.
        assert!(!ix.any_login_in_clock_window(t(3 * 3_600), w));
        // Wrapping window: starts 23:30, covers the 23:59 login.
        assert!(ix.any_login_in_clock_window(t(23 * 3_600 + 1_800), w));
        // A window at least one period long always reports occupancy.
        assert!(ix.any_login_in_clock_window(t(3 * 3_600), day));
    }

    #[test]
    fn restored_table_rebuilds_login_cache_without_slot_index() {
        let mut h = HistoryTable::new();
        h.configure_slot_index(Seconds::days(1), Seconds::minutes(5));
        for d in 0..4 {
            h.insert_history(t(d * 86_400 + 100), EventKind::Start);
            h.insert_history(t(d * 86_400 + 200), EventKind::End);
        }
        let restored = HistoryTable::from_records(&h.records()).unwrap();
        assert_eq!(restored.logins(), h.logins());
        assert_eq!(restored.version(), 0);
        assert!(restored.slot_index().is_none());
        restored.check_invariants();
        let mut reconfigured = restored;
        reconfigured.configure_slot_index(Seconds::days(1), Seconds::minutes(5));
        assert_eq!(reconfigured.slot_index(), h.slot_index());
        reconfigured.check_invariants();
    }

    #[test]
    fn stats_match_paper_arithmetic() {
        let mut h = HistoryTable::new();
        for i in 0..500 {
            h.insert_history(t(i * 60), EventKind::Start);
        }
        let s = h.stats();
        assert_eq!(s.tuples, 500);
        // 500 tuples × 16 B = 8 000 B ≈ the "within 7 KB on average" of
        // Figure 10b for ~450-tuple histories.
        assert_eq!(s.logical_bytes, 8_000);
        assert_eq!(s.pages, 2);
        assert_eq!(s.page_bytes, 2 * page::PAGE_SIZE);
        assert!(s.index_depth >= 1);
    }
}
