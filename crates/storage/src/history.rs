//! The per-database activity history table — `sys.pause_resume_history`.
//!
//! Schema (§5): `time_snapshot BIGINT` (unique, clustered B-tree index) and
//! `event_type INT` (1 = start of activity, 0 = end).  The two maintenance
//! procedures are transliterated here:
//!
//! * [`HistoryTable::insert_history`] — Algorithm 2: insert-if-not-exists;
//! * [`HistoryTable::delete_old_history`] — Algorithm 3: trim to the last
//!   `h` time units while *keeping the oldest tuple* so the database's
//!   lifespan remains computable, and report whether the database is "old"
//!   (existed for at least `h`).
//!
//! The prediction procedure's range aggregation (Algorithm 4 lines 19–24:
//! `MIN`/`MAX` of login timestamps within a window) is served by
//! [`HistoryTable::first_last_login_in`].

use crate::btree::BTree;
use crate::page::{self, Record};
use prorp_types::{ActivityEvent, EventKind, Seconds, Timestamp};
use std::ops::Bound;

/// Result of one [`HistoryTable::delete_old_history`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeleteOutcome {
    /// Whether the database existed before the start of recent history —
    /// the `@old` output parameter of Algorithm 3 that gates reliable
    /// prediction in Algorithm 1 (lines 10, 19, 26).
    pub old: bool,
    /// Number of tuples permanently deleted.
    pub deleted: usize,
}

/// Storage-overhead figures for one history table (Figure 10a–b).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StorageStats {
    /// Number of tuples currently stored.
    pub tuples: usize,
    /// Logical size: tuples × 16 bytes (two 64-bit integers, §9.3).
    pub logical_bytes: usize,
    /// Physical size when serialised to 8-KiB slotted pages.
    pub page_bytes: usize,
    /// Number of pages the table serialises to.
    pub pages: usize,
    /// Depth of the clustered index.
    pub index_depth: usize,
}

/// The `sys.pause_resume_history` table of one database.
#[derive(Clone, Debug, Default)]
pub struct HistoryTable {
    index: BTree<i64>,
}

impl HistoryTable {
    /// An empty history.
    pub fn new() -> Self {
        HistoryTable::default()
    }

    /// Algorithm 2 — `sys.InsertHistory(@time, @type)`.
    ///
    /// Inserts the event unless a tuple with the same `time_snapshot`
    /// already exists (the `IF NOT EXISTS` guard).  Returns `true` when a
    /// tuple was inserted.  `O(log n)` via the clustered index.
    pub fn insert_history(&mut self, ts: Timestamp, kind: EventKind) -> bool {
        if self.index.contains_key(ts.as_secs()) {
            return false;
        }
        self.index
            .insert(ts.as_secs(), i64::from(kind.as_i32()))
            .expect("contains_key checked; insert cannot collide");
        true
    }

    /// Convenience wrapper over [`insert_history`](Self::insert_history)
    /// for an [`ActivityEvent`].
    pub fn insert_event(&mut self, ev: ActivityEvent) -> bool {
        self.insert_history(ev.ts, ev.kind)
    }

    /// Algorithm 3 — `sys.DeleteOldHistory(@h, @now, @old OUTPUT)`.
    ///
    /// Computes `historyStart = now − h`.  If the oldest tuple predates it,
    /// the database is old and every tuple strictly between the oldest
    /// tuple and `historyStart` is deleted (the oldest tuple itself is kept
    /// to preserve the lifespan).  Otherwise the database is new and
    /// nothing is deleted.
    pub fn delete_old_history(&mut self, h: Seconds, now: Timestamp) -> DeleteOutcome {
        let history_start = (now - h).as_secs();
        let Some((min_ts, _)) = self.index.min_entry() else {
            return DeleteOutcome {
                old: false,
                deleted: 0,
            };
        };
        if min_ts < history_start {
            let deleted = self.index.delete_exclusive_range(min_ts, history_start);
            DeleteOutcome { old: true, deleted }
        } else {
            DeleteOutcome {
                old: false,
                deleted: 0,
            }
        }
    }

    /// `SELECT MIN(time_snapshot), MAX(time_snapshot) WHERE event_type = 1
    /// AND lo <= time_snapshot AND time_snapshot <= hi`
    /// (Algorithm 4 lines 19–24).
    ///
    /// Returns `None` when no login falls inside the closed window.
    pub fn first_last_login_in(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp)> {
        let mut first = None;
        let mut last = None;
        for (k, v) in self
            .index
            .range(Bound::Included(lo.as_secs()), Bound::Included(hi.as_secs()))
        {
            if *v == 1 {
                if first.is_none() {
                    first = Some(Timestamp(k));
                }
                last = Some(Timestamp(k));
            }
        }
        first.zip(last)
    }

    /// Number of logins (`event_type = 1`) inside the closed window
    /// `[lo, hi]` — used by the login-count confidence ablation.
    pub fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64 {
        self.index
            .range(Bound::Included(lo.as_secs()), Bound::Included(hi.as_secs()))
            .filter(|(_, v)| **v == 1)
            .count() as i64
    }

    /// Whether any event (login *or* logout) falls inside `[lo, hi]`.
    pub fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        self.index
            .range(Bound::Included(lo.as_secs()), Bound::Included(hi.as_secs()))
            .next()
            .is_some()
    }

    /// Oldest tuple's timestamp — the database's observable lifespan start.
    pub fn min_timestamp(&self) -> Option<Timestamp> {
        self.index.min_entry().map(|(k, _)| Timestamp(k))
    }

    /// Newest tuple's timestamp.
    pub fn max_timestamp(&self) -> Option<Timestamp> {
        self.index.max_entry().map(|(k, _)| Timestamp(k))
    }

    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the history holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All events in timestamp order — the materialised read-only view §5
    /// plans to publish to customers.
    pub fn events(&self) -> Vec<ActivityEvent> {
        self.index
            .iter()
            .map(|(k, v)| ActivityEvent {
                ts: Timestamp(k),
                kind: if *v == 1 {
                    EventKind::Start
                } else {
                    EventKind::End
                },
            })
            .collect()
    }

    /// Events as page records, for backup serialisation.
    pub(crate) fn records(&self) -> Vec<Record> {
        self.index
            .iter()
            .map(|(k, v)| Record { key: k, value: *v })
            .collect()
    }

    /// Rebuild from page records (backup restore path).  Backup streams
    /// are written in key order, so the clustered index is bulk-loaded in
    /// one `O(n)` bottom-up pass.
    pub(crate) fn from_records(records: &[Record]) -> Result<Self, prorp_types::ProrpError> {
        let pairs: Vec<(i64, i64)> = records.iter().map(|r| (r.key, r.value)).collect();
        Ok(HistoryTable {
            index: BTree::bulk_load(pairs)?,
        })
    }

    /// Verify the clustered index's structural invariants (key ordering,
    /// node occupancy, depth balance); used by the strict-invariants
    /// checker and property tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        self.index.check_invariants();
    }

    /// Storage-overhead statistics (Figure 10a–b).
    pub fn stats(&self) -> StorageStats {
        let tuples = self.len();
        let pages = page::pages_for(tuples);
        StorageStats {
            tuples,
            logical_bytes: tuples * page::RECORD_SIZE,
            page_bytes: pages * page::PAGE_SIZE,
            pages,
            index_depth: self.index.depth(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn insert_is_idempotent_per_timestamp() {
        let mut h = HistoryTable::new();
        assert!(h.insert_history(t(100), EventKind::Start));
        assert!(!h.insert_history(t(100), EventKind::End));
        assert_eq!(h.len(), 1);
        // The original event type wins (IF NOT EXISTS semantics).
        assert_eq!(h.events()[0].kind, EventKind::Start);
    }

    #[test]
    fn delete_old_history_keeps_oldest_tuple() {
        let mut h = HistoryTable::new();
        // Events at days 0, 1, 2, ..., 40 (start events).
        for d in 0..=40 {
            h.insert_history(t(d * 86_400), EventKind::Start);
        }
        let now = t(40 * 86_400);
        let outcome = h.delete_old_history(Seconds::days(28), now);
        assert!(outcome.old);
        // historyStart = day 12. Tuples strictly between day 0 and day 12
        // are deleted: days 1..=11 → 11 tuples.
        assert_eq!(outcome.deleted, 11);
        assert_eq!(h.min_timestamp(), Some(t(0)), "oldest tuple preserved");
        assert!(h.any_event_in(t(12 * 86_400), now));
        assert!(!h.any_event_in(t(1), t(12 * 86_400 - 1)));
    }

    #[test]
    fn young_database_is_not_old() {
        let mut h = HistoryTable::new();
        h.insert_history(t(1_000), EventKind::Start);
        let outcome = h.delete_old_history(Seconds::days(28), t(2_000));
        assert!(!outcome.old);
        assert_eq!(outcome.deleted, 0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn delete_on_empty_history_is_noop() {
        let mut h = HistoryTable::new();
        let outcome = h.delete_old_history(Seconds::days(28), t(1_000_000));
        assert_eq!(
            outcome,
            DeleteOutcome {
                old: false,
                deleted: 0
            }
        );
    }

    #[test]
    fn boundary_tuple_at_history_start_survives() {
        let mut h = HistoryTable::new();
        let now = t(100_000);
        let hist = Seconds(10_000);
        let start = (now - hist).as_secs(); // 90_000
        h.insert_history(t(50_000), EventKind::Start); // oldest, kept
        h.insert_history(t(start), EventKind::Start); // exactly at boundary
        h.insert_history(t(95_000), EventKind::End);
        let outcome = h.delete_old_history(hist, now);
        assert!(outcome.old);
        assert_eq!(outcome.deleted, 0, "boundary tuple is not strictly inside");
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn first_last_login_filters_event_type() {
        let mut h = HistoryTable::new();
        h.insert_history(t(10), EventKind::End); // not a login
        h.insert_history(t(20), EventKind::Start);
        h.insert_history(t(30), EventKind::End);
        h.insert_history(t(40), EventKind::Start);
        h.insert_history(t(50), EventKind::End);
        assert_eq!(h.first_last_login_in(t(0), t(100)), Some((t(20), t(40))));
        assert_eq!(h.first_last_login_in(t(25), t(100)), Some((t(40), t(40))));
        assert_eq!(h.first_last_login_in(t(41), t(100)), None);
        // Closed bounds include both ends.
        assert_eq!(h.first_last_login_in(t(20), t(20)), Some((t(20), t(20))));
    }

    #[test]
    fn events_view_is_ordered_and_typed() {
        let mut h = HistoryTable::new();
        h.insert_history(t(30), EventKind::End);
        h.insert_history(t(10), EventKind::Start);
        let evs = h.events();
        assert_eq!(
            evs,
            vec![ActivityEvent::start(t(10)), ActivityEvent::end(t(30))]
        );
    }

    #[test]
    fn stats_match_paper_arithmetic() {
        let mut h = HistoryTable::new();
        for i in 0..500 {
            h.insert_history(t(i * 60), EventKind::Start);
        }
        let s = h.stats();
        assert_eq!(s.tuples, 500);
        // 500 tuples × 16 B = 8 000 B ≈ the "within 7 KB on average" of
        // Figure 10b for ~450-tuple histories.
        assert_eq!(s.logical_bytes, 8_000);
        assert_eq!(s.pages, 2);
        assert_eq!(s.page_bytes, 2 * page::PAGE_SIZE);
        assert!(s.index_depth >= 1);
    }
}
