//! The storage-engine trait seam and backend dispatch.
//!
//! Until this module existed, `HistoryTable` was a concrete struct wired
//! directly into the policy engines, the predictors, and the simulator
//! arena — no alternative history backend could exist.  The seam splits
//! the table's surface into two traits:
//!
//! * [`HistoryRead`] — the object-safe read surface Algorithm 4 and the
//!   incremental prediction index consume (window aggregates, the sorted
//!   login cache, the optional slot-occupancy index, the mutation
//!   version).  Frozen views such as [`crate::lsm::LsmSnapshot`]
//!   implement only this half.
//! * [`HistoryStore`] — the mutation surface of Algorithms 2 and 3 plus
//!   the slot-index and invariant hooks the engines call.
//!
//! [`HistoryBackend`] is the enum-dispatch wrapper the engines actually
//! store: one variant per backend, so per-database state stays `Clone`
//! and allocation-free to switch on, and the simulator can flip the
//! whole fleet between the B+Tree and LSM engines with one
//! [`StorageBackend`] knob.  Both backends promise *bit-identical
//! observable behaviour* — same insert/trim outcomes, same window
//! aggregates, same mutation version after every call — which the
//! testkit's `storage_conformance` differential oracles enforce.

use crate::history::{DeleteOutcome, HistoryTable, SlotIndex, StorageStats};
use crate::lsm::LsmHistory;
use prorp_types::{ActivityEvent, EventKind, Seconds, Timestamp};

/// Read surface of a history store — everything Algorithm 4, the
/// incremental prediction index, and the backup path consume.
///
/// The trait is object-safe on purpose: predictors take
/// `&dyn HistoryRead`, so one compiled predictor body serves the live
/// B+Tree table, the live LSM store, and a frozen LSM snapshot alike.
pub trait HistoryRead {
    /// `MIN`/`MAX` of login (`event_type = 1`) timestamps inside the
    /// closed window `[lo, hi]` (Algorithm 4 lines 19–24); `None` when
    /// no login falls inside.
    fn first_last_login_in(&self, lo: Timestamp, hi: Timestamp) -> Option<(Timestamp, Timestamp)>;

    /// Number of logins inside the closed window `[lo, hi]`.
    fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64;

    /// `MIN`, `MAX` *and* `COUNT` of login timestamps inside `[lo, hi]`
    /// in one scan; `None` when no login falls inside.
    fn login_window_stats(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp, i64)>;

    /// Whether any event (login *or* logout) falls inside `[lo, hi]`.
    fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool;

    /// Oldest stored timestamp — the database's observable lifespan start.
    fn min_timestamp(&self) -> Option<Timestamp>;

    /// Newest stored timestamp.
    fn max_timestamp(&self) -> Option<Timestamp>;

    /// Number of tuples currently visible.
    fn len(&self) -> usize;

    /// Whether the store holds no visible tuples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Monotonically increasing mutation version: bumped on every insert
    /// that stored a tuple and every trim that deleted at least one.
    /// Engines key prediction caches on `(version, now)`.
    fn version(&self) -> u64;

    /// The sorted login (`event_type = 1`) timestamps — the incremental
    /// predictor's cursor-sweep substrate.
    fn logins(&self) -> &[i64];

    /// The slot-occupancy index, when one has been configured.
    fn slot_index(&self) -> Option<&SlotIndex>;

    /// All visible events in timestamp order.
    fn events(&self) -> Vec<ActivityEvent>;

    /// Storage-overhead statistics (Figure 10a–b).  Physical figures
    /// (pages, index depth) are backend-specific; only the logical
    /// figures (`tuples`, `logical_bytes`) are comparable across
    /// backends.
    fn stats(&self) -> StorageStats;
}

/// Mutation surface of a history store — Algorithms 2 and 3 plus the
/// engine hooks (slot-index configuration, invariant audit).
pub trait HistoryStore: HistoryRead {
    /// Algorithm 2 — insert-if-not-exists.  Returns `true` when a tuple
    /// was stored.
    fn insert_history(&mut self, ts: Timestamp, kind: EventKind) -> bool;

    /// Convenience wrapper over
    /// [`insert_history`](HistoryStore::insert_history).
    fn insert_event(&mut self, ev: ActivityEvent) -> bool {
        self.insert_history(ev.ts, ev.kind)
    }

    /// Algorithm 3 — trim to the last `h` time units, keeping the oldest
    /// tuple, and report whether the database is "old".
    fn delete_old_history(&mut self, h: Seconds, now: Timestamp) -> DeleteOutcome;

    /// (Re)build the slot-occupancy index; degenerate parameters disable
    /// it.
    fn configure_slot_index(&mut self, period: Seconds, slot_len: Seconds);

    /// Audit the store's structural invariants, panicking with a
    /// description on violation (strict-invariants builds and property
    /// tests).
    fn check_invariants(&self);
}

/// Which history storage engine a fleet runs on — the
/// `SimConfig::builder().storage_backend(..)` knob.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum StorageBackend {
    /// The clustered slotted-page B+Tree of §5 (the default).
    #[default]
    BTree,
    /// The LSM/MVCC engine with snapshot time-travel
    /// ([`crate::lsm::LsmHistory`]).
    Lsm,
}

impl StorageBackend {
    /// Stable lowercase label for experiment tables and JSON output.
    pub const fn label(self) -> &'static str {
        match self {
            StorageBackend::BTree => "btree",
            StorageBackend::Lsm => "lsm",
        }
    }
}

/// Enum-dispatch wrapper over the concrete history backends.
///
/// The policy engines store one of these per database: static dispatch
/// (no boxed trait objects in the million-database arena) and `Clone`
/// for the rebalance/backup paths.  The whole surface lives on the
/// [`HistoryRead`] + [`HistoryStore`] trait impls — import the traits
/// to call it (the PR 7 inherent mirror API has been removed).
/// A fleet runs one backend for every database, so the arena pays the
/// larger variant's footprint only when it actually uses the LSM —
/// boxing it would put a pointer chase on every history read instead.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum HistoryBackend {
    /// B+Tree-backed [`HistoryTable`] (the §5 default).
    BTree(HistoryTable),
    /// LSM/MVCC [`LsmHistory`] with snapshot time-travel.
    Lsm(LsmHistory),
}

impl Default for HistoryBackend {
    fn default() -> Self {
        HistoryBackend::BTree(HistoryTable::new())
    }
}

macro_rules! dispatch {
    ($self:ident, $table:ident => $body:expr) => {
        match $self {
            HistoryBackend::BTree($table) => $body,
            HistoryBackend::Lsm($table) => $body,
        }
    };
}

impl HistoryBackend {
    /// An empty store of the given backend kind.
    pub fn new(kind: StorageBackend) -> Self {
        match kind {
            StorageBackend::BTree => HistoryBackend::BTree(HistoryTable::new()),
            StorageBackend::Lsm => HistoryBackend::Lsm(LsmHistory::new()),
        }
    }

    /// Which backend this store runs on.
    pub fn kind(&self) -> StorageBackend {
        match self {
            HistoryBackend::BTree(_) => StorageBackend::BTree,
            HistoryBackend::Lsm(_) => StorageBackend::Lsm,
        }
    }

    /// Hand compaction to a scheduler worker (LSM only; the B+Tree
    /// backend has no compaction and ignores the call).
    pub fn attach_compaction(&mut self, sched: &crate::lsm::CompactionScheduler) {
        if let HistoryBackend::Lsm(store) = self {
            store.attach_scheduler(sched);
        }
    }

    /// Barrier + fold + return to inline compaction (no-op on the
    /// B+Tree backend or an already-inline LSM store).  Shard drivers
    /// call this before collecting final stats so figures are
    /// deterministic across compaction modes.
    pub fn detach_compaction(&mut self) {
        if let HistoryBackend::Lsm(store) = self {
            store.detach_compaction();
        }
    }

    /// Block until every enqueued flush has been compacted, staying
    /// attached (no-op outside background LSM mode) — the conformance
    /// suite's explicit barrier point.
    pub fn compaction_barrier(&mut self) {
        if let HistoryBackend::Lsm(store) = self {
            store.compaction_barrier();
        }
    }

    /// Wall-clock nanoseconds the mutation path spent blocked on
    /// compaction work (0 on the B+Tree backend, which has none).
    pub fn compaction_stall_ns(&self) -> u64 {
        match self {
            HistoryBackend::BTree(_) => 0,
            HistoryBackend::Lsm(store) => store.compaction_stall_ns(),
        }
    }

    /// Wall-clock nanoseconds of compaction performed off the hot path
    /// by a scheduler worker (0 outside background LSM mode).
    pub fn offloaded_compaction_ns(&self) -> u64 {
        match self {
            HistoryBackend::BTree(_) => 0,
            HistoryBackend::Lsm(store) => store.offloaded_compaction_ns(),
        }
    }
}

impl HistoryRead for HistoryBackend {
    fn first_last_login_in(&self, lo: Timestamp, hi: Timestamp) -> Option<(Timestamp, Timestamp)> {
        dispatch!(self, t => t.first_last_login_in(lo, hi))
    }
    fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64 {
        dispatch!(self, t => t.count_logins_in(lo, hi))
    }
    fn login_window_stats(
        &self,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Option<(Timestamp, Timestamp, i64)> {
        dispatch!(self, t => t.login_window_stats(lo, hi))
    }
    fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
        dispatch!(self, t => t.any_event_in(lo, hi))
    }
    fn min_timestamp(&self) -> Option<Timestamp> {
        dispatch!(self, t => t.min_timestamp())
    }
    fn max_timestamp(&self) -> Option<Timestamp> {
        dispatch!(self, t => t.max_timestamp())
    }
    fn len(&self) -> usize {
        dispatch!(self, t => t.len())
    }
    fn version(&self) -> u64 {
        dispatch!(self, t => t.version())
    }
    fn logins(&self) -> &[i64] {
        dispatch!(self, t => t.logins())
    }
    fn slot_index(&self) -> Option<&SlotIndex> {
        dispatch!(self, t => t.slot_index())
    }
    fn events(&self) -> Vec<ActivityEvent> {
        dispatch!(self, t => t.events())
    }
    fn stats(&self) -> StorageStats {
        dispatch!(self, t => t.stats())
    }
}

macro_rules! impl_history_traits {
    ($ty:ty) => {
        impl HistoryRead for $ty {
            fn first_last_login_in(
                &self,
                lo: Timestamp,
                hi: Timestamp,
            ) -> Option<(Timestamp, Timestamp)> {
                <$ty>::first_last_login_in(self, lo, hi)
            }
            fn count_logins_in(&self, lo: Timestamp, hi: Timestamp) -> i64 {
                <$ty>::count_logins_in(self, lo, hi)
            }
            fn login_window_stats(
                &self,
                lo: Timestamp,
                hi: Timestamp,
            ) -> Option<(Timestamp, Timestamp, i64)> {
                <$ty>::login_window_stats(self, lo, hi)
            }
            fn any_event_in(&self, lo: Timestamp, hi: Timestamp) -> bool {
                <$ty>::any_event_in(self, lo, hi)
            }
            fn min_timestamp(&self) -> Option<Timestamp> {
                <$ty>::min_timestamp(self)
            }
            fn max_timestamp(&self) -> Option<Timestamp> {
                <$ty>::max_timestamp(self)
            }
            fn len(&self) -> usize {
                <$ty>::len(self)
            }
            fn version(&self) -> u64 {
                <$ty>::version(self)
            }
            fn logins(&self) -> &[i64] {
                <$ty>::logins(self)
            }
            fn slot_index(&self) -> Option<&SlotIndex> {
                <$ty>::slot_index(self)
            }
            fn events(&self) -> Vec<ActivityEvent> {
                <$ty>::events(self)
            }
            fn stats(&self) -> StorageStats {
                <$ty>::stats(self)
            }
        }

        impl HistoryStore for $ty {
            fn insert_history(&mut self, ts: Timestamp, kind: EventKind) -> bool {
                <$ty>::insert_history(self, ts, kind)
            }
            fn delete_old_history(&mut self, h: Seconds, now: Timestamp) -> DeleteOutcome {
                <$ty>::delete_old_history(self, h, now)
            }
            fn configure_slot_index(&mut self, period: Seconds, slot_len: Seconds) {
                <$ty>::configure_slot_index(self, period, slot_len)
            }
            fn check_invariants(&self) {
                <$ty>::check_invariants(self)
            }
        }
    };
}

impl_history_traits!(HistoryTable);
impl_history_traits!(LsmHistory);

impl HistoryStore for HistoryBackend {
    fn insert_history(&mut self, ts: Timestamp, kind: EventKind) -> bool {
        dispatch!(self, t => t.insert_history(ts, kind))
    }
    fn delete_old_history(&mut self, h: Seconds, now: Timestamp) -> DeleteOutcome {
        dispatch!(self, t => t.delete_old_history(h, now))
    }
    fn configure_slot_index(&mut self, period: Seconds, slot_len: Seconds) {
        dispatch!(self, t => t.configure_slot_index(period, slot_len))
    }
    fn check_invariants(&self) {
        dispatch!(self, t => t.check_invariants())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    fn exercise(mut b: HistoryBackend) {
        assert!(b.is_empty());
        assert!(b.insert_history(t(100), EventKind::Start));
        assert!(!b.insert_history(t(100), EventKind::End), "IF NOT EXISTS");
        assert!(b.insert_history(t(200), EventKind::End));
        assert_eq!(b.len(), 2);
        assert_eq!(b.version(), 2);
        assert_eq!(b.logins(), &[100]);
        assert_eq!(b.first_last_login_in(t(0), t(300)), Some((t(100), t(100))));
        assert_eq!(
            b.login_window_stats(t(0), t(300)),
            Some((t(100), t(100), 1))
        );
        assert_eq!(b.count_logins_in(t(0), t(300)), 1);
        assert!(b.any_event_in(t(150), t(250)));
        assert_eq!(b.min_timestamp(), Some(t(100)));
        assert_eq!(b.max_timestamp(), Some(t(200)));
        assert_eq!(b.events().len(), 2);
        assert_eq!(b.stats().tuples, 2);
        b.configure_slot_index(Seconds::days(1), Seconds::minutes(5));
        assert!(b.slot_index().is_some());
        b.check_invariants();
    }

    #[test]
    fn both_backends_expose_the_same_surface() {
        exercise(HistoryBackend::new(StorageBackend::BTree));
        exercise(HistoryBackend::new(StorageBackend::Lsm));
    }

    #[test]
    fn default_backend_is_the_btree() {
        assert_eq!(HistoryBackend::default().kind(), StorageBackend::BTree);
        assert_eq!(StorageBackend::default(), StorageBackend::BTree);
        assert_eq!(StorageBackend::BTree.label(), "btree");
        assert_eq!(StorageBackend::Lsm.label(), "lsm");
    }

    #[test]
    fn trait_objects_dispatch_through_the_enum() {
        let mut b = HistoryBackend::new(StorageBackend::Lsm);
        {
            let store: &mut dyn HistoryStore = &mut b;
            store.insert_event(ActivityEvent::start(t(10)));
            store.insert_event(ActivityEvent::end(t(20)));
        }
        let read: &dyn HistoryRead = &b;
        assert_eq!(read.len(), 2);
        assert!(!read.is_empty());
        assert_eq!(read.logins(), &[10]);
    }
}
