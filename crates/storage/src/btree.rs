//! An order-configurable B+Tree over `i64` keys.
//!
//! The history table's clustered index (§5) is a B-tree on the
//! `time_snapshot` column; this module supplies it.  All values live in the
//! leaves (B+Tree layout), internal nodes hold only separator keys, so a
//! range scan touches `O(log n + m)` entries — the asymptotics the paper's
//! complexity analysis (§5, §6) relies on.
//!
//! Deletion is *lazy with structural cleanup*: entries are removed from
//! their leaf, an emptied child is unlinked from its parent, and a root
//! with a single child is collapsed.  Underfull-but-nonempty nodes are not
//! rebalanced — the standard trade-off in delete-light workloads (the
//! history table deletes in one daily batch, Algorithm 3), which keeps all
//! invariants needed for correct search while avoiding rotation complexity.

use prorp_types::ProrpError;
use std::fmt;
use std::ops::Bound;

/// Default maximum number of entries in a leaf / children in an internal
/// node.  64 × 16-byte entries ≈ 1 KiB per leaf — a comfortable cache-line
/// multiple for the few-KiB histories of Figure 10.
pub const DEFAULT_ORDER: usize = 64;

#[derive(Clone, Debug)]
enum Node<V> {
    Leaf {
        entries: Vec<(i64, V)>,
    },
    Internal {
        /// `children[i]` holds keys `< keys[i]`; `children[i+1]` holds keys
        /// `>= keys[i]`.
        keys: Vec<i64>,
        children: Vec<Node<V>>,
    },
}

impl<V> Node<V> {
    fn is_empty(&self) -> bool {
        match self {
            Node::Leaf { entries } => entries.is_empty(),
            Node::Internal { children, .. } => children.is_empty(),
        }
    }
}

/// A B+Tree mapping unique `i64` keys to values.
#[derive(Clone)]
pub struct BTree<V> {
    root: Node<V>,
    len: usize,
    order: usize,
}

impl<V> Default for BTree<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: fmt::Debug> fmt::Debug for BTree<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BTree")
            .field("len", &self.len)
            .field("order", &self.order)
            .finish_non_exhaustive()
    }
}

enum InsertResult<V> {
    Done,
    Split { sep: i64, right: Node<V> },
}

impl<V> BTree<V> {
    /// An empty tree with the [`DEFAULT_ORDER`].
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// An empty tree with a custom order (minimum 4).
    ///
    /// # Panics
    ///
    /// Panics if `order < 4`; smaller orders cannot split meaningfully.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "B+Tree order must be at least 4, got {order}");
        BTree {
            root: Node::Leaf {
                entries: Vec::new(),
            },
            len: 0,
            order,
        }
    }

    /// Number of entries in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured node order.
    #[inline]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Point lookup: `O(log n)`.
    pub fn get(&self, key: i64) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by_key(&key, |(k, _)| *k)
                        .ok()
                        .map(|i| &entries[i].1);
                }
                Node::Internal { keys, children } => {
                    node = &children[child_index(keys, key)];
                }
            }
        }
    }

    /// Whether `key` is present: `O(log n)`.
    #[inline]
    pub fn contains_key(&self, key: i64) -> bool {
        self.get(key).is_some()
    }

    /// Mutable point lookup: `O(log n)`.
    pub fn get_mut(&mut self, key: i64) -> Option<&mut V> {
        let mut node = &mut self.root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    return entries
                        .binary_search_by_key(&key, |(k, _)| *k)
                        .ok()
                        .map(|i| &mut entries[i].1);
                }
                Node::Internal { keys, children } => {
                    let idx = child_index(keys, key);
                    node = &mut children[idx];
                }
            }
        }
    }

    /// Build a tree from strictly-ascending `(key, value)` pairs in one
    /// bottom-up pass: `O(n)` instead of `O(n log n)` repeated inserts.
    /// Used by the backup-restore path, where records arrive sorted from
    /// the page stream.
    ///
    /// # Errors
    ///
    /// Returns [`ProrpError::Storage`] if the keys are not strictly
    /// ascending.
    pub fn bulk_load(pairs: Vec<(i64, V)>) -> Result<Self, ProrpError> {
        Self::bulk_load_with_order(pairs, DEFAULT_ORDER)
    }

    /// [`bulk_load`](Self::bulk_load) with an explicit node order.
    pub fn bulk_load_with_order(pairs: Vec<(i64, V)>, order: usize) -> Result<Self, ProrpError> {
        assert!(order >= 4, "B+Tree order must be at least 4, got {order}");
        for w in pairs.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(ProrpError::Storage(format!(
                    "bulk load requires strictly ascending keys: {} then {}",
                    w[0].0, w[1].0
                )));
            }
        }
        let len = pairs.len();
        if len == 0 {
            return Ok(Self::with_order(order));
        }
        if len <= order {
            return Ok(BTree {
                root: Node::Leaf { entries: pairs },
                len,
                order,
            });
        }
        // Fill leaves to ~3/4 of the order so post-load inserts do not
        // immediately split every node.
        let fill = (order * 3 / 4).max(2);
        let mut pairs = pairs;
        let mut leaves: Vec<Node<V>> = Vec::with_capacity(len / fill + 1);
        while !pairs.is_empty() {
            let take = fill.min(pairs.len());
            let rest = pairs.split_off(take);
            leaves.push(Node::Leaf { entries: pairs });
            pairs = rest;
        }
        // Stack levels of internal nodes until one root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<Node<V>> = Vec::with_capacity(level.len() / fill + 1);
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                let mut children: Vec<Node<V>> = Vec::with_capacity(fill);
                for _ in 0..fill {
                    match iter.next() {
                        Some(c) => children.push(c),
                        None => break,
                    }
                }
                // A trailing singleton child cannot form a valid internal
                // node; merge it into the previous group.
                if children.len() == 1 {
                    if let Some(Node::Internal {
                        keys: prev_keys,
                        children: prev_children,
                    }) = next.last_mut()
                    {
                        let child = children.pop().expect("len checked");
                        prev_keys.push(Self::min_key_of(&child));
                        prev_children.push(child);
                        continue;
                    }
                    // Only group at this level: it becomes the root child.
                    next.push(children.pop().expect("len checked"));
                    continue;
                }
                let keys: Vec<i64> = children[1..].iter().map(Self::min_key_of).collect();
                next.push(Node::Internal { keys, children });
            }
            level = next;
        }
        let root = level.pop().expect("non-empty input yields a root");
        let tree = BTree { root, len, order };
        debug_assert!({
            tree.check_invariants();
            true
        });
        Ok(tree)
    }

    fn min_key_of(node: &Node<V>) -> i64 {
        match node {
            Node::Leaf { entries } => entries[0].0,
            Node::Internal { children, .. } => Self::min_key_of(&children[0]),
        }
    }

    /// Insert a new entry; duplicate keys are rejected, mirroring the
    /// `IF NOT EXISTS` uniqueness requirement of Algorithm 2.
    pub fn insert(&mut self, key: i64, value: V) -> Result<(), ProrpError> {
        match Self::insert_rec(&mut self.root, key, value, self.order)? {
            InsertResult::Done => {}
            InsertResult::Split { sep, right } => {
                // Grow a new root above the split halves.
                let old_root = std::mem::replace(
                    &mut self.root,
                    Node::Leaf {
                        entries: Vec::new(),
                    },
                );
                self.root = Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                };
            }
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        node: &mut Node<V>,
        key: i64,
        value: V,
        order: usize,
    ) -> Result<InsertResult<V>, ProrpError> {
        match node {
            Node::Leaf { entries } => {
                match entries.binary_search_by_key(&key, |(k, _)| *k) {
                    Ok(_) => {
                        return Err(ProrpError::Storage(format!(
                            "duplicate key {key} violates clustered-index uniqueness"
                        )))
                    }
                    Err(pos) => entries.insert(pos, (key, value)),
                }
                if entries.len() > order {
                    let right_entries = entries.split_off(entries.len() / 2);
                    let sep = right_entries[0].0;
                    Ok(InsertResult::Split {
                        sep,
                        right: Node::Leaf {
                            entries: right_entries,
                        },
                    })
                } else {
                    Ok(InsertResult::Done)
                }
            }
            Node::Internal { keys, children } => {
                let idx = child_index(keys, key);
                match Self::insert_rec(&mut children[idx], key, value, order)? {
                    InsertResult::Done => Ok(InsertResult::Done),
                    InsertResult::Split { sep, right } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if children.len() > order {
                            let mid = keys.len() / 2;
                            let sep_up = keys[mid];
                            let right_keys = keys.split_off(mid + 1);
                            keys.pop(); // sep_up moves up, not right
                            let right_children = children.split_off(mid + 1);
                            Ok(InsertResult::Split {
                                sep: sep_up,
                                right: Node::Internal {
                                    keys: right_keys,
                                    children: right_children,
                                },
                            })
                        } else {
                            Ok(InsertResult::Done)
                        }
                    }
                }
            }
        }
    }

    /// Remove `key`, returning its value if present: `O(log n)`.
    pub fn remove(&mut self, key: i64) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
            // Collapse a root that degenerated to a single child.
            while let Node::Internal { children, .. } = &mut self.root {
                if children.len() == 1 {
                    self.root = children.pop().expect("checked non-empty");
                } else {
                    break;
                }
            }
            if self.len == 0 {
                self.root = Node::Leaf {
                    entries: Vec::new(),
                };
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<V>, key: i64) -> Option<V> {
        match node {
            Node::Leaf { entries } => entries
                .binary_search_by_key(&key, |(k, _)| *k)
                .ok()
                .map(|i| entries.remove(i).1),
            Node::Internal { keys, children } => {
                let idx = child_index(keys, key);
                let removed = Self::remove_rec(&mut children[idx], key);
                if removed.is_some() && children[idx].is_empty() {
                    children.remove(idx);
                    // Removing child idx drops one separator: the one to its
                    // left if it exists, else the one to its right.
                    if !keys.is_empty() {
                        keys.remove(idx.saturating_sub(1).min(keys.len() - 1));
                    }
                }
                removed
            }
        }
    }

    /// Smallest entry: `O(log n)`.
    pub fn min_entry(&self) -> Option<(i64, &V)> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => return entries.first().map(|(k, v)| (*k, v)),
                Node::Internal { children, .. } => node = children.first()?,
            }
        }
    }

    /// Largest entry: `O(log n)`.
    pub fn max_entry(&self) -> Option<(i64, &V)> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { entries } => return entries.last().map(|(k, v)| (*k, v)),
                Node::Internal { children, .. } => node = children.last()?,
            }
        }
    }

    /// Iterate entries with keys in the given bounds, ascending:
    /// `O(log n + m)`.
    pub fn range(&self, lo: Bound<i64>, hi: Bound<i64>) -> RangeIter<'_, V> {
        RangeIter::new(&self.root, lo, hi)
    }

    /// Iterate all entries ascending.
    pub fn iter(&self) -> RangeIter<'_, V> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Collect the keys strictly inside `(lo, hi)` — the exclusive range
    /// Algorithm 3 deletes.
    pub fn keys_in_exclusive_range(&self, lo: i64, hi: i64) -> Vec<i64> {
        self.range(Bound::Excluded(lo), Bound::Excluded(hi))
            .map(|(k, _)| k)
            .collect()
    }

    /// Delete every key strictly inside `(lo, hi)`; returns how many were
    /// removed.  `O(m log n)`.
    pub fn delete_exclusive_range(&mut self, lo: i64, hi: i64) -> usize {
        let keys = self.keys_in_exclusive_range(lo, hi);
        for k in &keys {
            self.remove(*k);
        }
        keys.len()
    }

    /// Depth of the tree (1 for a lone leaf) — used by tests and the
    /// overhead bench.
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }

    /// Verify structural invariants; used by property tests.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn check_invariants(&self) {
        let counted = Self::check_node(&self.root, i64::MIN, i64::MAX, self.order, true);
        assert_eq!(counted, self.len, "len counter out of sync");
    }

    fn check_node(node: &Node<V>, lo: i64, hi: i64, order: usize, is_root: bool) -> usize {
        match node {
            Node::Leaf { entries } => {
                assert!(entries.len() <= order + 1, "leaf overflow");
                for w in entries.windows(2) {
                    assert!(w[0].0 < w[1].0, "leaf keys not strictly ascending");
                }
                for (k, _) in entries {
                    assert!(lo <= *k && *k < hi, "leaf key {k} outside ({lo}, {hi})");
                }
                entries.len()
            }
            Node::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "child/key arity mismatch");
                assert!(children.len() <= order + 1, "internal overflow");
                if !is_root {
                    assert!(!children.is_empty(), "empty non-root internal node");
                }
                for w in keys.windows(2) {
                    assert!(w[0] < w[1], "separator keys not strictly ascending");
                }
                let mut total = 0;
                for (i, child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { keys[i - 1] };
                    let chi = if i == keys.len() { hi } else { keys[i] };
                    total += Self::check_node(child, clo, chi, order, false);
                }
                total
            }
        }
    }
}

/// Index of the child subtree that may contain `key`.
#[inline]
fn child_index(keys: &[i64], key: i64) -> usize {
    // First separator strictly greater than key → descend left of it.
    match keys.binary_search(&key) {
        Ok(i) => i + 1, // keys equal to the separator live in the right child
        Err(i) => i,
    }
}

/// Ascending iterator over a key range, driven by an explicit descent stack.
pub struct RangeIter<'a, V> {
    /// Stack of (node, next child / entry index to visit).
    stack: Vec<(&'a Node<V>, usize)>,
    hi: Bound<i64>,
}

impl<'a, V> RangeIter<'a, V> {
    fn new(root: &'a Node<V>, lo: Bound<i64>, hi: Bound<i64>) -> Self {
        let mut stack = Vec::new();
        // Descend to the first leaf position >= lo, recording the path.
        let mut node = root;
        loop {
            match node {
                Node::Leaf { entries } => {
                    let start = match lo {
                        Bound::Unbounded => 0,
                        Bound::Included(l) => entries.partition_point(|(k, _)| *k < l),
                        Bound::Excluded(l) => entries.partition_point(|(k, _)| *k <= l),
                    };
                    stack.push((node, start));
                    break;
                }
                Node::Internal { keys, children } => {
                    let idx = match lo {
                        Bound::Unbounded => 0,
                        Bound::Included(l) | Bound::Excluded(l) => child_index(keys, l),
                    };
                    stack.push((node, idx + 1));
                    node = &children[idx];
                }
            }
        }
        RangeIter { stack, hi }
    }
}

impl<'a, V> Iterator for RangeIter<'a, V> {
    type Item = (i64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let hi = self.hi;
            let (node, idx) = self.stack.last_mut()?;
            match node {
                Node::Leaf { entries } => {
                    if let Some((k, v)) = entries.get(*idx) {
                        let in_range = match hi {
                            Bound::Unbounded => true,
                            Bound::Included(h) => *k <= h,
                            Bound::Excluded(h) => *k < h,
                        };
                        if !in_range {
                            self.stack.clear();
                            return None;
                        }
                        *idx += 1;
                        return Some((*k, v));
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if let Some(child) = children.get(*idx) {
                        *idx += 1;
                        // Enter the child at its beginning.
                        let mut node = child;
                        loop {
                            match node {
                                Node::Leaf { .. } => {
                                    self.stack.push((node, 0));
                                    break;
                                }
                                Node::Internal { children, .. } => {
                                    self.stack.push((node, 1));
                                    node = &children[0];
                                }
                            }
                        }
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_of(keys: impl IntoIterator<Item = i64>) -> BTree<i64> {
        let mut t = BTree::with_order(4);
        for k in keys {
            t.insert(k, k * 10).unwrap();
        }
        t.check_invariants();
        t
    }

    #[test]
    fn empty_tree_basics() {
        let t: BTree<i64> = BTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(1), None);
        assert_eq!(t.min_entry(), None);
        assert_eq!(t.max_entry(), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn insert_and_get_across_splits() {
        let t = tree_of(0..500);
        assert_eq!(t.len(), 500);
        assert!(t.depth() > 1, "expected splits at order 4");
        for k in 0..500 {
            assert_eq!(t.get(k), Some(&(k * 10)), "key {k}");
        }
        assert_eq!(t.get(500), None);
        assert_eq!(t.get(-1), None);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut t = tree_of([5]);
        let err = t.insert(5, 0).unwrap_err();
        assert!(err.to_string().contains("duplicate key 5"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn min_max_entries() {
        let t = tree_of([30, 10, 20, 50, 40]);
        assert_eq!(t.min_entry(), Some((10, &100)));
        assert_eq!(t.max_entry(), Some((50, &500)));
    }

    #[test]
    fn reverse_insertion_order_is_fine() {
        let t = tree_of((0..200).rev());
        let keys: Vec<_> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn range_bounds_are_honoured() {
        let t = tree_of((0..100).map(|k| k * 2)); // even keys 0..198
        let collect = |lo, hi| -> Vec<i64> { t.range(lo, hi).map(|(k, _)| k).collect() };
        assert_eq!(
            collect(Bound::Included(10), Bound::Included(20)),
            vec![10, 12, 14, 16, 18, 20]
        );
        assert_eq!(
            collect(Bound::Excluded(10), Bound::Excluded(20)),
            vec![12, 14, 16, 18]
        );
        // Bounds between keys.
        assert_eq!(
            collect(Bound::Included(11), Bound::Included(15)),
            vec![12, 14]
        );
        assert_eq!(collect(Bound::Unbounded, Bound::Excluded(6)), vec![0, 2, 4]);
        assert_eq!(
            collect(Bound::Included(194), Bound::Unbounded),
            vec![194, 196, 198]
        );
        assert!(collect(Bound::Included(50), Bound::Excluded(50)).is_empty());
    }

    #[test]
    fn remove_returns_value_and_shrinks() {
        let mut t = tree_of(0..100);
        assert_eq!(t.remove(40), Some(400));
        assert_eq!(t.remove(40), None);
        assert_eq!(t.len(), 99);
        assert!(!t.contains_key(40));
        t.check_invariants();
    }

    #[test]
    fn remove_everything_resets_to_leaf_root() {
        let mut t = tree_of(0..256);
        for k in 0..256 {
            assert!(t.remove(k).is_some(), "key {k}");
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1);
        // Reusable after full drain.
        t.insert(7, 70).unwrap();
        assert_eq!(t.get(7), Some(&70));
    }

    #[test]
    fn delete_exclusive_range_keeps_bounds() {
        let mut t = tree_of(0..50);
        let removed = t.delete_exclusive_range(10, 20);
        assert_eq!(removed, 9); // 11..=19
        assert!(t.contains_key(10));
        assert!(t.contains_key(20));
        for k in 11..20 {
            assert!(!t.contains_key(k), "key {k} should be gone");
        }
        t.check_invariants();
    }

    #[test]
    fn interleaved_inserts_and_removes_stay_consistent() {
        let mut t = BTree::with_order(4);
        let mut model = std::collections::BTreeMap::new();
        // A deterministic pseudo-random walk.
        let mut x: i64 = 12345;
        for step in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 300;
            if step % 3 == 0 {
                assert_eq!(t.remove(key), model.remove(&key));
            } else {
                let res = t.insert(key, step);
                let existed = model.insert(key, step);
                match existed {
                    None => assert!(res.is_ok()),
                    Some(old) => {
                        assert!(res.is_err());
                        model.insert(key, old); // restore model: tree rejected
                    }
                }
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), model.len());
        let tree_pairs: Vec<_> = t.iter().map(|(k, v)| (k, *v)).collect();
        let model_pairs: Vec<_> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(tree_pairs, model_pairs);
    }

    #[test]
    #[should_panic(expected = "order must be at least 4")]
    fn tiny_order_panics() {
        let _ = BTree::<i64>::with_order(2);
    }

    #[test]
    fn bulk_load_equals_incremental_insert() {
        for n in [0usize, 1, 3, 5, 64, 65, 256, 1_000] {
            let pairs: Vec<(i64, i64)> = (0..n as i64).map(|k| (k * 3, k)).collect();
            let bulk = BTree::bulk_load_with_order(pairs.clone(), 8).unwrap();
            bulk.check_invariants();
            let mut incremental = BTree::with_order(8);
            for (k, v) in &pairs {
                incremental.insert(*k, *v).unwrap();
            }
            let a: Vec<_> = bulk.iter().map(|(k, v)| (k, *v)).collect();
            let b: Vec<_> = incremental.iter().map(|(k, v)| (k, *v)).collect();
            assert_eq!(a, b, "n = {n}");
            assert_eq!(bulk.len(), n);
        }
    }

    #[test]
    fn bulk_load_rejects_unsorted_keys() {
        assert!(BTree::bulk_load(vec![(2, ()), (1, ())]).is_err());
        assert!(BTree::bulk_load(vec![(1, ()), (1, ())]).is_err());
    }

    #[test]
    fn bulk_loaded_tree_accepts_further_inserts() {
        let pairs: Vec<(i64, i64)> = (0..500).map(|k| (k * 2, k)).collect();
        let mut t = BTree::bulk_load(pairs).unwrap();
        for k in 0..500 {
            t.insert(k * 2 + 1, -k).unwrap();
        }
        t.check_invariants();
        assert_eq!(t.len(), 1_000);
        assert_eq!(t.get(7), Some(&-3));
    }
}
