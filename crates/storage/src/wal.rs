//! A write-ahead log for the history table.
//!
//! §3.3 requires the history store to be durable; §5 leans on "the
//! established backup and restore mechanisms of Azure SQL Database to
//! tackle data loss".  Real engines bridge the gap between backups with
//! a write-ahead log: every mutation is appended (and in a real
//! deployment fsynced) before it is applied, and recovery replays the
//! tail of the log over the last backup image.
//!
//! The log records exactly the two mutations Algorithms 2–3 perform:
//!
//! * [`WalRecord::Insert`] — one `(time_snapshot, event_type)` tuple;
//! * [`WalRecord::DeleteRange`] — the exclusive `(min, history_start)`
//!   range of a `DeleteOldHistory` run.
//!
//! Each record is length-prefixed and checksummed; a torn tail (partial
//! final record, the normal crash artefact) is detected and truncated
//! rather than treated as corruption.

use crate::history::HistoryTable;
use bytes::{Buf, BufMut, BytesMut};
use prorp_types::{EventKind, ProrpError, Seconds, Timestamp};

/// Log-record magic prefix.
const RECORD_MAGIC: u8 = 0x57; // 'W'

/// One logged mutation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalRecord {
    /// `InsertHistory(time, type)` (Algorithm 2).
    Insert {
        /// Epoch-second timestamp.
        ts: i64,
        /// 1 = start, 0 = end.
        event_type: i64,
    },
    /// `DeleteOldHistory`'s exclusive range delete (Algorithm 3).
    DeleteRange {
        /// Exclusive lower bound (the preserved oldest tuple).
        min: i64,
        /// Exclusive upper bound (the history start).
        history_start: i64,
    },
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl WalRecord {
    fn encode_body(&self) -> [u8; 17] {
        let mut out = [0u8; 17];
        match self {
            WalRecord::Insert { ts, event_type } => {
                out[0] = 0;
                out[1..9].copy_from_slice(&ts.to_le_bytes());
                out[9..17].copy_from_slice(&event_type.to_le_bytes());
            }
            WalRecord::DeleteRange { min, history_start } => {
                out[0] = 1;
                out[1..9].copy_from_slice(&min.to_le_bytes());
                out[9..17].copy_from_slice(&history_start.to_le_bytes());
            }
        }
        out
    }

    fn decode_body(body: &[u8]) -> Result<Self, ProrpError> {
        if body.len() != 17 {
            return Err(ProrpError::Storage(format!(
                "WAL record body must be 17 bytes, got {}",
                body.len()
            )));
        }
        let mut a = &body[1..9];
        let mut b = &body[9..17];
        let x = a.get_i64_le();
        let y = b.get_i64_le();
        match body[0] {
            0 => Ok(WalRecord::Insert {
                ts: x,
                event_type: y,
            }),
            1 => Ok(WalRecord::DeleteRange {
                min: x,
                history_start: y,
            }),
            tag => Err(ProrpError::Storage(format!("unknown WAL record tag {tag}"))),
        }
    }
}

/// An append-only in-memory log image (the bytes that would sit on disk).
#[derive(Clone, Debug, Default)]
pub struct WriteAheadLog {
    buf: BytesMut,
    records: usize,
}

impl WriteAheadLog {
    /// An empty log.
    pub fn new() -> Self {
        WriteAheadLog::default()
    }

    /// Number of records appended.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Byte size of the log image.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Append one record: `magic (1) | body (17) | checksum (8)`.
    pub fn append(&mut self, record: WalRecord) {
        let body = record.encode_body();
        self.buf.put_u8(RECORD_MAGIC);
        self.buf.extend_from_slice(&body);
        self.buf.put_u64_le(fnv1a(&body));
        self.records += 1;
    }

    /// The on-disk image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Truncate after a checkpoint (backup taken): the log restarts
    /// empty.
    pub fn checkpoint(&mut self) {
        self.buf.clear();
        self.records = 0;
    }

    /// Decode a log image, tolerating a torn tail: a partial final
    /// record is dropped; a *corrupt* record (bad magic or checksum in
    /// the middle) is an error.
    pub fn decode(mut image: &[u8]) -> Result<Vec<WalRecord>, ProrpError> {
        const RECORD_LEN: usize = 1 + 17 + 8;
        let mut out = Vec::with_capacity(image.len() / RECORD_LEN);
        while !image.is_empty() {
            if image.len() < RECORD_LEN {
                // Torn tail: a crash mid-append. Recovery stops here.
                break;
            }
            if image[0] != RECORD_MAGIC {
                return Err(ProrpError::Storage(format!(
                    "bad WAL record magic {:#x} at record {}",
                    image[0],
                    out.len()
                )));
            }
            let body = &image[1..18];
            let mut stored = &image[18..26];
            let stored = stored.get_u64_le();
            if stored != fnv1a(body) {
                // A checksum mismatch on the *last* full record is also a
                // torn write; mid-log it is corruption.
                if image.len() == RECORD_LEN {
                    break;
                }
                return Err(ProrpError::Storage(format!(
                    "WAL checksum mismatch at record {}",
                    out.len()
                )));
            }
            out.push(WalRecord::decode_body(body)?);
            image = &image[RECORD_LEN..];
        }
        Ok(out)
    }

    /// Replay decoded records over a (backup-restored) table.
    pub fn replay(records: &[WalRecord], table: &mut HistoryTable) -> Result<(), ProrpError> {
        for rec in records {
            match rec {
                WalRecord::Insert { ts, event_type } => {
                    let kind = EventKind::from_i32(*event_type as i32)?;
                    // Idempotent, like Algorithm 2 itself.
                    table.insert_history(Timestamp(*ts), kind);
                }
                WalRecord::DeleteRange { min, history_start } => {
                    // Replay via the same maintenance path: reconstruct
                    // the (h, now) pair that produces this range.  Any
                    // (h, now) with now - h == history_start works when
                    // the preserved minimum matches.
                    let now = Timestamp(*history_start);
                    let _ = min;
                    table.delete_old_history(Seconds(0), now);
                }
            }
        }
        Ok(())
    }
}

/// A history table with write-ahead logging on every mutation — the
/// durable wrapper a node would actually run.
#[derive(Clone, Debug, Default)]
pub struct DurableHistory {
    table: HistoryTable,
    wal: WriteAheadLog,
}

impl DurableHistory {
    /// An empty durable history.
    pub fn new() -> Self {
        DurableHistory::default()
    }

    /// Read access to the live table.
    pub fn table(&self) -> &HistoryTable {
        &self.table
    }

    /// The log accumulated since the last checkpoint.
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// Logged insert (Algorithm 2).
    pub fn insert_history(&mut self, ts: Timestamp, kind: EventKind) -> bool {
        // Log first, then apply — the WAL discipline.
        self.wal.append(WalRecord::Insert {
            ts: ts.as_secs(),
            event_type: i64::from(kind.as_i32()),
        });
        self.table.insert_history(ts, kind)
    }

    /// Logged trim (Algorithm 3).
    pub fn delete_old_history(
        &mut self,
        h: Seconds,
        now: Timestamp,
    ) -> crate::history::DeleteOutcome {
        let history_start = (now - h).as_secs();
        let min = self.table.min_timestamp().map(|t| t.as_secs()).unwrap_or(0);
        self.wal
            .append(WalRecord::DeleteRange { min, history_start });
        self.table.delete_old_history(h, now)
    }

    /// Take a backup and truncate the log (a checkpoint).
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, ProrpError> {
        let image = crate::backup::backup_history(&self.table)?;
        self.wal.checkpoint();
        Ok(image)
    }

    /// Crash recovery: restore the last backup and replay the WAL image.
    pub fn recover(backup: &[u8], wal_image: &[u8]) -> Result<Self, ProrpError> {
        let mut table = crate::backup::restore_history(backup)?;
        let records = WriteAheadLog::decode(wal_image)?;
        WriteAheadLog::replay(&records, &mut table)?;
        // The recovered node starts a fresh log (the old one is applied).
        Ok(DurableHistory {
            table,
            wal: WriteAheadLog::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backup::backup_history;

    fn t(v: i64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn record_roundtrip() {
        for rec in [
            WalRecord::Insert {
                ts: 12345,
                event_type: 1,
            },
            WalRecord::DeleteRange {
                min: -5,
                history_start: 99,
            },
        ] {
            let body = rec.encode_body();
            assert_eq!(WalRecord::decode_body(&body).unwrap(), rec);
        }
    }

    #[test]
    fn log_append_decode_roundtrip() {
        let mut wal = WriteAheadLog::new();
        wal.append(WalRecord::Insert {
            ts: 10,
            event_type: 1,
        });
        wal.append(WalRecord::Insert {
            ts: 20,
            event_type: 0,
        });
        wal.append(WalRecord::DeleteRange {
            min: 0,
            history_start: 15,
        });
        assert_eq!(wal.len(), 3);
        let decoded = WriteAheadLog::decode(wal.as_bytes()).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(
            decoded[0],
            WalRecord::Insert {
                ts: 10,
                event_type: 1
            }
        );
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut wal = WriteAheadLog::new();
        wal.append(WalRecord::Insert {
            ts: 1,
            event_type: 1,
        });
        wal.append(WalRecord::Insert {
            ts: 2,
            event_type: 0,
        });
        let image = wal.as_bytes();
        // Crash mid-append: only part of the second record hit disk.
        let torn = &image[..image.len() - 5];
        let decoded = WriteAheadLog::decode(torn).unwrap();
        assert_eq!(decoded.len(), 1, "partial record dropped");
    }

    #[test]
    fn mid_log_corruption_is_fatal() {
        let mut wal = WriteAheadLog::new();
        wal.append(WalRecord::Insert {
            ts: 1,
            event_type: 1,
        });
        wal.append(WalRecord::Insert {
            ts: 2,
            event_type: 0,
        });
        let mut image = wal.as_bytes().to_vec();
        image[3] ^= 0xff; // corrupt the first record's body
        let err = WriteAheadLog::decode(&image).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn recovery_replays_the_tail_over_the_backup() {
        let mut durable = DurableHistory::new();
        // Pre-checkpoint history.
        durable.insert_history(t(100), EventKind::Start);
        durable.insert_history(t(200), EventKind::End);
        let backup = durable.checkpoint().unwrap();
        assert!(durable.wal().is_empty());
        // Post-checkpoint mutations live only in the WAL.
        durable.insert_history(t(300), EventKind::Start);
        durable.insert_history(t(400), EventKind::End);
        let wal_image = durable.wal().as_bytes().to_vec();

        // Crash. Recover from backup + WAL.
        let recovered = DurableHistory::recover(&backup, &wal_image).unwrap();
        assert_eq!(recovered.table().events(), durable.table().events());
        assert!(recovered.wal().is_empty(), "recovered node starts fresh");
    }

    #[test]
    fn recovery_replays_deletes_too() {
        let mut durable = DurableHistory::new();
        for i in 0..10 {
            durable.insert_history(t(i * 100), EventKind::Start);
        }
        let backup = durable.checkpoint().unwrap();
        durable.delete_old_history(Seconds(0), t(500));
        let wal_image = durable.wal().as_bytes().to_vec();
        let recovered = DurableHistory::recover(&backup, &wal_image).unwrap();
        assert_eq!(recovered.table().events(), durable.table().events());
        // The oldest tuple survives the replayed trim (Algorithm 3 rule).
        assert_eq!(recovered.table().min_timestamp(), Some(t(0)));
    }

    #[test]
    fn losing_the_wal_falls_back_to_the_backup() {
        let mut durable = DurableHistory::new();
        durable.insert_history(t(1), EventKind::Start);
        let backup = durable.checkpoint().unwrap();
        durable.insert_history(t(2), EventKind::End);
        // WAL lost entirely: recovery yields the backup state.
        let recovered = DurableHistory::recover(&backup, &[]).unwrap();
        assert_eq!(recovered.table().len(), 1);
        assert_eq!(backup_history(recovered.table()).unwrap(), backup);
    }
}
