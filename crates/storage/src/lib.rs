//! Embedded storage engine for the per-database activity history.
//!
//! §5 of the paper persists each database's activity history in an internal
//! table `sys.pause_resume_history(time_snapshot BIGINT, event_type INT)`
//! with a **clustered B-tree index** on `time_snapshot`, and keeps the
//! control-plane metadata (`sys.databases`) that the proactive resume
//! operation scans (Algorithm 5).  This crate reproduces those substrates:
//!
//! * [`btree`] — an order-configurable B+Tree over `i64` keys giving the
//!   `O(log n)` point operations and `O(log n + m)` range operations the
//!   paper's complexity analysis assumes;
//! * [`page`] — slotted 8-KiB pages (over [`bytes`]) used to serialise the
//!   tree for backups and to account history size in bytes (Figure 10b);
//! * [`history`] — the `sys.pause_resume_history` table with the exact
//!   semantics of Algorithm 2 (`InsertHistory`) and Algorithm 3
//!   (`DeleteOldHistory`), including the paper's "keep the oldest tuple to
//!   determine lifespan" rule;
//! * [`metadata`] — the `sys.databases` metadata store with a secondary
//!   index on `start_of_pred_activity` so the Algorithm 5 scan is a range
//!   lookup rather than a full scan;
//! * [`backup`] — page-image backup and restore, exercised by the
//!   load-balancing *database move* in the simulator (§3.3: "history must
//!   move with it");
//! * [`wal`] — a write-ahead log bridging the gap between backups: every
//!   Algorithm 2/3 mutation is logged before it is applied, and crash
//!   recovery replays the log tail over the last backup image.
//!
//! # Pluggable storage
//!
//! The [`store`] module is the trait seam over this machinery:
//! [`HistoryRead`] (the object-safe read surface predictors consume)
//! and [`HistoryStore`] (the Algorithm 2/3 mutation surface), with
//! [`HistoryBackend`] as the enum-dispatch wrapper engines hold and
//! [`StorageBackend`] as the fleet-wide knob.  Two engines implement
//! the seam: the B+Tree [`HistoryTable`] (default) and the [`lsm`]
//! module's [`LsmHistory`] — an LSM/MVCC tree whose monotonic seqnos
//! power [`snapshot`](lsm::LsmHistory::snapshot) frozen views and the
//! [`TimeTravel`] timestamp → seqno mapping for "as of T" post-mortems.
//! Both backends are held to bit-identical observable behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backup;
pub mod btree;
pub mod history;
pub mod lsm;
pub mod metadata;
pub mod page;
pub mod store;
pub mod wal;

pub use backup::{backup_history, restore_backend, restore_history};
pub use btree::BTree;
pub use history::{DeleteOutcome, HistoryTable, SlotIndex, StorageStats};
pub use lsm::{
    CompactionMode, CompactionScheduler, LsmConfig, LsmHistory, LsmMetrics, LsmSnapshot,
    RangeTombstone, TimeTravel,
};
pub use metadata::{DbMeta, MetadataStore};
pub use store::{HistoryBackend, HistoryRead, HistoryStore, StorageBackend};
pub use wal::{DurableHistory, WalRecord, WriteAheadLog};
