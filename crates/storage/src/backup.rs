//! Backup and restore of a history table as a page-image stream.
//!
//! §3.3 requires the history store to be **durable**: "if a database moves
//! from one compute node to another to balance the load, its history must
//! move with it to enable proactive resource allocation after the move."
//! The simulator's load-balancing move ships exactly the bytes produced
//! here; §5 additionally leans on "the established backup and restore
//! mechanisms" for data loss, which this codec stands in for.
//!
//! Format: a 16-byte header (magic, version, page count) followed by
//! `page_count` raw 8-KiB page images.

use crate::history::HistoryTable;
use crate::lsm::LsmHistory;
use crate::page::{self, Record, PAGE_SIZE};
use crate::store::{HistoryBackend, HistoryRead, StorageBackend};
use bytes::{Buf, BufMut, BytesMut};
use prorp_types::ProrpError;

/// Backup stream magic ("PRPB").
pub const BACKUP_MAGIC: u32 = 0x5052_5042;
/// Current backup format version.
pub const BACKUP_VERSION: u32 = 1;
/// Header bytes preceding the page images.
pub const BACKUP_HEADER_SIZE: usize = 16;

/// Serialise a history store into a self-describing backup stream.
///
/// The stream is *backend-independent*: it serialises the visible
/// events in key order, so a B+Tree table and an LSM store holding the
/// same history produce byte-identical backups, and either side can
/// restore from the other's stream.
pub fn backup_history<H: HistoryRead + ?Sized>(table: &H) -> Result<Vec<u8>, ProrpError> {
    let records: Vec<Record> = table
        .events()
        .into_iter()
        .map(|e| Record {
            key: e.ts.as_secs(),
            value: i64::from(e.kind.as_i32()),
        })
        .collect();
    let pages = page::encode_pages(&records)?;
    let mut out = BytesMut::with_capacity(BACKUP_HEADER_SIZE + pages.len() * PAGE_SIZE);
    out.put_u32_le(BACKUP_MAGIC);
    out.put_u32_le(BACKUP_VERSION);
    out.put_u64_le(pages.len() as u64);
    for p in &pages {
        out.extend_from_slice(p);
    }
    Ok(out.to_vec())
}

/// Rebuild a history table from a backup stream produced by
/// [`backup_history`].
///
/// # Errors
///
/// Returns [`ProrpError::Storage`] on truncated input, bad magic, an
/// unsupported version, or page-level corruption.
pub fn restore_history(stream: &[u8]) -> Result<HistoryTable, ProrpError> {
    HistoryTable::from_records(&decode_records(stream)?)
}

/// Rebuild a history store of the requested backend kind from a backup
/// stream — the restore half of the pluggable-storage seam.  Either
/// backend restores from any stream (the format is backend-independent)
/// with the shared restore contract: mutation version reset to 0, slot
/// index unconfigured.
///
/// # Errors
///
/// Returns [`ProrpError::Storage`] on truncated input, bad magic, an
/// unsupported version, or page-level corruption.
pub fn restore_backend(stream: &[u8], kind: StorageBackend) -> Result<HistoryBackend, ProrpError> {
    let records = decode_records(stream)?;
    Ok(match kind {
        StorageBackend::BTree => HistoryBackend::BTree(HistoryTable::from_records(&records)?),
        StorageBackend::Lsm => HistoryBackend::Lsm(LsmHistory::from_records(&records)?),
    })
}

/// Validate a backup stream's framing and decode its page records.
fn decode_records(stream: &[u8]) -> Result<Vec<Record>, ProrpError> {
    if stream.len() < BACKUP_HEADER_SIZE {
        return Err(ProrpError::Storage(format!(
            "backup stream truncated: {} bytes < header {BACKUP_HEADER_SIZE}",
            stream.len()
        )));
    }
    let mut header = &stream[..BACKUP_HEADER_SIZE];
    let magic = header.get_u32_le();
    if magic != BACKUP_MAGIC {
        return Err(ProrpError::Storage(format!(
            "bad backup magic {magic:#x}, expected {BACKUP_MAGIC:#x}"
        )));
    }
    let version = header.get_u32_le();
    if version != BACKUP_VERSION {
        return Err(ProrpError::Storage(format!(
            "unsupported backup version {version}, expected {BACKUP_VERSION}"
        )));
    }
    let page_count = header.get_u64_le() as usize;
    let expected = BACKUP_HEADER_SIZE + page_count * PAGE_SIZE;
    if stream.len() != expected {
        return Err(ProrpError::Storage(format!(
            "backup stream length {} does not match {page_count} pages ({expected} bytes)",
            stream.len()
        )));
    }
    let body = &stream[BACKUP_HEADER_SIZE..];
    page::decode_pages(body.chunks(PAGE_SIZE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prorp_types::{EventKind, Timestamp};

    fn table_with(n: i64) -> HistoryTable {
        let mut t = HistoryTable::new();
        for i in 0..n {
            let kind = if i % 2 == 0 {
                EventKind::Start
            } else {
                EventKind::End
            };
            t.insert_history(Timestamp(i * 97), kind);
        }
        t
    }

    #[test]
    fn empty_table_roundtrips() {
        let stream = backup_history(&HistoryTable::new()).unwrap();
        assert_eq!(stream.len(), BACKUP_HEADER_SIZE);
        let restored = restore_history(&stream).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn multi_page_table_roundtrips() {
        let table = table_with(1_000); // > 2 pages at 454 records/page
        let stream = backup_history(&table).unwrap();
        let restored = restore_history(&stream).unwrap();
        assert_eq!(restored.events(), table.events());
        assert_eq!(restored.stats(), table.stats());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let table = table_with(10);
        let stream = backup_history(&table).unwrap();
        assert!(restore_history(&stream[..stream.len() - 1]).is_err());
        assert!(restore_history(&stream[..4]).is_err());
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let table = table_with(3);
        let mut stream = backup_history(&table).unwrap();
        stream[0] ^= 0xff;
        assert!(restore_history(&stream)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let mut stream = backup_history(&table).unwrap();
        stream[4] = 99;
        assert!(restore_history(&stream)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn backup_bytes_are_backend_independent() {
        let mut lsm = LsmHistory::new();
        let mut btree = HistoryTable::new();
        for i in 0..300 {
            let kind = if i % 3 == 0 {
                EventKind::Start
            } else {
                EventKind::End
            };
            lsm.insert_history(Timestamp(i * 61), kind);
            btree.insert_history(Timestamp(i * 61), kind);
        }
        lsm.delete_old_history(prorp_types::Seconds(5_000), Timestamp(300 * 61));
        btree.delete_old_history(prorp_types::Seconds(5_000), Timestamp(300 * 61));
        let a = backup_history(&lsm).unwrap();
        let b = backup_history(&btree).unwrap();
        assert_eq!(a, b, "same history must serialise to the same bytes");
        // Cross-restore: either backend restores either stream.
        let as_lsm = restore_backend(&b, StorageBackend::Lsm).unwrap();
        let as_btree = restore_backend(&a, StorageBackend::BTree).unwrap();
        assert_eq!(as_lsm.events(), as_btree.events());
        assert_eq!(as_lsm.logins(), as_btree.logins());
        assert_eq!(as_lsm.version(), 0);
        assert_eq!(as_btree.version(), 0);
        assert_eq!(as_lsm.kind(), StorageBackend::Lsm);
        assert_eq!(as_btree.kind(), StorageBackend::BTree);
    }

    #[test]
    fn page_corruption_surfaces_from_restore() {
        let table = table_with(100);
        let mut stream = backup_history(&table).unwrap();
        stream[BACKUP_HEADER_SIZE + 64] ^= 0x01;
        assert!(restore_history(&stream)
            .unwrap_err()
            .to_string()
            .contains("checksum"));
    }
}
