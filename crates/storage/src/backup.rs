//! Backup and restore of a history table as a page-image stream.
//!
//! §3.3 requires the history store to be **durable**: "if a database moves
//! from one compute node to another to balance the load, its history must
//! move with it to enable proactive resource allocation after the move."
//! The simulator's load-balancing move ships exactly the bytes produced
//! here; §5 additionally leans on "the established backup and restore
//! mechanisms" for data loss, which this codec stands in for.
//!
//! Format: a 16-byte header (magic, version, page count) followed by
//! `page_count` raw 8-KiB page images.

use crate::history::HistoryTable;
use crate::page::{self, PAGE_SIZE};
use bytes::{Buf, BufMut, BytesMut};
use prorp_types::ProrpError;

/// Backup stream magic ("PRPB").
pub const BACKUP_MAGIC: u32 = 0x5052_5042;
/// Current backup format version.
pub const BACKUP_VERSION: u32 = 1;
/// Header bytes preceding the page images.
pub const BACKUP_HEADER_SIZE: usize = 16;

/// Serialise a history table into a self-describing backup stream.
pub fn backup_history(table: &HistoryTable) -> Result<Vec<u8>, ProrpError> {
    let records = table.records();
    let pages = page::encode_pages(&records)?;
    let mut out = BytesMut::with_capacity(BACKUP_HEADER_SIZE + pages.len() * PAGE_SIZE);
    out.put_u32_le(BACKUP_MAGIC);
    out.put_u32_le(BACKUP_VERSION);
    out.put_u64_le(pages.len() as u64);
    for p in &pages {
        out.extend_from_slice(p);
    }
    Ok(out.to_vec())
}

/// Rebuild a history table from a backup stream produced by
/// [`backup_history`].
///
/// # Errors
///
/// Returns [`ProrpError::Storage`] on truncated input, bad magic, an
/// unsupported version, or page-level corruption.
pub fn restore_history(stream: &[u8]) -> Result<HistoryTable, ProrpError> {
    if stream.len() < BACKUP_HEADER_SIZE {
        return Err(ProrpError::Storage(format!(
            "backup stream truncated: {} bytes < header {BACKUP_HEADER_SIZE}",
            stream.len()
        )));
    }
    let mut header = &stream[..BACKUP_HEADER_SIZE];
    let magic = header.get_u32_le();
    if magic != BACKUP_MAGIC {
        return Err(ProrpError::Storage(format!(
            "bad backup magic {magic:#x}, expected {BACKUP_MAGIC:#x}"
        )));
    }
    let version = header.get_u32_le();
    if version != BACKUP_VERSION {
        return Err(ProrpError::Storage(format!(
            "unsupported backup version {version}, expected {BACKUP_VERSION}"
        )));
    }
    let page_count = header.get_u64_le() as usize;
    let expected = BACKUP_HEADER_SIZE + page_count * PAGE_SIZE;
    if stream.len() != expected {
        return Err(ProrpError::Storage(format!(
            "backup stream length {} does not match {page_count} pages ({expected} bytes)",
            stream.len()
        )));
    }
    let body = &stream[BACKUP_HEADER_SIZE..];
    let records = page::decode_pages(body.chunks(PAGE_SIZE))?;
    HistoryTable::from_records(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prorp_types::{EventKind, Timestamp};

    fn table_with(n: i64) -> HistoryTable {
        let mut t = HistoryTable::new();
        for i in 0..n {
            let kind = if i % 2 == 0 {
                EventKind::Start
            } else {
                EventKind::End
            };
            t.insert_history(Timestamp(i * 97), kind);
        }
        t
    }

    #[test]
    fn empty_table_roundtrips() {
        let stream = backup_history(&HistoryTable::new()).unwrap();
        assert_eq!(stream.len(), BACKUP_HEADER_SIZE);
        let restored = restore_history(&stream).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn multi_page_table_roundtrips() {
        let table = table_with(1_000); // > 2 pages at 454 records/page
        let stream = backup_history(&table).unwrap();
        let restored = restore_history(&stream).unwrap();
        assert_eq!(restored.events(), table.events());
        assert_eq!(restored.stats(), table.stats());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let table = table_with(10);
        let stream = backup_history(&table).unwrap();
        assert!(restore_history(&stream[..stream.len() - 1]).is_err());
        assert!(restore_history(&stream[..4]).is_err());
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let table = table_with(3);
        let mut stream = backup_history(&table).unwrap();
        stream[0] ^= 0xff;
        assert!(restore_history(&stream)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let mut stream = backup_history(&table).unwrap();
        stream[4] = 99;
        assert!(restore_history(&stream)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn page_corruption_surfaces_from_restore() {
        let table = table_with(100);
        let mut stream = backup_history(&table).unwrap();
        stream[BACKUP_HEADER_SIZE + 64] ^= 0x01;
        assert!(restore_history(&stream)
            .unwrap_err()
            .to_string()
            .contains("checksum"));
    }
}
