//! Multi-thread stress for the snapshot-pin / background-compaction
//! race (the `shuttle-compaction` opt-in suite, run by `check.sh`).
//!
//! The hazard under test: a frozen [`LsmSnapshot`] pins the runs it was
//! cut from by `Arc` refcount, while the [`CompactionScheduler`] worker
//! concurrently merges those runs away and garbage-collects tombstoned
//! versions out of the live store.  A reader thread hammers captured
//! snapshots *while* the worker churns; every snapshot must keep
//! answering with exactly the state it froze — and after the barrier
//! the background store must be bit-identical to a deterministic twin
//! fed the same mutations.  No external model checker: the pressure is
//! plain threads racing real compaction work.

#![cfg(feature = "shuttle-compaction")]

use prorp_storage::{
    CompactionScheduler, HistoryRead, LsmConfig, LsmHistory, LsmSnapshot, TimeTravel,
};
use prorp_types::{ActivityEvent, EventKind, Seconds, Timestamp};
use std::sync::mpsc::channel;
use std::thread;

fn tiny() -> LsmHistory {
    LsmHistory::with_config(LsmConfig {
        memtable_cap: 4,
        bloom_filters: true,
    })
}

#[test]
fn pinned_snapshots_stay_exact_while_the_worker_compacts() {
    // Several rounds shift the key phase so scheduler/worker
    // interleavings vary between iterations.
    for round in 0..8i64 {
        let sched = CompactionScheduler::new();
        let mut bg = tiny();
        bg.attach_scheduler(&sched);
        let mut twin = tiny();

        // The reader receives (snapshot, expected state at capture) and
        // re-reads the snapshot many times while compaction runs.
        let (tx, rx) = channel::<(LsmSnapshot, Vec<ActivityEvent>)>();
        let reader = thread::spawn(move || {
            let mut verified = 0usize;
            for (snap, expected) in rx {
                for _ in 0..64 {
                    assert_eq!(snap.len(), expected.len(), "snapshot length drifted");
                    assert_eq!(snap.events(), expected, "snapshot tuple set drifted");
                    for ev in &expected {
                        assert_eq!(
                            snap.resolve(ev.ts.as_secs()),
                            Some(i64::from(ev.kind.as_i32())),
                            "pinned resolve lost a version at ts {}",
                            ev.ts.as_secs()
                        );
                    }
                }
                verified += 1;
            }
            verified
        });

        for step in 0..400i64 {
            let ts = Timestamp(step * 60 + round);
            let kind = if step % 3 == 0 {
                EventKind::Start
            } else {
                EventKind::End
            };
            assert_eq!(bg.insert_history(ts, kind), twin.insert_history(ts, kind));
            if step % 50 == 49 {
                // Retention pass: one range tombstone, GC fodder for the
                // worker's next merges.
                assert_eq!(
                    bg.delete_old_history(Seconds(3_000), ts),
                    twin.delete_old_history(Seconds(3_000), ts)
                );
                let snap = bg.snapshot(bg.latest_seqno());
                assert!(
                    snap.pinned_runs().len() > 0,
                    "a flushed store must pin runs"
                );
                let _ = tx.send((snap, bg.events()));
            }
        }
        drop(tx);
        let verified = reader.join().expect("reader thread must not panic");
        assert_eq!(verified, 8, "one snapshot per retention pass");

        // The event-loop path never compacted, the worker did.
        assert_eq!(bg.compaction_stall_ns(), 0);
        bg.detach_compaction();
        let (m, t) = (bg.metrics(), twin.metrics());
        assert!(
            m.gc_dropped + m.runs_dropped > 0,
            "the churn must have garbage-collected under the pins: {m:?}"
        );
        assert_eq!(m, t, "round {round}: effort ledgers diverged");
        assert_eq!(bg.events(), twin.events());
        assert_eq!(bg.logins(), twin.logins());
        assert_eq!(bg.version(), twin.version());
        assert_eq!(bg.stats(), twin.stats());
        assert_eq!(bg.run_count(), twin.run_count());
        assert_eq!(bg.gc_floor(), twin.gc_floor());
        bg.check_invariants();
        twin.check_invariants();
    }
}

#[test]
fn many_stores_share_one_scheduler_without_cross_talk() {
    let sched = CompactionScheduler::new();
    let mut stores: Vec<(LsmHistory, LsmHistory)> = (0..16)
        .map(|_| {
            let mut bg = tiny();
            bg.attach_scheduler(&sched);
            (bg, tiny())
        })
        .collect();
    // Interleave mutations across all registrations so the worker's
    // FIFO carries an arbitrary store order.
    for step in 0..200i64 {
        for (i, (bg, twin)) in stores.iter_mut().enumerate() {
            let ts = Timestamp(step * 90 + i as i64);
            bg.insert_history(ts, EventKind::Start);
            twin.insert_history(ts, EventKind::Start);
            if step % 40 == 39 {
                bg.delete_old_history(Seconds(4_000), ts);
                twin.delete_old_history(Seconds(4_000), ts);
            }
        }
    }
    for (bg, twin) in &mut stores {
        bg.detach_compaction();
        assert_eq!(bg.events(), twin.events());
        assert_eq!(bg.metrics(), twin.metrics());
        assert_eq!(bg.stats(), twin.stats());
        bg.check_invariants();
    }
}
