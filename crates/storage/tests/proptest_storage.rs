//! Property-based tests for the storage substrate: the B+Tree is checked
//! against `std::collections::BTreeMap` as a model, the page codec and the
//! backup stream against identity round-trips, and Algorithm 3 against its
//! specification.

use proptest::prelude::*;
use prorp_storage::page::{decode_page, encode_page, records_per_page, Record};
use prorp_storage::wal::{DurableHistory, WriteAheadLog};
use prorp_storage::{backup_history, restore_history, BTree, HistoryTable};
use prorp_types::{EventKind, Seconds, Timestamp};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Operations the model test replays against both implementations.
#[derive(Clone, Debug)]
enum Op {
    Insert(i64),
    Remove(i64),
    DeleteRange(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (-200i64..200).prop_map(Op::Insert),
        2 => (-200i64..200).prop_map(Op::Remove),
        1 => (-200i64..200, 0i64..100).prop_map(|(lo, w)| Op::DeleteRange(lo, lo + w)),
    ]
}

proptest! {
    #[test]
    fn btree_matches_btreemap_model(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut tree = BTree::with_order(4);
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    let tree_res = tree.insert(k, k);
                    let existed = model.contains_key(&k);
                    prop_assert_eq!(tree_res.is_err(), existed);
                    model.entry(k).or_insert(k);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(k), model.remove(&k));
                }
                Op::DeleteRange(lo, hi) => {
                    // std's BTreeMap::range panics on equal excluded bounds;
                    // our tree treats the empty exclusive range as a no-op.
                    let expected: Vec<i64> = if lo < hi {
                        model
                            .range((Bound::Excluded(lo), Bound::Excluded(hi)))
                            .map(|(k, _)| *k)
                            .collect()
                    } else {
                        Vec::new()
                    };
                    let removed = tree.delete_exclusive_range(lo, hi);
                    prop_assert_eq!(removed, expected.len());
                    for k in expected {
                        model.remove(&k);
                    }
                }
            }
            tree.check_invariants();
        }
        prop_assert_eq!(tree.len(), model.len());
        let tree_keys: Vec<i64> = tree.iter().map(|(k, _)| k).collect();
        let model_keys: Vec<i64> = model.keys().copied().collect();
        prop_assert_eq!(tree_keys, model_keys);
        prop_assert_eq!(tree.min_entry().map(|(k, _)| k), model.keys().next().copied());
        prop_assert_eq!(tree.max_entry().map(|(k, _)| k), model.keys().last().copied());
    }

    #[test]
    fn btree_range_matches_model(
        keys in prop::collection::btree_set(-500i64..500, 0..300),
        lo in -600i64..600,
        width in 0i64..400,
    ) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(k, ()).unwrap();
        }
        let hi = lo + width;
        let got: Vec<i64> = tree
            .range(Bound::Included(lo), Bound::Included(hi))
            .map(|(k, _)| k)
            .collect();
        let expected: Vec<i64> = keys.range(lo..=hi).copied().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn page_roundtrip_is_identity(
        entries in prop::collection::btree_map(
            proptest::num::i64::ANY,
            0i64..2,
            0..records_per_page(),
        )
    ) {
        let records: Vec<Record> = entries
            .iter()
            .map(|(k, v)| Record { key: *k, value: *v })
            .collect();
        let page = encode_page(&records).unwrap();
        prop_assert_eq!(decode_page(&page).unwrap(), records);
    }

    #[test]
    fn backup_roundtrip_preserves_history(
        stamps in prop::collection::btree_set(0i64..1_000_000, 0..1_200)
    ) {
        let mut table = HistoryTable::new();
        for (i, ts) in stamps.iter().enumerate() {
            let kind = if i % 2 == 0 { EventKind::Start } else { EventKind::End };
            assert!(table.insert_history(Timestamp(*ts), kind));
        }
        let stream = backup_history(&table).unwrap();
        let restored = restore_history(&stream).unwrap();
        prop_assert_eq!(restored.events(), table.events());
    }

    #[test]
    fn delete_old_history_spec(
        stamps in prop::collection::btree_set(0i64..2_000_000, 1..300),
        h in 1i64..1_000_000,
        now in 0i64..3_000_000,
    ) {
        let mut table = HistoryTable::new();
        for ts in &stamps {
            table.insert_history(Timestamp(*ts), EventKind::Start);
        }
        let min = *stamps.iter().next().unwrap();
        let history_start = now - h;
        let outcome = table.delete_old_history(Seconds(h), Timestamp(now));

        // Spec: old iff the minimum predates history start.
        prop_assert_eq!(outcome.old, min < history_start);
        // The oldest tuple always survives.
        prop_assert_eq!(table.min_timestamp(), Some(Timestamp(min)));
        // Exactly the tuples strictly inside (min, history_start) die.
        let expected_dead = stamps
            .iter()
            .filter(|&&ts| min < ts && ts < history_start)
            .count();
        prop_assert_eq!(outcome.deleted, expected_dead);
        prop_assert_eq!(table.len(), stamps.len() - expected_dead);
    }

    #[test]
    fn first_last_login_matches_filtered_scan(
        events in prop::collection::btree_map(0i64..10_000, 0i64..2, 0..200),
        lo in 0i64..10_000,
        width in 0i64..5_000,
    ) {
        let mut table = HistoryTable::new();
        for (ts, kind) in &events {
            let kind = EventKind::from_i32(*kind as i32).unwrap();
            table.insert_history(Timestamp(*ts), kind);
        }
        let hi = lo + width;
        let logins: Vec<i64> = events
            .iter()
            .filter(|(ts, v)| **v == 1 && lo <= **ts && **ts <= hi)
            .map(|(ts, _)| *ts)
            .collect();
        let expected = match (logins.first(), logins.last()) {
            (Some(f), Some(l)) => Some((Timestamp(*f), Timestamp(*l))),
            _ => None,
        };
        prop_assert_eq!(table.first_last_login_in(Timestamp(lo), Timestamp(hi)), expected);
    }
}

/// WAL mutations the crash-recovery property replays.
#[derive(Clone, Debug)]
enum WalOp {
    Insert(i64, bool),
    Trim { h: i64, now: i64 },
}

fn wal_op_strategy() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        5 => (0i64..1_000_000, any::<bool>()).prop_map(|(ts, s)| WalOp::Insert(ts, s)),
        1 => (1i64..500_000, 0i64..1_500_000).prop_map(|(h, now)| WalOp::Trim { h, now }),
    ]
}

proptest! {
    /// Crash anywhere after a checkpoint: backup + WAL replay must
    /// reproduce the live table exactly.
    #[test]
    fn wal_recovery_reproduces_the_live_table(
        pre in prop::collection::vec(wal_op_strategy(), 0..40),
        post in prop::collection::vec(wal_op_strategy(), 0..40),
    ) {
        let mut durable = DurableHistory::new();
        let apply = |d: &mut DurableHistory, op: &WalOp| match op {
            WalOp::Insert(ts, start) => {
                let kind = if *start { EventKind::Start } else { EventKind::End };
                d.insert_history(Timestamp(*ts), kind);
            }
            WalOp::Trim { h, now } => {
                d.delete_old_history(Seconds(*h), Timestamp(*now));
            }
        };
        for op in &pre {
            apply(&mut durable, op);
        }
        let backup = durable.checkpoint().unwrap();
        for op in &post {
            apply(&mut durable, op);
        }
        let wal_image = durable.wal().as_bytes().to_vec();
        let recovered = DurableHistory::recover(&backup, &wal_image).unwrap();
        prop_assert_eq!(recovered.table().events(), durable.table().events());
    }

    /// A truncated WAL image recovers a consistent *prefix* of the
    /// mutation stream (never an error, never an impossible state).
    #[test]
    fn torn_wal_recovers_a_prefix(
        ops in prop::collection::vec(wal_op_strategy(), 1..30),
        cut in 0usize..800,
    ) {
        let mut durable = DurableHistory::new();
        let backup = durable.checkpoint().unwrap();
        for op in &ops {
            match op {
                WalOp::Insert(ts, start) => {
                    let kind = if *start { EventKind::Start } else { EventKind::End };
                    durable.insert_history(Timestamp(*ts), kind);
                }
                WalOp::Trim { h, now } => {
                    durable.delete_old_history(Seconds(*h), Timestamp(*now));
                }
            }
        }
        let image = durable.wal().as_bytes();
        let cut = cut.min(image.len());
        // Records are 26 bytes: compute how many full records survive.
        let survivors = cut / 26;
        let torn = &image[..cut];
        let decoded = WriteAheadLog::decode(torn).unwrap();
        prop_assert_eq!(decoded.len(), survivors);
        // Recovery over the torn log never fails.
        let recovered = DurableHistory::recover(&backup, torn).unwrap();
        prop_assert!(recovered.table().len() <= durable.table().len().max(ops.len()));
    }
}

proptest! {
    /// Bulk loading is a pure round-trip: for any key set and any legal
    /// order, the packed tree holds exactly the input pairs, in order,
    /// with valid node invariants — identical in contents to a tree
    /// grown by one-at-a-time inserts.
    #[test]
    fn bulk_load_roundtrips_any_key_set(
        keys in prop::collection::btree_set(-10_000i64..10_000, 0..600),
        order in 3usize..48,
    ) {
        let pairs: Vec<(i64, i64)> = keys.iter().map(|&k| (k, k * 3)).collect();
        let bulk = BTree::bulk_load_with_order(pairs.clone(), order).unwrap();
        bulk.check_invariants();

        let mut grown = BTree::with_order(order);
        for &(k, v) in &pairs {
            grown.insert(k, v).unwrap();
        }
        prop_assert_eq!(bulk.len(), grown.len());
        let bulk_entries: Vec<(i64, i64)> = bulk.iter().map(|(k, v)| (k, *v)).collect();
        let grown_entries: Vec<(i64, i64)> = grown.iter().map(|(k, v)| (k, *v)).collect();
        prop_assert_eq!(&bulk_entries, &pairs, "bulk load must preserve the input");
        prop_assert_eq!(bulk_entries, grown_entries);
        for &(k, v) in &pairs {
            prop_assert_eq!(bulk.get(k), Some(&v));
        }
        prop_assert_eq!(bulk.min_entry().map(|(k, _)| k), keys.iter().next().copied());
        prop_assert_eq!(bulk.max_entry().map(|(k, _)| k), keys.iter().last().copied());
    }

    /// The exclusive-range scan agrees with the model for arbitrary
    /// bounds, including empty, inverted, and all-covering ranges.
    #[test]
    fn keys_in_exclusive_range_matches_model(
        keys in prop::collection::btree_set(-500i64..500, 0..300),
        lo in -700i64..700,
        width in -100i64..500,
    ) {
        let mut tree = BTree::new();
        for &k in &keys {
            tree.insert(k, ()).unwrap();
        }
        let hi = lo + width;
        let expected: Vec<i64> = if lo < hi {
            keys.range((Bound::Excluded(lo), Bound::Excluded(hi)))
                .copied()
                .collect()
        } else {
            Vec::new()
        };
        prop_assert_eq!(tree.keys_in_exclusive_range(lo, hi), expected);
    }

    /// Checkpointing is stable and truncating: it empties the WAL,
    /// recovering from the backup alone reproduces the table, and a
    /// second checkpoint over the unchanged table is byte-identical.
    #[test]
    fn checkpoint_truncates_and_is_stable(
        ops in prop::collection::vec(wal_op_strategy(), 0..60),
    ) {
        let mut durable = DurableHistory::new();
        for op in &ops {
            match op {
                WalOp::Insert(ts, start) => {
                    let kind = if *start { EventKind::Start } else { EventKind::End };
                    durable.insert_history(Timestamp(*ts), kind);
                }
                WalOp::Trim { h, now } => {
                    durable.delete_old_history(Seconds(*h), Timestamp(*now));
                }
            }
        }
        let backup = durable.checkpoint().unwrap();
        prop_assert!(durable.wal().is_empty(), "checkpoint must truncate the log");
        let recovered = DurableHistory::recover(&backup, &[]).unwrap();
        prop_assert_eq!(recovered.table().events(), durable.table().events());
        let again = durable.checkpoint().unwrap();
        prop_assert_eq!(backup, again, "checkpoint over an unchanged table must be stable");
    }

    /// Recovery is idempotent: recovering, checkpointing the recovered
    /// replica, and recovering again converges after one step.
    #[test]
    fn recover_of_recover_is_identity(
        pre in prop::collection::vec(wal_op_strategy(), 0..30),
        post in prop::collection::vec(wal_op_strategy(), 0..30),
    ) {
        let mut durable = DurableHistory::new();
        let apply = |d: &mut DurableHistory, op: &WalOp| match op {
            WalOp::Insert(ts, start) => {
                let kind = if *start { EventKind::Start } else { EventKind::End };
                d.insert_history(Timestamp(*ts), kind);
            }
            WalOp::Trim { h, now } => {
                d.delete_old_history(Seconds(*h), Timestamp(*now));
            }
        };
        for op in &pre {
            apply(&mut durable, op);
        }
        let backup = durable.checkpoint().unwrap();
        for op in &post {
            apply(&mut durable, op);
        }
        let wal_image = durable.wal().as_bytes().to_vec();
        let mut first = DurableHistory::recover(&backup, &wal_image).unwrap();
        let second_backup = first.checkpoint().unwrap();
        let second = DurableHistory::recover(&second_backup, &[]).unwrap();
        prop_assert_eq!(second.table().events(), durable.table().events());
    }

    /// `DurableHistory::recover` is exactly backup-restore plus a manual
    /// decode-and-replay of the log — no hidden state rides along.
    #[test]
    fn recover_equals_manual_decode_and_replay(
        pre in prop::collection::vec(wal_op_strategy(), 0..30),
        post in prop::collection::vec(wal_op_strategy(), 1..30),
    ) {
        let mut durable = DurableHistory::new();
        let apply = |d: &mut DurableHistory, op: &WalOp| match op {
            WalOp::Insert(ts, start) => {
                let kind = if *start { EventKind::Start } else { EventKind::End };
                d.insert_history(Timestamp(*ts), kind);
            }
            WalOp::Trim { h, now } => {
                d.delete_old_history(Seconds(*h), Timestamp(*now));
            }
        };
        for op in &pre {
            apply(&mut durable, op);
        }
        let backup = durable.checkpoint().unwrap();
        for op in &post {
            apply(&mut durable, op);
        }
        let image = durable.wal().as_bytes();
        let recovered = DurableHistory::recover(&backup, image).unwrap();

        let mut manual = restore_history(&backup).unwrap();
        let records = WriteAheadLog::decode(image).unwrap();
        WriteAheadLog::replay(&records, &mut manual).unwrap();
        prop_assert_eq!(recovered.table().events(), manual.events());
    }
}
