//! The oracle predictor: perfect knowledge of the future trace.
//!
//! §2.3 defines the optimum as allocating resources iff they are needed,
//! which "requires a perfect resource demand prediction".  The oracle
//! supplies that prediction from the ground-truth session list, powering
//! the optimal policy of Figure 2(c) that every real policy is measured
//! against.

use crate::Predictor;
use prorp_storage::HistoryRead;
use prorp_types::{Prediction, ProrpError, Session, Timestamp};

/// A predictor that reads the future from the ground-truth trace.
#[derive(Clone, Debug)]
pub struct OraclePredictor {
    /// Time-ordered, non-overlapping future sessions.
    sessions: Vec<Session>,
}

impl OraclePredictor {
    /// Build from a time-ordered session list.
    ///
    /// # Errors
    ///
    /// Returns [`ProrpError::InvalidEvent`] if sessions are unordered or
    /// overlap.
    pub fn new(sessions: Vec<Session>) -> Result<Self, ProrpError> {
        for w in sessions.windows(2) {
            if w[1].start <= w[0].end {
                return Err(ProrpError::InvalidEvent(format!(
                    "oracle sessions must be ordered and disjoint: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        Ok(OraclePredictor { sessions })
    }

    /// The next session starting strictly after `now` (a session already
    /// in progress is not a *next* activity — the policy sees it as
    /// current demand).
    pub fn next_session_after(&self, now: Timestamp) -> Option<Session> {
        let idx = self.sessions.partition_point(|s| s.start <= now);
        self.sessions.get(idx).copied()
    }
}

impl Predictor for OraclePredictor {
    fn predict(
        &mut self,
        _history: &dyn HistoryRead,
        now: Timestamp,
    ) -> Result<Option<Prediction>, ProrpError> {
        Ok(self.next_session_after(now).map(|s| Prediction {
            start: s.start,
            end: s.end,
            confidence: 1.0,
        }))
    }

    fn name(&self) -> &'static str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prorp_storage::HistoryTable;

    fn s(a: i64, b: i64) -> Session {
        Session::new(Timestamp(a), Timestamp(b)).unwrap()
    }

    #[test]
    fn returns_the_next_future_session() {
        let oracle = OraclePredictor::new(vec![s(10, 20), s(50, 60), s(100, 110)]).unwrap();
        assert_eq!(oracle.next_session_after(Timestamp(0)), Some(s(10, 20)));
        assert_eq!(oracle.next_session_after(Timestamp(10)), Some(s(50, 60)));
        assert_eq!(oracle.next_session_after(Timestamp(25)), Some(s(50, 60)));
        assert_eq!(oracle.next_session_after(Timestamp(100)), None);
        assert_eq!(oracle.next_session_after(Timestamp(200)), None);
    }

    #[test]
    fn rejects_unordered_or_overlapping_sessions() {
        assert!(OraclePredictor::new(vec![s(50, 60), s(10, 20)]).is_err());
        assert!(OraclePredictor::new(vec![s(10, 20), s(20, 30)]).is_err());
        assert!(OraclePredictor::new(vec![s(10, 20), s(15, 30)]).is_err());
        assert!(OraclePredictor::new(vec![]).is_ok());
    }

    #[test]
    fn trait_impl_maps_sessions_to_predictions() {
        let mut oracle = OraclePredictor::new(vec![s(10, 20)]).unwrap();
        let pred = oracle
            .predict(&HistoryTable::new(), Timestamp(0))
            .unwrap()
            .unwrap();
        assert_eq!(pred.start, Timestamp(10));
        assert_eq!(pred.end, Timestamp(20));
        assert_eq!(pred.confidence, 1.0);
        assert_eq!(oracle.name(), "oracle");
    }
}
